//! # proptest (vendored shim)
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the `proptest` 1.x API that the Pangolin workspace's
//! property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`], integer-range and
//!   tuple strategies, [`Just`], [`any`], and weighted [`prop_oneof!`];
//! * [`collection::vec`] for variable-length vectors;
//! * the [`proptest!`] macro with `#![proptest_config(...)]` /
//!   [`ProptestConfig::with_cases`], and [`prop_assert!`] /
//!   [`prop_assert_eq!`].
//!
//! Differences from the real crate, chosen deliberately for an offline
//! reproduction:
//!
//! * **No shrinking.** A failing case panics with its generated inputs
//!   printed (every strategy value is `Debug`), but is not minimized.
//!   The workspace's tests all take explicit seeds or small action
//!   vectors, so raw counterexamples remain actionable.
//! * **Deterministic by default.** Each test function derives its RNG
//!   seed from its own name, so failures reproduce across runs. Set
//!   `PROPTEST_RNG_SEED` to explore a different stream.
//! * `PROPTEST_CASES` overrides the per-test case count, like the real
//!   crate's environment handling.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Applies the `PROPTEST_CASES` environment override, if present.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generator driving a `proptest!` run.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner whose stream is derived from `test_name` (stable across
    /// runs) unless `PROPTEST_RNG_SEED` overrides it.
    pub fn deterministic(test_name: &str) -> Self {
        let seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
        TestRunner { rng: StdRng::seed_from_u64(seed) }
    }

    /// The underlying RNG, for strategies to draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f` (the real crate's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases this strategy so heterogeneous strategies producing the
    /// same value type can share a container (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, runner: &mut TestRunner) -> V {
        (**self).new_value(runner)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.new_value(runner))
    }
}

/// Weighted choice among strategies of one value type ([`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V: std::fmt::Debug> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { options, total_weight }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, runner: &mut TestRunner) -> V {
        let mut pick = runner.rng().gen_range(0..self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.new_value(runner);
            }
            pick -= *w as u64;
        }
        unreachable!("weights cover the sampled value")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// The uniform strategy over all values of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end().saturating_add(1) }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            assert!(self.size.lo < self.size.hi, "empty collection size range");
            let len = runner.rng().gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, like `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

/// Asserts a condition inside a property (panics with the formatted
/// message; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Weighted (`w => strategy`) or uniform choice among strategies that
/// produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strategy:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
///
/// On failure the generated inputs are printed before the panic
/// propagates, so the case can be replayed by hand.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        @impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = config.resolved_cases();
                let mut runner = $crate::TestRunner::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::new_value(&$strategy, &mut runner);)+
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case}/{cases} failed in {}:",
                            stringify!($name)
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
        Rect(u8, u8),
    }

    fn shape_strategy() -> impl Strategy<Value = Shape> {
        prop_oneof![
            Just(Shape::Dot),
            (1u8..10).prop_map(Shape::Line),
            (1u8..10, 1u8..=9).prop_map(|(w, h)| Shape::Rect(w, h)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn shapes_in_bounds(shape in shape_strategy(), scale in any::<u8>()) {
            let _ = scale;
            match shape {
                Shape::Dot => {}
                Shape::Line(l) => prop_assert!((1..10).contains(&l)),
                Shape::Rect(w, h) => {
                    prop_assert!((1..10).contains(&w));
                    prop_assert!((1..=9).contains(&h));
                }
            }
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in crate::collection::vec(0u8..=255, 2..7),
        ) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn weighted_union_prefers_heavy_arm() {
        let s = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let mut runner = TestRunner::deterministic("weighted_union");
        let trues = (0..1000).filter(|_| s.new_value(&mut runner)).count();
        assert!(trues > 800, "9:1 weighting gave {trues}/1000");
    }

    #[test]
    fn deterministic_runner_reproduces() {
        let s = 0u64..1_000_000;
        let mut a = TestRunner::deterministic("repro");
        let mut b = TestRunner::deterministic("repro");
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
