//! # criterion (vendored shim)
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the `criterion` 0.5 API that the Pangolin benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model (much simpler than real criterion, deliberately):
//! each benchmark is warmed up briefly, then timed over batches until a
//! wall-clock budget is spent; the median batch time is reported as
//! ns/iter (plus MB/s when a [`Throughput`] is set). There is no
//! statistical analysis, no plotting, and no `target/criterion` output —
//! results print to stdout, one line per benchmark. Under `cargo test`
//! (which runs `harness = false` bench targets) the budget collapses to a
//! single iteration so the benches act as smoke tests.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name, a parameter,
/// or both (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter, like `adler32/64`.
    pub fn new<P: std::fmt::Display>(function_name: impl Into<String>, parameter: P) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// An id carrying only a parameter (the group name provides context).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work-per-iteration, used to derive a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the per-iteration time. The
    /// routine's return value is passed through [`black_box`] so its
    /// computation cannot be optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call (also catches panics early).
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1_000_000 {
                self.iters_done = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall-clock
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher =
            Bencher { iters_done: 0, elapsed: Duration::ZERO, budget: self.criterion.budget };
        routine(&mut bencher, input);
        self.report(&id, &bencher);
    }

    /// Benchmarks a routine that needs no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher =
            Bencher { iters_done: 0, elapsed: Duration::ZERO, budget: self.criterion.budget };
        routine(&mut bencher);
        self.report(&BenchmarkId { id: id.into() }, &bencher);
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.iters_done == 0 {
            println!("{}/{id}: no iterations recorded", self.name);
            return;
        }
        let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64;
        self.append_json(id, bencher, ns_per_iter);
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                let mbps = b as f64 / ns_per_iter * 1e9 / (1 << 20) as f64;
                format!("  {mbps:10.1} MiB/s")
            }
            Some(Throughput::Elements(e)) => {
                let eps = e as f64 / ns_per_iter * 1e9;
                format!("  {eps:10.0} elem/s")
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {ns_per_iter:12.1} ns/iter ({} iters){rate}",
            self.name, bencher.iters_done
        );
    }

    /// Appends one JSON line per benchmark to the file named by the
    /// `CRITERION_JSON` environment variable (no-op when unset). The
    /// format is JSON-lines, one object per result, so harness scripts
    /// can turn a bench run into a machine-readable artifact (see
    /// `BENCH_commit_path.json` at the workspace root).
    ///
    /// The file is *append-only* so `cargo bench` invocations that run
    /// several bench binaries against one path keep all their results;
    /// each process prefixes its lines with a `run_start` marker line so
    /// consumers can split runs (take the lines after the last marker
    /// for the freshest run of a re-used file).
    fn append_json(&self, id: &BenchmarkId, bencher: &Bencher, ns_per_iter: f64) {
        let Some(path) = std::env::var_os("CRITERION_JSON") else { return };
        let Ok(mut f) =
            std::fs::OpenOptions::new().create(true).append(true).open(std::path::Path::new(&path))
        else {
            return;
        };
        use std::io::Write as _;
        static RUN_MARKED: std::sync::Once = std::sync::Once::new();
        RUN_MARKED.call_once(|| {
            let argv0 = std::env::args().next().unwrap_or_default();
            let _ = writeln!(f, "{{\"run_start\":\"{argv0}\"}}");
        });
        let tp = match self.throughput {
            Some(Throughput::Bytes(b)) => format!(",\"bytes_per_iter\":{b}"),
            Some(Throughput::Elements(e)) => format!(",\"elements_per_iter\":{e}"),
            None => String::new(),
        };
        let line = format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}{tp}}}\n",
            self.name, id.id, ns_per_iter, bencher.iters_done
        );
        let _ = f.write_all(line.as_bytes());
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    /// Test mode (invoked by `cargo test` on `harness = false` targets, or
    /// with an explicit `--test` flag) gets a one-shot budget; real runs
    /// get a short measuring budget per benchmark.
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CARGO_CRITERION_SMOKE").is_some()
            || cfg!(test);
        Criterion { budget: if test_mode { Duration::ZERO } else { Duration::from_millis(50) } }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, throughput: None }
    }
}

/// Declares a benchmark entry point: `criterion_group!(benches, f1, f2)`
/// defines `fn benches()` running each target against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            $(
                let mut criterion = $crate::Criterion::default();
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `fn main()` invoking the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("adler32", 64).to_string(), "adler32/64");
        assert_eq!(BenchmarkId::from_parameter("mlpc").to_string(), "mlpc");
    }

    #[test]
    fn groups_run_their_routines() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut runs = 0u32;
        g.throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::new("add", 8), &3u64, |b, &x| {
            b.iter(|| x + 1);
            runs += 1;
        });
        g.bench_function("mul", |b| b.iter(|| black_box(6u64) * 7));
        g.finish();
        assert_eq!(runs, 1);
    }
}
