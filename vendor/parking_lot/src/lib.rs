//! # parking_lot (vendored shim)
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the *subset* of the `parking_lot` 0.12 API that the
//! Pangolin reproduction uses, implemented over `std::sync`. The semantic
//! differences that matter here:
//!
//! * `lock()`, `read()` and `write()` return guards directly (no
//!   poisoning `Result`). A poisoned std lock is transparently recovered
//!   with [`std::sync::PoisonError::into_inner`], matching `parking_lot`'s
//!   "no poisoning" behaviour.
//! * [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming the
//!   guard, exactly like the real crate.
//!
//! Performance characteristics are those of `std::sync`, which is more
//! than adequate for a simulated-NVMM research codebase. If the real
//! `parking_lot` ever becomes available, deleting this directory and
//! switching the workspace dependency to a registry version is a drop-in
//! change.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive. Guards are returned directly; poisoning
/// from a panicking holder is ignored (the data is handed out as-is).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
///
/// The inner `Option` is an implementation detail of [`Condvar::wait`],
/// which must temporarily take ownership of the std guard; it is `Some`
/// at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock; many readers or one writer.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically releases the guarded mutex and blocks until notified;
    /// the lock is re-acquired before returning (spurious wakeups allowed,
    /// as with any condvar).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside Condvar::wait");
        let reacquired = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wakes one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        assert!(t.join().unwrap());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7, "no poisoning semantics");
    }
}
