//! # rand (vendored shim)
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the `rand` 0.8 API the Pangolin reproduction uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! Every consumer in this workspace seeds its generator explicitly (the
//! reproduction is deterministic by design — crash plans, workloads and
//! property tests all take seeds), so no OS entropy source is required or
//! provided. [`rngs::StdRng`] is xoshiro256**, which is more than
//! adequate statistically for workload generation and fault-injection
//! schedules; it makes no cryptographic claims, and neither do the
//! call sites.

/// A source of random 64-bit words; everything else derives from this.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard (uniform) distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`); panics if the
    /// range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, the same resolution rand itself uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// The standard distribution: every representable value equally likely
/// (named after `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value in the range; panics if it is empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: no rejection needed.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform draw in `[0, bound)` by rejection sampling (`bound > 0`), so
/// small ranges carry no modulo bias.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Unlike `rand`'s ChaCha-based `StdRng` this is not cryptographically
    /// secure, but every use in this workspace is seeded simulation, where
    /// only statistical quality and determinism matter.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (`rand::seq`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&w));
            let z = rng.gen_range(0..5usize);
            assert!(z < 5);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
