//! Workspace integration tests: device → libraries → data structures,
//! exercising crash recovery, corruption recovery, and backend equivalence
//! across crate boundaries — all through the typed object API.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use pangolin::typed::PObj;
use pangolin::{impl_ptype, inject, OpenOptions, PMEMoid, PglPool};
use pgl_kv::maps::PersistentMap;
use pgl_kv::store::{PglStore, PmemStore, Store};
use pgl_kv::{btree, BTree, HashMap, RbTree};
use pgl_nvm::{CrashPoint, DeviceConfig, NvmDevice, RandomPlan, PAGE_SIZE};
use pgl_pmemobj::{PmemPool, PoolConfig};

fn kv_opts() -> OpenOptions {
    PglPool::options().size(32 << 20).zone_size(16 << 20)
}

/// A 128-byte typed payload used by the image-persistence test.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
struct Payload {
    bytes: [u8; 128],
}
impl_ptype!(Payload, 128, 7);

/// A 256-byte typed block used by the recovery-chain test.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct Block {
    bytes: [u8; 256],
}
impl_ptype!(Block, 256, 1);

#[test]
fn kv_store_survives_crash_mid_operation() {
    let opts = kv_opts();
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::precise()).unwrap());
    let store = PglStore::new(opts.create(dev.clone()).unwrap());
    let map = BTree::create(&store).unwrap();
    let anchor = map.anchor();
    for k in 0..300u64 {
        map.insert(&store, k, k + 1).unwrap();
    }

    // Crash partway into one further insert (one armed crash per pool
    // lifetime; exercising more crash points needs a reopen each round).
    dev.arm_crash_after(20);
    let _ = panic::catch_unwind(AssertUnwindSafe(|| map.insert(&store, 300, 301)));
    dev.disarm_crash();
    drop(store);
    dev.simulate_crash(&mut RandomPlan::seeded(42)).unwrap();

    let pool = PglPool::options().open(dev).unwrap();
    assert!(pool.verify_parity().unwrap());
    let store = PglStore::new(pool);
    let map = BTree::from_anchor(PMEMoid::new(store.uuid(), anchor.off));
    btree::check_invariants(&map, &store).unwrap();
    for k in 0..300u64 {
        assert_eq!(map.get(&store, k).unwrap(), Some(k + 1), "pre-crash key {k}");
    }
    // Key 300 either committed fully or not at all.
    let n = map.len(&store).unwrap();
    assert!(n == 300 || n == 301, "len {n}");
}

#[test]
fn kv_store_heals_through_mixed_fault_storm() {
    let opts = kv_opts();
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast()).unwrap());
    let store = PglStore::new(opts.create(dev).unwrap());
    let map = RbTree::create(&store).unwrap();
    for k in 0..500u64 {
        map.insert(&store, k, k * 3).unwrap();
    }
    // Alternate media errors and scribbles against live nodes, reading
    // through the map after each.
    let victims: Vec<_> = store
        .pool()
        .live_objects()
        .unwrap()
        .into_iter()
        .filter(|(_, h)| h.size == 80)
        .map(|(o, _)| o)
        .collect();
    for (i, victim) in victims.iter().step_by(37).enumerate() {
        if i % 2 == 0 {
            inject::poison_object_page(store.pool(), *victim).unwrap();
        } else {
            inject::scribble_object(store.pool(), *victim, 8, 16, 0xBE).unwrap();
        }
        store.pool().scrub_now().unwrap();
        for k in (0..500u64).step_by(97) {
            assert_eq!(map.get(&store, k).unwrap(), Some(k * 3), "storm round {i}");
        }
    }
    pgl_kv::rbtree::check_invariants(&map, &store).unwrap();
    assert!(store.pool().verify_parity().unwrap());
    assert!(store.pool().find_corrupt_objects().unwrap().is_empty());
}

#[test]
fn backends_produce_identical_map_contents() {
    // The same operation sequence on the baseline and Pangolin must agree
    // key-for-key (the property that makes the Figure 5 comparison fair).
    let pgl = {
        let opts = kv_opts();
        let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast()).unwrap());
        PglStore::new(opts.create(dev).unwrap())
    };
    let pmem = {
        let mut cfg = PoolConfig::small();
        cfg.size = 32 << 20;
        cfg.zone_size = 16 << 20;
        let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        PmemStore::new(Arc::new(PmemPool::create(dev, cfg).unwrap()))
    };
    let a = HashMap::create(&pgl).unwrap();
    let b = HashMap::create(&pmem).unwrap();
    let keys: Vec<u64> = (0..2000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    for (i, &k) in keys.iter().enumerate() {
        assert_eq!(a.insert(&pgl, k, i as u64).unwrap(), b.insert(&pmem, k, i as u64).unwrap());
        if i % 3 == 0 {
            let evict = keys[i / 2];
            assert_eq!(a.remove(&pgl, evict).unwrap(), b.remove(&pmem, evict).unwrap());
        }
    }
    for &k in &keys {
        assert_eq!(a.get(&pgl, k).unwrap(), b.get(&pmem, k).unwrap(), "key {k}");
    }
    assert_eq!(a.len(&pgl).unwrap(), b.len(&pmem).unwrap());
}

#[test]
fn pool_image_survives_process_restart() {
    // Save the device image to a file and load it back: the pool (and the
    // kernel's bad-page list) persists across "reboots".
    let dir = std::env::temp_dir().join("pgl_e2e_image");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pool.img");

    let opts = kv_opts();
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast()).unwrap());
    let pool = opts.create(dev.clone()).unwrap();
    let h: PObj<Payload> = pool.tx(|tx| tx.alloc_obj(&Payload { bytes: [0xAD; 128] })).unwrap();
    // Leave a poisoned page behind, like a machine with a known-bad DIMM
    // region.
    let far_page = (pool.layout().zone_base(0)
        + pool.layout().zone.rows_base
        + 3 * pool.layout().zone.row_size)
        / PAGE_SIZE as u64;
    dev.poison_page(far_page).unwrap();
    drop(pool);
    pgl_nvm::image::save(&dev, &path).unwrap();

    let dev2 = Arc::new(pgl_nvm::image::load(&path, DeviceConfig::fast()).unwrap());
    assert!(dev2.is_poisoned_page(far_page), "bad-page list restored");
    let pool = PglPool::options().open(dev2).unwrap();
    assert_eq!(pool.get_verified(h).unwrap(), Payload { bytes: [0xAD; 128] });
    // The open-time scrub path can heal the known-bad page on demand.
    pool.scrub_now().unwrap();
    assert!(pool.io().dev().poisoned_pages().is_empty());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn crash_then_corruption_then_recovery_chain() {
    // The full gauntlet: crash mid-transaction, recover, lose a page,
    // recover online, scribble, scrub — the pool stays correct throughout.
    let opts = kv_opts();
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::precise()).unwrap());
    let pool = opts.create(dev.clone()).unwrap();
    let h: PObj<Block> = pool.tx(|tx| tx.alloc_obj(&Block { bytes: [1; 256] })).unwrap();

    dev.arm_crash_after(25);
    let r = panic::catch_unwind(AssertUnwindSafe(|| {
        pool.tx(|tx| tx.set(h, &Block { bytes: [2; 256] }))
    }));
    dev.disarm_crash();
    if let Err(p) = r {
        assert!(p.downcast_ref::<CrashPoint>().is_some());
    }
    drop(pool);
    dev.simulate_crash(&mut RandomPlan::seeded(3)).unwrap();

    let pool = PglPool::options().open(dev.clone()).unwrap();
    let first = pool.get_verified(h).unwrap();
    assert!(first.bytes.iter().all(|&b| b == first.bytes[0]));

    inject::poison_object_page(&pool, h.oid()).unwrap();
    let second = pool.get_verified(h).unwrap();
    assert_eq!(first.bytes, second.bytes, "post-crash parity reconstructs the same bytes");

    inject::scribble_object(&pool, h.oid(), 10, 100, 0xCC).unwrap();
    pool.scrub_now().unwrap();
    let third = pool.get_verified(h).unwrap();
    assert_eq!(first.bytes, third.bytes, "scrub undoes the scribble");
    assert!(pool.verify_parity().unwrap());
}
