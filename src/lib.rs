//! # pangolin-suite — workspace facade
//!
//! Re-exports the crates of the Pangolin reproduction so the examples and
//! integration tests (and downstream users who want everything) can depend
//! on a single package:
//!
//! * [`nvm`] — simulated NVMM device (persistence model, poison, crashes);
//! * [`pmemobj`] — the `libpmemobj`-equivalent substrate and baseline;
//! * [`pangolin`] — the fault-tolerant library itself;
//! * [`kv`] — the six PMDK-toolkit data structures;
//! * [`server`] — the network-facing KV service with pipelined group
//!   commit.
//!
//! See the workspace `README.md` for the architecture overview and
//! `EXPERIMENTS.md` for the paper-reproduction results.

pub use pangolin;
pub use pgl_kv as kv;
pub use pgl_nvm as nvm;
pub use pgl_pmemobj as pmemobj;
pub use pgl_server as server;
