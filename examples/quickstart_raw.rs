//! Quickstart, **raw edition**: the low-level oid/offset interface that the
//! typed API (see `quickstart.rs`) is layered on. Useful when object sizes
//! are dynamic or a tool needs to address the pool without type knowledge;
//! for application code prefer the typed API.
//!
//! Run: `cargo run --example quickstart_raw`

use std::sync::Arc;

use pangolin::{PglConfig, PglPool};
use pgl_nvm::{AllOld, DeviceConfig, NvmDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated NVMM device in Precise mode: unflushed stores are lost at
    // a crash, just like real hardware.
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise())?);
    let pool = PglPool::create(dev.clone(), cfg)?;
    println!("created a {} MiB Pangolin pool (mode {:?})", dev.len() >> 20, pool.mode());

    // Raw transactions address objects by (size, type_num) and byte offset.
    let oid = pool.tx(|tx| {
        let oid = tx.alloc(64, 1)?;
        tx.write(oid, 0, b"hello persistent world")?;
        Ok(oid)
    })?;
    println!("stored object at offset {:#x}", oid.off);

    // Single-object updates: open a micro-buffer, mutate freely, commit.
    let mut obj = pool.open_object(oid)?;
    obj.user_mut()[..5].copy_from_slice(b"HELLO");
    pool.commit_object(obj)?;

    // Power failure: everything committed survives; the pool recovers on
    // open (redo replay + parity recomputation).
    drop(pool);
    dev.simulate_crash(&mut AllOld).unwrap();
    let pool = PglPool::options().open(dev)?;
    let data = pool.read_verified(pangolin::PMEMoid::new(pool.uuid(), oid.off))?;
    println!("after crash + recovery: {:?}", std::str::from_utf8(&data[..22])?);
    assert_eq!(&data[..22], b"HELLO persistent world");
    assert!(pool.verify_parity()?);
    println!("parity invariant verified — done.");
    Ok(())
}
