//! A guided tour of Pangolin's fault model (paper §4.6): what each
//! protection layer catches and how recovery proceeds, printed step by
//! step — written against the typed object API.
//!
//! Run: `cargo run --example fault_injection`

use std::sync::Arc;

use pangolin::typed::PObj;
use pangolin::{impl_ptype, inject, CsumPolicy, PglError, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice, PAGE_SIZE};

/// A 300-byte payload object.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct Blob {
    bytes: [u8; 300],
}
impl_ptype!(Blob, 300, 1);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = PglPool::options().csum_policy(CsumPolicy::Default);
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast())?);
    let pool = opts.create(dev.clone())?;

    let h: PObj<Blob> = pool.tx(|tx| tx.alloc_obj(&Blob { bytes: [0x42; 300] }))?;
    println!("[setup] one 300-byte object, checksummed, parity-protected\n");

    // --- Layer 1: parity vs media errors -------------------------------
    println!("[1] media error: poisoning the object's page (MCE/SIGBUS analogue)");
    let page = inject::poison_object_page(&pool, h.oid())?;
    println!("    page {page} poisoned; a raw read now fails:");
    println!("    io.read -> {:?}", dev.read(h.oid().off, &mut [0u8; 8]).unwrap_err());
    println!("    a verified read triggers freeze + page-column XOR reconstruction:");
    let blob = pool.get_verified(h)?;
    assert!(blob.bytes.iter().all(|&b| b == 0x42));
    println!("    repaired online; content intact; pool never went down\n");

    // --- Layer 2: checksums vs scribbles --------------------------------
    println!("[2] scribble: 64 bytes overwritten by a wild store (invisible to ECC)");
    inject::scribble_object(&pool, h.oid(), 100, 64, 0xFF)?;
    let garbled = pool.get_obj(h)?; // unverified pgl_get
    println!(
        "    an unverified pgl_get returns garbage: {:?} (Table 4's exposure)",
        &garbled.bytes[100..108]
    );
    let blob = pool.get_verified(h)?;
    assert!(blob.bytes.iter().all(|&b| b == 0x42));
    println!(
        "    a verified open: Adler32 mismatch -> parity repair -> {:?}...\n",
        &blob.bytes[..4]
    );

    // --- Layer 3: canaries vs buffer overruns ---------------------------
    println!("[3] overrun: application writes past the object end in DRAM");
    let err = pool.tx(|tx| {
        tx.set(h, &Blob { bytes: [1; 300] })?;
        tx.ubuf_mut(h.oid())?.smash_back_canary();
        Ok(())
    });
    assert!(matches!(err, Err(PglError::CanaryMismatch { .. })));
    println!("    commit found a dead canary -> abort, NVMM untouched: {err:?}\n");

    // --- Layer 4: the guarantee's limit ---------------------------------
    println!("[4] limit: two pages lost in the same page column are unrecoverable");
    let row_pages = pool.layout().zone.row_size / PAGE_SIZE as u64;
    dev.poison_page(page)?;
    dev.poison_page(page + row_pages)?;
    let err = pool.get_verified(h);
    assert!(matches!(err, Err(PglError::Unrecoverable { .. })));
    println!("    {err:?}");
    println!("    (the paper: increase the chunk-row count to shrink this window)");
    dev.repair_page(page + row_pages, &vec![0u8; PAGE_SIZE])?;
    pool.scrub_now()?;

    println!("\nall four layers demonstrated; final parity check: {}", pool.verify_parity()?);
    Ok(())
}
