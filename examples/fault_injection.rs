//! A guided tour of Pangolin's fault model (paper §4.6): what each
//! protection layer catches and how recovery proceeds, printed step by
//! step.
//!
//! Run: `cargo run --example fault_injection`

use std::sync::Arc;

use pangolin::{inject, CsumPolicy, PglConfig, PglError, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice, PAGE_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = PglConfig::small().with_policy(CsumPolicy::Default);
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast())?);
    let pool = PglPool::create(dev.clone(), cfg)?;

    let oid = pool.tx(|tx| {
        let oid = tx.alloc(300, 1)?;
        tx.write(oid, 0, &[0x42; 300])?;
        Ok(oid)
    })?;
    println!("[setup] one 300-byte object, checksummed, parity-protected\n");

    // --- Layer 1: parity vs media errors -------------------------------
    println!("[1] media error: poisoning the object's page (MCE/SIGBUS analogue)");
    let page = inject::poison_object_page(&pool, oid)?;
    println!("    page {page} poisoned; a raw read now fails:");
    let mut buf = [0u8; 8];
    println!("    io.read -> {:?}", dev.read(oid.off, &mut [0u8; 8]).unwrap_err());
    println!("    a verified read triggers freeze + page-column XOR reconstruction:");
    let data = pool.read_verified(oid)?;
    assert!(data.iter().all(|&b| b == 0x42));
    println!("    repaired online; content intact; pool never went down\n");

    // --- Layer 2: checksums vs scribbles --------------------------------
    println!("[2] scribble: 64 bytes overwritten by a wild store (invisible to ECC)");
    inject::scribble_object(&pool, oid, 100, 64, 0xFF)?;
    pool.read(pangolin::PMEMoid::new(pool.uuid(), oid.off), 100, &mut buf)?;
    println!("    an unverified pgl_get returns garbage: {buf:?} (Table 4's exposure)");
    let data = pool.read_verified(oid)?;
    assert!(data.iter().all(|&b| b == 0x42));
    println!("    a verified open: Adler32 mismatch -> parity repair -> {:?}...\n", &data[..4]);

    // --- Layer 3: canaries vs buffer overruns ---------------------------
    println!("[3] overrun: application writes past the object end in DRAM");
    let err = pool.tx(|tx| {
        tx.write(oid, 0, &[1; 300])?;
        tx.ubuf_mut(oid)?.smash_back_canary();
        Ok(())
    });
    assert!(matches!(err, Err(PglError::CanaryMismatch { .. })));
    println!("    commit found a dead canary -> abort, NVMM untouched: {err:?}\n");

    // --- Layer 4: the guarantee's limit ---------------------------------
    println!("[4] limit: two pages lost in the same page column are unrecoverable");
    let row_pages = pool.layout().zone.row_size / PAGE_SIZE as u64;
    dev.poison_page(page)?;
    dev.poison_page(page + row_pages)?;
    let err = pool.read_verified(oid);
    assert!(matches!(err, Err(PglError::Unrecoverable(_))));
    println!("    {err:?}");
    println!("    (the paper: increase the chunk-row count to shrink this window)");
    dev.repair_page(page + row_pages, &vec![0u8; PAGE_SIZE])?;
    pool.scrub_now()?;

    println!("\nall four layers demonstrated; final parity check: {}", pool.verify_parity()?);
    Ok(())
}
