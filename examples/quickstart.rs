//! Quickstart: create a Pangolin pool, store a typed object, survive a
//! crash. This is the typed-API tour — see `quickstart_raw.rs` for the
//! same program written against the low-level oid/offset interface.
//!
//! Run: `cargo run --example quickstart`

use std::sync::Arc;

use pangolin::typed::PObj;
use pangolin::{field, impl_ptype, PglPool};
use pgl_nvm::{AllOld, DeviceConfig, NvmDevice};

/// The application's persistent root: a greeting plus an update counter.
#[derive(Clone, Copy)]
#[repr(C)]
struct Greeting {
    updates: u64,
    len: u64,
    text: [u8; 48],
}
impl_ptype!(Greeting, 64, 1);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated NVMM device in Precise mode: unflushed stores are lost at
    // a crash, just like real hardware. The options builder is the one
    // entry point for both creating and opening pools.
    let opts = PglPool::options();
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::precise())?);
    let pool = opts.create(dev.clone())?;
    println!("created a {} MiB Pangolin pool (mode {:?})", dev.len() >> 20, pool.mode());

    // The typed root anchors the object graph; transactions are
    // all-or-nothing updates of any size (paper Listing 2's replacement
    // for the 8-byte atomic-write model).
    let root: PObj<Greeting> = pool.typed_root()?;
    pool.tx(|tx| {
        tx.update(root, |g| {
            let msg = b"hello persistent world";
            g.text[..msg.len()].copy_from_slice(msg);
            g.len = msg.len() as u64;
            g.updates += 1;
        })
    })?;
    println!("stored a greeting at offset {:#x}", root.oid().off);

    // Single-object updates: snapshot into a micro-buffer, mutate, commit.
    pool.update_obj(root, |g| {
        g.text[..5].copy_from_slice(b"HELLO");
        g.updates += 1;
    })?;

    // Partial update: bumping the counter logs 8 bytes, not the whole
    // struct, thanks to the typed field offset.
    pool.tx(|tx| tx.update_at(root, field!(Greeting, updates: u64), |u| *u += 1))?;

    // Power failure: everything committed survives; the pool recovers on
    // open (redo replay + parity recomputation).
    drop(pool);
    dev.simulate_crash(&mut AllOld).unwrap();
    let pool = PglPool::options().open(dev)?;
    let root: PObj<Greeting> = pool.typed_root()?;
    let g = pool.get_verified(root)?;
    println!(
        "after crash + recovery: {:?} ({} updates)",
        std::str::from_utf8(&g.text[..g.len as usize])?,
        g.updates
    );
    assert_eq!(&g.text[..g.len as usize], b"HELLO persistent world");
    assert_eq!(g.updates, 3);
    assert!(pool.verify_parity()?);
    println!("parity invariant verified — done.");
    Ok(())
}
