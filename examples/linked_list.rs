//! The paper's Listing 1 ported to Pangolin's typed API: a persistent
//! linked list whose nodes carry typed `PObj<Node>` links, with both
//! single-object updates (Listing 2 style) and multi-object transactions,
//! plus a demonstration that a mid-transaction crash leaves the list
//! consistent.
//!
//! Run: `cargo run --example linked_list`

use std::sync::Arc;

use pangolin::typed::PObj;
use pangolin::{field, impl_ptype, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice, RandomPlan};

/// A list node: `{ val, next }` — the paper's Figure 1 layout, with the
/// `next` pointer typed instead of a raw `PMEMoid`.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct Node {
    val: u64,
    next: PObj<Node>,
}
impl_ptype!(Node, 24, 1);

/// The typed root: just the head pointer.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct Head {
    head: PObj<Node>,
}
impl_ptype!(Head, 16, 2);

fn push_front(pool: &PglPool, root: PObj<Head>, val: u64) -> pangolin::Result<PObj<Node>> {
    // Listing 1 lines 7-13: allocate and link a new node, atomically.
    pool.tx(|tx| {
        let head = tx.read_at(root, field!(Head, head: PObj<Node>))?;
        let node = tx.alloc_obj(&Node { val, next: head })?;
        tx.write_at(root, field!(Head, head: PObj<Node>), &node)?;
        Ok(node)
    })
}

fn collect(pool: &PglPool, root: PObj<Head>) -> pangolin::Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut cur = pool.read_at(root, field!(Head, head: PObj<Node>))?;
    while !cur.is_null() {
        let node = pool.get_obj(cur)?;
        out.push(node.val);
        cur = node.next;
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = PglPool::options();
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::precise())?);
    let pool = opts.create(dev.clone())?;
    let root: PObj<Head> = pool.typed_root()?;

    for v in [3, 2, 1] {
        push_front(&pool, root, v)?;
    }
    println!("list: {:?}", collect(&pool, root)?);

    // Listing 2: modify a node's value through a micro-buffer.
    let first = pool.read_at(root, field!(Head, head: PObj<Node>))?;
    pool.update_obj(first, |n| n.val = 100)?;
    println!("after single-object update: {:?}", collect(&pool, root)?);

    // Crash in the middle of a push: the link is all-or-nothing.
    // (Silence the intentional panic's default backtrace.)
    std::panic::set_hook(Box::new(|_| {}));
    dev.arm_crash_after(10);
    let crashed =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| push_front(&pool, root, 999)))
            .is_err();
    dev.disarm_crash();
    let _ = std::panic::take_hook();
    drop(pool);
    dev.simulate_crash(&mut RandomPlan::seeded(7)).unwrap();
    let pool = PglPool::options().open(dev)?;
    let root: PObj<Head> = pool.typed_root()?;
    let list = collect(&pool, root)?;
    println!("after crash (mid-push interrupted: {crashed}): {list:?}");
    assert!(list == vec![100, 2, 3] || list == vec![999, 100, 2, 3]);
    assert!(pool.verify_parity()?);
    println!("list is consistent and parity holds.");
    Ok(())
}
