//! The paper's Listing 1 ported to Pangolin: a persistent linked list with
//! both single-object updates (Listing 2 style) and multi-object
//! transactions, plus a demonstration that a mid-transaction crash leaves
//! the list consistent.
//!
//! Run: `cargo run --example linked_list`

use std::sync::Arc;

use pangolin::{CsumPolicy, PglConfig, PglPool, PMEMoid};
use pgl_nvm::pod::bytes_of;
use pgl_nvm::{impl_pod, DeviceConfig, NvmDevice, RandomPlan};

/// A list node: `{ val, next }` — the paper's Figure 1 layout.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct Node {
    val: u64,
    next: PMEMoid,
}
impl_pod!(Node, 24);

fn push_front(pool: &PglPool, head_holder: PMEMoid, val: u64) -> pangolin::Result<PMEMoid> {
    // Listing 1 lines 7-13: allocate and link a new node, atomically.
    pool.tx(|tx| {
        let head: PMEMoid = tx.read_pod(head_holder, 0)?;
        let node = tx.alloc(24, 1)?;
        tx.write(node, 0, bytes_of(&Node { val, next: head }))?;
        tx.write_pod(head_holder, 0, &node)?;
        Ok(node)
    })
}

fn collect(pool: &PglPool, head_holder: PMEMoid) -> pangolin::Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut cur: PMEMoid = pool.read_pod(head_holder, 0)?;
    while !cur.is_null() {
        let node: Node = pool.read_pod(PMEMoid::new(pool.uuid(), cur.off), 0)?;
        out.push(node.val);
        cur = node.next;
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise())?);
    let pool = PglPool::create(dev.clone(), cfg)?;
    let head_holder = pool.root(16, 0)?;

    for v in [3, 2, 1] {
        push_front(&pool, head_holder, v)?;
    }
    println!("list: {:?}", collect(&pool, head_holder)?);

    // Listing 2: modify a node's value through a micro-buffer.
    let first: PMEMoid = pool.read_pod(head_holder, 0)?;
    let first = PMEMoid::new(pool.uuid(), first.off);
    let mut obj = pool.open_object(first)?;
    obj.write_pod(0, &100u64); // n->val = 100
    pool.commit_object(obj)?;
    println!("after single-object update: {:?}", collect(&pool, head_holder)?);

    // Crash in the middle of a push: the link is all-or-nothing.
    // (Silence the intentional panic's default backtrace.)
    std::panic::set_hook(Box::new(|_| {}));
    dev.arm_crash_after(10);
    let crashed =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            push_front(&pool, head_holder, 999)
        }))
        .is_err();
    dev.disarm_crash();
    let _ = std::panic::take_hook();
    drop(pool);
    dev.simulate_crash(&mut RandomPlan::seeded(7));
    let pool = PglPool::open(dev, CsumPolicy::Default, false)?;
    let list = collect(&pool, head_holder)?;
    println!("after crash (mid-push interrupted: {crashed}): {list:?}");
    assert!(list == vec![100, 2, 3] || list == vec![999, 100, 2, 3]);
    assert!(pool.verify_parity()?);
    println!("list is consistent and parity holds.");
    Ok(())
}
