//! A key-value store that heals itself: the PMDK-toolkit hashmap over
//! Pangolin, with live media errors and scribbles injected while serving
//! reads and writes.
//!
//! Run: `cargo run --example kv_store`

use std::sync::Arc;

use pangolin::{inject, PglPool};
use pgl_kv::maps::PersistentMap;
use pgl_kv::store::PglStore;
use pgl_kv::HashMap;
use pgl_nvm::{DeviceConfig, NvmDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = PglPool::options().size(32 << 20).zone_size(16 << 20);
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast())?);
    let store = PglStore::new(opts.create(dev)?);

    let map = HashMap::create(&store)?;
    println!("inserting 5000 keys (several table rehashes, log overflow included)...");
    for k in 0..5000u64 {
        map.insert(&store, k, k * k)?;
    }
    println!("len = {}", map.len(&store)?);

    // A media error strikes a bucket entry's page: the next verified access
    // freezes the pool, reconstructs the page from parity, and carries on.
    let victims = store.pool().live_objects()?;
    let victim = victims[victims.len() / 2].0;
    let page = inject::poison_object_page(store.pool(), victim)?;
    println!("injected media error on page {page}");
    for k in 0..5000u64 {
        assert_eq!(map.get(&store, k)?, Some(k * k), "lookup {k} after poison");
    }
    println!(
        "all lookups correct; {} page(s) repaired online",
        store.pool().counters().page_recoveries.load(std::sync::atomic::Ordering::Relaxed)
    );

    // A wild store scribbles an entry: the checksum catches it at the next
    // open and parity restores the bytes.
    inject::scribble_object(store.pool(), victim, 0, 16, 0xEE)?;
    println!("injected a 16-byte scribble");
    let report = store.pool().scrub_now()?;
    println!(
        "scrub verified {} objects and repaired {}",
        report.objects_verified, report.objects_repaired
    );
    for k in 0..5000u64 {
        assert_eq!(map.get(&store, k)?, Some(k * k), "lookup {k} after scrub");
    }

    // Remove everything; storage is reclaimed.
    for k in 0..5000u64 {
        assert_eq!(map.remove(&store, k)?, Some(k * k));
    }
    assert_eq!(map.len(&store)?, 0);
    assert!(store.pool().verify_parity()?);
    println!("store drained; parity verified — done.");
    Ok(())
}
