//! Crash-point sweeps for all six persistent data structures.
//!
//! Each structure runs the same scripted insert / update / remove sequence
//! under the `pangolin::crashcheck` oracle harness: the sweep driver
//! crashes the structure at device-op boundaries inside each operation,
//! applies the crash-plan matrix (all-old, all-new, seeded random line
//! outcomes, exhaustive enumeration where the outcome space is small),
//! recovers, scrubs, and checks the recovered map key-by-key against a
//! replayed `BTreeMap` model plus the structure's own invariant walker.
//!
//! The smoke run samples boundaries to stay inside the CI budget; the
//! nightly deep sweep (`PGL_DEEP_SWEEP=1`) widens the budget 8×, adds
//! seeds, and raises the exhaustive-combination cap.

use pangolin::crashcheck::{self, SweepConfig};
use pgl_kv::crashwork::{BatchCrashWorkload, MapCrashWorkload};
use pgl_kv::{btree, ctree, hashmap, rbtree, rtree, skiplist};
use pgl_kv::{BTree, CTree, HashMap, RTree, RbTree, SkipList};

/// Tree/map transactions touch node chains plus allocator and parity
/// metadata, so boundary counts run into the hundreds per operation;
/// budget the smoke sweep to ~12 evenly spaced boundaries per structure
/// (the deep config stretches this 8× and sweeps far denser).
fn config() -> SweepConfig {
    SweepConfig::from_env().budget(12)
}

#[test]
fn ctree_survives_crash_sweep() {
    let w = MapCrashWorkload::<CTree>::new(ctree::check_invariants);
    crashcheck::sweep_with(&w, &config());
}

#[test]
fn rbtree_survives_crash_sweep() {
    let w = MapCrashWorkload::<RbTree>::new(rbtree::check_invariants);
    crashcheck::sweep_with(&w, &config());
}

#[test]
fn btree_survives_crash_sweep() {
    let w = MapCrashWorkload::<BTree>::new(btree::check_invariants);
    crashcheck::sweep_with(&w, &config());
}

#[test]
fn skiplist_survives_crash_sweep() {
    let w = MapCrashWorkload::<SkipList>::new(skiplist::check_invariants);
    crashcheck::sweep_with(&w, &config());
}

#[test]
fn rtree_survives_crash_sweep() {
    let w = MapCrashWorkload::<RTree>::new(rtree::check_invariants);
    crashcheck::sweep_with(&w, &config());
}

#[test]
fn hashmap_survives_crash_sweep() {
    let w = MapCrashWorkload::<HashMap>::new(hashmap::check_invariants);
    crashcheck::sweep_with(&w, &config());
}

/// The service's group-commit path: each commit point covers a whole
/// batch of operations in one batched transaction, so every crash must
/// recover to a prefix of *whole batches* — never a torn batch.
#[test]
fn group_commit_batches_recover_to_whole_batch_prefixes() {
    let w = BatchCrashWorkload::new();
    crashcheck::sweep_with(&w, &config());
}
