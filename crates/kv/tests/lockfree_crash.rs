//! Crash-point sweeps for the lock-free structures (`pgl_kv::lockfree`).
//!
//! Each workload drives a scripted op sequence with a commit point after
//! **every** atomic transition — the prepare transaction and the
//! linearizing detectable CAS are separate commit points — so the oracle
//! harness crashes at every device-op boundary in between, including the
//! window between the operation descriptor's persist fence and the CAS
//! publication. Recovery must then satisfy the detectability contract:
//! the in-flight operation either never happened or completed exactly
//! once, decidable from [`pgl_kv::lockfree::op_completed`] for the tag
//! that was in flight. `verify` replays the script against that rule and
//! checks the recovered structure's content word-for-word; the harness
//! itself has already checked parity, checksums, and byte-level
//! all-or-nothing state against the recorded model.

use pangolin::crashcheck::{self, CrashWorkload, SweepConfig, SweepCtx};
use pangolin::{PglConfig, PglError, PglPool, Result};
use pgl_kv::lockfree::{op_completed, LfHash, LfQueue, LfStack};
use pgl_kv::store::KvResult;
use pgl_pmemobj::PMEMoid;

/// Root object type for the sweep pools (holds the structure's anchor
/// offset so replays can re-attach).
const TYPE_ROOT: u32 = 90;

fn kv<T>(r: KvResult<T>) -> Result<T> {
    r.map_err(|e| PglError::unrecoverable(format!("kv: {e}")))
}

fn config() -> SweepConfig {
    SweepConfig::from_env().budget(12)
}

/// Stores `anchor` in the pool root so crash replays can find it.
fn publish_anchor(pool: &PglPool, anchor: PMEMoid) -> Result<()> {
    let root = pool.root(8, TYPE_ROOT)?;
    pool.tx(|tx| tx.write(root, 0, &anchor.off.to_le_bytes()))
}

fn read_anchor(pool: &PglPool) -> Result<PMEMoid> {
    let root = pool.root(8, TYPE_ROOT)?;
    let off = pool.read_pod::<u64>(root, 0)?;
    Ok(PMEMoid::new(pool.uuid(), off))
}

// ---------------------------------------------------------------------
// Treiber stack
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
enum StackOp {
    Push(u64),
    Pop,
}

impl StackOp {
    /// Commit points the op contributes (prepare tx + linearizing CAS for
    /// a push; just the CAS for a pop).
    fn cps(&self) -> usize {
        match self {
            StackOp::Push(_) => 2,
            StackOp::Pop => 1,
        }
    }

    fn apply(&self, model: &mut Vec<u64>) {
        match self {
            StackOp::Push(v) => model.insert(0, *v),
            StackOp::Pop => {
                if !model.is_empty() {
                    model.remove(0);
                }
            }
        }
    }
}

fn stack_script() -> Vec<StackOp> {
    use StackOp::*;
    vec![Push(11), Push(22), Pop, Push(33), Pop, Pop, Pop]
}

struct StackWorkload;

impl CrashWorkload for StackWorkload {
    fn name(&self) -> &str {
        "lf-stack"
    }

    fn config(&self) -> PglConfig {
        PglConfig::small()
    }

    fn setup(&self, pool: &PglPool) -> Result<()> {
        let s = kv(LfStack::create(pool))?;
        publish_anchor(pool, s.anchor())
    }

    fn run(&self, pool: &PglPool, ctx: &mut SweepCtx) -> Result<()> {
        let s = LfStack::attach(read_anchor(pool)?);
        for (i, op) in stack_script().into_iter().enumerate() {
            let tag = (i + 1) as u64;
            match op {
                StackOp::Push(v) => {
                    let node = kv(s.push_prepare(pool, v))?;
                    ctx.commit_point(pool)?;
                    kv(s.push_commit(pool, node, tag))?;
                    ctx.commit_point(pool)?;
                }
                StackOp::Pop => {
                    kv(s.try_pop(pool, tag))?;
                    ctx.commit_point(pool)?;
                }
            }
        }
        Ok(())
    }

    fn verify(&self, pool: &PglPool, committed: usize) -> Result<()> {
        let s = LfStack::attach(read_anchor(pool)?);
        let mut model: Vec<u64> = Vec::new();
        let mut cp = 0usize;
        for (i, op) in stack_script().into_iter().enumerate() {
            let tag = (i + 1) as u64;
            if cp + op.cps() <= committed {
                op.apply(&mut model);
                cp += op.cps();
                continue;
            }
            // The boundary op: its linearizing CAS is the last commit
            // point, so it applied iff recovery proves the tag completed.
            if op_completed(pool, tag) {
                op.apply(&mut model);
            }
            break;
        }
        let got = kv(s.items(pool))?;
        if got != model {
            return Err(PglError::unrecoverable(format!(
                "lf-stack after {committed} commits: got {got:?}, expected {model:?}"
            )));
        }
        Ok(())
    }
}

#[test]
fn lf_stack_survives_crash_sweep() {
    crashcheck::sweep_with(&StackWorkload, &config());
}

// ---------------------------------------------------------------------
// Michael–Scott queue
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
enum QueueOp {
    Enq(u64),
    Deq,
}

impl QueueOp {
    fn cps(&self) -> usize {
        match self {
            QueueOp::Enq(_) => 2,
            QueueOp::Deq => 1,
        }
    }

    fn apply(&self, model: &mut Vec<u64>) {
        match self {
            QueueOp::Enq(v) => model.push(*v),
            QueueOp::Deq => {
                if !model.is_empty() {
                    model.remove(0);
                }
            }
        }
    }
}

fn queue_script() -> Vec<QueueOp> {
    use QueueOp::*;
    vec![Enq(1), Enq(2), Deq, Enq(3), Deq, Deq, Deq]
}

struct QueueWorkload;

impl CrashWorkload for QueueWorkload {
    fn name(&self) -> &str {
        "lf-queue"
    }

    fn config(&self) -> PglConfig {
        PglConfig::small()
    }

    fn setup(&self, pool: &PglPool) -> Result<()> {
        let q = kv(LfQueue::create(pool))?;
        publish_anchor(pool, q.anchor())
    }

    fn run(&self, pool: &PglPool, ctx: &mut SweepCtx) -> Result<()> {
        let q = LfQueue::attach(read_anchor(pool)?);
        for (i, op) in queue_script().into_iter().enumerate() {
            let tag = (i + 1) as u64;
            match op {
                QueueOp::Enq(v) => {
                    let node = kv(q.enqueue_prepare(pool, v))?;
                    ctx.commit_point(pool)?;
                    kv(q.enqueue_commit(pool, node, tag))?;
                    ctx.commit_point(pool)?;
                }
                QueueOp::Deq => {
                    kv(q.try_dequeue(pool, tag))?;
                    ctx.commit_point(pool)?;
                }
            }
        }
        Ok(())
    }

    fn verify(&self, pool: &PglPool, committed: usize) -> Result<()> {
        let q = LfQueue::attach(read_anchor(pool)?);
        let mut model: Vec<u64> = Vec::new();
        let mut cp = 0usize;
        for (i, op) in queue_script().into_iter().enumerate() {
            let tag = (i + 1) as u64;
            if cp + op.cps() <= committed {
                op.apply(&mut model);
                cp += op.cps();
                continue;
            }
            if op_completed(pool, tag) {
                op.apply(&mut model);
            }
            break;
        }
        let got = kv(q.items(pool))?;
        if got != model {
            return Err(PglError::unrecoverable(format!(
                "lf-queue after {committed} commits: got {got:?}, expected {model:?}"
            )));
        }
        Ok(())
    }
}

#[test]
fn lf_queue_survives_crash_sweep() {
    crashcheck::sweep_with(&QueueWorkload, &config());
}

// ---------------------------------------------------------------------
// Resizable hash
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
enum HashOp {
    Ins(u64, u64),
    Del(u64),
}

impl HashOp {
    fn cps(&self) -> usize {
        match self {
            HashOp::Ins(..) => 2,
            HashOp::Del(_) => 1,
        }
    }

    fn apply(&self, model: &mut std::collections::BTreeMap<u64, u64>) {
        match self {
            HashOp::Ins(k, v) => {
                model.insert(*k, *v);
            }
            HashOp::Del(k) => {
                model.remove(k);
            }
        }
    }
}

/// Data ops first; the trailing stepped resize (driven in `run`) is
/// content-neutral, so `verify` only needs the data-op prefix. `Del(99)`
/// targets an absent key — a probe with no linearizing CAS.
fn hash_script() -> Vec<HashOp> {
    use HashOp::*;
    vec![Ins(5, 50), Ins(9, 90), Ins(5, 51), Del(9), Ins(13, 130), Del(99)]
}

/// Sweep capacity: large enough that the scripted inserts never trigger
/// an implicit growth (which would fold many transitions into one commit
/// point); the explicit stepped resize at the end covers migration.
const HASH_CAP: u64 = 16;

struct HashWorkload;

impl CrashWorkload for HashWorkload {
    fn name(&self) -> &str {
        "lf-hash"
    }

    fn config(&self) -> PglConfig {
        PglConfig::small()
    }

    fn setup(&self, pool: &PglPool) -> Result<()> {
        let h = kv(LfHash::create(pool, HASH_CAP))?;
        publish_anchor(pool, h.anchor())
    }

    fn run(&self, pool: &PglPool, ctx: &mut SweepCtx) -> Result<()> {
        let h = kv(LfHash::attach(pool, read_anchor(pool)?))?;
        for (i, op) in hash_script().into_iter().enumerate() {
            let tag = (i + 1) as u64;
            match op {
                HashOp::Ins(k, v) => {
                    let node = kv(h.insert_prepare(pool, k, v))?;
                    ctx.commit_point(pool)?;
                    kv(h.insert_commit(pool, node, tag))?;
                    ctx.commit_point(pool)?;
                }
                HashOp::Del(k) => {
                    kv(h.remove(pool, k, tag))?;
                    ctx.commit_point(pool)?;
                }
            }
        }
        // Stepped resize: every transition of the migration state machine
        // (allocate, publish, per-slot copy/seal, table swing, retire) is
        // its own commit point, so crashes land between any two.
        h.resize_begin(HASH_CAP * 2);
        let mut tag = 1000u64;
        while kv(h.resize_step(pool, tag))? {
            ctx.commit_point(pool)?;
            tag += 1;
        }
        Ok(())
    }

    fn verify(&self, pool: &PglPool, committed: usize) -> Result<()> {
        let h = kv(LfHash::attach(pool, read_anchor(pool)?))?;
        let mut model = std::collections::BTreeMap::new();
        let mut cp = 0usize;
        for (i, op) in hash_script().into_iter().enumerate() {
            let tag = (i + 1) as u64;
            if cp + op.cps() <= committed {
                op.apply(&mut model);
                cp += op.cps();
                continue;
            }
            if op_completed(pool, tag) {
                op.apply(&mut model);
            }
            break;
        }
        // Any commit points past the data ops are resize transitions,
        // which never change the mapping — the model stands as-is, and
        // lookups must work mid-migration.
        let got = kv(h.items(pool))?;
        let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        if got != want {
            return Err(PglError::unrecoverable(format!(
                "lf-hash after {committed} commits: got {got:?}, expected {want:?}"
            )));
        }
        for k in [5u64, 9, 13, 99] {
            let got = kv(h.get(pool, k))?;
            if got != model.get(&k).copied() {
                return Err(PglError::unrecoverable(format!(
                    "lf-hash get({k}) after {committed} commits: got {got:?}, expected {:?}",
                    model.get(&k)
                )));
            }
        }
        Ok(())
    }
}

#[test]
fn lf_hash_survives_crash_sweep() {
    crashcheck::sweep_with(&HashWorkload, &config());
}
