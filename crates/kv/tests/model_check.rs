//! Model checking: every data structure, on both backends, against
//! `std::collections::BTreeMap`, under deterministic and property-based
//! operation sequences, with structural invariants verified throughout.

use std::collections::BTreeMap;
use std::sync::Arc;

use pangolin::{PglConfig, PglPool};
use pgl_kv::maps::PersistentMap;
use pgl_kv::store::{PglStore, PmemStore, Store};
use pgl_kv::{btree, ctree, hashmap, rbtree, rtree, skiplist};
use pgl_kv::{BTree, CTree, HashMap, RTree, RbTree, SkipList};
use pgl_nvm::{DeviceConfig, NvmDevice};
use pgl_pmemobj::{PmemPool, PoolConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pmem_store() -> PmemStore {
    let mut cfg = PoolConfig::small();
    cfg.size = 32 << 20;
    cfg.zone_size = 16 << 20;
    let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
    PmemStore::new(Arc::new(PmemPool::create(dev, cfg).unwrap()))
}

fn pgl_store() -> PglStore {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    PglStore::new(PglPool::create(dev, cfg).unwrap())
}

/// One operation in a scripted run.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn run_ops<M: PersistentMap, S: Store>(
    store: &S,
    ops: &[Op],
    check: impl Fn(&M, &S) -> pgl_kv::KvResult<u64>,
    check_every: usize,
) {
    let map = M::create(store).unwrap();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k, v) => {
                let got = map.insert(store, k, v).unwrap();
                let want = model.insert(k, v);
                assert_eq!(got, want, "{} insert({k}) at step {i}", M::NAME);
            }
            Op::Remove(k) => {
                let got = map.remove(store, k).unwrap();
                let want = model.remove(&k);
                assert_eq!(got, want, "{} remove({k}) at step {i}", M::NAME);
            }
            Op::Get(k) => {
                let got = map.get(store, k).unwrap();
                let want = model.get(&k).copied();
                assert_eq!(got, want, "{} get({k}) at step {i}", M::NAME);
            }
        }
        if i % check_every == 0 {
            let n = check(&map, store).unwrap();
            assert_eq!(n, model.len() as u64, "{} invariant count at step {i}", M::NAME);
        }
    }
    // Final full validation: every model key readable, count exact.
    for (&k, &v) in &model {
        assert_eq!(map.get(store, k).unwrap(), Some(v), "{} final get({k})", M::NAME);
    }
    assert_eq!(map.len(store).unwrap(), model.len() as u64);
    let n = check(&map, store).unwrap();
    assert_eq!(n, model.len() as u64);
}

/// A deterministic torture script: clustered keys (prefix-sharing for the
/// radix/crit-bit trees), duplicates, removals of absent keys, re-inserts.
fn torture_script(n: usize, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    let mut known: Vec<u64> = Vec::new();
    for _ in 0..n {
        let k = match rng.gen_range(0..4u8) {
            // Clustered small keys: shared radix prefixes, adjacent bits.
            0 => rng.gen_range(0..64u64),
            // Clustered high keys.
            1 => 0xFFFF_FF00_0000_0000 | rng.gen_range(0..256u64),
            // Re-use a known key.
            2 if !known.is_empty() => known[rng.gen_range(0..known.len())],
            // Uniform random.
            _ => rng.gen(),
        };
        let op = match rng.gen_range(0..10u8) {
            0..=4 => {
                known.push(k);
                Op::Insert(k, rng.gen())
            }
            5..=7 => Op::Remove(k),
            _ => Op::Get(k),
        };
        ops.push(op);
    }
    ops
}

macro_rules! model_tests {
    ($name:ident, $map:ty, $checker:path) => {
        mod $name {
            use super::*;

            #[test]
            fn torture_on_baseline() {
                let store = pmem_store();
                run_ops::<$map, _>(&store, &torture_script(1500, 42), $checker, 97);
            }

            #[test]
            fn torture_on_pangolin() {
                let store = pgl_store();
                run_ops::<$map, _>(&store, &torture_script(1500, 43), $checker, 97);
                assert!(store.pool().verify_parity().unwrap());
                assert!(store.pool().find_corrupt_objects().unwrap().is_empty());
            }

            #[test]
            fn sequential_then_drain() {
                let store = pgl_store();
                let mut ops: Vec<Op> =
                    (0..400).map(|i| Op::Insert(i as u64, i as u64 * 10)).collect();
                ops.extend((0..400).map(|i| Op::Remove(i as u64)));
                run_ops::<$map, _>(&store, &ops, $checker, 53);
                assert!(store.pool().verify_parity().unwrap());
            }

            #[test]
            fn reverse_and_interleaved() {
                let store = pmem_store();
                let mut ops: Vec<Op> =
                    (0..300).rev().map(|i| Op::Insert(i as u64, i as u64)).collect();
                ops.extend((0..300).map(|i| {
                    if i % 2 == 0 {
                        Op::Remove(i as u64)
                    } else {
                        Op::Get(i as u64)
                    }
                }));
                run_ops::<$map, _>(&store, &ops, $checker, 41);
            }
        }
    };
}

model_tests!(ctree_model, CTree, ctree::check_invariants);
model_tests!(rbtree_model, RbTree, rbtree::check_invariants);
model_tests!(btree_model, BTree, btree::check_invariants);
model_tests!(skiplist_model, SkipList, skiplist::check_invariants);
model_tests!(rtree_model, RTree, rtree::check_invariants);
model_tests!(hashmap_model, HashMap, hashmap::check_invariants);

#[test]
fn hashmap_rehash_via_overflow_is_correct() {
    // Push the hashmap through several rehashes (64 -> 2048 buckets); the
    // later ones exceed the lane and exercise log overflow end to end.
    let store = pgl_store();
    let map = HashMap::create(&store).unwrap();
    let n = 1500u64;
    for k in 0..n {
        map.insert(&store, k * 7919, k).unwrap();
    }
    assert_eq!(map.len(&store).unwrap(), n);
    for k in 0..n {
        assert_eq!(map.get(&store, k * 7919).unwrap(), Some(k));
    }
    hashmap::check_invariants(&map, &store).unwrap();
    assert!(store.pool().verify_parity().unwrap());
    assert!(store.pool().find_corrupt_objects().unwrap().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_small_key_sequences_match_model(
        seed in any::<u64>(),
        n in 200usize..600,
    ) {
        // Small key space maximizes collisions/structure churn.
        let mut rng = StdRng::seed_from_u64(seed);
        let ops: Vec<Op> = (0..n)
            .map(|_| {
                let k = rng.gen_range(0..48u64);
                match rng.gen_range(0..3u8) {
                    0 => Op::Insert(k, rng.gen()),
                    1 => Op::Remove(k),
                    _ => Op::Get(k),
                }
            })
            .collect();
        let store = pgl_store();
        run_ops::<CTree, _>(&store, &ops, ctree::check_invariants, 29);
        run_ops::<RbTree, _>(&store, &ops, rbtree::check_invariants, 29);
        run_ops::<BTree, _>(&store, &ops, btree::check_invariants, 29);
        run_ops::<SkipList, _>(&store, &ops, skiplist::check_invariants, 29);
        run_ops::<RTree, _>(&store, &ops, rtree::check_invariants, 29);
        run_ops::<HashMap, _>(&store, &ops, hashmap::check_invariants, 29);
        prop_assert!(store.pool().verify_parity().unwrap());
    }
}

/// The typed pool root of the reopen test: where the map anchor is kept.
#[derive(Clone, Copy, Default)]
#[repr(C)]
struct MapDirectory {
    btree_anchor: pgl_pmemobj::PMEMoid,
}
pangolin::impl_ptype!(MapDirectory, 16, 0);

#[test]
fn maps_survive_pool_reopen() {
    let opts = PglPool::options().size(32 << 20).zone_size(16 << 20);
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast()).unwrap());
    let store = PglStore::new(opts.create(dev.clone()).unwrap());
    let map = BTree::create(&store).unwrap();
    for k in 0..500u64 {
        map.insert(&store, k, k + 1).unwrap();
    }
    let anchor = map.anchor();
    let root = store.typed_root::<MapDirectory>().unwrap();
    store.txn(&mut |tx| tx.set_obj(root, &MapDirectory { btree_anchor: anchor })).unwrap();
    drop(store);

    let pool = PglPool::options().open(dev).unwrap();
    let store = PglStore::new(pool);
    let root = store.typed_root::<MapDirectory>().unwrap();
    let dir: MapDirectory = store.get_obj_direct(root).unwrap();
    let anchor = pgl_pmemobj::PMEMoid::new(store.uuid(), dir.btree_anchor.off);
    let map = BTree::from_anchor(anchor);
    for k in 0..500u64 {
        assert_eq!(map.get(&store, k).unwrap(), Some(k + 1));
    }
    btree::check_invariants(&map, &store).unwrap();
}
