//! Lock-free persistent data structures over the detectable-CAS subsystem.
//!
//! The six Table 3 structures are transactional: every mutation runs under
//! a lane + redo log + parity span guard, so two writers to the same hot
//! node serialize. The structures here take the other route the paper's
//! design space allows: **persistent lock-free algorithms** whose
//! linearization points are single 8-byte CASes issued through
//! [`PglPool::atomic_update`] — Pangolin's detectable CAS (`ploc`), which
//! patches the object checksum and parity column at word granularity and
//! persists a per-lane operation descriptor so a crashed operation is
//! decidable after recovery.
//!
//! Three structures, each with a locked counterpart for the Figure 9
//! comparison:
//!
//! * [`LfStack`] — a Treiber stack (vs [`LockedStack`]).
//! * [`LfQueue`] — a Michael–Scott queue with a *volatile* tail hint
//!   (vs [`LockedQueue`]).
//! * [`LfHash`] — an open-addressing hash table with Clevel-style
//!   incremental resize driven by single-CAS steps (vs the transactional
//!   chained [`crate::HashMap`] under an external mutex).
//!
//! # Detectable recovery contract
//!
//! Every mutating operation takes a caller-chosen `tag` that names its
//! linearizing CAS. After a crash, [`PglPool::cas_recoveries`] reports the
//! fate of the operation that was in flight: the crashed op either never
//! happened ([`CasOutcome::RolledBack`] or no report) or completed exactly
//! once ([`CasOutcome::Completed`]) — see [`op_outcome`]. Only the tag the
//! caller knows was in flight is meaningful; reports for operations that
//! completed long before the crash may linger (their descriptors retire
//! lazily) and must be ignored. Tag `0` is reserved for internal helper
//! CASes (node retargeting, resize migration) and never decides an
//! application operation.
//!
//! # Crash-step granularity
//!
//! Each operation splits into *prepare* (allocate the node in its own
//! transaction) and *commit* (the single linearizing CAS), exposed
//! separately (e.g. [`LfStack::push_prepare`] / [`LfStack::push_commit`])
//! so the crash-oracle sweeps can place a commit point after every atomic
//! transition. The plain entry points ([`LfStack::push`], …) are
//! prepare + commit fused.
//!
//! # Memory reclamation
//!
//! Unlinked nodes (popped stack nodes, dequeued sentinels, replaced hash
//! entries) are **leaked**, the standard first cut for persistent
//! lock-free structures: safe reclamation needs an epoch/hazard scheme,
//! and a leaked node is merely dead space with a valid checksum. The
//! leak is also what makes tags safe: a node offset is never reused while
//! any operation that read it can still be replayed.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use pangolin::{CasOutcome, PglPool};
use pgl_pmemobj::PMEMoid;

use crate::store::{KvError, KvResult, Store};

/// Tag for internal helper CASes (retargeting, migration); never reported
/// as an application operation's outcome.
pub const INTERNAL_TAG: u64 = 0;

const TYPE_LFS_ANCHOR: u32 = 160;
const TYPE_LFS_NODE: u32 = 161;
const TYPE_LFQ_ANCHOR: u32 = 162;
const TYPE_LFQ_NODE: u32 = 163;
const TYPE_LFH_ANCHOR: u32 = 164;
const TYPE_LFH_TABLE: u32 = 165;
const TYPE_LFH_NODE: u32 = 166;

/// Brands a raw user-data offset as an oid in `pool`.
fn oid_at(pool: &PglPool, off: u64) -> PMEMoid {
    PMEMoid::new(pool.uuid(), off)
}

/// What recovery decided about the operation tagged `tag`, if it was in
/// flight when the pool crashed. `None` means the operation never reached
/// its linearizing CAS (its descriptor was never persisted), which for a
/// crashed operation means it did not happen.
pub fn op_outcome(pool: &PglPool, tag: u64) -> Option<CasOutcome> {
    if tag == INTERNAL_TAG {
        return None;
    }
    pool.cas_recoveries().iter().find(|r| r.tag == tag).map(|r| r.outcome)
}

/// `true` when recovery proved the operation tagged `tag` completed.
pub fn op_completed(pool: &PglPool, tag: u64) -> bool {
    op_outcome(pool, tag) == Some(CasOutcome::Completed)
}

// ---------------------------------------------------------------------
// Treiber stack
// ---------------------------------------------------------------------

/// A lock-free persistent Treiber stack of `u64` values.
///
/// Layout: anchor `[head: u64, pad]`; node `[next: u64, value: u64]`.
/// `push` allocates the node transactionally with `next` pre-pointed at
/// the observed head, then publishes it with one detectable CAS on the
/// anchor's head word; `pop` swings the head past the top node with one
/// CAS. Popped nodes are leaked (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct LfStack {
    anchor: PMEMoid,
}

impl LfStack {
    /// Allocates a new empty stack (one 16-byte anchor object).
    pub fn create(pool: &PglPool) -> KvResult<LfStack> {
        let anchor = pool.tx(|tx| tx.alloc(16, TYPE_LFS_ANCHOR))?;
        Ok(LfStack { anchor })
    }

    /// Re-attaches to an existing stack by its anchor (e.g. after reopen).
    pub fn attach(anchor: PMEMoid) -> LfStack {
        LfStack { anchor }
    }

    /// The anchor object (store it in the pool root to find the stack
    /// again after reopen).
    pub fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    /// Prepare half of a push: allocates the node in its own transaction,
    /// `next` pre-pointed at the currently observed head.
    pub fn push_prepare(&self, pool: &PglPool, value: u64) -> KvResult<PMEMoid> {
        let head = pool.atomic_load(self.anchor, 0)?;
        Ok(pool.tx(|tx| {
            let n = tx.alloc(16, TYPE_LFS_NODE)?;
            tx.write(n, 0, &head.to_le_bytes())?;
            tx.write(n, 8, &value.to_le_bytes())?;
            Ok(n)
        })?)
    }

    /// Commit half of a push: publishes a prepared node with one
    /// detectable CAS tagged `tag` (retargeting the unpublished node's
    /// `next` first if the head moved since prepare).
    pub fn push_commit(&self, pool: &PglPool, node: PMEMoid, tag: u64) -> KvResult<()> {
        loop {
            let head = pool.atomic_load(self.anchor, 0)?;
            let next = pool.atomic_load(node, 0)?;
            if next != head {
                // We still own the unpublished node; point it at the new
                // head (internal helper CAS, not the operation itself).
                pool.atomic_update(node, 0, next, head, INTERNAL_TAG)?;
            }
            if pool.atomic_update(self.anchor, 0, head, node.off, tag)?.is_applied() {
                return Ok(());
            }
        }
    }

    /// Pushes `value`; `tag` names the operation for crash recovery.
    pub fn push(&self, pool: &PglPool, value: u64, tag: u64) -> KvResult<()> {
        let node = self.push_prepare(pool, value)?;
        self.push_commit(pool, node, tag)
    }

    /// Pops the top value, or `None` when empty; `tag` names the
    /// operation for crash recovery.
    pub fn try_pop(&self, pool: &PglPool, tag: u64) -> KvResult<Option<u64>> {
        loop {
            let head = pool.atomic_load(self.anchor, 0)?;
            if head == 0 {
                return Ok(None);
            }
            let node = oid_at(pool, head);
            let next = pool.atomic_load(node, 0)?;
            let value = pool.atomic_load(node, 8)?;
            if pool.atomic_update(self.anchor, 0, head, next, tag)?.is_applied() {
                return Ok(Some(value));
            }
        }
    }

    /// The stack's values, top first (walks the chain; test/debug aid).
    pub fn items(&self, pool: &PglPool) -> KvResult<Vec<u64>> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cur = pool.atomic_load(self.anchor, 0)?;
        while cur != 0 {
            if !seen.insert(cur) {
                return Err(KvError::Corrupt("lf-stack chain cycle"));
            }
            let node = oid_at(pool, cur);
            out.push(pool.atomic_load(node, 8)?);
            cur = pool.atomic_load(node, 0)?;
        }
        Ok(out)
    }

    /// Number of values on the stack (walks the chain).
    pub fn len(&self, pool: &PglPool) -> KvResult<usize> {
        Ok(self.items(pool)?.len())
    }

    /// `true` when the stack holds no values.
    pub fn is_empty(&self, pool: &PglPool) -> KvResult<bool> {
        Ok(pool.atomic_load(self.anchor, 0)? == 0)
    }
}

// ---------------------------------------------------------------------
// Michael–Scott queue
// ---------------------------------------------------------------------

/// A lock-free persistent Michael–Scott FIFO queue of `u64` values.
///
/// Layout: anchor `[head: u64, pad]` pointing at a sentinel node; node
/// `[next: u64, value: u64]`. The tail pointer is a **volatile DRAM
/// hint** (rebuilt by walking from any reachable node — dequeued nodes
/// keep their forward links, so even a stale hint converges): enqueue is
/// then a *single* detectable CAS on the last node's `next` word, and
/// dequeue a single CAS swinging the head to the next node, which becomes
/// the new sentinel. No operation needs two persistent stores, so each is
/// atomic under the crash oracle.
#[derive(Debug)]
pub struct LfQueue {
    anchor: PMEMoid,
    /// Volatile tail hint (0 = resolve from head); never trusted blindly.
    tail: AtomicU64,
}

impl LfQueue {
    /// Allocates a new empty queue (anchor + sentinel node, one
    /// transaction).
    pub fn create(pool: &PglPool) -> KvResult<LfQueue> {
        let (anchor, sent) = pool.tx(|tx| {
            let anchor = tx.alloc(16, TYPE_LFQ_ANCHOR)?;
            let sent = tx.alloc(16, TYPE_LFQ_NODE)?;
            tx.write(anchor, 0, &sent.off.to_le_bytes())?;
            Ok((anchor, sent))
        })?;
        Ok(LfQueue { anchor, tail: AtomicU64::new(sent.off) })
    }

    /// Re-attaches to an existing queue by its anchor; the tail hint is
    /// rebuilt lazily from the head chain.
    pub fn attach(anchor: PMEMoid) -> LfQueue {
        LfQueue { anchor, tail: AtomicU64::new(0) }
    }

    /// The anchor object.
    pub fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    /// Prepare half of an enqueue: allocates the node (`next = 0`) in its
    /// own transaction.
    pub fn enqueue_prepare(&self, pool: &PglPool, value: u64) -> KvResult<PMEMoid> {
        Ok(pool.tx(|tx| {
            let n = tx.alloc(16, TYPE_LFQ_NODE)?;
            tx.write(n, 8, &value.to_le_bytes())?;
            Ok(n)
        })?)
    }

    /// Commit half of an enqueue: links a prepared node after the current
    /// last node with one detectable CAS tagged `tag`.
    pub fn enqueue_commit(&self, pool: &PglPool, node: PMEMoid, tag: u64) -> KvResult<()> {
        let mut t = self.find_tail(pool)?;
        loop {
            match pool.atomic_update(oid_at(pool, t), 0, 0, node.off, tag)? {
                w if w.is_applied() => {
                    self.tail.store(node.off, Ordering::Relaxed);
                    return Ok(());
                }
                // Someone appended behind our back; chase the new link.
                pangolin::WordCas::Mismatch(next) => t = self.walk_to_tail(pool, next)?,
                pangolin::WordCas::Applied => unreachable!("covered by is_applied"),
            }
        }
    }

    /// Enqueues `value`; `tag` names the operation for crash recovery.
    pub fn enqueue(&self, pool: &PglPool, value: u64, tag: u64) -> KvResult<()> {
        let node = self.enqueue_prepare(pool, value)?;
        self.enqueue_commit(pool, node, tag)
    }

    /// Dequeues the oldest value, or `None` when empty; `tag` names the
    /// operation for crash recovery.
    pub fn try_dequeue(&self, pool: &PglPool, tag: u64) -> KvResult<Option<u64>> {
        loop {
            let sent = pool.atomic_load(self.anchor, 0)?;
            let first = pool.atomic_load(oid_at(pool, sent), 0)?;
            if first == 0 {
                return Ok(None);
            }
            let value = pool.atomic_load(oid_at(pool, first), 8)?;
            if pool.atomic_update(self.anchor, 0, sent, first, tag)?.is_applied() {
                // `first` is the new sentinel; the old one is leaked but
                // keeps its forward link, so stale tail hints stay valid.
                return Ok(Some(value));
            }
        }
    }

    fn find_tail(&self, pool: &PglPool) -> KvResult<u64> {
        let mut cur = self.tail.load(Ordering::Relaxed);
        if cur == 0 {
            cur = pool.atomic_load(self.anchor, 0)?;
        }
        self.walk_to_tail(pool, cur)
    }

    fn walk_to_tail(&self, pool: &PglPool, mut cur: u64) -> KvResult<u64> {
        loop {
            let next = pool.atomic_load(oid_at(pool, cur), 0)?;
            if next == 0 {
                self.tail.store(cur, Ordering::Relaxed);
                return Ok(cur);
            }
            cur = next;
        }
    }

    /// The queue's values, oldest first (walks the chain; test/debug aid).
    pub fn items(&self, pool: &PglPool) -> KvResult<Vec<u64>> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let sent = pool.atomic_load(self.anchor, 0)?;
        let mut cur = pool.atomic_load(oid_at(pool, sent), 0)?;
        while cur != 0 {
            if !seen.insert(cur) {
                return Err(KvError::Corrupt("lf-queue chain cycle"));
            }
            let node = oid_at(pool, cur);
            out.push(pool.atomic_load(node, 8)?);
            cur = pool.atomic_load(node, 0)?;
        }
        Ok(out)
    }

    /// Number of queued values (walks the chain).
    pub fn len(&self, pool: &PglPool) -> KvResult<usize> {
        Ok(self.items(pool)?.len())
    }

    /// `true` when the queue holds no values.
    pub fn is_empty(&self, pool: &PglPool) -> KvResult<bool> {
        let sent = pool.atomic_load(self.anchor, 0)?;
        Ok(pool.atomic_load(oid_at(pool, sent), 0)? == 0)
    }
}

// ---------------------------------------------------------------------
// Clevel-style resizable open-addressing hash table
// ---------------------------------------------------------------------

/// Empty slot sentinel.
const EMPTY: u64 = 0;
/// Deleted-entry sentinel (skipped by probes, reusable by inserts).
const TOMB: u64 = 1;
/// Migrated-slot sentinel (only in a table being drained by a resize).
const MOVED: u64 = 2;
/// Smallest slot value that is a real entry offset (object user data
/// always sits well past the pool metadata, so 0/1/2 are never offsets).
const MIN_ENTRY: u64 = 3;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A lock-free persistent open-addressing hash table (`u64 → u64`) with
/// Clevel-style incremental resize.
///
/// Layout: anchor `[table: u64, next_table: u64]`; table object
/// `[cap: u64, slots: cap × u64]`; entry node `[key: u64, value: u64]`.
/// A slot holds an entry-node offset or one of the sentinels
/// (empty / tombstone / moved). Insert, update and remove each linearize
/// at a single detectable CAS on a slot word.
///
/// **Resize** is a persistent state machine driven by [`LfHash::resize_step`]
/// calls, each of which performs exactly one atomic transition (allocate
/// the new table, publish it in `next_table`, copy-or-seal one slot,
/// swing `table`, retire `next_table`) — so the crash sweeps can crash
/// between any two steps, and any thread can help. Entries are copied to
/// the new table *before* their old slot is sealed `MOVED`, so a reader
/// probing old-then-new always finds them. Mutating operations first help
/// any in-flight resize to completion ([`LfHash::help_resize`]), which
/// keeps the mutation a single CAS on the one live table.
///
/// Limitation (documented, enforced by the help-first discipline): a
/// remove concurrent with an *unhelped* migration could resurrect via the
/// stale copy; since every mutator helps the resize drain before
/// mutating, the window does not arise in this implementation.
#[derive(Debug)]
pub struct LfHash {
    anchor: PMEMoid,
    /// Requested capacity for a resize not yet begun (volatile).
    pending_cap: AtomicU64,
    /// New table allocated but not yet published (volatile; leaks on
    /// crash, which is safe — an unpublished table is just dead space).
    pending_table: AtomicU64,
    /// Approximate live-entry count (volatile; drives auto-growth).
    count: AtomicU64,
}

impl LfHash {
    /// Allocates a new table with capacity `cap` (≥ 4) slots.
    pub fn create(pool: &PglPool, cap: u64) -> KvResult<LfHash> {
        let cap = cap.max(4);
        let anchor = pool.tx(|tx| {
            let anchor = tx.alloc(16, TYPE_LFH_ANCHOR)?;
            let t = tx.alloc(8 + cap * 8, TYPE_LFH_TABLE)?;
            tx.write(t, 0, &cap.to_le_bytes())?;
            tx.write(anchor, 0, &t.off.to_le_bytes())?;
            Ok(anchor)
        })?;
        Ok(LfHash {
            anchor,
            pending_cap: AtomicU64::new(0),
            pending_table: AtomicU64::new(0),
            count: AtomicU64::new(0),
        })
    }

    /// Re-attaches to an existing table by its anchor, rebuilding the
    /// volatile entry count. A resize left in flight by a crash resumes
    /// the next time a mutating operation helps (or call
    /// [`LfHash::help_resize`] explicitly).
    pub fn attach(pool: &PglPool, anchor: PMEMoid) -> KvResult<LfHash> {
        let h = LfHash {
            anchor,
            pending_cap: AtomicU64::new(0),
            pending_table: AtomicU64::new(0),
            count: AtomicU64::new(0),
        };
        let n = h.items(pool)?.len() as u64;
        h.count.store(n, Ordering::Relaxed);
        Ok(h)
    }

    /// The anchor object.
    pub fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    /// Looks up `key`.
    pub fn get(&self, pool: &PglPool, key: u64) -> KvResult<Option<u64>> {
        let t = pool.atomic_load(self.anchor, 0)?;
        if let Some((_, node)) = self.probe_find(pool, t, key)? {
            return Ok(Some(pool.atomic_load(oid_at(pool, node), 8)?));
        }
        let nt = pool.atomic_load(self.anchor, 8)?;
        if nt != 0 && nt != t {
            if let Some((_, node)) = self.probe_find(pool, nt, key)? {
                return Ok(Some(pool.atomic_load(oid_at(pool, node), 8)?));
            }
        }
        Ok(None)
    }

    /// Prepare half of an insert/update: allocates the entry node in its
    /// own transaction.
    pub fn insert_prepare(&self, pool: &PglPool, key: u64, value: u64) -> KvResult<PMEMoid> {
        Ok(pool.tx(|tx| {
            let n = tx.alloc(16, TYPE_LFH_NODE)?;
            tx.write(n, 0, &key.to_le_bytes())?;
            tx.write(n, 8, &value.to_le_bytes())?;
            Ok(n)
        })?)
    }

    /// Commit half of an insert/update: publishes a prepared entry node
    /// with one detectable CAS on its slot, tagged `tag`. Returns the
    /// replaced value for an update, `None` for a fresh insert.
    ///
    /// Helps any in-flight resize to completion first, so the linearizing
    /// CAS targets the single live table.
    pub fn insert_commit(&self, pool: &PglPool, node: PMEMoid, tag: u64) -> KvResult<Option<u64>> {
        self.help_resize(pool)?;
        let key = pool.atomic_load(node, 0)?;
        loop {
            let t = pool.atomic_load(self.anchor, 0)?;
            let table = oid_at(pool, t);
            let cap = pool.atomic_load(table, 0)?;
            let start = splitmix64(key) % cap;
            let mut free: Option<(u64, u64)> = None;
            let mut found: Option<(u64, u64)> = None;
            for k in 0..cap {
                let so = 8 + ((start + k) % cap) * 8;
                let s = pool.atomic_load(table, so)?;
                if s == EMPTY {
                    if free.is_none() {
                        free = Some((so, EMPTY));
                    }
                    break;
                }
                if s == TOMB {
                    if free.is_none() {
                        free = Some((so, TOMB));
                    }
                    continue;
                }
                if s == MOVED {
                    continue;
                }
                if pool.atomic_load(oid_at(pool, s), 0)? == key {
                    found = Some((so, s));
                    break;
                }
            }
            if let Some((so, old_node)) = found {
                let old = pool.atomic_load(oid_at(pool, old_node), 8)?;
                if pool.atomic_update(table, so, old_node, node.off, tag)?.is_applied() {
                    return Ok(Some(old));
                }
                continue;
            }
            let Some((so, exp)) = free else {
                self.grow(pool, cap * 2)?;
                continue;
            };
            if pool.atomic_update(table, so, exp, node.off, tag)?.is_applied() {
                let n = self.count.fetch_add(1, Ordering::Relaxed) + 1;
                if n * 4 >= cap * 3 {
                    self.grow(pool, cap * 2)?;
                }
                return Ok(None);
            }
        }
    }

    /// Inserts or updates `key → value`; `tag` names the operation for
    /// crash recovery. Returns the replaced value, if any.
    pub fn insert(&self, pool: &PglPool, key: u64, value: u64, tag: u64) -> KvResult<Option<u64>> {
        let node = self.insert_prepare(pool, key, value)?;
        self.insert_commit(pool, node, tag)
    }

    /// Removes `key`, returning its value, with one detectable CAS
    /// (slot → tombstone) tagged `tag`. Helps any in-flight resize first.
    pub fn remove(&self, pool: &PglPool, key: u64, tag: u64) -> KvResult<Option<u64>> {
        self.help_resize(pool)?;
        loop {
            let t = pool.atomic_load(self.anchor, 0)?;
            match self.probe_find(pool, t, key)? {
                None => return Ok(None),
                Some((so, node)) => {
                    let old = pool.atomic_load(oid_at(pool, node), 8)?;
                    if pool.atomic_update(oid_at(pool, t), so, node, TOMB, tag)?.is_applied() {
                        let c = self.count.load(Ordering::Relaxed);
                        self.count.store(c.saturating_sub(1), Ordering::Relaxed);
                        return Ok(Some(old));
                    }
                }
            }
        }
    }

    /// Requests a resize to `new_cap` slots; the actual work happens in
    /// subsequent [`LfHash::resize_step`] calls (volatile bookkeeping
    /// only — crashing between begin and the first step loses nothing).
    pub fn resize_begin(&self, new_cap: u64) {
        let _ = self.pending_cap.compare_exchange(
            0,
            new_cap.max(4),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Performs **one** atomic transition of the resize state machine
    /// (allocate / publish / copy-or-seal one slot / swing / retire) and
    /// returns `true`, or returns `false` when no resize work remains.
    /// `tag` names the transition's CAS for the crash sweeps; pass
    /// [`INTERNAL_TAG`] outside tests.
    pub fn resize_step(&self, pool: &PglPool, tag: u64) -> KvResult<bool> {
        let t = pool.atomic_load(self.anchor, 0)?;
        let nt = pool.atomic_load(self.anchor, 8)?;
        if nt == 0 {
            let pt = self.pending_table.load(Ordering::Relaxed);
            if pt != 0 {
                // Publish; on mismatch someone else's table won and ours
                // leaks (dead space with a valid checksum).
                pool.atomic_update(self.anchor, 8, 0, pt, tag)?;
                self.pending_table.store(0, Ordering::Relaxed);
                return Ok(true);
            }
            let cap = self.pending_cap.swap(0, Ordering::Relaxed);
            if cap != 0 {
                let toff = pool.tx(|tx| {
                    let t = tx.alloc(8 + cap * 8, TYPE_LFH_TABLE)?;
                    tx.write(t, 0, &cap.to_le_bytes())?;
                    Ok(t.off)
                })?;
                self.pending_table.store(toff, Ordering::Relaxed);
                return Ok(true);
            }
            return Ok(false);
        }
        if nt == t {
            // Migration drained and the table swung; retire next_table.
            pool.atomic_update(self.anchor, 8, nt, 0, tag)?;
            return Ok(true);
        }
        let table = oid_at(pool, t);
        let cap = pool.atomic_load(table, 0)?;
        for i in 0..cap {
            let so = 8 + i * 8;
            let s = pool.atomic_load(table, so)?;
            if s == MOVED {
                continue;
            }
            if s == EMPTY || s == TOMB {
                pool.atomic_update(table, so, s, MOVED, tag)?;
                return Ok(true);
            }
            let key = pool.atomic_load(oid_at(pool, s), 0)?;
            if self.probe_find(pool, nt, key)?.is_some() {
                // Copied already (by us or a helper): seal the old slot.
                pool.atomic_update(table, so, s, MOVED, tag)?;
            } else {
                // Copy first, seal on a later step: a probe of old-then-new
                // can never miss the entry.
                let (so2, exp) = self
                    .probe_free(pool, nt, key)?
                    .ok_or(KvError::Corrupt("lf-hash resize target table full"))?;
                pool.atomic_update(oid_at(pool, nt), so2, exp, s, tag)?;
            }
            return Ok(true);
        }
        // Every slot sealed: swing the live table pointer.
        pool.atomic_update(self.anchor, 0, t, nt, tag)?;
        Ok(true)
    }

    /// Drives any in-flight (or pending) resize to completion.
    pub fn help_resize(&self, pool: &PglPool) -> KvResult<()> {
        while self.resize_step(pool, INTERNAL_TAG)? {}
        Ok(())
    }

    /// `true` while a resize is published and not yet retired.
    pub fn resize_active(&self, pool: &PglPool) -> KvResult<bool> {
        Ok(pool.atomic_load(self.anchor, 8)? != 0)
    }

    fn grow(&self, pool: &PglPool, new_cap: u64) -> KvResult<()> {
        self.resize_begin(new_cap);
        self.help_resize(pool)
    }

    /// Probes `table_off` for `key`: `Some((slot_off, node_off))`.
    fn probe_find(&self, pool: &PglPool, table_off: u64, key: u64) -> KvResult<Option<(u64, u64)>> {
        let table = oid_at(pool, table_off);
        let cap = pool.atomic_load(table, 0)?;
        let start = splitmix64(key) % cap;
        for k in 0..cap {
            let so = 8 + ((start + k) % cap) * 8;
            let s = pool.atomic_load(table, so)?;
            if s == EMPTY {
                return Ok(None);
            }
            if s < MIN_ENTRY {
                continue;
            }
            if pool.atomic_load(oid_at(pool, s), 0)? == key {
                return Ok(Some((so, s)));
            }
        }
        Ok(None)
    }

    /// First reusable slot (tombstone preferred, else first empty) along
    /// `key`'s probe sequence: `Some((slot_off, expected_sentinel))`.
    fn probe_free(&self, pool: &PglPool, table_off: u64, key: u64) -> KvResult<Option<(u64, u64)>> {
        let table = oid_at(pool, table_off);
        let cap = pool.atomic_load(table, 0)?;
        let start = splitmix64(key) % cap;
        let mut tomb = None;
        for k in 0..cap {
            let so = 8 + ((start + k) % cap) * 8;
            let s = pool.atomic_load(table, so)?;
            if s == EMPTY {
                return Ok(Some(tomb.unwrap_or((so, EMPTY))));
            }
            if s == TOMB && tomb.is_none() {
                tomb = Some((so, TOMB));
            }
        }
        Ok(tomb)
    }

    /// Every `(key, value)` pair, sorted by key (walks both tables during
    /// a migration; duplicates collapse to the single shared entry node).
    pub fn items(&self, pool: &PglPool) -> KvResult<Vec<(u64, u64)>> {
        let mut map = std::collections::BTreeMap::new();
        let t = pool.atomic_load(self.anchor, 0)?;
        let nt = pool.atomic_load(self.anchor, 8)?;
        for toff in std::iter::once(t).chain((nt != 0 && nt != t).then_some(nt)) {
            let table = oid_at(pool, toff);
            let cap = pool.atomic_load(table, 0)?;
            for i in 0..cap {
                let s = pool.atomic_load(table, 8 + i * 8)?;
                if s >= MIN_ENTRY {
                    let node = oid_at(pool, s);
                    map.insert(pool.atomic_load(node, 0)?, pool.atomic_load(node, 8)?);
                }
            }
        }
        Ok(map.into_iter().collect())
    }

    /// Number of live entries (walks the tables).
    pub fn len(&self, pool: &PglPool) -> KvResult<usize> {
        Ok(self.items(pool)?.len())
    }

    /// `true` when the table holds no entries.
    pub fn is_empty(&self, pool: &PglPool) -> KvResult<bool> {
        Ok(self.len(pool)? == 0)
    }

    /// Capacity of the live table.
    pub fn capacity(&self, pool: &PglPool) -> KvResult<u64> {
        let t = pool.atomic_load(self.anchor, 0)?;
        Ok(pool.atomic_load(oid_at(pool, t), 0)?)
    }
}

// ---------------------------------------------------------------------
// Locked counterparts (the Figure 9 baseline)
// ---------------------------------------------------------------------

/// The locked baseline for [`LfStack`]: same node layout, but every
/// mutation is a transaction on the shared anchor under a global mutex
/// (the repo's §3.4 rule — concurrent transactions must not modify the
/// same object — makes the mutex mandatory, which is exactly the
/// serialization the lock-free version removes). Popped nodes are freed:
/// that is the one thing the locked version does better.
pub struct LockedStack {
    anchor: PMEMoid,
    lock: Mutex<()>,
}

impl LockedStack {
    /// Allocates a new empty stack.
    pub fn create<S: Store>(store: &S) -> KvResult<LockedStack> {
        let anchor = store.txn(&mut |tx| tx.alloc(16, TYPE_LFS_ANCHOR))?;
        Ok(LockedStack { anchor, lock: Mutex::new(()) })
    }

    /// Pushes `value` in one locked transaction.
    pub fn push<S: Store>(&self, store: &S, value: u64) -> KvResult<()> {
        let _g = self.lock.lock();
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let head: u64 = tx.read_pod(anchor, 0)?;
            let n = tx.alloc(16, TYPE_LFS_NODE)?;
            tx.write_pod(n, 0, &head)?;
            tx.write_pod(n, 8, &value)?;
            tx.write_pod(anchor, 0, &n.off)
        })
    }

    /// Pops the top value in one locked transaction (freeing the node).
    pub fn try_pop<S: Store>(&self, store: &S) -> KvResult<Option<u64>> {
        let _g = self.lock.lock();
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let head: u64 = tx.read_pod(anchor, 0)?;
            if head == 0 {
                return Ok(None);
            }
            let node = PMEMoid::new(anchor.pool, head);
            let next: u64 = tx.read_pod(node, 0)?;
            let value: u64 = tx.read_pod(node, 8)?;
            tx.write_pod(anchor, 0, &next)?;
            tx.free(node)?;
            Ok(Some(value))
        })
    }
}

/// The locked baseline for [`LfQueue`]: anchor `[head, tail]`, every
/// mutation a transaction under a global mutex, dequeued nodes freed.
pub struct LockedQueue {
    anchor: PMEMoid,
    lock: Mutex<()>,
}

impl LockedQueue {
    /// Allocates a new empty queue.
    pub fn create<S: Store>(store: &S) -> KvResult<LockedQueue> {
        let anchor = store.txn(&mut |tx| tx.alloc(16, TYPE_LFQ_ANCHOR))?;
        Ok(LockedQueue { anchor, lock: Mutex::new(()) })
    }

    /// Enqueues `value` in one locked transaction.
    pub fn enqueue<S: Store>(&self, store: &S, value: u64) -> KvResult<()> {
        let _g = self.lock.lock();
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let n = tx.alloc(16, TYPE_LFQ_NODE)?;
            tx.write_pod(n, 8, &value)?;
            let tail: u64 = tx.read_pod(anchor, 8)?;
            if tail == 0 {
                tx.write_pod(anchor, 0, &n.off)?;
            } else {
                tx.write_pod(PMEMoid::new(anchor.pool, tail), 0, &n.off)?;
            }
            tx.write_pod(anchor, 8, &n.off)
        })
    }

    /// Dequeues the oldest value in one locked transaction.
    pub fn try_dequeue<S: Store>(&self, store: &S) -> KvResult<Option<u64>> {
        let _g = self.lock.lock();
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let head: u64 = tx.read_pod(anchor, 0)?;
            if head == 0 {
                return Ok(None);
            }
            let node = PMEMoid::new(anchor.pool, head);
            let next: u64 = tx.read_pod(node, 0)?;
            let value: u64 = tx.read_pod(node, 8)?;
            tx.write_pod(anchor, 0, &next)?;
            if next == 0 {
                tx.write_pod(anchor, 8, &0u64)?;
            }
            tx.free(node)?;
            Ok(Some(value))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PglStore;
    use pangolin::PglConfig;
    use pgl_nvm::{DeviceConfig, NvmDevice};
    use std::sync::Arc;

    fn pool() -> PglPool {
        let cfg = PglConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
        PglPool::create(dev, cfg).unwrap()
    }

    #[test]
    fn stack_pushes_and_pops_lifo() {
        let p = pool();
        let s = LfStack::create(&p).unwrap();
        assert!(s.is_empty(&p).unwrap());
        for (i, v) in [10, 20, 30].iter().enumerate() {
            s.push(&p, *v, (i + 1) as u64).unwrap();
        }
        assert_eq!(s.items(&p).unwrap(), vec![30, 20, 10]);
        assert_eq!(s.try_pop(&p, 4).unwrap(), Some(30));
        assert_eq!(s.try_pop(&p, 5).unwrap(), Some(20));
        assert_eq!(s.try_pop(&p, 6).unwrap(), Some(10));
        assert_eq!(s.try_pop(&p, 7).unwrap(), None);
        assert!(p.verify_parity().unwrap());
        assert!(p.find_corrupt_objects().unwrap().is_empty());
    }

    #[test]
    fn queue_is_fifo_and_tail_hint_recovers() {
        let p = pool();
        let q = LfQueue::create(&p).unwrap();
        for (i, v) in [1u64, 2, 3].iter().enumerate() {
            q.enqueue(&p, *v, (i + 1) as u64).unwrap();
        }
        assert_eq!(q.items(&p).unwrap(), vec![1, 2, 3]);
        // A re-attached handle has no tail hint; it must rebuild it.
        let q2 = LfQueue::attach(q.anchor());
        q2.enqueue(&p, 4, 10).unwrap();
        assert_eq!(q2.try_dequeue(&p, 11).unwrap(), Some(1));
        assert_eq!(q2.try_dequeue(&p, 12).unwrap(), Some(2));
        assert_eq!(q2.items(&p).unwrap(), vec![3, 4]);
        assert!(p.verify_parity().unwrap());
    }

    #[test]
    fn hash_inserts_updates_removes() {
        let p = pool();
        let h = LfHash::create(&p, 8).unwrap();
        let mut tag = 0u64;
        let mut next_tag = || {
            tag += 1;
            tag
        };
        assert_eq!(h.insert(&p, 7, 700, next_tag()).unwrap(), None);
        assert_eq!(h.insert(&p, 8, 800, next_tag()).unwrap(), None);
        assert_eq!(h.get(&p, 7).unwrap(), Some(700));
        assert_eq!(h.insert(&p, 7, 701, next_tag()).unwrap(), Some(700));
        assert_eq!(h.get(&p, 7).unwrap(), Some(701));
        assert_eq!(h.remove(&p, 8, next_tag()).unwrap(), Some(800));
        assert_eq!(h.get(&p, 8).unwrap(), None);
        assert_eq!(h.remove(&p, 8, next_tag()).unwrap(), None);
        assert_eq!(h.items(&p).unwrap(), vec![(7, 701)]);
        assert!(p.verify_parity().unwrap());
    }

    #[test]
    fn hash_grows_through_stepped_resize() {
        let p = pool();
        let h = LfHash::create(&p, 4).unwrap();
        for k in 0..24u64 {
            h.insert(&p, k, k * 10, k + 1).unwrap();
        }
        assert!(h.capacity(&p).unwrap() >= 24);
        for k in 0..24u64 {
            assert_eq!(h.get(&p, k).unwrap(), Some(k * 10), "key {k}");
        }
        assert_eq!(h.len(&p).unwrap(), 24);
        // An explicit stepped resize with lookups mid-migration.
        let cap = h.capacity(&p).unwrap();
        h.resize_begin(cap * 2);
        let mut steps = 0;
        while h.resize_step(&p, 1000 + steps).unwrap() {
            steps += 1;
            assert_eq!(h.get(&p, 5).unwrap(), Some(50));
        }
        assert_eq!(h.capacity(&p).unwrap(), cap * 2);
        assert_eq!(h.len(&p).unwrap(), 24);
        assert!(!h.resize_active(&p).unwrap());
        assert!(p.verify_parity().unwrap());
        assert!(p.find_corrupt_objects().unwrap().is_empty());
    }

    #[test]
    fn hash_tombstones_are_reused() {
        let p = pool();
        let h = LfHash::create(&p, 8).unwrap();
        h.insert(&p, 1, 100, 1).unwrap();
        h.remove(&p, 1, 2).unwrap();
        h.insert(&p, 1, 101, 3).unwrap();
        assert_eq!(h.get(&p, 1).unwrap(), Some(101));
        assert_eq!(h.len(&p).unwrap(), 1);
    }

    #[test]
    fn lockfree_structures_take_concurrent_traffic() {
        let p = pool();
        let s = LfStack::create(&p).unwrap();
        let q = LfQueue::create(&p).unwrap();
        let h = LfHash::create(&p, 256).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let p = p.clone();
                let (s, q, h) = (&s, &q, &h);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let tag = 1 + t * 1000 + i * 4;
                        s.push(&p, t * 100 + i, tag).unwrap();
                        q.enqueue(&p, t * 100 + i, tag + 1).unwrap();
                        h.insert(&p, t * 100 + i, i, tag + 2).unwrap();
                        if i % 3 == 0 {
                            s.try_pop(&p, tag + 3).unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(q.len(&p).unwrap(), 200);
        assert_eq!(h.len(&p).unwrap(), 200);
        let popped = 4 * 17; // per thread: i % 3 == 0 for 17 of 0..50
        assert_eq!(s.len(&p).unwrap(), 200 - popped);
        assert!(p.verify_parity().unwrap());
        assert!(p.find_corrupt_objects().unwrap().is_empty());
    }

    #[test]
    fn locked_counterparts_match_semantics() {
        let cfg = PglConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
        let store = PglStore::new(PglPool::create(dev, cfg).unwrap());
        let s = LockedStack::create(&store).unwrap();
        s.push(&store, 1).unwrap();
        s.push(&store, 2).unwrap();
        assert_eq!(s.try_pop(&store).unwrap(), Some(2));
        assert_eq!(s.try_pop(&store).unwrap(), Some(1));
        assert_eq!(s.try_pop(&store).unwrap(), None);

        let q = LockedQueue::create(&store).unwrap();
        q.enqueue(&store, 1).unwrap();
        q.enqueue(&store, 2).unwrap();
        q.enqueue(&store, 3).unwrap();
        assert_eq!(q.try_dequeue(&store).unwrap(), Some(1));
        q.enqueue(&store, 4).unwrap();
        assert_eq!(q.try_dequeue(&store).unwrap(), Some(2));
        assert_eq!(q.try_dequeue(&store).unwrap(), Some(3));
        assert_eq!(q.try_dequeue(&store).unwrap(), Some(4));
        assert_eq!(q.try_dequeue(&store).unwrap(), None);
    }
}
