//! Red-black tree (PMDK's `rbtree_map`): 80-byte nodes with parent
//! pointers and a nil sentinel (Table 3's rbtree row).
//!
//! A faithful CLRS implementation: insert/delete fix-ups perform the
//! rotations and recolorings that give the paper's rbtree its
//! characteristic "many small objects touched per transaction" profile
//! (Mod 330.2 bytes across 5.13 objects).

use pangolin::typed::PObj;
use pangolin::{field, impl_ptype};
use pgl_pmemobj::PMEMoid;

use crate::maps::PersistentMap;
use crate::store::{KvError, KvResult, Store, TxOps};

const TYPE_ANCHOR: u32 = 150;
const TYPE_NODE: u32 = 151;

const RED: u64 = 0;
const BLACK: u64 = 1;

/// Node: `{key, value, color, parent, child[2], pad}` = 80 bytes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct RbNode {
    key: u64,
    value: u64,
    color: u64,
    parent: PObj<RbNode>,
    child: [PObj<RbNode>; 2],
    pad: u64,
}
impl_ptype!(RbNode, 80, TYPE_NODE);

/// Anchor: `{count, root, nil}` = 40 bytes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct RbAnchor {
    count: u64,
    root: PObj<RbNode>,
    nil: PObj<RbNode>,
}
impl_ptype!(RbAnchor, 40, TYPE_ANCHOR);

type NodeH = PObj<RbNode>;

/// The red-black tree map.
pub struct RbTree {
    anchor: PMEMoid,
}

/// Transaction-scoped context carrying the sentinel and anchor.
struct Ctx<'a, 'b> {
    tx: &'a mut dyn TxOps,
    anchor: PObj<RbAnchor>,
    nil: NodeH,
    _life: std::marker::PhantomData<&'b ()>,
}

impl Ctx<'_, '_> {
    fn key(&mut self, x: NodeH) -> KvResult<u64> {
        self.tx.read_at(x, field!(RbNode, key: u64))
    }
    fn value(&mut self, x: NodeH) -> KvResult<u64> {
        self.tx.read_at(x, field!(RbNode, value: u64))
    }
    fn color(&mut self, x: NodeH) -> KvResult<u64> {
        self.tx.read_at(x, field!(RbNode, color: u64))
    }
    fn set_color(&mut self, x: NodeH, c: u64) -> KvResult<()> {
        self.tx.write_at(x, field!(RbNode, color: u64), &c)
    }
    fn parent(&mut self, x: NodeH) -> KvResult<NodeH> {
        self.tx.read_at(x, field!(RbNode, parent: PObj<RbNode>))
    }
    fn set_parent(&mut self, x: NodeH, p: NodeH) -> KvResult<()> {
        self.tx.write_at(x, field!(RbNode, parent: PObj<RbNode>), &p)
    }
    fn child(&mut self, x: NodeH, dir: usize) -> KvResult<NodeH> {
        self.tx.read_at(x, field!(RbNode, child: [PObj<RbNode>; 2]).index(dir))
    }
    fn set_child(&mut self, x: NodeH, dir: usize, c: NodeH) -> KvResult<()> {
        self.tx.write_at(x, field!(RbNode, child: [PObj<RbNode>; 2]).index(dir), &c)
    }
    fn root(&mut self) -> KvResult<NodeH> {
        self.tx.read_at(self.anchor, field!(RbAnchor, root: PObj<RbNode>))
    }
    fn set_root(&mut self, r: NodeH) -> KvResult<()> {
        self.tx.write_at(self.anchor, field!(RbAnchor, root: PObj<RbNode>), &r)
    }

    /// Which child of its parent is `x`? (0 = left, 1 = right.)
    fn dir_of(&mut self, p: NodeH, x: NodeH) -> KvResult<usize> {
        Ok(if self.child(p, 0)? == x { 0 } else { 1 })
    }

    /// CLRS rotate: `dir = 0` is a left rotation.
    fn rotate(&mut self, x: NodeH, dir: usize) -> KvResult<()> {
        let other = 1 - dir;
        let y = self.child(x, other)?;
        let y_inner = self.child(y, dir)?;
        self.set_child(x, other, y_inner)?;
        if y_inner != self.nil {
            self.set_parent(y_inner, x)?;
        }
        let xp = self.parent(x)?;
        self.set_parent(y, xp)?;
        if xp == self.nil {
            self.set_root(y)?;
        } else {
            let d = self.dir_of(xp, x)?;
            self.set_child(xp, d, y)?;
        }
        self.set_child(y, dir, x)?;
        self.set_parent(x, y)
    }

    fn insert_fixup(&mut self, mut z: NodeH) -> KvResult<()> {
        loop {
            let zp = self.parent(z)?;
            if zp == self.nil || self.color(zp)? == BLACK {
                break;
            }
            let zpp = self.parent(zp)?;
            let pdir = self.dir_of(zpp, zp)?;
            let uncle = self.child(zpp, 1 - pdir)?;
            if uncle != self.nil && self.color(uncle)? == RED {
                self.set_color(zp, BLACK)?;
                self.set_color(uncle, BLACK)?;
                self.set_color(zpp, RED)?;
                z = zpp;
            } else {
                if self.dir_of(zp, z)? != pdir {
                    z = zp;
                    self.rotate(z, pdir)?;
                }
                let zp = self.parent(z)?;
                let zpp = self.parent(zp)?;
                self.set_color(zp, BLACK)?;
                self.set_color(zpp, RED)?;
                self.rotate(zpp, 1 - pdir)?;
            }
        }
        let root = self.root()?;
        self.set_color(root, BLACK)
    }

    /// CLRS transplant: replace subtree `u` with `v`.
    fn transplant(&mut self, u: NodeH, v: NodeH) -> KvResult<()> {
        let up = self.parent(u)?;
        if up == self.nil {
            self.set_root(v)?;
        } else {
            let d = self.dir_of(up, u)?;
            self.set_child(up, d, v)?;
        }
        // CLRS assigns v.parent unconditionally (v may be the sentinel).
        self.set_parent(v, up)
    }

    fn minimum(&mut self, mut x: NodeH) -> KvResult<NodeH> {
        loop {
            let l = self.child(x, 0)?;
            if l == self.nil {
                return Ok(x);
            }
            x = l;
        }
    }

    fn delete_fixup(&mut self, mut x: NodeH) -> KvResult<()> {
        loop {
            let root = self.root()?;
            if x == root || self.color(x)? == RED {
                break;
            }
            let xp = self.parent(x)?;
            let dir = self.dir_of(xp, x)?;
            let mut w = self.child(xp, 1 - dir)?;
            if self.color(w)? == RED {
                self.set_color(w, BLACK)?;
                self.set_color(xp, RED)?;
                self.rotate(xp, dir)?;
                w = self.child(xp, 1 - dir)?;
            }
            let w_near = self.child(w, dir)?;
            let w_far = self.child(w, 1 - dir)?;
            let near_black = w_near == self.nil || self.color(w_near)? == BLACK;
            let far_black = w_far == self.nil || self.color(w_far)? == BLACK;
            if near_black && far_black {
                self.set_color(w, RED)?;
                x = xp;
            } else {
                if far_black {
                    self.set_color(w_near, BLACK)?;
                    self.set_color(w, RED)?;
                    self.rotate(w, 1 - dir)?;
                    w = self.child(xp, 1 - dir)?;
                }
                let xp_color = self.color(xp)?;
                self.set_color(w, xp_color)?;
                self.set_color(xp, BLACK)?;
                let w_far = self.child(w, 1 - dir)?;
                self.set_color(w_far, BLACK)?;
                self.rotate(xp, dir)?;
                x = self.root()?;
            }
        }
        self.set_color(x, BLACK)
    }

    fn search(&mut self, key: u64) -> KvResult<NodeH> {
        let mut x = self.root()?;
        while x != self.nil {
            let k = self.key(x)?;
            if key == k {
                return Ok(x);
            }
            x = self.child(x, usize::from(key > k))?;
        }
        Ok(self.nil)
    }
}

impl RbTree {
    fn anchor_h(&self) -> PObj<RbAnchor> {
        PObj::from_oid(self.anchor)
    }

    fn bump_count(tx: &mut dyn TxOps, anchor: PObj<RbAnchor>, delta: i64) -> KvResult<()> {
        let count: u64 = tx.read_at(anchor, field!(RbAnchor, count: u64))?;
        let n = count.checked_add_signed(delta).ok_or(KvError::Corrupt("rbtree count"))?;
        tx.write_at(anchor, field!(RbAnchor, count: u64), &n)
    }

    fn ctx<'a>(tx: &'a mut dyn TxOps, anchor: PObj<RbAnchor>) -> KvResult<Ctx<'a, 'a>> {
        let nil: NodeH = tx.read_at(anchor, field!(RbAnchor, nil: PObj<RbNode>))?;
        Ok(Ctx { tx, anchor, nil, _life: std::marker::PhantomData })
    }
}

impl PersistentMap for RbTree {
    const NAME: &'static str = "rbtree";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| {
            let anchor = tx.alloc_obj_zeroed::<RbAnchor>()?;
            let nil = tx.alloc_obj_zeroed::<RbNode>()?;
            tx.write_at(nil, field!(RbNode, color: u64), &BLACK)?;
            tx.write_at(nil, field!(RbNode, parent: PObj<RbNode>), &nil)?;
            tx.write_at(nil, field!(RbNode, child: [PObj<RbNode>; 2]).index(0), &nil)?;
            tx.write_at(nil, field!(RbNode, child: [PObj<RbNode>; 2]).index(1), &nil)?;
            tx.write_at(anchor, field!(RbAnchor, nil: PObj<RbNode>), &nil)?;
            tx.write_at(anchor, field!(RbAnchor, root: PObj<RbNode>), &nil)?;
            Ok(anchor)
        })?;
        Ok(RbTree { anchor: anchor.oid() })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        RbTree { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let mut c = RbTree::ctx(tx, anchor)?;
            let nil = c.nil;
            let mut y = nil;
            let mut x = c.root()?;
            while x != nil {
                y = x;
                let k = c.key(x)?;
                if key == k {
                    let old = c.value(x)?;
                    c.tx.write_at(x, field!(RbNode, value: u64), &value)?;
                    return Ok(Some(old));
                }
                x = c.child(x, usize::from(key > k))?;
            }
            let z = c.tx.alloc_obj_zeroed::<RbNode>()?;
            c.tx.write_at(z, field!(RbNode, key: u64), &key)?;
            c.tx.write_at(z, field!(RbNode, value: u64), &value)?;
            c.set_color(z, RED)?;
            c.set_parent(z, y)?;
            c.set_child(z, 0, nil)?;
            c.set_child(z, 1, nil)?;
            if y == nil {
                c.set_root(z)?;
            } else {
                let yk = c.key(y)?;
                c.set_child(y, usize::from(key > yk), z)?;
            }
            c.insert_fixup(z)?;
            RbTree::bump_count(tx, anchor, 1)?;
            Ok(None)
        })
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let mut c = RbTree::ctx(tx, anchor)?;
            let nil = c.nil;
            let z = c.search(key)?;
            if z == nil {
                return Ok(None);
            }
            let old = c.value(z)?;
            let mut y = z;
            let mut y_color = c.color(y)?;
            let x;
            let zl = c.child(z, 0)?;
            let zr = c.child(z, 1)?;
            if zl == nil {
                x = zr;
                c.transplant(z, zr)?;
            } else if zr == nil {
                x = zl;
                c.transplant(z, zl)?;
            } else {
                y = c.minimum(zr)?;
                y_color = c.color(y)?;
                x = c.child(y, 1)?;
                if c.parent(y)? == z {
                    c.set_parent(x, y)?;
                } else {
                    let yr = c.child(y, 1)?;
                    c.transplant(y, yr)?;
                    c.set_child(y, 1, zr)?;
                    c.set_parent(zr, y)?;
                }
                c.transplant(z, y)?;
                c.set_child(y, 0, zl)?;
                c.set_parent(zl, y)?;
                let zc = c.color(z)?;
                c.set_color(y, zc)?;
            }
            c.tx.free_obj(z)?;
            if y_color == BLACK {
                c.delete_fixup(x)?;
            }
            RbTree::bump_count(tx, anchor, -1)?;
            Ok(Some(old))
        })
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        let nil: NodeH = store.read_at_direct(anchor, field!(RbAnchor, nil: PObj<RbNode>))?;
        let mut x: NodeH = store.read_at_direct(anchor, field!(RbAnchor, root: PObj<RbNode>))?;
        while x != nil && !x.is_null() {
            let k: u64 = store.read_at_direct(x, field!(RbNode, key: u64))?;
            if key == k {
                return Ok(Some(store.read_at_direct(x, field!(RbNode, value: u64))?));
            }
            x = store.read_at_direct(
                x,
                field!(RbNode, child: [PObj<RbNode>; 2]).index(usize::from(key > k)),
            )?;
        }
        Ok(None)
    }
}

/// Test helper: verifies the red-black invariants (BST order, no red node
/// with a red child, equal black heights) and the count.
pub fn check_invariants<S: Store>(map: &RbTree, store: &S) -> KvResult<u64> {
    let anchor: PObj<RbAnchor> = PObj::from_oid(map.anchor());
    let nil: NodeH = store.read_at_direct(anchor, field!(RbAnchor, nil: PObj<RbNode>))?;
    let root: NodeH = store.read_at_direct(anchor, field!(RbAnchor, root: PObj<RbNode>))?;

    fn walk<S: Store>(
        store: &S,
        nil: NodeH,
        x: NodeH,
        lo: Option<u64>,
        hi: Option<u64>,
    ) -> KvResult<(u64, u64)> {
        // Returns (keys, black height).
        if x == nil {
            return Ok((0, 1));
        }
        let node: RbNode = store.get_obj_direct(x)?;
        if lo.is_some_and(|l| node.key <= l) || hi.is_some_and(|h| node.key >= h) {
            return Err(KvError::Corrupt("rbtree: BST order violated"));
        }
        if node.color == RED {
            for c in node.child {
                if c != nil {
                    let cc: u64 = store.read_at_direct(c, field!(RbNode, color: u64))?;
                    if cc == RED {
                        return Err(KvError::Corrupt("rbtree: red node with red child"));
                    }
                }
            }
        }
        let (nl, bl) = walk(store, nil, node.child[0], lo, Some(node.key))?;
        let (nr, br) = walk(store, nil, node.child[1], Some(node.key), hi)?;
        if bl != br {
            return Err(KvError::Corrupt("rbtree: unequal black heights"));
        }
        Ok((nl + nr + 1, bl + u64::from(node.color == BLACK)))
    }

    if root != nil {
        let rc: u64 = store.read_at_direct(root, field!(RbNode, color: u64))?;
        if rc != BLACK {
            return Err(KvError::Corrupt("rbtree: red root"));
        }
    }
    let (n, _) = walk(store, nil, root, None, None)?;
    if n != map.len(store)? {
        return Err(KvError::Corrupt("rbtree: count mismatch"));
    }
    Ok(n)
}
