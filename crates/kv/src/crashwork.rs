//! Crash-sweep adapter: drives any [`PersistentMap`] through the
//! `pangolin::crashcheck` oracle harness.
//!
//! [`MapCrashWorkload`] wraps a map type and a scripted operation sequence
//! into a [`CrashWorkload`]: every script step is one failure-atomic map
//! transaction followed by a commit point, so the sweep driver crashes the
//! structure at every device-op boundary inside its insert/update/remove
//! paths and checks, per crash plan, that the recovered map equals the
//! model before or after the interrupted operation — never a torn tree.
//!
//! Verification after each simulated crash goes beyond the harness's
//! byte-level oracle: the map is re-attached through its anchor, compared
//! key-by-key against a [`BTreeMap`] model replayed to the committed
//! prefix, and the structure's own invariant checker (search-tree order,
//! red-black height, skip-list tower monotonicity, …) is run on the
//! recovered state.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use pangolin::crashcheck::{CrashWorkload, SweepCtx};
use pangolin::{PglError, PglPool};
use pgl_pmemobj::PMEMoid;

use crate::btree::{self, BTree};
use crate::maps::PersistentMap;
use crate::store::{BatchOp, KvError, KvResult, PglStore, Store};

/// One scripted map operation; each runs as its own transaction and ends
/// with a commit point.
#[derive(Debug, Clone, Copy)]
pub enum MapOp {
    /// Insert a key that is expected to be absent (structural growth).
    Insert(u64, u64),
    /// Overwrite an existing key's value (in-place update).
    Update(u64, u64),
    /// Remove a key (unlink / rebalance paths).
    Remove(u64),
}

/// A [`CrashWorkload`] that runs a [`PersistentMap`] script.
pub struct MapCrashWorkload<M: PersistentMap> {
    name: String,
    prefill: Vec<(u64, u64)>,
    script: Vec<MapOp>,
    check: fn(&M, &PglStore) -> KvResult<u64>,
    _map: PhantomData<fn() -> M>,
}

/// Size of the pool root holding the map anchor (`count`-free: just the
/// anchor offset).
const ANCHOR_ROOT_SIZE: u64 = 16;

fn pgl(e: KvError) -> PglError {
    match e {
        KvError::Pgl(e) => e,
        other => PglError::Config(other.to_string()),
    }
}

impl<M: PersistentMap> MapCrashWorkload<M> {
    /// A workload over `M` with the given invariant checker, default
    /// prefill, and a script covering insert, update, and remove.
    ///
    /// The prefill keys are clustered small integers plus one high key —
    /// shared radix prefixes for the ctree/rtree, collisions for the
    /// hashmap — and the script grows, overwrites, and unlinks against
    /// them.
    pub fn new(check: fn(&M, &PglStore) -> KvResult<u64>) -> Self {
        MapCrashWorkload {
            name: format!("kv-crash-{}", M::NAME),
            prefill: vec![(1, 100), (2, 200), (3, 300), (5, 500), (0xFFFF_FF00_0000_0007, 700)],
            script: vec![MapOp::Insert(4, 400), MapOp::Update(2, 201), MapOp::Remove(1)],
            check,
            _map: PhantomData,
        }
    }

    /// Replaces the scripted operations.
    pub fn with_script(mut self, script: Vec<MapOp>) -> Self {
        self.script = script;
        self
    }

    /// Replaces the prefill pairs inserted during setup.
    pub fn with_prefill(mut self, prefill: Vec<(u64, u64)>) -> Self {
        self.prefill = prefill;
        self
    }

    fn attach(&self, store: &PglStore) -> pangolin::Result<M> {
        let root = store.root(ANCHOR_ROOT_SIZE, 0).map_err(pgl)?;
        let off: u64 = store.read_pod_direct(root, 0).map_err(pgl)?;
        if off == 0 {
            return Err(PglError::Config("map anchor missing from pool root".into()));
        }
        Ok(M::from_anchor(PMEMoid::new(store.uuid(), off)))
    }

    /// The in-DRAM model after `committed` script steps.
    fn model_after(&self, committed: usize) -> BTreeMap<u64, u64> {
        let mut model: BTreeMap<u64, u64> = self.prefill.iter().copied().collect();
        for op in &self.script[..committed] {
            match *op {
                MapOp::Insert(k, v) | MapOp::Update(k, v) => {
                    model.insert(k, v);
                }
                MapOp::Remove(k) => {
                    model.remove(&k);
                }
            }
        }
        model
    }

    /// Every key the workload ever touches (for absent-key probes).
    fn all_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.prefill.iter().map(|&(k, _)| k).collect();
        for op in &self.script {
            keys.push(match *op {
                MapOp::Insert(k, _) | MapOp::Update(k, _) | MapOp::Remove(k) => k,
            });
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

/// A [`CrashWorkload`] driving **group commits**: each script step is a
/// whole batch of B-tree operations executed inside one batched
/// transaction ([`Store::txn_batch`] — one redo-log persist, one commit
/// fence, one parity-patch window for the batch), followed by a commit
/// point.
///
/// The sweep driver crashes at every device-op boundary inside the
/// batches; verification proves the service-level group-commit guarantee:
/// the recovered map always equals the model replayed to a prefix of
/// **whole batches** — a crash mid-batch rolls the entire batch back,
/// never exposing a partially applied group.
pub struct BatchCrashWorkload {
    prefill: Vec<(u64, u64)>,
    batches: Vec<Vec<MapOp>>,
}

impl Default for BatchCrashWorkload {
    fn default() -> Self {
        BatchCrashWorkload::new()
    }
}

impl BatchCrashWorkload {
    /// The default script: three batches mixing growth, in-place updates,
    /// and removals against the shared prefill, so crashes land inside
    /// multi-operation redo logs that splice several tree paths at once.
    pub fn new() -> Self {
        BatchCrashWorkload {
            prefill: vec![(1, 100), (2, 200), (3, 300), (5, 500), (0xFFFF_FF00_0000_0007, 700)],
            batches: vec![
                vec![MapOp::Insert(4, 400), MapOp::Insert(6, 600), MapOp::Update(2, 201)],
                vec![MapOp::Remove(1), MapOp::Insert(7, 700), MapOp::Update(3, 301)],
                vec![
                    MapOp::Insert(8, 800),
                    MapOp::Remove(5),
                    MapOp::Update(4, 401),
                    MapOp::Insert(9, 900),
                ],
            ],
        }
    }

    /// Replaces the batch script.
    pub fn with_batches(mut self, batches: Vec<Vec<MapOp>>) -> Self {
        self.batches = batches;
        self
    }

    fn attach(&self, store: &PglStore) -> pangolin::Result<BTree> {
        let root = store.root(ANCHOR_ROOT_SIZE, 0).map_err(pgl)?;
        let off: u64 = store.read_pod_direct(root, 0).map_err(pgl)?;
        if off == 0 {
            return Err(PglError::Config("map anchor missing from pool root".into()));
        }
        Ok(BTree::from_anchor(PMEMoid::new(store.uuid(), off)))
    }

    /// The in-DRAM model after `committed` whole batches.
    fn model_after(&self, committed: usize) -> BTreeMap<u64, u64> {
        let mut model: BTreeMap<u64, u64> = self.prefill.iter().copied().collect();
        for op in self.batches[..committed].iter().flatten() {
            match *op {
                MapOp::Insert(k, v) | MapOp::Update(k, v) => {
                    model.insert(k, v);
                }
                MapOp::Remove(k) => {
                    model.remove(&k);
                }
            }
        }
        model
    }

    fn all_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.prefill.iter().map(|&(k, _)| k).collect();
        for op in self.batches.iter().flatten() {
            keys.push(match *op {
                MapOp::Insert(k, _) | MapOp::Update(k, _) | MapOp::Remove(k) => k,
            });
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

impl CrashWorkload for BatchCrashWorkload {
    fn name(&self) -> &str {
        "kv-crash-group-commit"
    }

    fn setup(&self, pool: &PglPool) -> pangolin::Result<()> {
        let store = PglStore::new(pool.clone());
        let map = BTree::create(&store).map_err(pgl)?;
        for &(k, v) in &self.prefill {
            map.insert(&store, k, v).map_err(pgl)?;
        }
        let root = store.root(ANCHOR_ROOT_SIZE, 0).map_err(pgl)?;
        let off = map.anchor().off;
        store.txn(&mut |tx| tx.write_pod(root, 0, &off)).map_err(pgl)?;
        Ok(())
    }

    fn run(&self, pool: &PglPool, ctx: &mut SweepCtx) -> pangolin::Result<()> {
        let store = PglStore::new(pool.clone());
        let map = self.attach(&store)?;
        for batch in &self.batches {
            let map = &map;
            let mut ops: Vec<BatchOp<'_>> = batch
                .iter()
                .map(|&op| -> BatchOp<'_> {
                    match op {
                        MapOp::Insert(k, v) | MapOp::Update(k, v) => {
                            Box::new(move |tx| map.insert_tx(tx, k, v))
                        }
                        MapOp::Remove(k) => Box::new(move |tx| map.remove_tx(tx, k)),
                    }
                })
                .collect();
            for result in store.txn_batch(&mut ops) {
                result.map_err(pgl)?;
            }
            ctx.commit_point(pool)?;
        }
        Ok(())
    }

    fn verify(&self, pool: &PglPool, committed: usize) -> pangolin::Result<()> {
        let store = PglStore::new(pool.clone());
        let map = self.attach(&store)?;
        let model = self.model_after(committed);

        // Whole-batch atomicity: every touched key agrees with the model
        // replayed to the committed batch boundary — a partially applied
        // batch would disagree on at least one key of the torn batch.
        for k in self.all_keys() {
            let got = map.get(&store, k).map_err(pgl)?;
            let want = model.get(&k).copied();
            if got != want {
                return Err(PglError::Config(format!(
                    "group commit: key {k:#x} = {got:?} after {committed} committed batches, \
                     model says {want:?}",
                )));
            }
        }
        let len = map.len(&store).map_err(pgl)?;
        if len != model.len() as u64 {
            return Err(PglError::Config(format!(
                "group commit: len {len} != model {}",
                model.len()
            )));
        }
        let counted = btree::check_invariants(&map, &store).map_err(pgl)?;
        if counted != model.len() as u64 {
            return Err(PglError::Config(format!(
                "group commit: invariant walk counted {counted}, model {}",
                model.len()
            )));
        }
        Ok(())
    }
}

impl<M: PersistentMap> CrashWorkload for MapCrashWorkload<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&self, pool: &PglPool) -> pangolin::Result<()> {
        let store = PglStore::new(pool.clone());
        let map = M::create(&store).map_err(pgl)?;
        for &(k, v) in &self.prefill {
            map.insert(&store, k, v).map_err(pgl)?;
        }
        // Anchor the map in the pool root so crash replicas can find it.
        let root = store.root(ANCHOR_ROOT_SIZE, 0).map_err(pgl)?;
        let off = map.anchor().off;
        store.txn(&mut |tx| tx.write_pod(root, 0, &off)).map_err(pgl)?;
        Ok(())
    }

    fn run(&self, pool: &PglPool, ctx: &mut SweepCtx) -> pangolin::Result<()> {
        let store = PglStore::new(pool.clone());
        let map = self.attach(&store)?;
        for op in &self.script {
            match *op {
                MapOp::Insert(k, v) | MapOp::Update(k, v) => {
                    map.insert(&store, k, v).map_err(pgl)?;
                }
                MapOp::Remove(k) => {
                    map.remove(&store, k).map_err(pgl)?;
                }
            }
            ctx.commit_point(pool)?;
        }
        Ok(())
    }

    fn verify(&self, pool: &PglPool, committed: usize) -> pangolin::Result<()> {
        let store = PglStore::new(pool.clone());
        let map = self.attach(&store)?;
        let model = self.model_after(committed);

        // Key-by-key agreement with the replayed model: present keys hold
        // the model's value, every other touched key reads absent.
        for k in self.all_keys() {
            let got = map.get(&store, k).map_err(pgl)?;
            let want = model.get(&k).copied();
            if got != want {
                return Err(PglError::Config(format!(
                    "{}: key {k:#x} = {got:?} after {committed} committed ops, model says {want:?}",
                    M::NAME
                )));
            }
        }
        let len = map.len(&store).map_err(pgl)?;
        if len != model.len() as u64 {
            return Err(PglError::Config(format!(
                "{}: len {len} != model {}",
                M::NAME,
                model.len()
            )));
        }

        // The structure's own invariants must hold on the recovered state.
        let counted = (self.check)(&map, &store).map_err(pgl)?;
        if counted != model.len() as u64 {
            return Err(PglError::Config(format!(
                "{}: invariant walk counted {counted}, model {}",
                M::NAME,
                model.len()
            )));
        }
        Ok(())
    }
}
