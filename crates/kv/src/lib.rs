//! # pgl-kv — the PMDK-toolkit persistent data structures
//!
//! Rust ports of the six key-value structures the Pangolin paper benchmarks
//! (§4.5, Table 3): crit-bit tree, red-black tree, B-tree, skip list,
//! compressed radix tree, and chained hash map. Node layouts match the
//! paper's measured object sizes (56 / 80 / 304 / 408 / 4136 / 40 bytes +
//! growing table), so transaction-size and throughput shapes carry over.
//!
//! Every structure is generic over a [`store::Store`] backend — the
//! `libpmemobj` baseline (plain or replicated) or Pangolin in any of its
//! fault-tolerance modes — so a single implementation serves the whole
//! Table 2 comparison matrix. All six are written against the typed
//! object layer (`PObj<T>` handles, `field!` offsets, [`store::ValueSlot`]
//! tagged slots) mirrored over both backends by the helpers on
//! `dyn `[`store::TxOps`]; hand-computed byte offsets no longer appear in
//! this crate. See the workspace `README.md` for how this crate sits in
//! the nvm → pmemobj → pangolin → kv → bench layering, and
//! `EXPERIMENTS.md` for the Figure 5 / Table 3 runs built on it.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use pangolin::{PglConfig, PglPool};
//! use pgl_kv::maps::PersistentMap;
//! use pgl_kv::store::PglStore;
//! use pgl_kv::BTree;
//! use pgl_nvm::{DeviceConfig, NvmDevice};
//!
//! let cfg = PglConfig::small();
//! let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
//! let store = PglStore::new(PglPool::create(dev, cfg).unwrap());
//! let map = BTree::create(&store).unwrap();
//! map.insert(&store, 7, 700).unwrap();
//! assert_eq!(map.get(&store, 7).unwrap(), Some(700));
//! ```

#![warn(missing_docs)]

pub mod btree;
pub mod crashwork;
pub mod ctree;
pub mod hashmap;
pub mod lockfree;
pub mod maps;
pub mod rbtree;
pub mod rtree;
pub mod skiplist;
pub mod store;
pub mod workload;

pub use btree::BTree;
pub use ctree::CTree;
pub use hashmap::HashMap;
pub use lockfree::{LfHash, LfQueue, LfStack, LockedQueue, LockedStack};
pub use maps::PersistentMap;
pub use rbtree::RbTree;
pub use rtree::RTree;
pub use skiplist::SkipList;
pub use store::{KvError, KvResult, PglStore, PmemStore, Store};
