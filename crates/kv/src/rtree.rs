//! Compressed 256-ary radix tree (PMDK's `rtree_map`) over the key's
//! big-endian bytes: 4136-byte nodes (Table 3's rtree row).
//!
//! Path compression stores each node's byte prefix inline, so with random
//! 64-bit keys an insert allocates about one node (the paper measures
//! 1.09), not one per key byte.
//!
//! The 4136-byte node is exactly the kind of large struct the typed
//! [`field!`] accessors exist for: every slot or metadata update logs tens
//! of bytes, never the whole node.

use pangolin::typed::{Field, PObj};
use pangolin::{field, impl_pod, impl_ptype};
use pgl_pmemobj::PMEMoid;

use crate::maps::PersistentMap;
use crate::store::{KvError, KvResult, Store, TxOps};

const TYPE_ANCHOR: u32 = 140;
const TYPE_NODE: u32 = 141;

const KEY_BYTES: usize = 8;

/// Node metadata, stored after the 4096-byte slot array:
/// `{value, has_value, key_len, prefix[8], nchildren, pad}` = 40 bytes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct RMeta {
    value: u64,
    has_value: u32,
    key_len: u32,
    prefix: [u8; 8],
    nchildren: u64,
    pad: u64,
}
impl_pod!(RMeta, 40);

impl RMeta {
    /// The in-range prefix slice.
    fn prefix(&self) -> KvResult<&[u8]> {
        let klen = self.key_len as usize;
        if klen > KEY_BYTES {
            return Err(KvError::Corrupt("rtree: prefix length out of range"));
        }
        Ok(&self.prefix[..klen])
    }
}

/// Node layout, 4136 bytes total: `{slots[256] = 4096, meta}`.
#[derive(Clone, Copy)]
#[repr(C)]
struct RNode {
    slots: [PObj<RNode>; 256],
    meta: RMeta,
}
impl_ptype!(RNode, 4136, TYPE_NODE);

/// Anchor: `{count, root}` = 24 bytes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct RAnchor {
    count: u64,
    root: PObj<RNode>,
}
impl_ptype!(RAnchor, 24, TYPE_ANCHOR);

type NodeH = PObj<RNode>;

/// The slot holding the child reached through byte `b`.
fn slot_at(b: u8) -> Field<RNode, NodeH> {
    field!(RNode, slots: [PObj<RNode>; 256]).index(b as usize)
}

fn key_bytes(key: u64) -> [u8; 8] {
    key.to_be_bytes()
}

/// Where a child pointer lives: the anchor's root slot or a node slot.
#[derive(Debug, Clone, Copy)]
enum SlotLoc {
    Root(PObj<RAnchor>),
    Node(NodeH, u8),
}

fn read_slot(tx: &mut dyn TxOps, loc: SlotLoc) -> KvResult<NodeH> {
    match loc {
        SlotLoc::Root(a) => tx.read_at(a, field!(RAnchor, root: PObj<RNode>)),
        SlotLoc::Node(n, b) => tx.read_at(n, slot_at(b)),
    }
}

fn write_slot(tx: &mut dyn TxOps, loc: SlotLoc, h: NodeH) -> KvResult<()> {
    match loc {
        SlotLoc::Root(a) => tx.write_at(a, field!(RAnchor, root: PObj<RNode>), &h),
        SlotLoc::Node(n, b) => tx.write_at(n, slot_at(b), &h),
    }
}

fn read_meta(tx: &mut dyn TxOps, node: NodeH) -> KvResult<RMeta> {
    let meta: RMeta = tx.read_at(node, field!(RNode, meta: RMeta))?;
    meta.prefix()?; // validate key_len
    Ok(meta)
}

fn write_prefix(tx: &mut dyn TxOps, node: NodeH, prefix: &[u8]) -> KvResult<()> {
    tx.write_at(node, field!(RNode, meta.key_len: u32), &(prefix.len() as u32))?;
    let mut buf = [0u8; 8];
    buf[..prefix.len()].copy_from_slice(prefix);
    tx.write_at(node, field!(RNode, meta.prefix: [u8; 8]), &buf)
}

fn write_value(tx: &mut dyn TxOps, node: NodeH, value: Option<u64>) -> KvResult<()> {
    match value {
        Some(v) => {
            tx.write_at(node, field!(RNode, meta.value: u64), &v)?;
            tx.write_at(node, field!(RNode, meta.has_value: u32), &1u32)
        }
        None => tx.write_at(node, field!(RNode, meta.has_value: u32), &0u32),
    }
}

/// The compressed radix map.
pub struct RTree {
    anchor: PMEMoid,
}

impl RTree {
    fn anchor_h(&self) -> PObj<RAnchor> {
        PObj::from_oid(self.anchor)
    }

    fn bump_count(tx: &mut dyn TxOps, anchor: PObj<RAnchor>, delta: i64) -> KvResult<()> {
        let count: u64 = tx.read_at(anchor, field!(RAnchor, count: u64))?;
        let n = count.checked_add_signed(delta).ok_or(KvError::Corrupt("rtree count"))?;
        tx.write_at(anchor, field!(RAnchor, count: u64), &n)
    }

    /// Allocates a leaf holding `suffix` as its prefix and `value`.
    fn alloc_leaf(tx: &mut dyn TxOps, suffix: &[u8], value: u64) -> KvResult<NodeH> {
        let node = tx.alloc_obj_zeroed::<RNode>()?;
        write_prefix(tx, node, suffix)?;
        write_value(tx, node, Some(value))?;
        Ok(node)
    }
}

impl PersistentMap for RTree {
    const NAME: &'static str = "rtree";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| tx.alloc_obj_zeroed::<RAnchor>())?;
        Ok(RTree { anchor: anchor.oid() })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        RTree { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let k = key_bytes(key);
            let mut loc = SlotLoc::Root(anchor);
            let mut cur = read_slot(tx, loc)?;
            if cur.is_null() {
                let leaf = Self::alloc_leaf(tx, &k, value)?;
                write_slot(tx, loc, leaf)?;
                Self::bump_count(tx, anchor, 1)?;
                return Ok(None);
            }
            let mut depth = 0usize; // key bytes consumed
            loop {
                let meta = read_meta(tx, cur)?;
                let rest = &k[depth..];
                let m = meta.prefix()?.iter().zip(rest.iter()).take_while(|(a, b)| a == b).count();
                if m < meta.prefix()?.len() {
                    // Diverges inside the prefix: split.
                    let parent = tx.alloc_obj_zeroed::<RNode>()?;
                    write_prefix(tx, parent, &meta.prefix()?[..m])?;
                    // Re-hang `cur` below the split point.
                    let hang = meta.prefix()?[m];
                    let tail: Vec<u8> = meta.prefix()?[m + 1..].to_vec();
                    write_prefix(tx, cur, &tail)?;
                    tx.write_at(parent, slot_at(hang), &cur)?;
                    if depth + m == KEY_BYTES {
                        // The key ends exactly at the split node.
                        write_value(tx, parent, Some(value))?;
                        tx.write_at(parent, field!(RNode, meta.nchildren: u64), &1u64)?;
                    } else {
                        let b = k[depth + m];
                        let leaf = Self::alloc_leaf(tx, &k[depth + m + 1..], value)?;
                        tx.write_at(parent, slot_at(b), &leaf)?;
                        tx.write_at(parent, field!(RNode, meta.nchildren: u64), &2u64)?;
                    }
                    write_slot(tx, loc, parent)?;
                    Self::bump_count(tx, anchor, 1)?;
                    return Ok(None);
                }
                depth += m;
                if depth == KEY_BYTES {
                    let old = (meta.has_value != 0).then_some(meta.value);
                    write_value(tx, cur, Some(value))?;
                    if old.is_none() {
                        Self::bump_count(tx, anchor, 1)?;
                    }
                    return Ok(old);
                }
                let b = k[depth];
                let child: NodeH = tx.read_at(cur, slot_at(b))?;
                if child.is_null() {
                    let leaf = Self::alloc_leaf(tx, &k[depth + 1..], value)?;
                    tx.write_at(cur, slot_at(b), &leaf)?;
                    tx.write_at(cur, field!(RNode, meta.nchildren: u64), &(meta.nchildren + 1))?;
                    Self::bump_count(tx, anchor, 1)?;
                    return Ok(None);
                }
                loc = SlotLoc::Node(cur, b);
                cur = child;
                depth += 1;
            }
        })
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let k = key_bytes(key);
            // Path of (slot location, node) pairs from the root.
            let mut path: Vec<(SlotLoc, NodeH)> = Vec::new();
            let mut loc = SlotLoc::Root(anchor);
            let mut cur = read_slot(tx, loc)?;
            let mut depth = 0usize;
            while !cur.is_null() {
                let meta = read_meta(tx, cur)?;
                let rest = &k[depth..];
                let prefix = meta.prefix()?;
                if rest.len() < prefix.len() || rest[..prefix.len()] != prefix[..] {
                    return Ok(None);
                }
                depth += prefix.len();
                path.push((loc, cur));
                if depth == KEY_BYTES {
                    if meta.has_value == 0 {
                        return Ok(None);
                    }
                    write_value(tx, cur, None)?;
                    Self::bump_count(tx, anchor, -1)?;
                    // Cascade-free empty nodes up the path.
                    for i in (0..path.len()).rev() {
                        let (l, n) = path[i];
                        let m = read_meta(tx, n)?;
                        if m.has_value != 0 || m.nchildren > 0 {
                            break;
                        }
                        write_slot(tx, l, PObj::null())?;
                        tx.free_obj(n)?;
                        if i > 0 {
                            let (_, parent) = path[i - 1];
                            let pm = read_meta(tx, parent)?;
                            tx.write_at(
                                parent,
                                field!(RNode, meta.nchildren: u64),
                                &(pm.nchildren - 1),
                            )?;
                        }
                    }
                    return Ok(Some(meta.value));
                }
                let b = k[depth];
                loc = SlotLoc::Node(cur, b);
                cur = read_slot(tx, loc)?;
                depth += 1;
            }
            Ok(None)
        })
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let k = key_bytes(key);
        let mut cur: NodeH =
            store.read_at_direct(self.anchor_h(), field!(RAnchor, root: PObj<RNode>))?;
        let mut depth = 0usize;
        while !cur.is_null() {
            let meta: RMeta = store.read_at_direct(cur, field!(RNode, meta: RMeta))?;
            let prefix = meta.prefix()?;
            if depth + prefix.len() > KEY_BYTES {
                return Err(KvError::Corrupt("rtree: bad prefix length"));
            }
            if prefix[..] != k[depth..depth + prefix.len()] {
                return Ok(None);
            }
            depth += prefix.len();
            if depth == KEY_BYTES {
                if meta.has_value == 0 {
                    return Ok(None);
                }
                return Ok(Some(meta.value));
            }
            cur = store.read_at_direct(cur, slot_at(k[depth]))?;
            depth += 1;
        }
        Ok(None)
    }
}

/// Test helper: walks the tree verifying prefix-depth consistency and the
/// child counters; returns the number of stored keys.
pub fn check_invariants<S: Store>(map: &RTree, store: &S) -> KvResult<u64> {
    fn walk<S: Store>(store: &S, node: NodeH, depth: usize) -> KvResult<u64> {
        let meta: RMeta = store.read_at_direct(node, field!(RNode, meta: RMeta))?;
        let klen = meta.prefix()?.len();
        if depth + klen > KEY_BYTES {
            return Err(KvError::Corrupt("rtree: path deeper than the key"));
        }
        let depth = depth + klen;
        let mut n = 0u64;
        if meta.has_value != 0 {
            if depth != KEY_BYTES {
                return Err(KvError::Corrupt("rtree: value above full depth"));
            }
            n += 1;
        }
        let mut children = 0u64;
        if depth < KEY_BYTES {
            for b in 0..=255u8 {
                let child: NodeH = store.read_at_direct(node, slot_at(b))?;
                if !child.is_null() {
                    children += 1;
                    n += walk(store, child, depth + 1)?;
                }
            }
        }
        if children != meta.nchildren {
            return Err(KvError::Corrupt("rtree: child count mismatch"));
        }
        if meta.has_value == 0 && children == 0 {
            return Err(KvError::Corrupt("rtree: dangling empty node"));
        }
        Ok(n)
    }
    let root: NodeH = store.read_at_direct(map.anchor_h(), field!(RAnchor, root: PObj<RNode>))?;
    let n = if root.is_null() { 0 } else { walk(store, root, 0)? };
    if n != map.len(store)? {
        return Err(KvError::Corrupt("rtree: count mismatch"));
    }
    Ok(n)
}
