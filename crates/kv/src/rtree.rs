//! Compressed 256-ary radix tree (PMDK's `rtree_map`) over the key's
//! big-endian bytes: 4136-byte nodes (Table 3's rtree row).
//!
//! Path compression stores each node's byte prefix inline, so with random
//! 64-bit keys an insert allocates about one node (the paper measures
//! 1.09), not one per key byte.

use pgl_pmemobj::{PMEMoid, OID_NULL};

use crate::maps::PersistentMap;
use crate::store::{KvError, KvResult, Store, TxOps};

const TYPE_ANCHOR: u32 = 140;
const TYPE_NODE: u32 = 141;

/// Node layout, 4136 bytes total:
/// `{slots[256]=4096, value u64, has_value u32, key_len u32, prefix[8],
///   nchildren u64, pad u64}`.
const NODE_SIZE: u64 = 4136;
const VALUE_OFF: u64 = 4096;
const HAS_OFF: u64 = 4104;
const KLEN_OFF: u64 = 4108;
const PREFIX_OFF: u64 = 4112;
const NCHILD_OFF: u64 = 4120;

const KEY_BYTES: usize = 8;

fn slot_off(b: u8) -> u64 {
    (b as u64) * 16
}

/// Anchor: `{count, root}`.
const ANCHOR_SIZE: u64 = 24;
const ROOT_OFF: u64 = 8;

fn key_bytes(key: u64) -> [u8; 8] {
    key.to_be_bytes()
}

/// Where a child pointer lives (anchor root slot or a node slot).
#[derive(Debug, Clone, Copy)]
struct SlotLoc {
    obj: PMEMoid,
    off: u64,
}

struct NodeMeta {
    value: u64,
    has_value: bool,
    prefix: Vec<u8>,
    nchildren: u64,
}

fn read_meta(tx: &mut dyn TxOps, node: PMEMoid) -> KvResult<NodeMeta> {
    let mut buf = [0u8; 40];
    tx.read_bytes(node, VALUE_OFF, &mut buf)?;
    let value = u64::from_le_bytes(buf[0..8].try_into().expect("8"));
    let has = u32::from_le_bytes(buf[8..12].try_into().expect("4")) != 0;
    let klen = u32::from_le_bytes(buf[12..16].try_into().expect("4")) as usize;
    if klen > KEY_BYTES {
        return Err(KvError::Corrupt("rtree: prefix length out of range"));
    }
    let prefix = buf[16..16 + klen].to_vec();
    let nchildren = u64::from_le_bytes(buf[24..32].try_into().expect("8"));
    Ok(NodeMeta { value, has_value: has, prefix, nchildren })
}

fn write_prefix(tx: &mut dyn TxOps, node: PMEMoid, prefix: &[u8]) -> KvResult<()> {
    tx.write_pod(node, KLEN_OFF, &(prefix.len() as u32))?;
    let mut buf = [0u8; 8];
    buf[..prefix.len()].copy_from_slice(prefix);
    tx.write_bytes(node, PREFIX_OFF, &buf)
}

fn write_value(tx: &mut dyn TxOps, node: PMEMoid, value: Option<u64>) -> KvResult<()> {
    match value {
        Some(v) => {
            tx.write_pod(node, VALUE_OFF, &v)?;
            tx.write_pod(node, HAS_OFF, &1u32)
        }
        None => tx.write_pod(node, HAS_OFF, &0u32),
    }
}

/// The compressed radix map.
pub struct RTree {
    anchor: PMEMoid,
}

impl RTree {
    fn bump_count(tx: &mut dyn TxOps, anchor: PMEMoid, delta: i64) -> KvResult<()> {
        let mut buf = [0u8; 8];
        tx.read_bytes(anchor, 0, &mut buf)?;
        let n = u64::from_le_bytes(buf)
            .checked_add_signed(delta)
            .ok_or(KvError::Corrupt("rtree count"))?;
        tx.write_bytes(anchor, 0, &n.to_le_bytes())
    }

    /// Allocates a leaf holding `suffix` as its prefix and `value`.
    fn alloc_leaf(tx: &mut dyn TxOps, suffix: &[u8], value: u64) -> KvResult<PMEMoid> {
        let node = tx.alloc_zeroed(NODE_SIZE, TYPE_NODE)?;
        write_prefix(tx, node, suffix)?;
        write_value(tx, node, Some(value))?;
        Ok(node)
    }
}

impl PersistentMap for RTree {
    const NAME: &'static str = "rtree";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| tx.alloc_zeroed(ANCHOR_SIZE, TYPE_ANCHOR))?;
        Ok(RTree { anchor })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        RTree { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let k = key_bytes(key);
            let mut loc = SlotLoc { obj: anchor, off: ROOT_OFF };
            let mut cur: PMEMoid = tx.read_pod(loc.obj, loc.off)?;
            if cur.is_null() {
                let leaf = Self::alloc_leaf(tx, &k, value)?;
                tx.write_pod(loc.obj, loc.off, &leaf)?;
                Self::bump_count(tx, anchor, 1)?;
                return Ok(None);
            }
            let mut depth = 0usize; // key bytes consumed
            loop {
                let meta = read_meta(tx, cur)?;
                let rest = &k[depth..];
                let m = meta
                    .prefix
                    .iter()
                    .zip(rest.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                if m < meta.prefix.len() {
                    // Diverges inside the prefix: split.
                    let parent = tx.alloc_zeroed(NODE_SIZE, TYPE_NODE)?;
                    write_prefix(tx, parent, &meta.prefix[..m])?;
                    // Re-hang `cur` below the split point.
                    let hang = meta.prefix[m];
                    write_prefix(tx, cur, &meta.prefix[m + 1..])?;
                    tx.write_pod(parent, slot_off(hang), &cur)?;
                    if depth + m == KEY_BYTES {
                        // The key ends exactly at the split node.
                        write_value(tx, parent, Some(value))?;
                        tx.write_pod(parent, NCHILD_OFF, &1u64)?;
                    } else {
                        let b = k[depth + m];
                        let leaf = Self::alloc_leaf(tx, &k[depth + m + 1..], value)?;
                        tx.write_pod(parent, slot_off(b), &leaf)?;
                        tx.write_pod(parent, NCHILD_OFF, &2u64)?;
                    }
                    tx.write_pod(loc.obj, loc.off, &parent)?;
                    Self::bump_count(tx, anchor, 1)?;
                    return Ok(None);
                }
                depth += m;
                if depth == KEY_BYTES {
                    let old = meta.has_value.then_some(meta.value);
                    write_value(tx, cur, Some(value))?;
                    if old.is_none() {
                        Self::bump_count(tx, anchor, 1)?;
                    }
                    return Ok(old);
                }
                let b = k[depth];
                let child: PMEMoid = tx.read_pod(cur, slot_off(b))?;
                if child.is_null() {
                    let leaf = Self::alloc_leaf(tx, &k[depth + 1..], value)?;
                    tx.write_pod(cur, slot_off(b), &leaf)?;
                    tx.write_pod(cur, NCHILD_OFF, &(meta.nchildren + 1))?;
                    Self::bump_count(tx, anchor, 1)?;
                    return Ok(None);
                }
                loc = SlotLoc { obj: cur, off: slot_off(b) };
                cur = child;
                depth += 1;
            }
        })
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let k = key_bytes(key);
            // Path of (slot location, node) pairs from the root.
            let mut path: Vec<(SlotLoc, PMEMoid)> = Vec::new();
            let mut loc = SlotLoc { obj: anchor, off: ROOT_OFF };
            let mut cur: PMEMoid = tx.read_pod(loc.obj, loc.off)?;
            let mut depth = 0usize;
            while !cur.is_null() {
                let meta = read_meta(tx, cur)?;
                let rest = &k[depth..];
                if rest.len() < meta.prefix.len() || rest[..meta.prefix.len()] != meta.prefix[..]
                {
                    return Ok(None);
                }
                depth += meta.prefix.len();
                path.push((loc, cur));
                if depth == KEY_BYTES {
                    if !meta.has_value {
                        return Ok(None);
                    }
                    write_value(tx, cur, None)?;
                    Self::bump_count(tx, anchor, -1)?;
                    // Cascade-free empty nodes up the path.
                    for i in (0..path.len()).rev() {
                        let (l, n) = path[i];
                        let m = read_meta(tx, n)?;
                        if m.has_value || m.nchildren > 0 {
                            break;
                        }
                        tx.write_pod(l.obj, l.off, &OID_NULL)?;
                        tx.free(n)?;
                        if i > 0 {
                            let (_, parent) = path[i - 1];
                            let pm = read_meta(tx, parent)?;
                            tx.write_pod(parent, NCHILD_OFF, &(pm.nchildren - 1))?;
                        }
                    }
                    return Ok(Some(meta.value));
                }
                let b = k[depth];
                loc = SlotLoc { obj: cur, off: slot_off(b) };
                cur = tx.read_pod(loc.obj, loc.off)?;
                depth += 1;
            }
            Ok(None)
        })
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let k = key_bytes(key);
        let mut cur: PMEMoid = store.read_pod_direct(self.anchor, ROOT_OFF)?;
        let mut depth = 0usize;
        while !cur.is_null() {
            let klen: u32 = store.read_pod_direct(cur, KLEN_OFF)?;
            let klen = klen as usize;
            if klen > KEY_BYTES || depth + klen > KEY_BYTES {
                return Err(KvError::Corrupt("rtree: bad prefix length"));
            }
            let mut pbuf = [0u8; 8];
            store.read_direct(cur, PREFIX_OFF, &mut pbuf)?;
            if pbuf[..klen] != k[depth..depth + klen] {
                return Ok(None);
            }
            depth += klen;
            if depth == KEY_BYTES {
                let has: u32 = store.read_pod_direct(cur, HAS_OFF)?;
                if has == 0 {
                    return Ok(None);
                }
                return Ok(Some(store.read_pod_direct(cur, VALUE_OFF)?));
            }
            cur = store.read_pod_direct(cur, slot_off(k[depth]))?;
            depth += 1;
        }
        Ok(None)
    }
}

/// Test helper: walks the tree verifying prefix-depth consistency and the
/// child counters; returns the number of stored keys.
pub fn check_invariants<S: Store>(map: &RTree, store: &S) -> KvResult<u64> {
    fn walk<S: Store>(store: &S, node: PMEMoid, depth: usize) -> KvResult<u64> {
        let klen: u32 = store.read_pod_direct(node, KLEN_OFF)?;
        let klen = klen as usize;
        if depth + klen > KEY_BYTES {
            return Err(KvError::Corrupt("rtree: path deeper than the key"));
        }
        let depth = depth + klen;
        let has: u32 = store.read_pod_direct(node, HAS_OFF)?;
        let mut n = 0u64;
        if has != 0 {
            if depth != KEY_BYTES {
                return Err(KvError::Corrupt("rtree: value above full depth"));
            }
            n += 1;
        }
        let mut children = 0u64;
        if depth < KEY_BYTES {
            for b in 0..=255u8 {
                let child: PMEMoid = store.read_pod_direct(node, slot_off(b))?;
                if !child.is_null() {
                    children += 1;
                    n += walk(store, child, depth + 1)?;
                }
            }
        }
        let nchildren: u64 = store.read_pod_direct(node, NCHILD_OFF)?;
        if children != nchildren {
            return Err(KvError::Corrupt("rtree: child count mismatch"));
        }
        if has == 0 && children == 0 {
            return Err(KvError::Corrupt("rtree: dangling empty node"));
        }
        Ok(n)
    }
    let root: PMEMoid = store.read_pod_direct(map.anchor(), ROOT_OFF)?;
    let n = if root.is_null() { 0 } else { walk(store, root, 0)? };
    if n != map.len(store)? {
        return Err(KvError::Corrupt("rtree: count mismatch"));
    }
    Ok(n)
}
