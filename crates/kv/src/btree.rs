//! B-tree of order 8 (PMDK's `btree_map`): 304-byte nodes with up to 7
//! items and 8 children (Table 3's btree row).
//!
//! Insertion splits full nodes pre-emptively on the way down; removal uses
//! the classic rebalance-before-descend algorithm (borrow from a sibling or
//! merge), so every visited node has at least `t` items before descending.

use pangolin::typed::PObj;
use pangolin::{field, impl_pod, impl_ptype};
use pgl_pmemobj::PMEMoid;

use crate::maps::PersistentMap;
use crate::store::{KvError, KvResult, Store, TxOps};

const TYPE_ANCHOR: u32 = 120;
const TYPE_NODE: u32 = 121;

/// Minimum degree `t`: nodes hold `t-1..=2t-1` items.
const T: usize = 4;
const MAX_ITEMS: usize = 2 * T - 1; // 7
const MIN_ITEMS: usize = T - 1; // 3

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
struct Item {
    key: u64,
    value: u64,
    pad: u64,
}
impl_pod!(Item, 24);

/// The 304-byte node, read and written whole (PMDK snapshots node-sized
/// ranges similarly, which is what makes Table 3's "Mod" column node-scale).
#[derive(Clone, Copy)]
#[repr(C)]
struct BNode {
    n: u64,
    items: [Item; MAX_ITEMS],
    children: [PObj<BNode>; 2 * T],
}
impl_ptype!(BNode, 304, TYPE_NODE);

/// Anchor: `{count, root}` = 24 bytes.
#[derive(Clone, Copy, Default)]
#[repr(C)]
struct BAnchor {
    count: u64,
    root: PObj<BNode>,
}
impl_ptype!(BAnchor, 24, TYPE_ANCHOR);

impl BNode {
    fn empty() -> BNode {
        BNode { n: 0, items: [Item::default(); MAX_ITEMS], children: [PObj::null(); 2 * T] }
    }

    fn is_leaf(&self) -> bool {
        self.children[0].is_null()
    }

    /// First index with `key <= items[i].key`.
    fn lower_bound(&self, key: u64) -> usize {
        let n = self.n as usize;
        (0..n).find(|&i| key <= self.items[i].key).unwrap_or(n)
    }

    fn insert_item_at(&mut self, i: usize, item: Item) {
        let n = self.n as usize;
        self.items.copy_within(i..n, i + 1);
        self.items[i] = item;
        self.n += 1;
    }

    fn remove_item_at(&mut self, i: usize) -> Item {
        let n = self.n as usize;
        let it = self.items[i];
        self.items.copy_within(i + 1..n, i);
        self.n -= 1;
        it
    }

    fn insert_child_at(&mut self, i: usize, c: PObj<BNode>) {
        let n = self.n as usize; // called after the item insert
        self.children.copy_within(i..n, i + 1);
        self.children[i] = c;
    }

    /// Removes `children[i]`; must run before the paired item removal so
    /// `n` still reflects the old item count (children are `0..=n`).
    fn remove_child_at(&mut self, i: usize) -> PObj<BNode> {
        let c = self.children[i];
        let n = self.n as usize;
        self.children.copy_within(i + 1..=n, i);
        c
    }
}

fn read_node(tx: &mut dyn TxOps, h: PObj<BNode>) -> KvResult<BNode> {
    tx.get_obj(h)
}

fn write_node(tx: &mut dyn TxOps, h: PObj<BNode>, node: &BNode) -> KvResult<()> {
    tx.set_obj(h, node)
}

/// The order-8 B-tree map.
pub struct BTree {
    anchor: PMEMoid,
}

impl BTree {
    fn anchor_h(&self) -> PObj<BAnchor> {
        PObj::from_oid(self.anchor)
    }

    fn bump_count(tx: &mut dyn TxOps, anchor: PObj<BAnchor>, delta: i64) -> KvResult<()> {
        let count: u64 = tx.read_at(anchor, field!(BAnchor, count: u64))?;
        let n = count.checked_add_signed(delta).ok_or(KvError::Corrupt("btree count"))?;
        tx.write_at(anchor, field!(BAnchor, count: u64), &n)
    }

    /// Splits the full child `parent.children[i]`, promoting its median.
    fn split_child(
        tx: &mut dyn TxOps,
        parent_h: PObj<BNode>,
        parent: &mut BNode,
        i: usize,
    ) -> KvResult<()> {
        let child_h = parent.children[i];
        let mut child = read_node(tx, child_h)?;
        debug_assert_eq!(child.n as usize, MAX_ITEMS);
        let right_h = tx.alloc_obj_zeroed::<BNode>()?;
        let mut right = BNode::empty();
        right.n = (T - 1) as u64;
        right.items[..T - 1].copy_from_slice(&child.items[T..]);
        if !child.is_leaf() {
            right.children[..T].copy_from_slice(&child.children[T..]);
        }
        let median = child.items[T - 1];
        child.n = (T - 1) as u64;

        parent.insert_item_at(i, median);
        parent.insert_child_at(i + 1, right_h);

        write_node(tx, child_h, &child)?;
        write_node(tx, right_h, &right)?;
        write_node(tx, parent_h, parent)
    }

    /// Ensures `parent.children[i]` has at least `T` items before a
    /// descending delete, borrowing from a sibling or merging. Returns the
    /// child to descend into (it changes when merging leftward).
    fn fix_child(
        tx: &mut dyn TxOps,
        parent_h: PObj<BNode>,
        parent: &mut BNode,
        i: usize,
    ) -> KvResult<PObj<BNode>> {
        let child_h = parent.children[i];
        let mut child = read_node(tx, child_h)?;
        if child.n as usize > MIN_ITEMS {
            return Ok(child_h);
        }
        // Borrow from the left sibling.
        if i > 0 {
            let left_h = parent.children[i - 1];
            let mut left = read_node(tx, left_h)?;
            if left.n as usize > MIN_ITEMS {
                let moved = left.items[left.n as usize - 1];
                child.insert_item_at(0, parent.items[i - 1]);
                if !child.is_leaf() {
                    let c = left.children[left.n as usize];
                    child.children.copy_within(0..child.n as usize, 1);
                    child.children[0] = c;
                }
                left.n -= 1;
                parent.items[i - 1] = moved;
                write_node(tx, left_h, &left)?;
                write_node(tx, child_h, &child)?;
                write_node(tx, parent_h, parent)?;
                return Ok(child_h);
            }
        }
        // Borrow from the right sibling.
        if i < parent.n as usize {
            let right_h = parent.children[i + 1];
            let mut right = read_node(tx, right_h)?;
            if right.n as usize > MIN_ITEMS {
                let n = child.n as usize;
                child.items[n] = parent.items[i];
                if !child.is_leaf() {
                    child.children[n + 1] = right.children[0];
                    right.children.copy_within(1..=right.n as usize, 0);
                }
                child.n += 1;
                parent.items[i] = right.remove_item_at(0);
                write_node(tx, right_h, &right)?;
                write_node(tx, child_h, &child)?;
                write_node(tx, parent_h, parent)?;
                return Ok(child_h);
            }
        }
        // Merge with a sibling.
        if i > 0 {
            Self::merge_children(tx, parent_h, parent, i - 1)?;
            Ok(parent.children[i - 1])
        } else {
            Self::merge_children(tx, parent_h, parent, i)?;
            Ok(parent.children[i])
        }
    }

    /// Merges `children[i]`, `items[i]`, and `children[i+1]` into
    /// `children[i]`, freeing the right node.
    fn merge_children(
        tx: &mut dyn TxOps,
        parent_h: PObj<BNode>,
        parent: &mut BNode,
        i: usize,
    ) -> KvResult<()> {
        let left_h = parent.children[i];
        let right_h = parent.children[i + 1];
        let mut left = read_node(tx, left_h)?;
        let right = read_node(tx, right_h)?;
        let ln = left.n as usize;
        let rn = right.n as usize;
        debug_assert!(ln + rn < MAX_ITEMS);
        left.items[ln] = parent.items[i];
        left.items[ln + 1..ln + 1 + rn].copy_from_slice(&right.items[..rn]);
        if !left.is_leaf() {
            left.children[ln + 1..ln + 2 + rn].copy_from_slice(&right.children[..=rn]);
        }
        left.n = (ln + 1 + rn) as u64;

        parent.remove_child_at(i + 1);
        parent.remove_item_at(i);

        write_node(tx, left_h, &left)?;
        write_node(tx, parent_h, parent)?;
        tx.free_obj(right_h)
    }

    fn find_max(tx: &mut dyn TxOps, mut h: PObj<BNode>) -> KvResult<Item> {
        loop {
            let node = read_node(tx, h)?;
            if node.is_leaf() {
                return Ok(node.items[node.n as usize - 1]);
            }
            h = node.children[node.n as usize];
        }
    }

    fn find_min(tx: &mut dyn TxOps, mut h: PObj<BNode>) -> KvResult<Item> {
        loop {
            let node = read_node(tx, h)?;
            if node.is_leaf() {
                return Ok(node.items[0]);
            }
            h = node.children[0];
        }
    }

    /// Insert inside an already-open transaction — the group-commit
    /// batcher drives many of these through one [`crate::store::Store::txn_batch`]
    /// commit. Returns the previous value, if any.
    pub fn insert_tx(&self, tx: &mut dyn TxOps, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        let root_fld = field!(BAnchor, root: PObj<BNode>);
        let mut root: PObj<BNode> = tx.read_at(anchor, root_fld)?;
        if root.is_null() {
            let h = tx.alloc_obj_zeroed::<BNode>()?;
            let mut node = BNode::empty();
            node.n = 1;
            node.items[0] = Item { key, value, pad: 0 };
            write_node(tx, h, &node)?;
            tx.write_at(anchor, root_fld, &h)?;
            Self::bump_count(tx, anchor, 1)?;
            return Ok(None);
        }
        // Pre-emptive root split.
        if read_node(tx, root)?.n as usize == MAX_ITEMS {
            let new_root = tx.alloc_obj_zeroed::<BNode>()?;
            let mut nr = BNode::empty();
            nr.children[0] = root;
            Self::split_child(tx, new_root, &mut nr, 0)?;
            tx.write_at(anchor, root_fld, &new_root)?;
            root = new_root;
        }
        let mut cur = root;
        loop {
            let mut node = read_node(tx, cur)?;
            let i = node.lower_bound(key);
            if i < node.n as usize && node.items[i].key == key {
                let old = node.items[i].value;
                node.items[i].value = value;
                write_node(tx, cur, &node)?;
                return Ok(Some(old));
            }
            if node.is_leaf() {
                node.insert_item_at(i, Item { key, value, pad: 0 });
                write_node(tx, cur, &node)?;
                Self::bump_count(tx, anchor, 1)?;
                return Ok(None);
            }
            let child = node.children[i];
            if read_node(tx, child)?.n as usize == MAX_ITEMS {
                Self::split_child(tx, cur, &mut node, i)?;
                // The promoted median may be the key, or shift the path.
                if node.items[i].key == key {
                    let old = node.items[i].value;
                    node.items[i].value = value;
                    write_node(tx, cur, &node)?;
                    return Ok(Some(old));
                }
                cur = if key > node.items[i].key { node.children[i + 1] } else { node.children[i] };
            } else {
                cur = child;
            }
        }
    }

    /// Remove inside an already-open transaction (batched counterpart of
    /// [`PersistentMap::remove`]). Returns the removed value, if any.
    pub fn remove_tx(&self, tx: &mut dyn TxOps, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        let root_fld = field!(BAnchor, root: PObj<BNode>);
        let root: PObj<BNode> = tx.read_at(anchor, root_fld)?;
        if root.is_null() {
            return Ok(None);
        }
        let removed = Self::delete_from(tx, root, key)?;
        if removed.is_some() {
            Self::bump_count(tx, anchor, -1)?;
        }
        // Shrink the root if it emptied out. This can happen even on an
        // unsuccessful remove: the rebalance-before-descend pass may
        // merge the root's last two children.
        let r = read_node(tx, root)?;
        if r.n == 0 {
            let new_root = if r.is_leaf() { PObj::null() } else { r.children[0] };
            tx.write_at(anchor, root_fld, &new_root)?;
            tx.free_obj(root)?;
        }
        Ok(removed)
    }

    /// Ordered range scan: appends up to `limit` `(key, value)` pairs with
    /// `key >= start`, ascending, using direct (transaction-free) reads
    /// like [`PersistentMap::get`]. Serves the service's SCAN verb; per
    /// the §3.4 rule the caller must not race it with writers of the same
    /// map (the service's shards are single-writer, so the owning worker
    /// scans safely).
    pub fn scan<S: Store>(
        &self,
        store: &S,
        start: u64,
        limit: usize,
        out: &mut Vec<(u64, u64)>,
    ) -> KvResult<()> {
        fn walk<S: Store>(
            store: &S,
            h: PObj<BNode>,
            start: u64,
            limit: usize,
            out: &mut Vec<(u64, u64)>,
        ) -> KvResult<()> {
            if h.is_null() || out.len() >= limit {
                return Ok(());
            }
            let node: BNode = store.get_obj_direct(h)?;
            let n = node.n as usize;
            // Children before the lower bound hold only keys < start.
            for i in node.lower_bound(start)..n {
                if !node.is_leaf() {
                    walk(store, node.children[i], start, limit, out)?;
                }
                if out.len() >= limit {
                    return Ok(());
                }
                out.push((node.items[i].key, node.items[i].value));
            }
            if !node.is_leaf() {
                walk(store, node.children[n], start, limit, out)?;
            }
            Ok(())
        }
        let root: PObj<BNode> =
            store.read_at_direct(self.anchor_h(), field!(BAnchor, root: PObj<BNode>))?;
        walk(store, root, start, limit, out)
    }

    /// Recursive delete; every entered node has at least `T` items (except
    /// the root).
    fn delete_from(tx: &mut dyn TxOps, node_h: PObj<BNode>, key: u64) -> KvResult<Option<u64>> {
        let mut node = read_node(tx, node_h)?;
        let i = node.lower_bound(key);
        let found = i < node.n as usize && node.items[i].key == key;
        if found {
            let old = node.items[i].value;
            if node.is_leaf() {
                node.remove_item_at(i);
                write_node(tx, node_h, &node)?;
                return Ok(Some(old));
            }
            let left_h = node.children[i];
            let right_h = node.children[i + 1];
            let left_n = read_node(tx, left_h)?.n as usize;
            if left_n > MIN_ITEMS {
                let pred = Self::find_max(tx, left_h)?;
                node.items[i] = pred;
                write_node(tx, node_h, &node)?;
                Self::delete_from(tx, left_h, pred.key)?;
                return Ok(Some(old));
            }
            let right_n = read_node(tx, right_h)?.n as usize;
            if right_n > MIN_ITEMS {
                let succ = Self::find_min(tx, right_h)?;
                node.items[i] = succ;
                write_node(tx, node_h, &node)?;
                Self::delete_from(tx, right_h, succ.key)?;
                return Ok(Some(old));
            }
            Self::merge_children(tx, node_h, &mut node, i)?;
            Self::delete_from(tx, node.children[i], key)?;
            return Ok(Some(old));
        }
        if node.is_leaf() {
            return Ok(None);
        }
        let target = Self::fix_child(tx, node_h, &mut node, i)?;
        Self::delete_from(tx, target, key)
    }
}

impl PersistentMap for BTree {
    const NAME: &'static str = "btree";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| tx.alloc_obj_zeroed::<BAnchor>())?;
        Ok(BTree { anchor: anchor.oid() })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        BTree { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        store.txn(&mut |tx| self.insert_tx(tx, key, value))
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        store.txn(&mut |tx| self.remove_tx(tx, key))
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let mut cur: PObj<BNode> =
            store.read_at_direct(self.anchor_h(), field!(BAnchor, root: PObj<BNode>))?;
        while !cur.is_null() {
            let node: BNode = store.get_obj_direct(cur)?;
            let i = node.lower_bound(key);
            if i < node.n as usize && node.items[i].key == key {
                return Ok(Some(node.items[i].value));
            }
            if node.is_leaf() {
                return Ok(None);
            }
            cur = node.children[i];
        }
        Ok(None)
    }
}

/// Test helper: walks the tree verifying order, item-count bounds and
/// uniform leaf depth. Returns the number of keys.
pub fn check_invariants<S: Store>(map: &BTree, store: &S) -> KvResult<u64> {
    fn walk<S: Store>(
        store: &S,
        h: PObj<BNode>,
        lo: Option<u64>,
        hi: Option<u64>,
        is_root: bool,
        depth: usize,
        leaf_depth: &mut Option<usize>,
    ) -> KvResult<u64> {
        let node: BNode = store.get_obj_direct(h)?;
        let n = node.n as usize;
        if n > MAX_ITEMS || (!is_root && n < MIN_ITEMS) || (is_root && n == 0) {
            return Err(KvError::Corrupt("btree: item count out of bounds"));
        }
        for w in node.items[..n].windows(2) {
            if w[0].key >= w[1].key {
                return Err(KvError::Corrupt("btree: unsorted items"));
            }
        }
        if let Some(lo) = lo {
            if node.items[0].key <= lo {
                return Err(KvError::Corrupt("btree: order violation (lo)"));
            }
        }
        if let Some(hi) = hi {
            if node.items[n - 1].key >= hi {
                return Err(KvError::Corrupt("btree: order violation (hi)"));
            }
        }
        if node.is_leaf() {
            match leaf_depth {
                Some(d) if *d != depth => return Err(KvError::Corrupt("btree: uneven leaf depth")),
                None => *leaf_depth = Some(depth),
                _ => {}
            }
            return Ok(n as u64);
        }
        let mut total = n as u64;
        for i in 0..=n {
            let lo = if i == 0 { lo } else { Some(node.items[i - 1].key) };
            let hi = if i == n { hi } else { Some(node.items[i].key) };
            total += walk(store, node.children[i], lo, hi, false, depth + 1, leaf_depth)?;
        }
        Ok(total)
    }
    let root: PObj<BNode> =
        store.read_at_direct(map.anchor_h(), field!(BAnchor, root: PObj<BNode>))?;
    let mut leaf_depth = None;
    let n =
        if root.is_null() { 0 } else { walk(store, root, None, None, true, 0, &mut leaf_depth)? };
    if n != map.len(store)? {
        return Err(KvError::Corrupt("btree: count mismatch"));
    }
    Ok(n)
}
