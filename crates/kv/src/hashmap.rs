//! Chained hash map (PMDK's `hashmap_tx`): a growing bucket table object
//! plus 40-byte linked entries.
//!
//! Matches the paper's Table 3 row: entries are 40 bytes; the table is one
//! large object that doubles when the load factor exceeds 1 (reaching
//! ~10 MB at a million keys), and the rehash relinks every entry in a
//! single failure-atomic transaction — the workload that exercises log
//! overflow into the heap.

use pgl_nvm::impl_pod;
use pgl_pmemobj::PMEMoid;

use crate::maps::{splitmix64, PersistentMap};
use crate::store::{KvError, KvResult, Store, TxOps};

const TYPE_ANCHOR: u32 = 110;
const TYPE_TABLE: u32 = 111;
const TYPE_ENTRY: u32 = 112;

const INITIAL_CAPACITY: u64 = 64;

/// Anchor: `{count, capacity, table}`.
const ANCHOR_SIZE: u64 = 32;
const COUNT_OFF: u64 = 0;
const CAP_OFF: u64 = 8;
const TABLE_OFF: u64 = 16;

/// Entry: `{key, value, next, hash}` = 40 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
struct HashEntry {
    key: u64,
    value: u64,
    next: PMEMoid,
    hash: u64,
}
impl_pod!(HashEntry, 40);

const ENTRY_SIZE: u64 = 40;
const VALUE_OFF: u64 = 8;
const NEXT_OFF: u64 = 16;

fn slot_off(bucket: u64) -> u64 {
    bucket * 16
}

/// The chained hash map.
pub struct HashMap {
    anchor: PMEMoid,
}

struct Meta {
    count: u64,
    capacity: u64,
    table: PMEMoid,
}

impl HashMap {
    fn read_meta(tx: &mut dyn TxOps, anchor: PMEMoid) -> KvResult<Meta> {
        let mut buf = [0u8; 32];
        tx.read_bytes(anchor, 0, &mut buf)?;
        Ok(Meta {
            count: u64::from_le_bytes(buf[0..8].try_into().expect("8")),
            capacity: u64::from_le_bytes(buf[8..16].try_into().expect("8")),
            table: pgl_nvm::pod::from_bytes(&buf[16..32]),
        })
    }

    /// Doubles the table, relinking every entry — one big transaction,
    /// like PMDK's `hm_tx_rebuild`.
    fn rehash(tx: &mut dyn TxOps, anchor: PMEMoid, meta: &Meta) -> KvResult<(PMEMoid, u64)> {
        let new_cap = meta.capacity * 2;
        let new_table = tx.alloc_zeroed(new_cap * 16, TYPE_TABLE)?;
        for b in 0..meta.capacity {
            let mut cur: PMEMoid = tx.read_pod(meta.table, slot_off(b))?;
            while !cur.is_null() {
                let e: HashEntry = tx.read_pod(cur, 0)?;
                let nb = e.hash % new_cap;
                let new_head: PMEMoid = tx.read_pod(new_table, slot_off(nb))?;
                tx.write_pod(cur, NEXT_OFF, &new_head)?;
                tx.write_pod(new_table, slot_off(nb), &cur)?;
                cur = e.next;
            }
        }
        tx.write_pod(anchor, CAP_OFF, &new_cap)?;
        tx.write_pod(anchor, TABLE_OFF, &new_table)?;
        tx.free(meta.table)?;
        Ok((new_table, new_cap))
    }
}

impl PersistentMap for HashMap {
    const NAME: &'static str = "hashmap";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| {
            let anchor = tx.alloc_zeroed(ANCHOR_SIZE, TYPE_ANCHOR)?;
            let table = tx.alloc_zeroed(INITIAL_CAPACITY * 16, TYPE_TABLE)?;
            tx.write_pod(anchor, CAP_OFF, &INITIAL_CAPACITY)?;
            tx.write_pod(anchor, TABLE_OFF, &table)?;
            Ok(anchor)
        })?;
        Ok(HashMap { anchor })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        HashMap { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let meta = Self::read_meta(tx, anchor)?;
            if meta.table.is_null() {
                return Err(KvError::Corrupt("hashmap: missing table"));
            }
            let hash = splitmix64(key);
            let bucket = hash % meta.capacity;
            // Update in place if the key exists.
            let head: PMEMoid = tx.read_pod(meta.table, slot_off(bucket))?;
            let mut cur = head;
            while !cur.is_null() {
                let e: HashEntry = tx.read_pod(cur, 0)?;
                if e.key == key {
                    tx.write_pod(cur, VALUE_OFF, &value)?;
                    return Ok(Some(e.value));
                }
                cur = e.next;
            }
            // Insert at the bucket head.
            let entry = tx.alloc(ENTRY_SIZE, TYPE_ENTRY)?;
            tx.write_pod(entry, 0, &HashEntry { key, value, next: head, hash })?;
            tx.write_pod(meta.table, slot_off(bucket), &entry)?;
            let count = meta.count + 1;
            tx.write_pod(anchor, COUNT_OFF, &count)?;
            if count > meta.capacity {
                Self::rehash(tx, anchor, &Meta { count, ..meta })?;
            }
            Ok(None)
        })
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let meta = Self::read_meta(tx, anchor)?;
            if meta.table.is_null() || meta.count == 0 {
                return Ok(None);
            }
            let hash = splitmix64(key);
            let bucket = hash % meta.capacity;
            // prev = None means the table slot itself.
            let mut prev: Option<PMEMoid> = None;
            let mut cur: PMEMoid = tx.read_pod(meta.table, slot_off(bucket))?;
            while !cur.is_null() {
                let e: HashEntry = tx.read_pod(cur, 0)?;
                if e.key == key {
                    match prev {
                        None => tx.write_pod(meta.table, slot_off(bucket), &e.next)?,
                        Some(p) => tx.write_pod(p, NEXT_OFF, &e.next)?,
                    }
                    tx.free(cur)?;
                    tx.write_pod(anchor, COUNT_OFF, &(meta.count - 1))?;
                    return Ok(Some(e.value));
                }
                prev = Some(cur);
                cur = e.next;
            }
            Ok(None)
        })
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let capacity: u64 = store.read_pod_direct(self.anchor, CAP_OFF)?;
        let table: PMEMoid = store.read_pod_direct(self.anchor, TABLE_OFF)?;
        if table.is_null() || capacity == 0 {
            return Ok(None);
        }
        let hash = splitmix64(key);
        let mut cur: PMEMoid = store.read_pod_direct(table, slot_off(hash % capacity))?;
        while !cur.is_null() {
            let e: HashEntry = store.read_pod_direct(cur, 0)?;
            if e.key == key {
                return Ok(Some(e.value));
            }
            cur = e.next;
        }
        Ok(None)
    }
}

/// Test helper: verifies every entry is reachable from the right bucket
/// and the count matches.
pub fn check_invariants<S: Store>(map: &HashMap, store: &S) -> KvResult<u64> {
    let capacity: u64 = store.read_pod_direct(map.anchor(), CAP_OFF)?;
    let table: PMEMoid = store.read_pod_direct(map.anchor(), TABLE_OFF)?;
    let mut n = 0u64;
    for b in 0..capacity {
        let mut cur: PMEMoid = store.read_pod_direct(table, slot_off(b))?;
        let mut steps = 0u64;
        while !cur.is_null() {
            let e: HashEntry = store.read_pod_direct(cur, 0)?;
            if e.hash != splitmix64(e.key) || e.hash % capacity != b {
                return Err(KvError::Corrupt("hashmap: entry in the wrong bucket"));
            }
            n += 1;
            steps += 1;
            if steps > 1_000_000 {
                return Err(KvError::Corrupt("hashmap: chain cycle"));
            }
            cur = e.next;
        }
    }
    if n != map.len(store)? {
        return Err(KvError::Corrupt("hashmap: count mismatch"));
    }
    Ok(n)
}
