//! Chained hash map (PMDK's `hashmap_tx`): a growing bucket table object
//! plus 40-byte linked entries.
//!
//! Matches the paper's Table 3 row: entries are 40 bytes; the table is one
//! large object that doubles when the load factor exceeds 1 (reaching
//! ~10 MB at a million keys), and the rehash relinks every entry in a
//! single failure-atomic transaction — the workload that exercises log
//! overflow into the heap. The table is a [`PArr`] of typed entry handles,
//! so bucket access is element-indexed rather than offset arithmetic.

use pangolin::typed::{PArr, PObj};
use pangolin::{field, impl_ptype};
use pgl_pmemobj::PMEMoid;

use crate::maps::{splitmix64, PersistentMap};
use crate::store::{KvError, KvResult, Store, TxOps};

const TYPE_ANCHOR: u32 = 110;
const TYPE_TABLE: u32 = 111;
const TYPE_ENTRY: u32 = 112;

const INITIAL_CAPACITY: u64 = 64;

/// Entry: `{key, value, next, hash}` = 40 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
struct HashEntry {
    key: u64,
    value: u64,
    next: PObj<HashEntry>,
    hash: u64,
}
impl_ptype!(HashEntry, 40, TYPE_ENTRY);

/// A bucket slot: the head of one chain.
type Slot = PObj<HashEntry>;

/// Anchor: `{count, capacity, table}` = 32 bytes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct HmAnchor {
    count: u64,
    capacity: u64,
    table: PArr<Slot>,
}
impl_ptype!(HmAnchor, 32, TYPE_ANCHOR);

/// The chained hash map.
pub struct HashMap {
    anchor: PMEMoid,
}

impl HashMap {
    fn anchor_h(&self) -> PObj<HmAnchor> {
        PObj::from_oid(self.anchor)
    }

    /// Doubles the table, relinking every entry — one big transaction,
    /// like PMDK's `hm_tx_rebuild`.
    fn rehash(
        tx: &mut dyn TxOps,
        anchor: PObj<HmAnchor>,
        meta: &HmAnchor,
    ) -> KvResult<(PArr<Slot>, u64)> {
        let new_cap = meta.capacity * 2;
        let new_table = tx.alloc_arr::<Slot>(new_cap, TYPE_TABLE)?;
        for b in 0..meta.capacity {
            let mut cur: Slot = tx.arr_get(meta.table, b)?;
            while !cur.is_null() {
                let e: HashEntry = tx.get_obj(cur)?;
                let nb = e.hash % new_cap;
                let new_head: Slot = tx.arr_get(new_table, nb)?;
                tx.write_at(cur, field!(HashEntry, next: PObj<HashEntry>), &new_head)?;
                tx.arr_set(new_table, nb, &cur)?;
                cur = e.next;
            }
        }
        tx.write_at(anchor, field!(HmAnchor, capacity: u64), &new_cap)?;
        tx.write_at(anchor, field!(HmAnchor, table: PArr<Slot>), &new_table)?;
        tx.free_arr(meta.table)?;
        Ok((new_table, new_cap))
    }
}

impl PersistentMap for HashMap {
    const NAME: &'static str = "hashmap";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| {
            let anchor = tx.alloc_obj_zeroed::<HmAnchor>()?;
            let table = tx.alloc_arr::<Slot>(INITIAL_CAPACITY, TYPE_TABLE)?;
            tx.write_at(anchor, field!(HmAnchor, capacity: u64), &INITIAL_CAPACITY)?;
            tx.write_at(anchor, field!(HmAnchor, table: PArr<Slot>), &table)?;
            Ok(anchor)
        })?;
        Ok(HashMap { anchor: anchor.oid() })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        HashMap { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let meta: HmAnchor = tx.get_obj(anchor)?;
            if meta.table.is_null() {
                return Err(KvError::Corrupt("hashmap: missing table"));
            }
            let hash = splitmix64(key);
            let bucket = hash % meta.capacity;
            // Update in place if the key exists.
            let head: Slot = tx.arr_get(meta.table, bucket)?;
            let mut cur = head;
            while !cur.is_null() {
                let e: HashEntry = tx.get_obj(cur)?;
                if e.key == key {
                    tx.write_at(cur, field!(HashEntry, value: u64), &value)?;
                    return Ok(Some(e.value));
                }
                cur = e.next;
            }
            // Insert at the bucket head.
            let entry = tx.alloc_obj(&HashEntry { key, value, next: head, hash })?;
            tx.arr_set(meta.table, bucket, &entry)?;
            let count = meta.count + 1;
            tx.write_at(anchor, field!(HmAnchor, count: u64), &count)?;
            if count > meta.capacity {
                Self::rehash(tx, anchor, &HmAnchor { count, ..meta })?;
            }
            Ok(None)
        })
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let meta: HmAnchor = tx.get_obj(anchor)?;
            if meta.table.is_null() || meta.count == 0 {
                return Ok(None);
            }
            let hash = splitmix64(key);
            let bucket = hash % meta.capacity;
            // prev = None means the table slot itself.
            let mut prev: Option<Slot> = None;
            let mut cur: Slot = tx.arr_get(meta.table, bucket)?;
            while !cur.is_null() {
                let e: HashEntry = tx.get_obj(cur)?;
                if e.key == key {
                    match prev {
                        None => tx.arr_set(meta.table, bucket, &e.next)?,
                        Some(p) => {
                            tx.write_at(p, field!(HashEntry, next: PObj<HashEntry>), &e.next)?
                        }
                    }
                    tx.free_obj(cur)?;
                    tx.write_at(anchor, field!(HmAnchor, count: u64), &(meta.count - 1))?;
                    return Ok(Some(e.value));
                }
                prev = Some(cur);
                cur = e.next;
            }
            Ok(None)
        })
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let meta: HmAnchor = store.get_obj_direct(self.anchor_h())?;
        if meta.table.is_null() || meta.capacity == 0 {
            return Ok(None);
        }
        let hash = splitmix64(key);
        let mut cur: Slot = store.arr_get_direct(meta.table, hash % meta.capacity)?;
        while !cur.is_null() {
            let e: HashEntry = store.get_obj_direct(cur)?;
            if e.key == key {
                return Ok(Some(e.value));
            }
            cur = e.next;
        }
        Ok(None)
    }
}

/// Test helper: verifies every entry is reachable from the right bucket
/// and the count matches.
pub fn check_invariants<S: Store>(map: &HashMap, store: &S) -> KvResult<u64> {
    let meta: HmAnchor = store.get_obj_direct(PObj::from_oid(map.anchor()))?;
    let mut n = 0u64;
    for b in 0..meta.capacity {
        let mut cur: Slot = store.arr_get_direct(meta.table, b)?;
        let mut steps = 0u64;
        while !cur.is_null() {
            let e: HashEntry = store.get_obj_direct(cur)?;
            if e.hash != splitmix64(e.key) || e.hash % meta.capacity != b {
                return Err(KvError::Corrupt("hashmap: entry in the wrong bucket"));
            }
            n += 1;
            steps += 1;
            if steps > 1_000_000 {
                return Err(KvError::Corrupt("hashmap: chain cycle"));
            }
            cur = e.next;
        }
    }
    if n != map.len(store)? {
        return Err(KvError::Corrupt("hashmap: count mismatch"));
    }
    Ok(n)
}
