//! Key-value workload drivers: the insert/remove/lookup loops behind
//! Figures 5 and 6, the transaction-size instrumentation behind Table 3,
//! and the multi-threaded drivers behind the Figure 9 scaling runs.
//!
//! The concurrent drivers follow the paper's concurrency rule (§3.4): the
//! *pool* is shared by all threads (one [`Store`] handle each), but no two
//! threads transact on the same *object* — each thread drives its own map
//! over its own key partition.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pgl_pmemobj::TxStats;

use crate::maps::PersistentMap;
use crate::store::{KvResult, Store};

/// Aggregated per-operation statistics for one workload phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStats {
    /// Operations performed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Accumulated transaction counters.
    pub tx: TxStats,
}

impl PhaseStats {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.ops as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Average allocated bytes per operation (Table 3 "New").
    pub fn avg_new_bytes(&self) -> f64 {
        self.tx.allocated_bytes as f64 / self.ops.max(1) as f64
    }

    /// Average allocated objects per operation.
    pub fn avg_new_objects(&self) -> f64 {
        self.tx.alloc_objects as f64 / self.ops.max(1) as f64
    }

    /// Average modified bytes per operation (Table 3 "Mod").
    pub fn avg_mod_bytes(&self) -> f64 {
        self.tx.modified_bytes as f64 / self.ops.max(1) as f64
    }

    /// Average modified objects per operation.
    pub fn avg_mod_objects(&self) -> f64 {
        self.tx.modified_objects as f64 / self.ops.max(1) as f64
    }
}

/// A seeded zipfian rank sampler: rank 0 is the hottest, with weight
/// `1/(rank+1)^theta`. Sampling is a binary search over the precomputed
/// CDF (the vendored `rand` shim has no zipfian distribution, so the
/// table is built by hand once per workload).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over ranks `0..n` with skew `theta` (`0.99` is the
    /// YCSB-standard default; `0.0` degrades to uniform).
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "zipf over an empty rank set");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// One step of the shuffled insert/remove scheduler. See [`MixedOps`].
#[derive(Debug, Clone, Copy)]
pub enum MixedOp {
    /// Insert the offered key.
    Insert(u64),
    /// Remove a previously inserted (still-live) key.
    Remove(u64),
}

/// The live-set insert/remove scheduler shared by [`mixed_phase`],
/// [`concurrent_mixed_phase`] and the service load driver: each step
/// either removes a random live key (with probability `remove_ratio`,
/// once any are live) or inserts the next offered key.
#[derive(Debug)]
pub struct MixedOps {
    rng: StdRng,
    live: Vec<u64>,
    remove_ratio: f64,
}

impl MixedOps {
    /// A scheduler with the given removal probability and RNG seed.
    pub fn new(remove_ratio: f64, seed: u64) -> MixedOps {
        MixedOps { rng: StdRng::seed_from_u64(seed), live: Vec::new(), remove_ratio }
    }

    /// Schedules the next step, offering `key` as the insert candidate.
    pub fn next(&mut self, key: u64) -> MixedOp {
        if !self.live.is_empty() && self.rng.gen_bool(self.remove_ratio) {
            let idx = self.rng.gen_range(0..self.live.len());
            MixedOp::Remove(self.live.swap_remove(idx))
        } else {
            self.live.push(key);
            MixedOp::Insert(key)
        }
    }

    /// Consumes the scheduler, returning the still-live keys shuffled by
    /// its own RNG (the sequential driver's historical tail behavior).
    pub fn into_live_shuffled(mut self) -> Vec<u64> {
        self.live.shuffle(&mut self.rng);
        self.live
    }
}

/// One step of the raw alloc/overwrite/free object mix the Figure 9
/// scaling bench drives: an allocation every 8th transaction, a free
/// every 8th (once the working set is warm), overwrites otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawOp {
    /// Allocate a fresh object and write it.
    Alloc,
    /// Free one previously allocated object.
    Free,
    /// Overwrite an existing object.
    Overwrite,
}

/// The deterministic raw-mix schedule (step `i` of a thread's loop),
/// extracted from `fig9_scaling` so the scaling bench and the service
/// load driver share one scheduler.
pub fn raw_mix_op(i: usize) -> RawOp {
    match i % 8 {
        0 => RawOp::Alloc,
        1 => RawOp::Free,
        _ => RawOp::Overwrite,
    }
}

/// One client request of a service [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Point lookup.
    Get(u64),
    /// Insert / overwrite.
    Put(u64, u64),
    /// Delete.
    Del(u64),
    /// Ordered range scan: `(start_key, limit)`.
    Scan(u64, u32),
}

/// Relative operation weights of a service [`Workload`].
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// GET weight.
    pub get: u32,
    /// PUT weight.
    pub put: u32,
    /// DEL weight.
    pub del: u32,
    /// SCAN weight.
    pub scan: u32,
}

impl OpMix {
    /// The load driver's default: read-heavy with a write tail
    /// (75% GET / 20% PUT / 4% DEL / 1% SCAN).
    pub fn read_heavy() -> OpMix {
        OpMix { get: 75, put: 20, del: 4, scan: 1 }
    }

    /// Write-heavy mix for group-commit stress (70% PUT / 20% GET /
    /// 10% DEL).
    pub fn write_heavy() -> OpMix {
        OpMix { get: 20, put: 70, del: 10, scan: 0 }
    }

    fn total(&self) -> u32 {
        self.get + self.put + self.del + self.scan
    }
}

/// A reusable client workload: zipfian key popularity over a bounded
/// keyspace plus a weighted GET/PUT/DEL/SCAN mix. One `Workload` is
/// shared (immutably) by every simulated client; each client draws with
/// its own seeded RNG, so runs are deterministic per client.
#[derive(Debug, Clone)]
pub struct Workload {
    keys: Vec<u64>,
    zipf: Zipf,
    mix: OpMix,
}

impl Workload {
    /// A zipfian workload over `n_keys` distinct random keys (hotness
    /// rank-ordered by [`random_keys`] position) with skew `theta`.
    pub fn zipfian(n_keys: usize, theta: f64, mix: OpMix, seed: u64) -> Workload {
        assert!(mix.total() > 0, "workload op mix has zero total weight");
        Workload { keys: random_keys(n_keys, seed), zipf: Zipf::new(n_keys, theta), mix }
    }

    /// The key universe (rank order: hottest first).
    pub fn keyspace(&self) -> &[u64] {
        &self.keys
    }

    /// Draws one key by zipfian popularity.
    pub fn key(&self, rng: &mut StdRng) -> u64 {
        self.keys[self.zipf.sample(rng)]
    }

    /// Draws one client request: a weighted op kind over a zipfian key.
    pub fn next_op(&self, rng: &mut StdRng) -> WorkloadOp {
        let k = self.key(rng);
        let r = rng.gen_range(0..self.mix.total());
        if r < self.mix.get {
            WorkloadOp::Get(k)
        } else if r < self.mix.get + self.mix.put {
            WorkloadOp::Put(k, k ^ 0xFEED_FACE)
        } else if r < self.mix.get + self.mix.put + self.mix.del {
            WorkloadOp::Del(k)
        } else {
            WorkloadOp::Scan(k, 16)
        }
    }
}

/// Generates `n` distinct pseudo-random keys (uniform, seeded).
pub fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while keys.len() < n {
        let k = rng.gen::<u64>();
        if seen.insert(k) {
            keys.push(k);
        }
    }
    keys
}

/// Inserts every key (value = key ^ mask), collecting stats.
pub fn insert_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
) -> KvResult<PhaseStats> {
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        let (_, tx) = map.insert_with_stats(store, k, k ^ 0xDEAD_BEEF)?;
        stats.tx.accumulate(&tx);
        stats.ops += 1;
    }
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// Removes every key, collecting stats.
pub fn remove_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
) -> KvResult<PhaseStats> {
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        let (_, tx) = map.remove_with_stats(store, k)?;
        stats.tx.accumulate(&tx);
        stats.ops += 1;
    }
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// Looks up every key (read-only), returning hit count and timing.
pub fn lookup_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
) -> KvResult<PhaseStats> {
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        if map.get(store, k)?.is_some() {
            stats.ops += 1;
        }
    }
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// A mixed workload: shuffled inserts and removes with the given ratio of
/// removals, exercising allocate/overwrite/free paths together.
pub fn mixed_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
    remove_ratio: f64,
    seed: u64,
) -> KvResult<PhaseStats> {
    let mut sched = MixedOps::new(remove_ratio, seed);
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        let (_, tx) = match sched.next(k) {
            MixedOp::Remove(victim) => map.remove_with_stats(store, victim)?,
            MixedOp::Insert(k) => map.insert_with_stats(store, k, k)?,
        };
        stats.tx.accumulate(&tx);
        stats.ops += 1;
    }
    let _ = sched.into_live_shuffled();
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// Splits `keys` into `n` near-equal contiguous partitions (the per-thread
/// key sets of the concurrent drivers).
pub fn partition_keys(keys: &[u64], n: usize) -> Vec<&[u64]> {
    let n = n.max(1);
    let per = keys.len().div_ceil(n);
    keys.chunks(per.max(1)).take(n).collect()
}

/// Runs one insert phase per thread — each thread creates its **own** map
/// over the **shared** store and inserts its partition of `keys` — and
/// returns the aggregate throughput. Wall-clock time is measured across
/// the whole scope, so `ops_per_sec` reflects real concurrent throughput.
pub fn concurrent_insert_phase<M: PersistentMap + Send + Sync, S: Store + Clone>(
    store: &S,
    keys: &[u64],
    threads: usize,
) -> KvResult<PhaseStats> {
    concurrent_phase(store, keys, threads, |map: &M, store: &S, part| {
        for &k in part {
            map.insert(store, k, k ^ 0xDEAD_BEEF)?;
        }
        Ok(part.len() as u64)
    })
}

/// Runs one mixed insert/remove phase per thread (own map, own keys,
/// shared store), exercising allocate, overwrite and free concurrently.
pub fn concurrent_mixed_phase<M: PersistentMap + Send + Sync, S: Store + Clone>(
    store: &S,
    keys: &[u64],
    threads: usize,
    remove_ratio: f64,
    seed: u64,
) -> KvResult<PhaseStats> {
    concurrent_phase(store, keys, threads, move |map: &M, store: &S, part| {
        let mut sched = MixedOps::new(remove_ratio, seed ^ part.first().copied().unwrap_or(0));
        for &k in part {
            match sched.next(k) {
                MixedOp::Remove(victim) => map.remove(store, victim)?,
                MixedOp::Insert(k) => map.insert(store, k, k)?,
            };
        }
        Ok(part.len() as u64)
    })
}

/// Shared scaffolding of the concurrent drivers: partitions the keys,
/// spawns one thread per partition with its own map and store handle, and
/// times the whole scope.
fn concurrent_phase<M, S, F>(
    store: &S,
    keys: &[u64],
    threads: usize,
    body: F,
) -> KvResult<PhaseStats>
where
    M: PersistentMap + Send + Sync,
    S: Store + Clone,
    F: Fn(&M, &S, &[u64]) -> KvResult<u64> + Send + Sync,
{
    let parts = partition_keys(keys, threads);
    // Create the maps up front so setup cost stays out of the timing.
    let maps: Vec<M> = parts.iter().map(|_| M::create(store)).collect::<KvResult<_>>()?;
    let body = &body;
    let start = std::time::Instant::now();
    let ops = std::thread::scope(|s| -> KvResult<u64> {
        let handles: Vec<_> = maps
            .iter()
            .zip(&parts)
            .map(|(map, part)| {
                let store = store.clone();
                s.spawn(move || body(map, &store, part))
            })
            .collect();
        let mut total = 0;
        for h in handles {
            total += h.join().expect("workload thread panicked")?;
        }
        Ok(total)
    })?;
    // `tx` stays zeroed: per-thread TxStats are not aggregated across the
    // scope (the sequential drivers serve the Table 3 instrumentation).
    Ok(PhaseStats { ops, secs: start.elapsed().as_secs_f64(), ..Default::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctree::CTree;
    use crate::store::PglStore;
    use pangolin::{PglConfig, PglPool};
    use pgl_nvm::{DeviceConfig, NvmDevice};
    use std::sync::Arc;

    fn store() -> PglStore {
        let mut cfg = PglConfig::small();
        cfg.pool.size = 32 << 20;
        cfg.pool.zone_size = 16 << 20;
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
        PglStore::new(PglPool::create(dev, cfg).unwrap())
    }

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let z = Zipf::new(1000, 0.99);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let draws: Vec<usize> = (0..5000).map(|_| z.sample(&mut a)).collect();
        assert!(draws.iter().all(|&r| r < 1000));
        assert_eq!(draws, (0..5000).map(|_| z.sample(&mut b)).collect::<Vec<_>>());
        // Rank 0 must dominate any cold rank by a wide margin.
        let hot = draws.iter().filter(|&&r| r == 0).count();
        let cold = draws.iter().filter(|&&r| r >= 500).count();
        assert!(hot > 100, "rank 0 drawn only {hot} times");
        assert!(hot > cold, "zipf not skewed: hot={hot} cold-half={cold}");
    }

    #[test]
    fn mixed_ops_only_remove_live_keys() {
        let mut sched = MixedOps::new(0.4, 99);
        let mut live = std::collections::HashSet::new();
        for k in 0..1000u64 {
            match sched.next(k) {
                MixedOp::Insert(k) => assert!(live.insert(k)),
                MixedOp::Remove(v) => assert!(live.remove(&v), "removed dead key {v}"),
            }
        }
        let left = sched.into_live_shuffled();
        assert_eq!(left.len(), live.len());
        assert!(left.iter().all(|k| live.contains(k)));
    }

    #[test]
    fn workload_draws_valid_ops_over_its_keyspace() {
        let w = Workload::zipfian(256, 0.99, OpMix::read_heavy(), 11);
        let keys: std::collections::HashSet<u64> = w.keyspace().iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(3);
        let (mut gets, mut puts) = (0, 0);
        for _ in 0..2000 {
            let k = match w.next_op(&mut rng) {
                WorkloadOp::Get(k) => {
                    gets += 1;
                    k
                }
                WorkloadOp::Put(k, v) => {
                    puts += 1;
                    assert_eq!(v, k ^ 0xFEED_FACE);
                    k
                }
                WorkloadOp::Del(k) => k,
                WorkloadOp::Scan(k, limit) => {
                    assert!(limit > 0);
                    k
                }
            };
            assert!(keys.contains(&k));
        }
        // The read-heavy mix must actually be read-heavy.
        assert!(gets > puts, "gets={gets} puts={puts}");
    }

    #[test]
    fn raw_mix_matches_the_historical_schedule() {
        assert_eq!(raw_mix_op(0), RawOp::Alloc);
        assert_eq!(raw_mix_op(1), RawOp::Free);
        assert_eq!(raw_mix_op(8), RawOp::Alloc);
        assert!((2..8).all(|i| raw_mix_op(i) == RawOp::Overwrite));
    }

    #[test]
    fn partitions_cover_all_keys() {
        let keys = random_keys(103, 7);
        let parts = partition_keys(&keys, 4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 103);
        assert!(parts.len() <= 4);
    }

    #[test]
    fn concurrent_phases_share_one_pool() {
        let store = store();
        let keys = random_keys(400, 42);
        let ins = concurrent_insert_phase::<CTree, _>(&store, &keys, 4).unwrap();
        assert_eq!(ins.ops, 400);
        let mixed = concurrent_mixed_phase::<CTree, _>(&store, &keys, 4, 0.3, 99).unwrap();
        assert_eq!(mixed.ops, 400);
        // The shared pool stayed consistent under 8 maps' worth of traffic.
        assert!(store.pool().verify_parity().unwrap());
        assert!(store.pool().find_corrupt_objects().unwrap().is_empty());
    }
}
