//! Key-value workload drivers: the insert/remove/lookup loops behind
//! Figures 5 and 6 and the transaction-size instrumentation behind Table 3.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pgl_pmemobj::TxStats;

use crate::maps::PersistentMap;
use crate::store::{KvResult, Store};

/// Aggregated per-operation statistics for one workload phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStats {
    /// Operations performed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Accumulated transaction counters.
    pub tx: TxStats,
}

impl PhaseStats {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.ops as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Average allocated bytes per operation (Table 3 "New").
    pub fn avg_new_bytes(&self) -> f64 {
        self.tx.allocated_bytes as f64 / self.ops.max(1) as f64
    }

    /// Average allocated objects per operation.
    pub fn avg_new_objects(&self) -> f64 {
        self.tx.alloc_objects as f64 / self.ops.max(1) as f64
    }

    /// Average modified bytes per operation (Table 3 "Mod").
    pub fn avg_mod_bytes(&self) -> f64 {
        self.tx.modified_bytes as f64 / self.ops.max(1) as f64
    }

    /// Average modified objects per operation.
    pub fn avg_mod_objects(&self) -> f64 {
        self.tx.modified_objects as f64 / self.ops.max(1) as f64
    }
}

/// Generates `n` distinct pseudo-random keys (uniform, seeded).
pub fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while keys.len() < n {
        let k = rng.gen::<u64>();
        if seen.insert(k) {
            keys.push(k);
        }
    }
    keys
}

/// Inserts every key (value = key ^ mask), collecting stats.
pub fn insert_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
) -> KvResult<PhaseStats> {
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        let (_, tx) = map.insert_with_stats(store, k, k ^ 0xDEAD_BEEF)?;
        stats.tx.accumulate(&tx);
        stats.ops += 1;
    }
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// Removes every key, collecting stats.
pub fn remove_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
) -> KvResult<PhaseStats> {
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        let (_, tx) = map.remove_with_stats(store, k)?;
        stats.tx.accumulate(&tx);
        stats.ops += 1;
    }
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// Looks up every key (read-only), returning hit count and timing.
pub fn lookup_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
) -> KvResult<PhaseStats> {
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        if map.get(store, k)?.is_some() {
            stats.ops += 1;
        }
    }
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// A mixed workload: shuffled inserts and removes with the given ratio of
/// removals, exercising allocate/overwrite/free paths together.
pub fn mixed_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
    remove_ratio: f64,
    seed: u64,
) -> KvResult<PhaseStats> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<u64> = Vec::new();
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        if !live.is_empty() && rng.gen_bool(remove_ratio) {
            let idx = rng.gen_range(0..live.len());
            let victim = live.swap_remove(idx);
            let (_, tx) = map.remove_with_stats(store, victim)?;
            stats.tx.accumulate(&tx);
        } else {
            let (_, tx) = map.insert_with_stats(store, k, k)?;
            stats.tx.accumulate(&tx);
            live.push(k);
        }
        stats.ops += 1;
    }
    live.shuffle(&mut rng);
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}
