//! Key-value workload drivers: the insert/remove/lookup loops behind
//! Figures 5 and 6, the transaction-size instrumentation behind Table 3,
//! and the multi-threaded drivers behind the Figure 9 scaling runs.
//!
//! The concurrent drivers follow the paper's concurrency rule (§3.4): the
//! *pool* is shared by all threads (one [`Store`] handle each), but no two
//! threads transact on the same *object* — each thread drives its own map
//! over its own key partition.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pgl_pmemobj::TxStats;

use crate::maps::PersistentMap;
use crate::store::{KvResult, Store};

/// Aggregated per-operation statistics for one workload phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStats {
    /// Operations performed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Accumulated transaction counters.
    pub tx: TxStats,
}

impl PhaseStats {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.ops as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Average allocated bytes per operation (Table 3 "New").
    pub fn avg_new_bytes(&self) -> f64 {
        self.tx.allocated_bytes as f64 / self.ops.max(1) as f64
    }

    /// Average allocated objects per operation.
    pub fn avg_new_objects(&self) -> f64 {
        self.tx.alloc_objects as f64 / self.ops.max(1) as f64
    }

    /// Average modified bytes per operation (Table 3 "Mod").
    pub fn avg_mod_bytes(&self) -> f64 {
        self.tx.modified_bytes as f64 / self.ops.max(1) as f64
    }

    /// Average modified objects per operation.
    pub fn avg_mod_objects(&self) -> f64 {
        self.tx.modified_objects as f64 / self.ops.max(1) as f64
    }
}

/// Generates `n` distinct pseudo-random keys (uniform, seeded).
pub fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while keys.len() < n {
        let k = rng.gen::<u64>();
        if seen.insert(k) {
            keys.push(k);
        }
    }
    keys
}

/// Inserts every key (value = key ^ mask), collecting stats.
pub fn insert_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
) -> KvResult<PhaseStats> {
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        let (_, tx) = map.insert_with_stats(store, k, k ^ 0xDEAD_BEEF)?;
        stats.tx.accumulate(&tx);
        stats.ops += 1;
    }
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// Removes every key, collecting stats.
pub fn remove_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
) -> KvResult<PhaseStats> {
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        let (_, tx) = map.remove_with_stats(store, k)?;
        stats.tx.accumulate(&tx);
        stats.ops += 1;
    }
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// Looks up every key (read-only), returning hit count and timing.
pub fn lookup_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
) -> KvResult<PhaseStats> {
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        if map.get(store, k)?.is_some() {
            stats.ops += 1;
        }
    }
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// A mixed workload: shuffled inserts and removes with the given ratio of
/// removals, exercising allocate/overwrite/free paths together.
pub fn mixed_phase<M: PersistentMap, S: Store>(
    map: &M,
    store: &S,
    keys: &[u64],
    remove_ratio: f64,
    seed: u64,
) -> KvResult<PhaseStats> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<u64> = Vec::new();
    let mut stats = PhaseStats::default();
    let start = std::time::Instant::now();
    for &k in keys {
        if !live.is_empty() && rng.gen_bool(remove_ratio) {
            let idx = rng.gen_range(0..live.len());
            let victim = live.swap_remove(idx);
            let (_, tx) = map.remove_with_stats(store, victim)?;
            stats.tx.accumulate(&tx);
        } else {
            let (_, tx) = map.insert_with_stats(store, k, k)?;
            stats.tx.accumulate(&tx);
            live.push(k);
        }
        stats.ops += 1;
    }
    live.shuffle(&mut rng);
    stats.secs = start.elapsed().as_secs_f64();
    Ok(stats)
}

/// Splits `keys` into `n` near-equal contiguous partitions (the per-thread
/// key sets of the concurrent drivers).
pub fn partition_keys(keys: &[u64], n: usize) -> Vec<&[u64]> {
    let n = n.max(1);
    let per = keys.len().div_ceil(n);
    keys.chunks(per.max(1)).take(n).collect()
}

/// Runs one insert phase per thread — each thread creates its **own** map
/// over the **shared** store and inserts its partition of `keys` — and
/// returns the aggregate throughput. Wall-clock time is measured across
/// the whole scope, so `ops_per_sec` reflects real concurrent throughput.
pub fn concurrent_insert_phase<M: PersistentMap + Send + Sync, S: Store + Clone>(
    store: &S,
    keys: &[u64],
    threads: usize,
) -> KvResult<PhaseStats> {
    concurrent_phase(store, keys, threads, |map: &M, store: &S, part| {
        for &k in part {
            map.insert(store, k, k ^ 0xDEAD_BEEF)?;
        }
        Ok(part.len() as u64)
    })
}

/// Runs one mixed insert/remove phase per thread (own map, own keys,
/// shared store), exercising allocate, overwrite and free concurrently.
pub fn concurrent_mixed_phase<M: PersistentMap + Send + Sync, S: Store + Clone>(
    store: &S,
    keys: &[u64],
    threads: usize,
    remove_ratio: f64,
    seed: u64,
) -> KvResult<PhaseStats> {
    concurrent_phase(store, keys, threads, move |map: &M, store: &S, part| {
        let mut rng = StdRng::seed_from_u64(seed ^ part.first().copied().unwrap_or(0));
        let mut live: Vec<u64> = Vec::new();
        for &k in part {
            if !live.is_empty() && rng.gen_bool(remove_ratio) {
                let idx = rng.gen_range(0..live.len());
                map.remove(store, live.swap_remove(idx))?;
            } else {
                map.insert(store, k, k)?;
                live.push(k);
            }
        }
        Ok(part.len() as u64)
    })
}

/// Shared scaffolding of the concurrent drivers: partitions the keys,
/// spawns one thread per partition with its own map and store handle, and
/// times the whole scope.
fn concurrent_phase<M, S, F>(
    store: &S,
    keys: &[u64],
    threads: usize,
    body: F,
) -> KvResult<PhaseStats>
where
    M: PersistentMap + Send + Sync,
    S: Store + Clone,
    F: Fn(&M, &S, &[u64]) -> KvResult<u64> + Send + Sync,
{
    let parts = partition_keys(keys, threads);
    // Create the maps up front so setup cost stays out of the timing.
    let maps: Vec<M> = parts.iter().map(|_| M::create(store)).collect::<KvResult<_>>()?;
    let body = &body;
    let start = std::time::Instant::now();
    let ops = std::thread::scope(|s| -> KvResult<u64> {
        let handles: Vec<_> = maps
            .iter()
            .zip(&parts)
            .map(|(map, part)| {
                let store = store.clone();
                s.spawn(move || body(map, &store, part))
            })
            .collect();
        let mut total = 0;
        for h in handles {
            total += h.join().expect("workload thread panicked")?;
        }
        Ok(total)
    })?;
    // `tx` stays zeroed: per-thread TxStats are not aggregated across the
    // scope (the sequential drivers serve the Table 3 instrumentation).
    Ok(PhaseStats { ops, secs: start.elapsed().as_secs_f64(), ..Default::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctree::CTree;
    use crate::store::PglStore;
    use pangolin::{PglConfig, PglPool};
    use pgl_nvm::{DeviceConfig, NvmDevice};
    use std::sync::Arc;

    fn store() -> PglStore {
        let mut cfg = PglConfig::small();
        cfg.pool.size = 32 << 20;
        cfg.pool.zone_size = 16 << 20;
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
        PglStore::new(PglPool::create(dev, cfg).unwrap())
    }

    #[test]
    fn partitions_cover_all_keys() {
        let keys = random_keys(103, 7);
        let parts = partition_keys(&keys, 4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 103);
        assert!(parts.len() <= 4);
    }

    #[test]
    fn concurrent_phases_share_one_pool() {
        let store = store();
        let keys = random_keys(400, 42);
        let ins = concurrent_insert_phase::<CTree, _>(&store, &keys, 4).unwrap();
        assert_eq!(ins.ops, 400);
        let mixed = concurrent_mixed_phase::<CTree, _>(&store, &keys, 4, 0.3, 99).unwrap();
        assert_eq!(mixed.ops, 400);
        // The shared pool stayed consistent under 8 maps' worth of traffic.
        assert!(store.pool().verify_parity().unwrap());
        assert!(store.pool().find_corrupt_objects().unwrap().is_empty());
    }
}
