//! The common interface of the six persistent key-value structures
//! (paper §4.5: ctree, rbtree, btree, skiplist, rtree, hashmap).
//!
//! Every map stores `u64 -> u64`; each operation is one failure-atomic
//! transaction, exactly like the PMDK toolkit benchmarks the paper ports.

use pgl_pmemobj::{PMEMoid, TxStats};

use crate::store::{KvResult, Store};

/// A persistent map living in a [`Store`].
pub trait PersistentMap: Sized {
    /// Human-readable name (matches the paper's figures).
    const NAME: &'static str;

    /// Creates an empty map, allocating its anchor object.
    fn create<S: Store>(store: &S) -> KvResult<Self>;

    /// Reattaches to an existing map by its anchor OID.
    fn from_anchor(anchor: PMEMoid) -> Self;

    /// The anchor OID (store it in the pool root to find the map again).
    fn anchor(&self) -> PMEMoid;

    /// Inserts or updates; returns the previous value if any.
    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>>;

    /// Removes; returns the previous value if any.
    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>>;

    /// Point lookup without a transaction (direct reads, `pgl_get`-style).
    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>>;

    /// Number of keys.
    fn len<S: Store>(&self, store: &S) -> KvResult<u64> {
        // By convention every anchor starts with a count field.
        store.read_pod_direct::<u64>(self.anchor(), 0)
    }

    /// Insert plus the transaction's instrumentation counters (Table 3).
    fn insert_with_stats<S: Store>(
        &self,
        store: &S,
        key: u64,
        value: u64,
    ) -> KvResult<(Option<u64>, TxStats)> {
        let r = self.insert(store, key, value)?;
        Ok((r, store.last_tx_stats()))
    }

    /// Remove plus the transaction's instrumentation counters.
    fn remove_with_stats<S: Store>(&self, store: &S, key: u64) -> KvResult<(Option<u64>, TxStats)> {
        let r = self.remove(store, key)?;
        Ok((r, store.last_tx_stats()))
    }
}

/// Mixes a key into a well-distributed hash (splitmix64 finalizer); used by
/// the hashmap buckets and the skiplist level draw.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Low bits should be well mixed for bucket selection.
        let mut buckets = [0u32; 16];
        for k in 0..16_000u64 {
            buckets[(splitmix64(k) % 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "skewed bucket: {b}");
        }
    }
}
