//! Backend abstraction: the six data structures run unchanged over the
//! `libpmemobj` baseline, its replicated mode, and every Pangolin mode —
//! exactly how the paper rewrites the PMDK toolkit benchmarks once and
//! compares library configurations (Table 2).

use std::sync::Arc;

use parking_lot::Mutex;

use pangolin::typed::{Field, PArr, PObj, PType};
use pangolin::{PglError, PglPool};
use pgl_nvm::pod::{bytes_of, bytes_of_mut, zeroed, Pod};
use pgl_pmemobj::{ObjError, PMEMoid, PmemPool, TxStats, OID_NULL};

/// Errors from either backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// Baseline object-store error.
    Obj(ObjError),
    /// Pangolin error.
    Pgl(PglError),
    /// Structural invariant violation detected by a data structure.
    Corrupt(&'static str),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Obj(e) => write!(f, "{e}"),
            KvError::Pgl(e) => write!(f, "{e}"),
            KvError::Corrupt(s) => write!(f, "structure corrupt: {s}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<ObjError> for KvError {
    fn from(e: ObjError) -> Self {
        KvError::Obj(e)
    }
}

impl From<PglError> for KvError {
    fn from(e: PglError) -> Self {
        KvError::Pgl(e)
    }
}

/// Convenience alias.
pub type KvResult<T> = Result<T, KvError>;

/// Transaction operations the data structures use.
///
/// Both backends guarantee read-your-writes inside a transaction (Pangolin
/// through its micro-buffers, the baseline through direct stores).
pub trait TxOps {
    /// Allocates an object (content undefined until written).
    fn alloc(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid>;
    /// Allocates a zero-filled object.
    fn alloc_zeroed(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid>;
    /// Frees an object.
    fn free(&mut self, oid: PMEMoid) -> KvResult<()>;
    /// Writes bytes into an object.
    fn write_bytes(&mut self, oid: PMEMoid, off: u64, src: &[u8]) -> KvResult<()>;
    /// Reads bytes from an object.
    fn read_bytes(&mut self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()>;
}

impl dyn TxOps + '_ {
    /// Typed field write (raw-offset escape hatch; prefer
    /// `write_at`).
    pub fn write_pod<T: Pod>(&mut self, oid: PMEMoid, off: u64, val: &T) -> KvResult<()> {
        self.write_bytes(oid, off, bytes_of(val))
    }

    /// Typed field read (raw-offset escape hatch; prefer
    /// `read_at`).
    pub fn read_pod<T: Pod>(&mut self, oid: PMEMoid, off: u64) -> KvResult<T> {
        let mut v = zeroed::<T>();
        self.read_bytes(oid, off, bytes_of_mut(&mut v))?;
        Ok(v)
    }

    // --- typed-object layer (mirrors `pangolin::typed` over both
    // backends; all helpers compile down to the object-safe core) ---

    /// Allocates a new `T` object initialized to `*init`.
    pub fn alloc_obj<T: PType>(&mut self, init: &T) -> KvResult<PObj<T>> {
        let oid = self.alloc(std::mem::size_of::<T>() as u64, T::TYPE_NUM)?;
        self.write_bytes(oid, 0, bytes_of(init))?;
        Ok(PObj::from_oid(oid))
    }

    /// Allocates a zero-filled `T` object (fields are written piecemeal
    /// afterwards, which keeps transaction write sizes minimal).
    pub fn alloc_obj_zeroed<T: PType>(&mut self) -> KvResult<PObj<T>> {
        let oid = self.alloc_zeroed(std::mem::size_of::<T>() as u64, T::TYPE_NUM)?;
        Ok(PObj::from_oid(oid))
    }

    /// Typed whole-object read (straight into a stack value — node-sized
    /// reads on the kv hot paths never touch the heap).
    pub fn get_obj<T: PType>(&mut self, h: PObj<T>) -> KvResult<T> {
        let mut v = zeroed::<T>();
        self.read_bytes(h.oid(), 0, bytes_of_mut(&mut v))?;
        Ok(v)
    }

    /// Typed whole-object write.
    pub fn set_obj<T: PType>(&mut self, h: PObj<T>, v: &T) -> KvResult<()> {
        self.write_bytes(h.oid(), 0, bytes_of(v))
    }

    /// Frees a typed object.
    pub fn free_obj<T: PType>(&mut self, h: PObj<T>) -> KvResult<()> {
        self.free(h.oid())
    }

    /// Typed field read through a [`field!`](pangolin::field) offset.
    pub fn read_at<T: PType, F: Pod>(&mut self, h: PObj<T>, fld: Field<T, F>) -> KvResult<F> {
        let mut v = zeroed::<F>();
        self.read_bytes(h.oid(), fld.offset(), bytes_of_mut(&mut v))?;
        Ok(v)
    }

    /// Typed field write; only `size_of::<F>()` bytes are logged, keeping
    /// Pangolin's incremental-checksum fast path for large structs.
    pub fn write_at<T: PType, F: Pod>(
        &mut self,
        h: PObj<T>,
        fld: Field<T, F>,
        v: &F,
    ) -> KvResult<()> {
        self.write_bytes(h.oid(), fld.offset(), bytes_of(v))
    }

    /// Allocates a zero-filled array of `len` elements of `T`.
    pub fn alloc_arr<T: Pod>(&mut self, len: u64, type_num: u32) -> KvResult<PArr<T>> {
        let oid = self.alloc_zeroed(len * std::mem::size_of::<T>() as u64, type_num)?;
        Ok(PArr::from_oid(oid))
    }

    /// Typed array-element read.
    pub fn arr_get<T: Pod>(&mut self, a: PArr<T>, i: u64) -> KvResult<T> {
        let mut v = zeroed::<T>();
        self.read_bytes(a.oid(), i * std::mem::size_of::<T>() as u64, bytes_of_mut(&mut v))?;
        Ok(v)
    }

    /// Typed array-element write.
    pub fn arr_set<T: Pod>(&mut self, a: PArr<T>, i: u64, v: &T) -> KvResult<()> {
        self.write_bytes(a.oid(), i * std::mem::size_of::<T>() as u64, bytes_of(v))
    }

    /// Frees an array object.
    pub fn free_arr<T: Pod>(&mut self, a: PArr<T>) -> KvResult<()> {
        self.free(a.oid())
    }
}

/// One logical transaction's work inside a batched (group) commit: each
/// body runs against the shared transaction and returns the service's
/// optional `u64` payload (a looked-up value, a PUT's old value, …).
///
/// See [`Store::txn_batch`].
pub type BatchOp<'a> = Box<dyn FnMut(&mut dyn TxOps) -> KvResult<Option<u64>> + 'a>;

/// A persistent object store a data structure can live in.
///
/// # Thread safety
///
/// `Store` is a **shared-handle** API: implementations are `Send + Sync`,
/// methods take `&self`, and the concrete stores ([`PmemStore`],
/// [`PglStore`]) are cheap `Arc`-backed clones of one pool. Any number of
/// threads may run transactions on clones (or references) of the same
/// store concurrently — each transaction claims its own lane and commits
/// under parity range-locks. The one rule is the paper's (§3.4): two
/// *concurrent* transactions must not modify the same object. Structures
/// in this crate are single-writer per map; run one map per thread (or add
/// external synchronization) for write-parallel workloads, as
/// [`crate::workload::concurrent_insert_phase`] does.
///
/// ```
/// use std::sync::Arc;
/// use pangolin::typed::PObj;
/// use pangolin::{impl_ptype, PglConfig, PglPool};
/// use pgl_kv::store::{PglStore, Store};
/// use pgl_nvm::{DeviceConfig, NvmDevice};
///
/// #[derive(Clone, Copy, Default)]
/// #[repr(C)]
/// struct Slot {
///     owner: u64,
/// }
/// impl_ptype!(Slot, 8, 1);
///
/// let cfg = PglConfig::small();
/// let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
/// let store = PglStore::new(PglPool::create(dev, cfg).unwrap());
///
/// // Clones share one pool; every thread transacts independently.
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let store = store.clone();
///         s.spawn(move || {
///             let h: PObj<Slot> = store
///                 .txn(&mut |tx| tx.alloc_obj(&Slot { owner: t }))
///                 .unwrap();
///             assert_eq!(store.get_obj_direct(h).unwrap().owner, t);
///         });
///     }
/// });
/// ```
pub trait Store: Send + Sync {
    /// The pool UUID (embedded in OIDs).
    fn uuid(&self) -> u64;

    /// Runs `f` transactionally; `Ok` commits, `Err` aborts.
    fn txn<R>(&self, f: &mut dyn FnMut(&mut dyn TxOps) -> KvResult<R>) -> KvResult<R> {
        self.txn_with_stats(f).map(|(r, _)| r)
    }

    /// Like [`Store::txn`] but also returns instrumentation counters
    /// (Table 3's New/Mod quantities).
    fn txn_with_stats<R>(
        &self,
        f: &mut dyn FnMut(&mut dyn TxOps) -> KvResult<R>,
    ) -> KvResult<(R, TxStats)>;

    /// Runs every body in `ops` transactionally, returning per-body
    /// results in order — the group-commit entry point the network
    /// service's batcher drives.
    ///
    /// The default implementation runs one transaction per body (the
    /// unbatched baseline). [`PglStore`] overrides it to commit the whole
    /// batch as **one** Pangolin transaction — one redo-log persist, one
    /// commit fence, one parity-patch window for the batch — falling back
    /// to per-body transactions if the batched attempt fails, so error
    /// isolation matches the default exactly. Either way, a body only
    /// reports `Ok` once its effects are (or will atomically become)
    /// durable, and a crash never exposes a partially applied body.
    fn txn_batch(&self, ops: &mut [BatchOp<'_>]) -> Vec<KvResult<Option<u64>>> {
        ops.iter_mut().map(|op| self.txn(&mut |tx| op(tx))).collect()
    }

    /// Pins the calling thread's allocations to one of the backing
    /// pool's parity shards (a service worker thread calls this once at
    /// startup with its shard index, so its group commits stay inside
    /// one parity domain and never pay the cross-shard commit protocol).
    /// Backends without parity shards ignore it.
    fn bind_shard(&self, _shard: usize) {}

    /// Direct (transaction-free) read — `pgl_get`-style for Pangolin,
    /// a plain DAX load for the baseline.
    fn read_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()>;

    /// Direct read with verification coverage where the backend has any:
    /// Pangolin serves it through the range-granular verified read path
    /// (one range-sized NVMM read on a verified-generation cache hit, one
    /// whole-object verification on a miss); the checksum-less baseline
    /// falls back to a plain read.
    fn read_verified_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        self.read_direct(oid, off, dst)
    }

    /// Counters of the most recently committed transaction on this handle
    /// (single-threaded instrumentation helper for the Table 3 harness).
    fn last_tx_stats(&self) -> TxStats;

    /// Typed direct read (raw-offset escape hatch; prefer
    /// [`Store::read_at_direct`]).
    fn read_pod_direct<T: Pod>(&self, oid: PMEMoid, off: u64) -> KvResult<T>
    where
        Self: Sized,
    {
        let mut v = zeroed::<T>();
        self.read_direct(oid, off, bytes_of_mut(&mut v))?;
        Ok(v)
    }

    /// Typed direct whole-object read.
    fn get_obj_direct<T: PType>(&self, h: PObj<T>) -> KvResult<T>
    where
        Self: Sized,
    {
        self.read_pod_direct(h.oid(), 0)
    }

    /// Typed direct whole-object read with verification coverage (see
    /// [`Store::read_verified_direct`]); no heap buffer either way.
    fn get_obj_verified<T: PType>(&self, h: PObj<T>) -> KvResult<T>
    where
        Self: Sized,
    {
        let mut v = zeroed::<T>();
        self.read_verified_direct(h.oid(), 0, bytes_of_mut(&mut v))?;
        Ok(v)
    }

    /// Typed direct field read through a [`field!`](pangolin::field)
    /// offset.
    fn read_at_direct<T: PType, F: Pod>(&self, h: PObj<T>, fld: Field<T, F>) -> KvResult<F>
    where
        Self: Sized,
    {
        self.read_pod_direct(h.oid(), fld.offset())
    }

    /// Typed direct array-element read.
    fn arr_get_direct<T: Pod>(&self, a: PArr<T>, i: u64) -> KvResult<T>
    where
        Self: Sized,
    {
        self.read_pod_direct(a.oid(), i * std::mem::size_of::<T>() as u64)
    }

    /// Returns (and on first use creates) the pool root object of `size`
    /// bytes.
    fn root(&self, size: u64, type_num: u32) -> KvResult<PMEMoid>;

    /// Returns (and on first use creates) the typed pool root.
    fn typed_root<T: PType>(&self) -> KvResult<PObj<T>>
    where
        Self: Sized,
    {
        Ok(PObj::from_oid(self.root(std::mem::size_of::<T>() as u64, T::TYPE_NUM)?))
    }
}

// ---------------------------------------------------------------------
// Baseline backend
// ---------------------------------------------------------------------

/// The `libpmemobj`-style backend (plain or replicated pool).
#[derive(Clone)]
pub struct PmemStore {
    pool: Arc<PmemPool>,
    last: Arc<Mutex<TxStats>>,
}

impl PmemStore {
    /// Wraps a pool.
    pub fn new(pool: Arc<PmemPool>) -> Self {
        PmemStore { pool, last: Arc::new(Mutex::new(TxStats::default())) }
    }

    /// The wrapped pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }
}

struct PmemTxOps<'a, 'p>(&'a mut pgl_pmemobj::Tx<'p>);

impl TxOps for PmemTxOps<'_, '_> {
    fn alloc(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.0.alloc(size, type_num)?)
    }
    fn alloc_zeroed(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.0.alloc_zeroed(size, type_num)?)
    }
    fn free(&mut self, oid: PMEMoid) -> KvResult<()> {
        Ok(self.0.free(oid)?)
    }
    fn write_bytes(&mut self, oid: PMEMoid, off: u64, src: &[u8]) -> KvResult<()> {
        Ok(self.0.write(oid, off, src)?)
    }
    fn read_bytes(&mut self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        Ok(self.0.read(oid, off, dst)?)
    }
}

impl Store for PmemStore {
    fn uuid(&self) -> u64 {
        self.pool.uuid()
    }

    fn txn_with_stats<R>(
        &self,
        f: &mut dyn FnMut(&mut dyn TxOps) -> KvResult<R>,
    ) -> KvResult<(R, TxStats)> {
        let mut kv_err: Option<KvError> = None;
        let result = self.pool.tx_with_stats(|tx| {
            let mut ops = PmemTxOps(tx);
            match f(&mut ops) {
                Ok(r) => Ok(r),
                Err(e) => {
                    let msg = e.to_string();
                    kv_err = Some(e);
                    Err(ObjError::Aborted(msg))
                }
            }
        });
        match result {
            Ok(pair) => {
                *self.last.lock() = pair.1;
                Ok(pair)
            }
            Err(e) => Err(kv_err.unwrap_or(KvError::Obj(e))),
        }
    }

    fn read_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        Ok(self.pool.read(oid, off, dst)?)
    }

    fn last_tx_stats(&self) -> TxStats {
        *self.last.lock()
    }

    fn root(&self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.pool.root(size, type_num)?)
    }
}

// ---------------------------------------------------------------------
// Pangolin backend
// ---------------------------------------------------------------------

/// The Pangolin backend (any [`pangolin::PglMode`]).
#[derive(Clone)]
pub struct PglStore {
    pool: PglPool,
    last: Arc<Mutex<TxStats>>,
}

impl PglStore {
    /// Wraps a pool.
    pub fn new(pool: PglPool) -> Self {
        PglStore { pool, last: Arc::new(Mutex::new(TxStats::default())) }
    }

    /// The wrapped pool.
    pub fn pool(&self) -> &PglPool {
        &self.pool
    }
}

struct PglTxOps<'a, 'p>(&'a mut pangolin::PglTx<'p>);

impl TxOps for PglTxOps<'_, '_> {
    fn alloc(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.0.alloc(size, type_num)?)
    }
    fn alloc_zeroed(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        // Pangolin allocations are zero-filled micro-buffers already.
        Ok(self.0.alloc(size, type_num)?)
    }
    fn free(&mut self, oid: PMEMoid) -> KvResult<()> {
        Ok(self.0.free(oid)?)
    }
    fn write_bytes(&mut self, oid: PMEMoid, off: u64, src: &[u8]) -> KvResult<()> {
        Ok(self.0.write(oid, off, src)?)
    }
    fn read_bytes(&mut self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        Ok(self.0.read(oid, off, dst)?)
    }
}

impl Store for PglStore {
    fn uuid(&self) -> u64 {
        self.pool.uuid()
    }

    fn bind_shard(&self, shard: usize) {
        self.pool.bind_thread_to_shard(shard);
    }

    fn txn_with_stats<R>(
        &self,
        f: &mut dyn FnMut(&mut dyn TxOps) -> KvResult<R>,
    ) -> KvResult<(R, TxStats)> {
        let mut kv_err: Option<KvError> = None;
        let result = self.pool.tx_with_stats(|tx| {
            let mut ops = PglTxOps(tx);
            match f(&mut ops) {
                Ok(r) => Ok(r),
                Err(e) => {
                    let msg = e.to_string();
                    kv_err = Some(e);
                    Err(PglError::unrecoverable(msg))
                }
            }
        });
        match result {
            Ok(pair) => {
                *self.last.lock() = pair.1;
                Ok(pair)
            }
            Err(e) => Err(kv_err.unwrap_or(KvError::Pgl(e))),
        }
    }

    fn txn_batch(&self, ops: &mut [BatchOp<'_>]) -> Vec<KvResult<Option<u64>>> {
        if ops.len() < 2 {
            return ops.iter_mut().map(|op| self.txn(&mut |tx| op(tx))).collect();
        }
        let batched = self.pool.tx_batch(ops.len(), |i, tx| {
            let mut w = PglTxOps(tx);
            (ops[i])(&mut w).map_err(|e| PglError::unrecoverable(e.to_string()))
        });
        match batched {
            Ok(results) => results.into_iter().map(Ok).collect(),
            // The all-or-nothing batch aborted and rolled every body's
            // effects back; re-run the bodies as individual transactions
            // so per-body errors come out exactly as unbatched.
            Err(_) => ops.iter_mut().map(|op| self.txn(&mut |tx| op(tx))).collect(),
        }
    }

    fn read_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        Ok(self.pool.read(oid, off, dst)?)
    }

    fn read_verified_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        Ok(self.pool.read_verified_at(oid, off, dst)?)
    }

    fn last_tx_stats(&self) -> TxStats {
        *self.last.lock()
    }

    fn root(&self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.pool.root(size, type_num)?)
    }
}

/// The pool-id tag marking a slot that carries an inline value instead of
/// an object pointer (no real pool ever has this uuid).
const INLINE_TAG: u64 = u64::MAX;

/// A persistent 16-byte slot that holds either an **inline `u64` value**
/// or a **typed object handle** — the paper's data structures (e.g. the
/// crit-bit tree) store `PMEMoid`-shaped slots that serve both roles.
///
/// Historically this was smuggled through a fake `PMEMoid` with a sentinel
/// pool id; `ValueSlot` keeps that bit-compatible encoding but only lets
/// callers in and out through the type-checked [`ValueRef`] enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct ValueSlot {
    raw: PMEMoid,
}

// SAFETY: `#[repr(transparent)]` over `PMEMoid` (Pod, 16 bytes, any bit
// pattern valid).
unsafe impl Pod for ValueSlot {}

/// The decoded content of a [`ValueSlot`].
pub enum ValueRef<T: Pod> {
    /// Empty slot.
    Null,
    /// An inline `u64` value (a leaf).
    Inline(u64),
    /// A typed pointer to a `T` object (an interior node).
    Obj(PObj<T>),
}

impl<T: Pod> Clone for ValueRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for ValueRef<T> {}

impl ValueSlot {
    /// The empty slot.
    pub const NULL: ValueSlot = ValueSlot { raw: OID_NULL };

    /// Encodes an inline value.
    pub fn inline(v: u64) -> Self {
        ValueSlot { raw: PMEMoid::new(INLINE_TAG, v) }
    }

    /// Encodes a typed object pointer.
    pub fn obj<T: Pod>(h: PObj<T>) -> Self {
        ValueSlot { raw: h.oid() }
    }

    /// `true` for the empty slot.
    pub fn is_null(self) -> bool {
        self.raw.is_null()
    }

    /// Decodes the slot, branding any object pointer as a `T` handle.
    pub fn decode<T: Pod>(self) -> ValueRef<T> {
        if self.raw.is_null() {
            ValueRef::Null
        } else if self.raw.pool == INLINE_TAG {
            ValueRef::Inline(self.raw.off)
        } else {
            ValueRef::Obj(PObj::from_oid(self.raw))
        }
    }

    /// The inline value, if the slot holds one.
    pub fn inline_value(self) -> Option<u64> {
        match self.decode::<u64>() {
            ValueRef::Inline(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangolin::PglConfig;
    use pgl_nvm::{DeviceConfig, NvmDevice};
    use pgl_pmemobj::PoolConfig;

    fn pmem_store() -> PmemStore {
        let cfg = PoolConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        PmemStore::new(Arc::new(PmemPool::create(dev, cfg).unwrap()))
    }

    fn pgl_store() -> PglStore {
        let cfg = PglConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
        PglStore::new(PglPool::create(dev, cfg).unwrap())
    }

    #[derive(Clone, Copy, Default, PartialEq, Debug)]
    #[repr(C)]
    struct Cell {
        a: u64,
        b: u64,
    }
    pangolin::impl_ptype!(Cell, 16, 1);

    fn exercise<S: Store>(s: &S) {
        let h = s
            .txn(&mut |tx| {
                let h = tx.alloc_obj_zeroed::<Cell>()?;
                tx.write_at(h, pangolin::field!(Cell, a: u64), &42u64)?;
                Ok(h)
            })
            .unwrap();
        assert_eq!(s.get_obj_direct(h).unwrap(), Cell { a: 42, b: 0 });
        s.txn(&mut |tx| tx.set_obj(h, &Cell { a: 1, b: 2 })).unwrap();
        assert_eq!(s.read_at_direct(h, pangolin::field!(Cell, b: u64)).unwrap(), 2);

        // Error propagation keeps the original KvError.
        let err = s.txn(&mut |_tx| -> KvResult<()> { Err(KvError::Corrupt("synthetic")) });
        assert_eq!(err, Err(KvError::Corrupt("synthetic")));

        // Root is stable, typed or raw.
        let r1 = s.typed_root::<Cell>().unwrap();
        let r2 = s.typed_root::<Cell>().unwrap();
        assert_eq!(r1, r2);

        // Arrays round-trip element-wise.
        let arr = s
            .txn(&mut |tx| {
                let arr = tx.alloc_arr::<u64>(8, 3)?;
                tx.arr_set(arr, 5, &555u64)?;
                Ok(arr)
            })
            .unwrap();
        assert_eq!(s.arr_get_direct(arr, 5).unwrap(), 555);
        assert_eq!(s.arr_get_direct::<u64>(arr, 0).unwrap(), 0);
    }

    #[test]
    fn both_backends_expose_identical_semantics() {
        exercise(&pmem_store());
        exercise(&pgl_store());
    }

    #[test]
    fn value_slots_tag_and_roundtrip() {
        let v = ValueSlot::inline(777);
        assert_eq!(v.inline_value(), Some(777));
        assert!(!v.is_null());
        assert!(ValueSlot::NULL.is_null());
        assert!(matches!(ValueSlot::NULL.decode::<Cell>(), ValueRef::Null));

        let h = PObj::<Cell>::from_oid(PMEMoid::new(3, 4096));
        let s = ValueSlot::obj(h);
        assert_eq!(s.inline_value(), None);
        match s.decode::<Cell>() {
            ValueRef::Obj(back) => assert_eq!(back, h),
            _ => panic!("expected an object slot"),
        }
    }
}
