//! Backend abstraction: the six data structures run unchanged over the
//! `libpmemobj` baseline, its replicated mode, and every Pangolin mode —
//! exactly how the paper rewrites the PMDK toolkit benchmarks once and
//! compares library configurations (Table 2).

use std::sync::Arc;

use parking_lot::Mutex;

use pangolin::{PglError, PglPool};
use pgl_nvm::pod::{bytes_of, from_bytes, Pod};
use pgl_pmemobj::{ObjError, PMEMoid, PmemPool, TxStats};

/// Errors from either backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// Baseline object-store error.
    Obj(ObjError),
    /// Pangolin error.
    Pgl(PglError),
    /// Structural invariant violation detected by a data structure.
    Corrupt(&'static str),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Obj(e) => write!(f, "{e}"),
            KvError::Pgl(e) => write!(f, "{e}"),
            KvError::Corrupt(s) => write!(f, "structure corrupt: {s}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<ObjError> for KvError {
    fn from(e: ObjError) -> Self {
        KvError::Obj(e)
    }
}

impl From<PglError> for KvError {
    fn from(e: PglError) -> Self {
        KvError::Pgl(e)
    }
}

/// Convenience alias.
pub type KvResult<T> = Result<T, KvError>;

/// Transaction operations the data structures use.
///
/// Both backends guarantee read-your-writes inside a transaction (Pangolin
/// through its micro-buffers, the baseline through direct stores).
pub trait TxOps {
    /// Allocates an object (content undefined until written).
    fn alloc(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid>;
    /// Allocates a zero-filled object.
    fn alloc_zeroed(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid>;
    /// Frees an object.
    fn free(&mut self, oid: PMEMoid) -> KvResult<()>;
    /// Writes bytes into an object.
    fn write_bytes(&mut self, oid: PMEMoid, off: u64, src: &[u8]) -> KvResult<()>;
    /// Reads bytes from an object.
    fn read_bytes(&mut self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()>;
}

impl dyn TxOps + '_ {
    /// Typed field write.
    pub fn write_pod<T: Pod>(&mut self, oid: PMEMoid, off: u64, val: &T) -> KvResult<()> {
        self.write_bytes(oid, off, bytes_of(val))
    }

    /// Typed field read.
    pub fn read_pod<T: Pod>(&mut self, oid: PMEMoid, off: u64) -> KvResult<T> {
        let mut buf = vec![0u8; std::mem::size_of::<T>()];
        self.read_bytes(oid, off, &mut buf)?;
        Ok(from_bytes(&buf))
    }
}

/// A persistent object store a data structure can live in.
///
/// # Thread safety
///
/// `Store` is a **shared-handle** API: implementations are `Send + Sync`,
/// methods take `&self`, and the concrete stores ([`PmemStore`],
/// [`PglStore`]) are cheap `Arc`-backed clones of one pool. Any number of
/// threads may run transactions on clones (or references) of the same
/// store concurrently — each transaction claims its own lane and commits
/// under parity range-locks. The one rule is the paper's (§3.4): two
/// *concurrent* transactions must not modify the same object. Structures
/// in this crate are single-writer per map; run one map per thread (or add
/// external synchronization) for write-parallel workloads, as
/// [`crate::workload::concurrent_insert_phase`] does.
///
/// ```
/// use std::sync::Arc;
/// use pangolin::{PglConfig, PglPool};
/// use pgl_kv::store::{PglStore, Store};
/// use pgl_nvm::{DeviceConfig, NvmDevice};
///
/// let cfg = PglConfig::small();
/// let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
/// let store = PglStore::new(PglPool::create(dev, cfg).unwrap());
///
/// // Clones share one pool; every thread transacts independently.
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let store = store.clone();
///         s.spawn(move || {
///             let oid = store
///                 .txn(&mut |tx| {
///                     let oid = tx.alloc_zeroed(64, 1)?;
///                     tx.write_pod(oid, 0, &t)?;
///                     Ok(oid)
///                 })
///                 .unwrap();
///             assert_eq!(store.read_pod_direct::<u64>(oid, 0).unwrap(), t);
///         });
///     }
/// });
/// ```
pub trait Store: Send + Sync {
    /// The pool UUID (embedded in OIDs).
    fn uuid(&self) -> u64;

    /// Runs `f` transactionally; `Ok` commits, `Err` aborts.
    fn txn<R>(&self, f: &mut dyn FnMut(&mut dyn TxOps) -> KvResult<R>) -> KvResult<R> {
        self.txn_with_stats(f).map(|(r, _)| r)
    }

    /// Like [`Store::txn`] but also returns instrumentation counters
    /// (Table 3's New/Mod quantities).
    fn txn_with_stats<R>(
        &self,
        f: &mut dyn FnMut(&mut dyn TxOps) -> KvResult<R>,
    ) -> KvResult<(R, TxStats)>;

    /// Direct (transaction-free) read — `pgl_get`-style for Pangolin,
    /// a plain DAX load for the baseline.
    fn read_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()>;

    /// Counters of the most recently committed transaction on this handle
    /// (single-threaded instrumentation helper for the Table 3 harness).
    fn last_tx_stats(&self) -> TxStats;

    /// Typed direct read.
    fn read_pod_direct<T: Pod>(&self, oid: PMEMoid, off: u64) -> KvResult<T>
    where
        Self: Sized,
    {
        let mut buf = vec![0u8; std::mem::size_of::<T>()];
        self.read_direct(oid, off, &mut buf)?;
        Ok(from_bytes(&buf))
    }

    /// Returns (and on first use creates) the pool root object of `size`
    /// bytes.
    fn root(&self, size: u64, type_num: u32) -> KvResult<PMEMoid>;
}

// ---------------------------------------------------------------------
// Baseline backend
// ---------------------------------------------------------------------

/// The `libpmemobj`-style backend (plain or replicated pool).
#[derive(Clone)]
pub struct PmemStore {
    pool: Arc<PmemPool>,
    last: Arc<Mutex<TxStats>>,
}

impl PmemStore {
    /// Wraps a pool.
    pub fn new(pool: Arc<PmemPool>) -> Self {
        PmemStore { pool, last: Arc::new(Mutex::new(TxStats::default())) }
    }

    /// The wrapped pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }
}

struct PmemTxOps<'a, 'p>(&'a mut pgl_pmemobj::Tx<'p>);

impl TxOps for PmemTxOps<'_, '_> {
    fn alloc(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.0.alloc(size, type_num)?)
    }
    fn alloc_zeroed(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.0.alloc_zeroed(size, type_num)?)
    }
    fn free(&mut self, oid: PMEMoid) -> KvResult<()> {
        Ok(self.0.free(oid)?)
    }
    fn write_bytes(&mut self, oid: PMEMoid, off: u64, src: &[u8]) -> KvResult<()> {
        Ok(self.0.write(oid, off, src)?)
    }
    fn read_bytes(&mut self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        Ok(self.0.read(oid, off, dst)?)
    }
}

impl Store for PmemStore {
    fn uuid(&self) -> u64 {
        self.pool.uuid()
    }

    fn txn_with_stats<R>(
        &self,
        f: &mut dyn FnMut(&mut dyn TxOps) -> KvResult<R>,
    ) -> KvResult<(R, TxStats)> {
        let mut kv_err: Option<KvError> = None;
        let result = self.pool.tx_with_stats(|tx| {
            let mut ops = PmemTxOps(tx);
            match f(&mut ops) {
                Ok(r) => Ok(r),
                Err(e) => {
                    let msg = e.to_string();
                    kv_err = Some(e);
                    Err(ObjError::Aborted(msg))
                }
            }
        });
        match result {
            Ok(pair) => {
                *self.last.lock() = pair.1;
                Ok(pair)
            }
            Err(e) => Err(kv_err.unwrap_or(KvError::Obj(e))),
        }
    }

    fn read_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        Ok(self.pool.read(oid, off, dst)?)
    }

    fn last_tx_stats(&self) -> TxStats {
        *self.last.lock()
    }

    fn root(&self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.pool.root(size, type_num)?)
    }
}

// ---------------------------------------------------------------------
// Pangolin backend
// ---------------------------------------------------------------------

/// The Pangolin backend (any [`pangolin::PglMode`]).
#[derive(Clone)]
pub struct PglStore {
    pool: PglPool,
    last: Arc<Mutex<TxStats>>,
}

impl PglStore {
    /// Wraps a pool.
    pub fn new(pool: PglPool) -> Self {
        PglStore { pool, last: Arc::new(Mutex::new(TxStats::default())) }
    }

    /// The wrapped pool.
    pub fn pool(&self) -> &PglPool {
        &self.pool
    }
}

struct PglTxOps<'a, 'p>(&'a mut pangolin::PglTx<'p>);

impl TxOps for PglTxOps<'_, '_> {
    fn alloc(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.0.alloc(size, type_num)?)
    }
    fn alloc_zeroed(&mut self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        // Pangolin allocations are zero-filled micro-buffers already.
        Ok(self.0.alloc(size, type_num)?)
    }
    fn free(&mut self, oid: PMEMoid) -> KvResult<()> {
        Ok(self.0.free(oid)?)
    }
    fn write_bytes(&mut self, oid: PMEMoid, off: u64, src: &[u8]) -> KvResult<()> {
        Ok(self.0.write(oid, off, src)?)
    }
    fn read_bytes(&mut self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        Ok(self.0.read(oid, off, dst)?)
    }
}

impl Store for PglStore {
    fn uuid(&self) -> u64 {
        self.pool.uuid()
    }

    fn txn_with_stats<R>(
        &self,
        f: &mut dyn FnMut(&mut dyn TxOps) -> KvResult<R>,
    ) -> KvResult<(R, TxStats)> {
        let mut kv_err: Option<KvError> = None;
        let result = self.pool.tx_with_stats(|tx| {
            let mut ops = PglTxOps(tx);
            match f(&mut ops) {
                Ok(r) => Ok(r),
                Err(e) => {
                    let msg = e.to_string();
                    kv_err = Some(e);
                    Err(PglError::Unrecoverable(msg))
                }
            }
        });
        match result {
            Ok(pair) => {
                *self.last.lock() = pair.1;
                Ok(pair)
            }
            Err(e) => Err(kv_err.unwrap_or(KvError::Pgl(e))),
        }
    }

    fn read_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        Ok(self.pool.read(oid, off, dst)?)
    }

    fn last_tx_stats(&self) -> TxStats {
        *self.last.lock()
    }

    fn root(&self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        Ok(self.pool.root(size, type_num)?)
    }
}

/// Tags a value-carrying [`PMEMoid`]: the paper's data structures store
/// `PMEMoid`-shaped slots that may hold either a child pointer or an
/// embedded value; the pool id distinguishes them.
pub const VALUE_TAG: u64 = u64::MAX;

/// Encodes a `u64` value as a tagged slot.
pub fn value_slot(v: u64) -> PMEMoid {
    PMEMoid::new(VALUE_TAG, v)
}

/// Decodes a tagged slot, if it is one.
pub fn slot_value(oid: PMEMoid) -> Option<u64> {
    (oid.pool == VALUE_TAG).then_some(oid.off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pangolin::PglConfig;
    use pgl_nvm::{DeviceConfig, NvmDevice};
    use pgl_pmemobj::PoolConfig;

    fn pmem_store() -> PmemStore {
        let cfg = PoolConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        PmemStore::new(Arc::new(PmemPool::create(dev, cfg).unwrap()))
    }

    fn pgl_store() -> PglStore {
        let cfg = PglConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
        PglStore::new(PglPool::create(dev, cfg).unwrap())
    }

    fn exercise<S: Store>(s: &S) {
        let oid = s
            .txn(&mut |tx| {
                let oid = tx.alloc_zeroed(64, 1)?;
                tx.write_pod(oid, 0, &42u64)?;
                Ok(oid)
            })
            .unwrap();
        assert_eq!(s.read_pod_direct::<u64>(oid, 0).unwrap(), 42);

        // Error propagation keeps the original KvError.
        let err = s.txn(&mut |_tx| -> KvResult<()> { Err(KvError::Corrupt("synthetic")) });
        assert_eq!(err, Err(KvError::Corrupt("synthetic")));

        // Root is stable.
        let r1 = s.root(32, 9).unwrap();
        let r2 = s.root(32, 9).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn both_backends_expose_identical_semantics() {
        exercise(&pmem_store());
        exercise(&pgl_store());
    }

    #[test]
    fn value_slots_tag_and_roundtrip() {
        let v = value_slot(777);
        assert_eq!(slot_value(v), Some(777));
        assert_eq!(slot_value(PMEMoid::new(3, 8)), None);
        assert_eq!(slot_value(pgl_pmemobj::OID_NULL), None);
    }
}
