//! Skip list with 24 levels: 408-byte nodes (Table 3's skiplist row).
//!
//! Level draws are deterministic (derived from the key's hash), which makes
//! the structure reproducible across runs and backends without a random
//! number generator in the transaction path.

use pgl_pmemobj::{PMEMoid, OID_NULL};

use crate::maps::{splitmix64, PersistentMap};
use crate::store::{KvError, KvResult, Store, TxOps};

const TYPE_ANCHOR: u32 = 130;
const TYPE_NODE: u32 = 131;

/// Tower height.
pub const LEVELS: usize = 24;

/// Node: `{next[24] = 384 bytes, key, value, pad}` = 408 bytes.
const NODE_SIZE: u64 = 408;
const KEY_OFF: u64 = 384;
const VALUE_OFF: u64 = 392;

fn next_off(level: usize) -> u64 {
    (level as u64) * 16
}

/// Anchor: `{count, head}`; the head is a sentinel node whose `next`
/// pointers are the level lists' heads.
const ANCHOR_SIZE: u64 = 24;
const HEAD_OFF: u64 = 8;

/// Deterministic tower height for `key`: geometric with p = 1/2, capped.
fn level_for(key: u64) -> usize {
    let h = splitmix64(key ^ 0xC0FF_EE00_5EED);
    ((h.trailing_zeros() as usize) + 1).min(LEVELS)
}

/// The skip list map.
pub struct SkipList {
    anchor: PMEMoid,
}

impl SkipList {
    fn bump_count(tx: &mut dyn TxOps, anchor: PMEMoid, delta: i64) -> KvResult<()> {
        let mut buf = [0u8; 8];
        tx.read_bytes(anchor, 0, &mut buf)?;
        let n = u64::from_le_bytes(buf)
            .checked_add_signed(delta)
            .ok_or(KvError::Corrupt("skiplist count"))?;
        tx.write_bytes(anchor, 0, &n.to_le_bytes())
    }

    /// Finds, per level, the last node with `key < target` (the preds).
    fn find_preds(
        tx: &mut dyn TxOps,
        head: PMEMoid,
        key: u64,
    ) -> KvResult<[PMEMoid; LEVELS]> {
        let mut preds = [OID_NULL; LEVELS];
        let mut cur = head;
        for level in (0..LEVELS).rev() {
            loop {
                let next: PMEMoid = tx.read_pod(cur, next_off(level))?;
                if next.is_null() {
                    break;
                }
                let nkey: u64 = tx.read_pod(next, KEY_OFF)?;
                if nkey >= key {
                    break;
                }
                cur = next;
            }
            preds[level] = cur;
        }
        Ok(preds)
    }
}

impl PersistentMap for SkipList {
    const NAME: &'static str = "skiplist";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| {
            let anchor = tx.alloc_zeroed(ANCHOR_SIZE, TYPE_ANCHOR)?;
            let head = tx.alloc_zeroed(NODE_SIZE, TYPE_NODE)?;
            tx.write_pod(anchor, HEAD_OFF, &head)?;
            Ok(anchor)
        })?;
        Ok(SkipList { anchor })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        SkipList { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let head: PMEMoid = tx.read_pod(anchor, HEAD_OFF)?;
            let preds = Self::find_preds(tx, head, key)?;
            let at: PMEMoid = tx.read_pod(preds[0], next_off(0))?;
            if !at.is_null() {
                let akey: u64 = tx.read_pod(at, KEY_OFF)?;
                if akey == key {
                    let old: u64 = tx.read_pod(at, VALUE_OFF)?;
                    tx.write_pod(at, VALUE_OFF, &value)?;
                    return Ok(Some(old));
                }
            }
            let height = level_for(key);
            let node = tx.alloc_zeroed(NODE_SIZE, TYPE_NODE)?;
            tx.write_pod(node, KEY_OFF, &key)?;
            tx.write_pod(node, VALUE_OFF, &value)?;
            for (level, &pred) in preds.iter().enumerate().take(height) {
                let succ: PMEMoid = tx.read_pod(pred, next_off(level))?;
                tx.write_pod(node, next_off(level), &succ)?;
                tx.write_pod(pred, next_off(level), &node)?;
            }
            Self::bump_count(tx, anchor, 1)?;
            Ok(None)
        })
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let head: PMEMoid = tx.read_pod(anchor, HEAD_OFF)?;
            let preds = Self::find_preds(tx, head, key)?;
            let target: PMEMoid = tx.read_pod(preds[0], next_off(0))?;
            if target.is_null() {
                return Ok(None);
            }
            let tkey: u64 = tx.read_pod(target, KEY_OFF)?;
            if tkey != key {
                return Ok(None);
            }
            let old: u64 = tx.read_pod(target, VALUE_OFF)?;
            for (level, &pred) in preds.iter().enumerate() {
                let pn: PMEMoid = tx.read_pod(pred, next_off(level))?;
                if pn != target {
                    break; // towers shrink upward: once unlinked, done
                }
                let succ: PMEMoid = tx.read_pod(target, next_off(level))?;
                tx.write_pod(pred, next_off(level), &succ)?;
            }
            tx.free(target)?;
            Self::bump_count(tx, anchor, -1)?;
            Ok(Some(old))
        })
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let head: PMEMoid = store.read_pod_direct(self.anchor, HEAD_OFF)?;
        if head.is_null() {
            return Ok(None);
        }
        let mut cur = head;
        for level in (0..LEVELS).rev() {
            loop {
                let next: PMEMoid = store.read_pod_direct(cur, next_off(level))?;
                if next.is_null() {
                    break;
                }
                let nkey: u64 = store.read_pod_direct(next, KEY_OFF)?;
                if nkey > key {
                    break;
                }
                if nkey == key {
                    return Ok(Some(store.read_pod_direct(next, VALUE_OFF)?));
                }
                cur = next;
            }
        }
        Ok(None)
    }
}

/// Test helper: verifies level-0 ordering, tower consistency (every level-l
/// list is a subsequence of level 0), and the count.
pub fn check_invariants<S: Store>(map: &SkipList, store: &S) -> KvResult<u64> {
    let head: PMEMoid = store.read_pod_direct(map.anchor(), HEAD_OFF)?;
    // Level 0: full ordered traversal.
    let mut keys = Vec::new();
    let mut cur: PMEMoid = store.read_pod_direct(head, next_off(0))?;
    while !cur.is_null() {
        let k: u64 = store.read_pod_direct(cur, KEY_OFF)?;
        if let Some(&last) = keys.last() {
            if k <= last {
                return Err(KvError::Corrupt("skiplist: unordered level 0"));
            }
        }
        keys.push(k);
        cur = store.read_pod_direct(cur, next_off(0))?;
    }
    // Upper levels must be ordered subsequences.
    for level in 1..LEVELS {
        let mut cur: PMEMoid = store.read_pod_direct(head, next_off(level))?;
        let mut prev: Option<u64> = None;
        while !cur.is_null() {
            let k: u64 = store.read_pod_direct(cur, KEY_OFF)?;
            if let Some(p) = prev {
                if k <= p {
                    return Err(KvError::Corrupt("skiplist: unordered upper level"));
                }
            }
            if keys.binary_search(&k).is_err() {
                return Err(KvError::Corrupt("skiplist: upper level not a subsequence"));
            }
            prev = Some(k);
            cur = store.read_pod_direct(cur, next_off(level))?;
        }
    }
    if keys.len() as u64 != map.len(store)? {
        return Err(KvError::Corrupt("skiplist: count mismatch"));
    }
    Ok(keys.len() as u64)
}
