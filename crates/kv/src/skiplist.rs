//! Skip list with 24 levels: 408-byte nodes (Table 3's skiplist row).
//!
//! Level draws are deterministic (derived from the key's hash), which makes
//! the structure reproducible across runs and backends without a random
//! number generator in the transaction path.
//!
//! Level pointers are accessed through an indexed [`field!`] offset, so
//! each link update logs 16 bytes — not the whole 408-byte node — keeping
//! the incremental-checksum fast path.

use pangolin::typed::{Field, PObj};
use pangolin::{field, impl_ptype};
use pgl_pmemobj::PMEMoid;

use crate::maps::{splitmix64, PersistentMap};
use crate::store::{KvError, KvResult, Store, TxOps};

const TYPE_ANCHOR: u32 = 130;
const TYPE_NODE: u32 = 131;

/// Tower height.
pub const LEVELS: usize = 24;

/// Node: `{next[24] = 384 bytes, key, value, pad}` = 408 bytes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct SkipNode {
    next: [PObj<SkipNode>; LEVELS],
    key: u64,
    value: u64,
    pad: u64,
}
impl_ptype!(SkipNode, 408, TYPE_NODE);

/// Anchor: `{count, head}` = 24 bytes; the head is a sentinel node whose
/// `next` pointers are the level lists' heads.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct SlAnchor {
    count: u64,
    head: PObj<SkipNode>,
}
impl_ptype!(SlAnchor, 24, TYPE_ANCHOR);

type NodeH = PObj<SkipNode>;

/// The level-`l` link slot of a node.
fn next_at(level: usize) -> Field<SkipNode, NodeH> {
    field!(SkipNode, next: [PObj<SkipNode>; LEVELS]).index(level)
}

/// Deterministic tower height for `key`: geometric with p = 1/2, capped.
fn level_for(key: u64) -> usize {
    let h = splitmix64(key ^ 0xC0FF_EE00_5EED);
    ((h.trailing_zeros() as usize) + 1).min(LEVELS)
}

/// The skip list map.
pub struct SkipList {
    anchor: PMEMoid,
}

impl SkipList {
    fn anchor_h(&self) -> PObj<SlAnchor> {
        PObj::from_oid(self.anchor)
    }

    fn bump_count(tx: &mut dyn TxOps, anchor: PObj<SlAnchor>, delta: i64) -> KvResult<()> {
        let count: u64 = tx.read_at(anchor, field!(SlAnchor, count: u64))?;
        let n = count.checked_add_signed(delta).ok_or(KvError::Corrupt("skiplist count"))?;
        tx.write_at(anchor, field!(SlAnchor, count: u64), &n)
    }

    /// Finds, per level, the last node with `key < target` (the preds).
    fn find_preds(tx: &mut dyn TxOps, head: NodeH, key: u64) -> KvResult<[NodeH; LEVELS]> {
        let mut preds = [PObj::null(); LEVELS];
        let mut cur = head;
        for level in (0..LEVELS).rev() {
            loop {
                let next: NodeH = tx.read_at(cur, next_at(level))?;
                if next.is_null() {
                    break;
                }
                let nkey: u64 = tx.read_at(next, field!(SkipNode, key: u64))?;
                if nkey >= key {
                    break;
                }
                cur = next;
            }
            preds[level] = cur;
        }
        Ok(preds)
    }
}

impl PersistentMap for SkipList {
    const NAME: &'static str = "skiplist";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| {
            let anchor = tx.alloc_obj_zeroed::<SlAnchor>()?;
            let head = tx.alloc_obj_zeroed::<SkipNode>()?;
            tx.write_at(anchor, field!(SlAnchor, head: PObj<SkipNode>), &head)?;
            Ok(anchor)
        })?;
        Ok(SkipList { anchor: anchor.oid() })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        SkipList { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let head: NodeH = tx.read_at(anchor, field!(SlAnchor, head: PObj<SkipNode>))?;
            let preds = Self::find_preds(tx, head, key)?;
            let at: NodeH = tx.read_at(preds[0], next_at(0))?;
            if !at.is_null() {
                let akey: u64 = tx.read_at(at, field!(SkipNode, key: u64))?;
                if akey == key {
                    let old: u64 = tx.read_at(at, field!(SkipNode, value: u64))?;
                    tx.write_at(at, field!(SkipNode, value: u64), &value)?;
                    return Ok(Some(old));
                }
            }
            let height = level_for(key);
            let node = tx.alloc_obj_zeroed::<SkipNode>()?;
            tx.write_at(node, field!(SkipNode, key: u64), &key)?;
            tx.write_at(node, field!(SkipNode, value: u64), &value)?;
            for (level, &pred) in preds.iter().enumerate().take(height) {
                let succ: NodeH = tx.read_at(pred, next_at(level))?;
                tx.write_at(node, next_at(level), &succ)?;
                tx.write_at(pred, next_at(level), &node)?;
            }
            Self::bump_count(tx, anchor, 1)?;
            Ok(None)
        })
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let head: NodeH = tx.read_at(anchor, field!(SlAnchor, head: PObj<SkipNode>))?;
            let preds = Self::find_preds(tx, head, key)?;
            let target: NodeH = tx.read_at(preds[0], next_at(0))?;
            if target.is_null() {
                return Ok(None);
            }
            let tkey: u64 = tx.read_at(target, field!(SkipNode, key: u64))?;
            if tkey != key {
                return Ok(None);
            }
            let old: u64 = tx.read_at(target, field!(SkipNode, value: u64))?;
            for (level, &pred) in preds.iter().enumerate() {
                let pn: NodeH = tx.read_at(pred, next_at(level))?;
                if pn != target {
                    break; // towers shrink upward: once unlinked, done
                }
                let succ: NodeH = tx.read_at(target, next_at(level))?;
                tx.write_at(pred, next_at(level), &succ)?;
            }
            tx.free_obj(target)?;
            Self::bump_count(tx, anchor, -1)?;
            Ok(Some(old))
        })
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let head: NodeH =
            store.read_at_direct(self.anchor_h(), field!(SlAnchor, head: PObj<SkipNode>))?;
        if head.is_null() {
            return Ok(None);
        }
        let mut cur = head;
        for level in (0..LEVELS).rev() {
            loop {
                let next: NodeH = store.read_at_direct(cur, next_at(level))?;
                if next.is_null() {
                    break;
                }
                let nkey: u64 = store.read_at_direct(next, field!(SkipNode, key: u64))?;
                if nkey > key {
                    break;
                }
                if nkey == key {
                    return Ok(Some(store.read_at_direct(next, field!(SkipNode, value: u64))?));
                }
                cur = next;
            }
        }
        Ok(None)
    }
}

/// Test helper: verifies level-0 ordering, tower consistency (every level-l
/// list is a subsequence of level 0), and the count.
pub fn check_invariants<S: Store>(map: &SkipList, store: &S) -> KvResult<u64> {
    let head: NodeH = store
        .read_at_direct(PObj::from_oid(map.anchor()), field!(SlAnchor, head: PObj<SkipNode>))?;
    // Level 0: full ordered traversal.
    let mut keys = Vec::new();
    let mut cur: NodeH = store.read_at_direct(head, next_at(0))?;
    while !cur.is_null() {
        let k: u64 = store.read_at_direct(cur, field!(SkipNode, key: u64))?;
        if let Some(&last) = keys.last() {
            if k <= last {
                return Err(KvError::Corrupt("skiplist: unordered level 0"));
            }
        }
        keys.push(k);
        cur = store.read_at_direct(cur, next_at(0))?;
    }
    // Upper levels must be ordered subsequences.
    for level in 1..LEVELS {
        let mut cur: NodeH = store.read_at_direct(head, next_at(level))?;
        let mut prev: Option<u64> = None;
        while !cur.is_null() {
            let k: u64 = store.read_at_direct(cur, field!(SkipNode, key: u64))?;
            if let Some(p) = prev {
                if k <= p {
                    return Err(KvError::Corrupt("skiplist: unordered upper level"));
                }
            }
            if keys.binary_search(&k).is_err() {
                return Err(KvError::Corrupt("skiplist: upper level not a subsequence"));
            }
            prev = Some(k);
            cur = store.read_at_direct(cur, next_at(level))?;
        }
    }
    if keys.len() as u64 != map.len(store)? {
        return Err(KvError::Corrupt("skiplist: count mismatch"));
    }
    Ok(keys.len() as u64)
}
