//! Crit-bit tree (PMDK's `ctree_map`): a binary radix tree keyed by the
//! most significant differing bit.
//!
//! Layout matches the paper's Table 3: one 56-byte internal node per stored
//! key (leaves are embedded entries), so "Insert New" is exactly 56 (1.00).

use pangolin::typed::PObj;
use pangolin::{field, impl_ptype};

use crate::maps::PersistentMap;
use crate::store::{KvError, KvResult, Store, TxOps, ValueRef, ValueSlot};
use pgl_pmemobj::PMEMoid;

const TYPE_ANCHOR: u32 = 100;
const TYPE_NODE: u32 = 101;

/// `{key, slot}` — a leaf (inline value slot) or a child pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
struct Entry {
    key: u64,
    slot: ValueSlot,
}
pangolin::impl_pod!(Entry, 24);

/// Anchor: `{count, root entry}` = 32 bytes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct CAnchor {
    count: u64,
    root: Entry,
}
impl_ptype!(CAnchor, 32, TYPE_ANCHOR);

/// Node: `{diff, pad, entries[2]}` = 56 bytes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct CNode {
    diff: u32,
    pad: u32,
    entries: [Entry; 2],
}
impl_ptype!(CNode, 56, TYPE_NODE);

/// Where an entry lives: the anchor's root slot or one of a node's two
/// entry slots.
#[derive(Debug, Clone, Copy)]
enum EntryLoc {
    Root(PObj<CAnchor>),
    Node(PObj<CNode>, usize),
}

/// The crit-bit tree map.
pub struct CTree {
    anchor: PMEMoid,
}

impl CTree {
    fn anchor_h(&self) -> PObj<CAnchor> {
        PObj::from_oid(self.anchor)
    }

    fn is_leaf(e: &Entry) -> bool {
        e.slot.inline_value().is_some()
    }

    /// The node an interior entry points at.
    fn child(e: &Entry) -> KvResult<PObj<CNode>> {
        match e.slot.decode::<CNode>() {
            ValueRef::Obj(h) => Ok(h),
            _ => Err(KvError::Corrupt("ctree: interior entry without a child")),
        }
    }

    /// The inline value of a leaf entry.
    fn leaf_value(e: &Entry) -> KvResult<u64> {
        e.slot.inline_value().ok_or(KvError::Corrupt("ctree: leaf without a value"))
    }

    /// Position of the most significant differing bit.
    fn crit_bit(a: u64, b: u64) -> u32 {
        63 - (a ^ b).leading_zeros()
    }

    fn read_entry(tx: &mut dyn TxOps, loc: EntryLoc) -> KvResult<Entry> {
        match loc {
            EntryLoc::Root(a) => tx.read_at(a, field!(CAnchor, root: Entry)),
            EntryLoc::Node(n, i) => tx.read_at(n, field!(CNode, entries: [Entry; 2]).index(i)),
        }
    }

    fn write_entry(tx: &mut dyn TxOps, loc: EntryLoc, e: &Entry) -> KvResult<()> {
        match loc {
            EntryLoc::Root(a) => tx.write_at(a, field!(CAnchor, root: Entry), e),
            EntryLoc::Node(n, i) => tx.write_at(n, field!(CNode, entries: [Entry; 2]).index(i), e),
        }
    }

    fn bump_count(tx: &mut dyn TxOps, anchor: PObj<CAnchor>, delta: i64) -> KvResult<()> {
        let count: u64 = tx.read_at(anchor, field!(CAnchor, count: u64))?;
        let new = count.checked_add_signed(delta).ok_or(KvError::Corrupt("ctree count"))?;
        tx.write_at(anchor, field!(CAnchor, count: u64), &new)
    }
}

impl PersistentMap for CTree {
    const NAME: &'static str = "ctree";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| tx.alloc_obj_zeroed::<CAnchor>())?;
        Ok(CTree { anchor: anchor.oid() })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        CTree { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let root_loc = EntryLoc::Root(anchor);
            let root = Self::read_entry(tx, root_loc)?;
            if root.slot.is_null() {
                Self::write_entry(tx, root_loc, &Entry { key, slot: ValueSlot::inline(value) })?;
                Self::bump_count(tx, anchor, 1)?;
                return Ok(None);
            }
            // Walk to the closest leaf.
            let mut loc = root_loc;
            let mut e = root;
            while !Self::is_leaf(&e) {
                let node = Self::child(&e)?;
                let diff: u32 = tx.read_at(node, field!(CNode, diff: u32))?;
                let bit = (key >> diff) & 1;
                loc = EntryLoc::Node(node, bit as usize);
                e = Self::read_entry(tx, loc)?;
            }
            if e.key == key {
                let old = Self::leaf_value(&e)?;
                Self::write_entry(tx, loc, &Entry { key, slot: ValueSlot::inline(value) })?;
                return Ok(Some(old));
            }
            // New critical bit; find the insertion point (diffs decrease
            // downward, so stop above the first node with a smaller diff).
            let diff = Self::crit_bit(e.key, key);
            let mut loc = root_loc;
            let mut at = Self::read_entry(tx, loc)?;
            while !Self::is_leaf(&at) {
                let node = Self::child(&at)?;
                let ndiff: u32 = tx.read_at(node, field!(CNode, diff: u32))?;
                if ndiff < diff {
                    break;
                }
                let bit = (key >> ndiff) & 1;
                loc = EntryLoc::Node(node, bit as usize);
                at = Self::read_entry(tx, loc)?;
            }
            let node = tx.alloc_obj_zeroed::<CNode>()?;
            let bit = ((key >> diff) & 1) as usize;
            tx.write_at(node, field!(CNode, diff: u32), &diff)?;
            Self::write_entry(
                tx,
                EntryLoc::Node(node, bit),
                &Entry { key, slot: ValueSlot::inline(value) },
            )?;
            Self::write_entry(tx, EntryLoc::Node(node, 1 - bit), &at)?;
            Self::write_entry(tx, loc, &Entry { key: 0, slot: ValueSlot::obj(node) })?;
            Self::bump_count(tx, anchor, 1)?;
            Ok(None)
        })
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor_h();
        store.txn(&mut |tx| {
            let root_loc = EntryLoc::Root(anchor);
            let mut loc = root_loc;
            let mut e = Self::read_entry(tx, loc)?;
            if e.slot.is_null() {
                return Ok(None);
            }
            // Track the entry that points at the node containing `loc`.
            let mut parent: Option<(EntryLoc, PObj<CNode>, usize)> = None;
            while !Self::is_leaf(&e) {
                let node = Self::child(&e)?;
                let diff: u32 = tx.read_at(node, field!(CNode, diff: u32))?;
                let bit = ((key >> diff) & 1) as usize;
                parent = Some((loc, node, bit));
                loc = EntryLoc::Node(node, bit);
                e = Self::read_entry(tx, loc)?;
            }
            if e.key != key {
                return Ok(None);
            }
            let old = Self::leaf_value(&e)?;
            match parent {
                None => {
                    Self::write_entry(tx, root_loc, &Entry::default())?;
                }
                Some((ploc, node, bit)) => {
                    let sibling = Self::read_entry(tx, EntryLoc::Node(node, 1 - bit))?;
                    Self::write_entry(tx, ploc, &sibling)?;
                    tx.free_obj(node)?;
                }
            }
            Self::bump_count(tx, anchor, -1)?;
            Ok(Some(old))
        })
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let mut e: Entry = store.read_at_direct(self.anchor_h(), field!(CAnchor, root: Entry))?;
        if e.slot.is_null() {
            return Ok(None);
        }
        while !Self::is_leaf(&e) {
            let node = Self::child(&e)?;
            let diff: u32 = store.read_at_direct(node, field!(CNode, diff: u32))?;
            let bit = ((key >> diff) & 1) as usize;
            e = store.read_at_direct(node, field!(CNode, entries: [Entry; 2]).index(bit))?;
        }
        Ok(if e.key == key { Some(Self::leaf_value(&e)?) } else { None })
    }
}

/// Sanity self-check used by tests: walks the whole tree and verifies the
/// crit-bit invariant (diffs strictly decrease downward, keys agree with
/// their path bits). Returns the number of keys.
pub fn check_invariants<S: Store>(map: &CTree, store: &S) -> KvResult<u64> {
    fn walk<S: Store>(store: &S, e: Entry, max_diff: Option<u32>) -> KvResult<u64> {
        if e.slot.is_null() {
            return Ok(0);
        }
        if CTree::is_leaf(&e) {
            return Ok(1);
        }
        let node = CTree::child(&e)?;
        let diff: u32 = store.read_at_direct(node, field!(CNode, diff: u32))?;
        if let Some(m) = max_diff {
            if diff >= m {
                return Err(KvError::Corrupt("ctree: non-decreasing crit bits"));
            }
        }
        let l: Entry = store.read_at_direct(node, field!(CNode, entries: [Entry; 2]).index(0))?;
        let r: Entry = store.read_at_direct(node, field!(CNode, entries: [Entry; 2]).index(1))?;
        if l.slot.is_null() || r.slot.is_null() {
            return Err(KvError::Corrupt("ctree: internal node with a hole"));
        }
        Ok(walk(store, l, Some(diff))? + walk(store, r, Some(diff))?)
    }
    let root: Entry = store.read_at_direct(map.anchor_h(), field!(CAnchor, root: Entry))?;
    let n = walk(store, root, None)?;
    let count = map.len(store)?;
    if n != count {
        return Err(KvError::Corrupt("ctree: count mismatch"));
    }
    Ok(n)
}
