//! Crit-bit tree (PMDK's `ctree_map`): a binary radix tree keyed by the
//! most significant differing bit.
//!
//! Layout matches the paper's Table 3: one 56-byte internal node per stored
//! key (leaves are embedded entries), so "Insert New" is exactly 56 (1.00).

use pgl_nvm::impl_pod;
use pgl_pmemobj::PMEMoid;

use crate::maps::PersistentMap;
use crate::store::{slot_value, value_slot, KvError, KvResult, Store, TxOps};

const TYPE_ANCHOR: u32 = 100;
const TYPE_NODE: u32 = 101;

/// `{key, slot}` — a leaf (tagged value slot) or a child pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
struct Entry {
    key: u64,
    slot: PMEMoid,
}
impl_pod!(Entry, 24);

/// Anchor: `{count, root entry}`.
const ANCHOR_SIZE: u64 = 32;
const ROOT_OFF: u64 = 8;

/// Node: `{diff, pad, entries[2]}` = 56 bytes.
const NODE_SIZE: u64 = 56;
const DIFF_OFF: u64 = 0;
fn entry_off(i: u64) -> u64 {
    8 + i * 24
}

/// Where an entry lives: inside the anchor or inside a node.
#[derive(Debug, Clone, Copy)]
struct EntryLoc {
    obj: PMEMoid,
    off: u64,
}

/// The crit-bit tree map.
pub struct CTree {
    anchor: PMEMoid,
}

impl CTree {
    fn is_leaf(e: &Entry) -> bool {
        slot_value(e.slot).is_some()
    }

    /// Position of the most significant differing bit.
    fn crit_bit(a: u64, b: u64) -> u32 {
        63 - (a ^ b).leading_zeros()
    }

    fn read_entry(tx: &mut dyn TxOps, loc: EntryLoc) -> KvResult<Entry> {
        let mut buf = [0u8; 24];
        tx.read_bytes(loc.obj, loc.off, &mut buf)?;
        Ok(pgl_nvm::pod::from_bytes(&buf))
    }

    fn write_entry(tx: &mut dyn TxOps, loc: EntryLoc, e: &Entry) -> KvResult<()> {
        tx.write_bytes(loc.obj, loc.off, pgl_nvm::pod::bytes_of(e))
    }

    fn bump_count(tx: &mut dyn TxOps, anchor: PMEMoid, delta: i64) -> KvResult<()> {
        let mut buf = [0u8; 8];
        tx.read_bytes(anchor, 0, &mut buf)?;
        let count = u64::from_le_bytes(buf);
        let new = count.checked_add_signed(delta).ok_or(KvError::Corrupt("ctree count"))?;
        tx.write_bytes(anchor, 0, &new.to_le_bytes())
    }
}

impl PersistentMap for CTree {
    const NAME: &'static str = "ctree";

    fn create<S: Store>(store: &S) -> KvResult<Self> {
        let anchor = store.txn(&mut |tx| tx.alloc_zeroed(ANCHOR_SIZE, TYPE_ANCHOR))?;
        Ok(CTree { anchor })
    }

    fn from_anchor(anchor: PMEMoid) -> Self {
        CTree { anchor }
    }

    fn anchor(&self) -> PMEMoid {
        self.anchor
    }

    fn insert<S: Store>(&self, store: &S, key: u64, value: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let root_loc = EntryLoc { obj: anchor, off: ROOT_OFF };
            let root = Self::read_entry(tx, root_loc)?;
            if root.slot.is_null() {
                Self::write_entry(tx, root_loc, &Entry { key, slot: value_slot(value) })?;
                Self::bump_count(tx, anchor, 1)?;
                return Ok(None);
            }
            // Walk to the closest leaf.
            let mut loc = root_loc;
            let mut e = root;
            while !Self::is_leaf(&e) {
                let node = e.slot;
                let diff: u32 = tx.read_pod(node, DIFF_OFF)?;
                let bit = (key >> diff) & 1;
                loc = EntryLoc { obj: node, off: entry_off(bit) };
                e = Self::read_entry(tx, loc)?;
            }
            if e.key == key {
                let old = slot_value(e.slot).expect("leaf");
                Self::write_entry(tx, loc, &Entry { key, slot: value_slot(value) })?;
                return Ok(Some(old));
            }
            // New critical bit; find the insertion point (diffs decrease
            // downward, so stop above the first node with a smaller diff).
            let diff = Self::crit_bit(e.key, key);
            let mut loc = root_loc;
            let mut at = Self::read_entry(tx, loc)?;
            while !Self::is_leaf(&at) {
                let node = at.slot;
                let ndiff: u32 = tx.read_pod(node, DIFF_OFF)?;
                if ndiff < diff {
                    break;
                }
                let bit = (key >> ndiff) & 1;
                loc = EntryLoc { obj: node, off: entry_off(bit) };
                at = Self::read_entry(tx, loc)?;
            }
            let node = tx.alloc_zeroed(NODE_SIZE, TYPE_NODE)?;
            let bit = (key >> diff) & 1;
            tx.write_pod(node, DIFF_OFF, &diff)?;
            Self::write_entry(
                tx,
                EntryLoc { obj: node, off: entry_off(bit) },
                &Entry { key, slot: value_slot(value) },
            )?;
            Self::write_entry(tx, EntryLoc { obj: node, off: entry_off(1 - bit) }, &at)?;
            Self::write_entry(tx, loc, &Entry { key: 0, slot: node })?;
            Self::bump_count(tx, anchor, 1)?;
            Ok(None)
        })
    }

    fn remove<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let anchor = self.anchor;
        store.txn(&mut |tx| {
            let root_loc = EntryLoc { obj: anchor, off: ROOT_OFF };
            let mut loc = root_loc;
            let mut e = Self::read_entry(tx, loc)?;
            if e.slot.is_null() {
                return Ok(None);
            }
            // Track the entry that points at the node containing `loc`.
            let mut parent: Option<(EntryLoc, PMEMoid, u64)> = None; // (loc of node ptr, node, bit)
            while !Self::is_leaf(&e) {
                let node = e.slot;
                let diff: u32 = tx.read_pod(node, DIFF_OFF)?;
                let bit = (key >> diff) & 1;
                parent = Some((loc, node, bit));
                loc = EntryLoc { obj: node, off: entry_off(bit) };
                e = Self::read_entry(tx, loc)?;
            }
            if e.key != key {
                return Ok(None);
            }
            let old = slot_value(e.slot).expect("leaf");
            match parent {
                None => {
                    Self::write_entry(tx, root_loc, &Entry::default())?;
                }
                Some((ploc, node, bit)) => {
                    let sibling =
                        Self::read_entry(tx, EntryLoc { obj: node, off: entry_off(1 - bit) })?;
                    Self::write_entry(tx, ploc, &sibling)?;
                    tx.free(node)?;
                }
            }
            Self::bump_count(tx, anchor, -1)?;
            Ok(Some(old))
        })
    }

    fn get<S: Store>(&self, store: &S, key: u64) -> KvResult<Option<u64>> {
        let mut e: Entry = store.read_pod_direct(self.anchor, ROOT_OFF)?;
        if e.slot.is_null() {
            return Ok(None);
        }
        while !Self::is_leaf(&e) {
            let node = e.slot;
            let diff: u32 = store.read_pod_direct(node, DIFF_OFF)?;
            let bit = (key >> diff) & 1;
            e = store.read_pod_direct(node, entry_off(bit))?;
        }
        Ok((e.key == key).then(|| slot_value(e.slot).expect("leaf")))
    }
}

/// Sanity self-check used by tests: walks the whole tree and verifies the
/// crit-bit invariant (diffs strictly decrease downward, keys agree with
/// their path bits). Returns the number of keys.
pub fn check_invariants<S: Store>(map: &CTree, store: &S) -> KvResult<u64> {
    fn walk<S: Store>(store: &S, e: Entry, max_diff: Option<u32>) -> KvResult<u64> {
        if e.slot.is_null() {
            return Ok(0);
        }
        if CTree::is_leaf(&e) {
            return Ok(1);
        }
        let node = e.slot;
        let diff: u32 = store.read_pod_direct(node, DIFF_OFF)?;
        if let Some(m) = max_diff {
            if diff >= m {
                return Err(KvError::Corrupt("ctree: non-decreasing crit bits"));
            }
        }
        let l: Entry = store.read_pod_direct(node, entry_off(0))?;
        let r: Entry = store.read_pod_direct(node, entry_off(1))?;
        if l.slot.is_null() || r.slot.is_null() {
            return Err(KvError::Corrupt("ctree: internal node with a hole"));
        }
        Ok(walk(store, l, Some(diff))? + walk(store, r, Some(diff))?)
    }
    let root: Entry = store.read_pod_direct(map.anchor(), ROOT_OFF)?;
    let n = walk(store, root, None)?;
    let count = map.len(store)?;
    if n != count {
        return Err(KvError::Corrupt("ctree: count mismatch"));
    }
    Ok(n)
}
