//! Exhaustive crash-point testing of undo-log transactions.
//!
//! For every device-operation boundary inside a transaction, this test
//! simulates a power failure there (with randomized cache-eviction
//! outcomes), reopens the pool (running recovery) and verifies that the
//! transaction was atomic: all effects or none, and allocator metadata
//! stays consistent.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use pgl_nvm::{CrashPoint, DeviceConfig, NvmDevice, RandomPlan};
use pgl_pmemobj::{ObjError, PMEMoid, PmemPool, PoolConfig};

const OBJ_SIZE: u64 = 200;

fn small_cfg() -> PoolConfig {
    PoolConfig::small()
}

/// Runs `work` against a fresh pool; returns the number of device ops the
/// workload performs when uninterrupted.
fn count_ops(setup: impl Fn(&PmemPool) -> PMEMoid, work: impl Fn(&PmemPool, PMEMoid)) -> u64 {
    let cfg = small_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::precise()).unwrap());
    let pool = PmemPool::create(dev.clone(), cfg).unwrap();
    let oid = setup(&pool);
    const BIG: u64 = 1 << 40;
    dev.arm_crash_after(BIG);
    work(&pool, oid);
    let remaining = dev.crash_countdown();
    dev.disarm_crash();
    assert!(remaining >= 0);
    BIG - remaining as u64
}

/// Crash at op `k` of `work`, recover, and hand the reopened pool to
/// `verify`.
fn crash_at(
    k: u64,
    seed: u64,
    setup: &impl Fn(&PmemPool) -> PMEMoid,
    work: &impl Fn(&PmemPool, PMEMoid),
    verify: &impl Fn(&PmemPool, PMEMoid, bool),
) {
    let cfg = small_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::precise()).unwrap());
    let pool = PmemPool::create(dev.clone(), cfg).unwrap();
    let oid = setup(&pool);
    dev.arm_crash_after(k);
    let result = panic::catch_unwind(AssertUnwindSafe(|| work(&pool, oid)));
    dev.disarm_crash();
    let crashed = match result {
        Ok(()) => false,
        Err(payload) => {
            assert!(payload.downcast_ref::<CrashPoint>().is_some(), "unexpected panic");
            true
        }
    };
    drop(pool);
    dev.simulate_crash(&mut RandomPlan::seeded(seed)).unwrap();
    let pool = PmemPool::open(dev).expect("recovery must always succeed");
    verify(&pool, oid, crashed);
}

#[test]
fn overwrite_tx_is_atomic_at_every_crash_point() {
    let setup = |pool: &PmemPool| {
        pool.tx(|tx| {
            let oid = tx.alloc(OBJ_SIZE, 1)?;
            tx.write(oid, 0, &[0xAA; OBJ_SIZE as usize])?;
            Ok(oid)
        })
        .unwrap()
    };
    let work = |pool: &PmemPool, oid: PMEMoid| {
        pool.tx(|tx| tx.write(oid, 0, &[0xBB; OBJ_SIZE as usize])).unwrap();
    };
    let verify = |pool: &PmemPool, oid: PMEMoid, _crashed: bool| {
        let oid = PMEMoid::new(pool.uuid(), oid.off);
        let mut buf = [0u8; OBJ_SIZE as usize];
        pool.read(oid, 0, &mut buf).unwrap();
        let all_old = buf.iter().all(|&b| b == 0xAA);
        let all_new = buf.iter().all(|&b| b == 0xBB);
        assert!(all_old || all_new, "object must be entirely old or entirely new after recovery");
    };

    let total = count_ops(setup, work);
    assert!(total > 10, "workload too trivial: {total} ops");
    for k in 0..total {
        crash_at(k, k.wrapping_mul(0x9E37_79B9_7F4A_7C15), &setup, &work, &verify);
    }
}

#[test]
fn alloc_and_link_tx_is_atomic_at_every_crash_point() {
    // The classic Listing-1 pattern: allocate a node and link it from the
    // root, in one transaction. After a crash either both happened or
    // neither.
    let setup = |pool: &PmemPool| pool.root(16, 0).unwrap();
    let work = |pool: &PmemPool, root: PMEMoid| {
        pool.tx(|tx| {
            let node = tx.alloc(64, 2)?;
            tx.write(node, 0, &[0xCD; 64])?;
            tx.write_pod(root, 0, &node.off)?; // link
            Ok(())
        })
        .unwrap();
    };
    let verify = |pool: &PmemPool, _root: PMEMoid, _crashed: bool| {
        let root = pool.root_oid().unwrap();
        let link: u64 = pool.read_pod(root, 0).unwrap();
        let live = pool.live_objects().unwrap();
        // The root object itself is live too.
        let nodes: Vec<_> = live.iter().filter(|(_, h)| h.type_num == 2).collect();
        if link == 0 {
            assert!(nodes.is_empty(), "unlinked node must not survive recovery");
        } else {
            assert_eq!(nodes.len(), 1, "exactly one node after commit");
            assert_eq!(nodes[0].0.off, link, "link points at the live node");
            let mut buf = [0u8; 64];
            pool.read(PMEMoid::new(pool.uuid(), link), 0, &mut buf).unwrap();
            assert_eq!(buf, [0xCD; 64], "committed node content intact");
        }
        // Allocator stays usable either way.
        pool.tx(|tx| tx.alloc(64, 3)).unwrap();
    };

    let total = count_ops(setup, work);
    for k in 0..total {
        crash_at(k, k.wrapping_mul(0xD129_0D3B), &setup, &work, &verify);
    }
}

#[test]
fn free_tx_is_atomic_at_every_crash_point() {
    let setup = |pool: &PmemPool| {
        pool.tx(|tx| {
            let oid = tx.alloc(128, 5)?;
            tx.write(oid, 0, &[0x11; 128])?;
            Ok(oid)
        })
        .unwrap()
    };
    let work = |pool: &PmemPool, oid: PMEMoid| {
        let oid = PMEMoid::new(pool.uuid(), oid.off);
        pool.tx(|tx| tx.free(oid)).unwrap();
    };
    let verify = |pool: &PmemPool, oid: PMEMoid, _crashed: bool| {
        let live = pool.live_objects().unwrap();
        let still_there = live.iter().any(|(o, _)| o.off == oid.off);
        if still_there {
            // Free did not commit: content must be intact.
            let mut buf = [0u8; 128];
            pool.read(PMEMoid::new(pool.uuid(), oid.off), 0, &mut buf).unwrap();
            assert_eq!(buf, [0x11; 128]);
        }
        // Either way the allocator is consistent: allocating the same class
        // must work and never hand out an offset that is still live.
        let fresh = pool.tx(|tx| tx.alloc(128, 5)).unwrap();
        let live_after = pool.live_objects().unwrap();
        let count = live_after.iter().filter(|(o, _)| o.off == fresh.off).count();
        assert_eq!(count, 1, "no double allocation of {:#x}", fresh.off);
    };

    let total = count_ops(setup, work);
    for k in 0..total {
        crash_at(k, k.wrapping_mul(31), &setup, &work, &verify);
    }
}

#[test]
fn aborted_tx_then_crash_leaves_old_state() {
    let cfg = small_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::precise()).unwrap());
    let pool = PmemPool::create(dev.clone(), cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(64, 1)?;
            tx.write(oid, 0, &[1u8; 64])?;
            Ok(oid)
        })
        .unwrap();
    let _ = pool.tx(|tx| -> pgl_pmemobj::Result<()> {
        tx.write(oid, 0, &[2u8; 64])?;
        Err(ObjError::Aborted("test".into()))
    });
    drop(pool);
    dev.simulate_crash(&mut RandomPlan::seeded(7)).unwrap();
    let pool = PmemPool::open(dev).unwrap();
    let mut buf = [0u8; 64];
    pool.read(PMEMoid::new(pool.uuid(), oid.off), 0, &mut buf).unwrap();
    assert_eq!(buf, [1u8; 64]);
}

#[test]
fn double_crash_during_recovery_is_idempotent() {
    // Crash mid-transaction, then crash again *during recovery*, then
    // recover fully: recovery must be re-executable (paper §3.6).
    let cfg = small_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::precise()).unwrap());
    let pool = PmemPool::create(dev.clone(), cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(OBJ_SIZE, 1)?;
            tx.write(oid, 0, &[0xAA; OBJ_SIZE as usize])?;
            Ok(oid)
        })
        .unwrap();

    // Crash in the middle of an overwrite.
    dev.arm_crash_after(12);
    let _ = panic::catch_unwind(AssertUnwindSafe(|| {
        pool.tx(|tx| tx.write(oid, 0, &[0xBB; OBJ_SIZE as usize]))
    }));
    dev.disarm_crash();
    drop(pool);
    dev.simulate_crash(&mut RandomPlan::seeded(1)).unwrap();

    // First recovery attempt crashes partway.
    for k in 0..60 {
        dev.arm_crash_after(k);
        let attempt = panic::catch_unwind(AssertUnwindSafe(|| PmemPool::open(dev.clone())));
        dev.disarm_crash();
        if let Ok(Ok(pool)) = attempt {
            // Recovery finished early (fewer than k ops); verify and stop.
            let mut buf = [0u8; OBJ_SIZE as usize];
            pool.read(PMEMoid::new(pool.uuid(), oid.off), 0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0xAA) || buf.iter().all(|&b| b == 0xBB));
            return;
        }
        drop(attempt);
        dev.simulate_crash(&mut RandomPlan::seeded(k + 100)).unwrap();
        // Final recovery must succeed and restore atomicity.
        let pool = PmemPool::open(dev.clone()).expect("second recovery succeeds");
        let mut buf = [0u8; OBJ_SIZE as usize];
        pool.read(PMEMoid::new(pool.uuid(), oid.off), 0, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == 0xAA) || buf.iter().all(|&b| b == 0xBB),
            "object torn after crash-during-recovery at op {k}"
        );
        drop(pool);
    }
}
