//! Property tests for the persistent heap allocator: no overlap between
//! live objects, full reclamation, and rebuild fidelity under arbitrary
//! alloc/free sequences.

use std::sync::Arc;

use pgl_nvm::{DeviceConfig, NvmDevice};
use pgl_pmemobj::{PMEMoid, PmemPool, PoolConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum HeapOp {
    /// Allocate `size` bytes (spanning run and large paths).
    Alloc(u32),
    /// Free the i-th live allocation (modulo live count).
    Free(u8),
}

fn op_strategy() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        3 => (1u32..100_000).prop_map(HeapOp::Alloc),
        2 => any::<u8>().prop_map(HeapOp::Free),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn allocations_never_overlap_and_always_reclaim(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let cfg = PoolConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        let pool = PmemPool::create(dev.clone(), cfg).unwrap();

        // (oid, storage range) of live allocations.
        let mut live: Vec<(PMEMoid, u64, u64)> = Vec::new();
        for op in &ops {
            match *op {
                HeapOp::Alloc(size) => {
                    match pool.tx(|tx| tx.alloc(size as u64, 1)) {
                        Ok(oid) => {
                            let start = oid.off - 16;
                            let end = oid.off + size as u64;
                            // No overlap with any live allocation.
                            for &(_, s, e) in &live {
                                prop_assert!(
                                    end <= s || start >= e,
                                    "overlap: [{start:#x},{end:#x}) vs [{s:#x},{e:#x})"
                                );
                            }
                            live.push((oid, start, end));
                        }
                        Err(pgl_pmemobj::ObjError::OutOfMemory { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                HeapOp::Free(idx) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (oid, _, _) = live.remove(idx as usize % live.len());
                    pool.tx(|tx| tx.free(oid)).unwrap();
                }
            }
        }

        // The persistent metadata agrees with our bookkeeping.
        let objects = pool.live_objects().unwrap();
        prop_assert_eq!(objects.len(), live.len());

        // Rebuild (reopen) agrees too, and freeing everything reclaims all.
        drop(pool);
        let pool = PmemPool::open(dev).unwrap();
        let before = pool.heap().stats();
        for (oid, _, _) in live.drain(..) {
            let oid = PMEMoid::new(pool.uuid(), oid.off);
            pool.tx(|tx| tx.free(oid)).unwrap();
        }
        prop_assert!(pool.live_objects().unwrap().is_empty());
        let after = pool.heap().stats();
        prop_assert!(after.free_chunks >= before.free_chunks);
    }
}

#[test]
fn fragmentation_then_large_alloc() {
    // Fill with small objects, free every other one, then demand a large
    // allocation: the allocator must find contiguous chunks elsewhere or
    // report OutOfMemory honestly (never corrupt state).
    let cfg = PoolConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
    let pool = PmemPool::create(dev, cfg).unwrap();
    let mut oids = Vec::new();
    loop {
        match pool.tx(|tx| tx.alloc(3000, 1)) {
            Ok(oid) => oids.push(oid),
            Err(pgl_pmemobj::ObjError::OutOfMemory { .. }) => break,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert!(oids.len() > 100, "filled the pool: {}", oids.len());
    for oid in oids.iter().step_by(2) {
        pool.tx(|tx| tx.free(*oid)).unwrap();
    }
    // Freeing alternate 3000-byte run blocks does not create contiguous
    // chunks; a chunk-spanning alloc may legitimately fail, but the heap
    // must stay consistent either way.
    let big = pool.tx(|tx| tx.alloc(200_000, 2));
    match big {
        Ok(oid) => {
            pool.tx(|tx| tx.free(oid)).unwrap();
        }
        Err(pgl_pmemobj::ObjError::OutOfMemory { .. }) => {}
        Err(e) => panic!("unexpected {e}"),
    }
    // All remaining small objects still intact and freeable.
    for oid in oids.iter().skip(1).step_by(2) {
        pool.tx(|tx| tx.free(*oid)).unwrap();
    }
    assert!(pool.live_objects().unwrap().is_empty());
}
