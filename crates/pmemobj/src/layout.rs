//! Pool geometry: where headers, lanes, zones, chunk rows and parity live.
//!
//! The layout mirrors `libpmemobj`'s pool organisation (paper Figure 1) with
//! Pangolin's zone-as-2D-array refinement (paper Figure 2):
//!
//! ```text
//! | pool hdr | pool hdr' | lanes (logs) | lanes' | zone 0 | zone 1 | ...
//!
//! zone:  | zone hdr | zone hdr' | row 0 | row 1 | ... | row N-1 | parity |
//! row:   | chunk | chunk | ... |                (rows are contiguous NVMM)
//! ```
//!
//! The first chunks of row 0 hold the chunk-metadata (CM) array and are
//! typed `Meta` so the allocator never hands them out; being ordinary chunk
//! data, they are covered by zone parity exactly as the paper prescribes
//! ("Pangolin uses zone parity to support recovery of chunk metadata").
//!
//! All geometry is configurable so tests use tiny pools while the benchmark
//! harness approximates the paper's 16 GB-zone ratios.

use pgl_nvm::{align_down, align_up, PAGE_SIZE};

use crate::error::{ObjError, Result};

/// Size of one chunk-metadata entry in bytes.
pub const CM_ENTRY_SIZE: u64 = 16;

/// Fixed size of a run header (type/class info plus allocation bitmap) at
/// the start of every run chunk.
pub const RUN_HEADER_SIZE: u64 = 320;

/// Number of bitmap words available in a run header.
pub const RUN_BITMAP_WORDS: usize = 36;

/// Maximum blocks a single run can manage (bitmap capacity).
pub const RUN_MAX_BLOCKS: usize = RUN_BITMAP_WORDS * 64;

/// Tunable pool geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Total pool size in bytes (must be a page multiple).
    pub size: usize,
    /// Zone size in bytes (paper default 16 GiB; ours 64 MiB).
    pub zone_size: usize,
    /// Chunk size in bytes (paper default 256 KiB; ours 64 KiB).
    pub chunk_size: usize,
    /// Number of *data* chunk rows per zone (paper default 100, giving ~1 %
    /// parity overhead).
    pub chunk_rows: usize,
    /// Whether to reserve a parity row per zone (Pangolin modes).
    pub parity: bool,
    /// Number of transaction lanes.
    pub n_lanes: usize,
    /// Per-lane log space in bytes (page multiple).
    pub lane_size: usize,
}

impl PoolConfig {
    /// A small configuration for unit tests: 8 MiB pool, 4 MiB zones,
    /// 16 KiB chunks, 15 data rows + parity.
    pub fn small() -> Self {
        PoolConfig {
            size: 8 << 20,
            zone_size: 4 << 20,
            chunk_size: 16 << 10,
            chunk_rows: 15,
            parity: true,
            n_lanes: 8,
            lane_size: 128 << 10,
        }
    }

    /// The benchmark configuration scaled from the paper: 100 data rows
    /// (≈1 % parity), 64 KiB chunks, 64 MiB zones.
    pub fn bench(pool_size: usize) -> Self {
        PoolConfig {
            size: pool_size,
            zone_size: 64 << 20,
            chunk_size: 64 << 10,
            chunk_rows: 100,
            parity: true,
            n_lanes: 64,
            lane_size: 512 << 10,
        }
    }

    /// Disables the parity row (plain `libpmemobj` layout).
    pub fn without_parity(mut self) -> Self {
        self.parity = false;
        self
    }

    /// Overrides the number of data chunk rows.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.chunk_rows = rows;
        self
    }
}

/// Geometry of a single zone, all offsets relative to the zone base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneGeo {
    /// Zone header (primary) offset: 0.
    pub hdr_off: u64,
    /// Zone header replica offset.
    pub hdr_replica_off: u64,
    /// Start of the chunk-row grid.
    pub rows_base: u64,
    /// Bytes per chunk row (a multiple of the chunk size).
    pub row_size: u64,
    /// Chunks per row.
    pub chunks_per_row: u64,
    /// Number of data rows.
    pub data_rows: u64,
    /// Offset of the parity row, if the pool was created with parity.
    pub parity_base: Option<u64>,
    /// Total data chunks (`chunks_per_row * data_rows`).
    pub n_chunks: u64,
    /// How many leading chunks of row 0 hold the CM array.
    pub cm_chunks: u64,
}

/// Fully resolved pool layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// The originating configuration.
    pub cfg: PoolConfig,
    /// Pool header (primary) offset: 0.
    pub hdr_off: u64,
    /// Pool header replica offset.
    pub hdr_replica_off: u64,
    /// Primary lane region offset.
    pub lanes_off: u64,
    /// Replica lane region offset (used when log replication is on).
    pub lanes_replica_off: u64,
    /// First zone offset.
    pub heap_off: u64,
    /// Number of zones.
    pub n_zones: u64,
    /// Per-zone geometry (identical for all zones).
    pub zone: ZoneGeo,
}

impl Layout {
    /// Computes the layout for `cfg`, validating all constraints.
    pub fn new(cfg: PoolConfig) -> Result<Layout> {
        let bad = |m: String| Err(ObjError::BadPool(m));
        if cfg.size == 0 || cfg.size % PAGE_SIZE != 0 {
            return bad(format!("pool size {} not a page multiple", cfg.size));
        }
        if !cfg.chunk_size.is_power_of_two() || cfg.chunk_size < PAGE_SIZE {
            return bad(format!("chunk size {} must be a power-of-two >= 4096", cfg.chunk_size));
        }
        if cfg.zone_size % cfg.chunk_size != 0 {
            return bad("zone size must be a chunk multiple".into());
        }
        if cfg.chunk_rows == 0 || cfg.n_lanes == 0 {
            return bad("need at least one chunk row and one lane".into());
        }
        if cfg.lane_size % PAGE_SIZE != 0 || cfg.lane_size < 2 * PAGE_SIZE {
            return bad("lane size must be a page multiple >= 8 KiB".into());
        }

        let hdr_off = 0u64;
        let hdr_replica_off = PAGE_SIZE as u64;
        let lanes_off = 2 * PAGE_SIZE as u64;
        let lane_region = (cfg.n_lanes * cfg.lane_size) as u64;
        let lanes_replica_off = lanes_off + lane_region;
        let heap_off = align_up((lanes_replica_off + lane_region) as usize, cfg.chunk_size) as u64;

        if heap_off as usize + cfg.zone_size > cfg.size {
            return bad("pool too small for one zone".into());
        }
        let n_zones = ((cfg.size as u64 - heap_off) / cfg.zone_size as u64).max(1);

        // Zone-internal geometry.
        let rows_base = align_up(2 * PAGE_SIZE, cfg.chunk_size) as u64;
        let row_area = cfg.zone_size as u64 - rows_base;
        let total_rows = cfg.chunk_rows as u64 + u64::from(cfg.parity);
        let row_size = align_down((row_area / total_rows) as usize, cfg.chunk_size) as u64;
        if row_size == 0 {
            return bad("zone too small: rows would be empty".into());
        }
        let chunks_per_row = row_size / cfg.chunk_size as u64;
        let data_rows = cfg.chunk_rows as u64;
        let n_chunks = chunks_per_row * data_rows;
        let parity_base = cfg.parity.then_some(rows_base + data_rows * row_size);
        let cm_bytes = n_chunks * CM_ENTRY_SIZE;
        let cm_chunks = cm_bytes.div_ceil(cfg.chunk_size as u64);
        if cm_chunks >= n_chunks {
            return bad("zone too small: chunk metadata would fill it".into());
        }

        Ok(Layout {
            cfg,
            hdr_off,
            hdr_replica_off,
            lanes_off,
            lanes_replica_off,
            heap_off,
            n_zones,
            zone: ZoneGeo {
                hdr_off: 0,
                hdr_replica_off: PAGE_SIZE as u64,
                rows_base,
                row_size,
                chunks_per_row,
                data_rows,
                parity_base,
                n_chunks,
                cm_chunks,
            },
        })
    }

    /// Base offset of zone `z`.
    #[inline]
    pub fn zone_base(&self, z: u64) -> u64 {
        self.heap_off + z * self.cfg.zone_size as u64
    }

    /// Base offset of data chunk `c` in zone `z` (chunks are numbered
    /// linearly across the contiguous data rows).
    #[inline]
    pub fn chunk_base(&self, z: u64, c: u64) -> u64 {
        self.zone_base(z) + self.zone.rows_base + c * self.cfg.chunk_size as u64
    }

    /// Offset of the CM entry describing chunk `c` of zone `z`.
    #[inline]
    pub fn cm_entry_off(&self, z: u64, c: u64) -> u64 {
        self.zone_base(z) + self.zone.rows_base + c * CM_ENTRY_SIZE
    }

    /// Offset of the primary log area of lane `l` (the lane header is the
    /// first [`crate::lane::LANE_HEADER_SIZE`] bytes).
    #[inline]
    pub fn lane_off(&self, l: u64) -> u64 {
        self.lanes_off + l * self.cfg.lane_size as u64
    }

    /// Offset of the replica log area of lane `l`.
    #[inline]
    pub fn lane_replica_off(&self, l: u64) -> u64 {
        self.lanes_replica_off + l * self.cfg.lane_size as u64
    }

    /// Maps a pool offset to `(zone, data_chunk_index, offset_in_chunk)`.
    ///
    /// Fails for offsets outside the data-chunk grid (headers, lanes,
    /// parity rows).
    pub fn chunk_of(&self, off: u64) -> Result<(u64, u64, u64)> {
        let (z, zoff) = self.zone_and_rel(off)?;
        let rel = zoff.checked_sub(self.zone.rows_base).ok_or(ObjError::InvalidOid { off })?;
        let c = rel / self.cfg.chunk_size as u64;
        if c >= self.zone.n_chunks {
            return Err(ObjError::InvalidOid { off });
        }
        Ok((z, c, rel % self.cfg.chunk_size as u64))
    }

    /// Maps a pool offset to `(zone, zone_relative_offset)`.
    pub fn zone_and_rel(&self, off: u64) -> Result<(u64, u64)> {
        if off < self.heap_off {
            return Err(ObjError::InvalidOid { off });
        }
        let z = (off - self.heap_off) / self.cfg.zone_size as u64;
        if z >= self.n_zones {
            return Err(ObjError::InvalidOid { off });
        }
        Ok((z, off - self.zone_base(z)))
    }

    /// Maps a pool offset inside the data-row grid to
    /// `(zone, row, column_offset_in_row)`.
    pub fn row_col_of(&self, off: u64) -> Result<(u64, u64, u64)> {
        let (z, zoff) = self.zone_and_rel(off)?;
        let rel = zoff.checked_sub(self.zone.rows_base).ok_or(ObjError::InvalidOid { off })?;
        let row = rel / self.zone.row_size;
        if row >= self.zone.data_rows {
            return Err(ObjError::InvalidOid { off });
        }
        Ok((z, row, rel % self.zone.row_size))
    }

    /// Offset of the parity byte for column `col` of zone `z`.
    ///
    /// # Panics
    ///
    /// Panics if the pool has no parity row (checked at pool creation for
    /// parity-dependent modes).
    #[inline]
    pub fn parity_off(&self, z: u64, col: u64) -> u64 {
        let base = self.zone.parity_base.expect("pool created without parity row");
        debug_assert!(col < self.zone.row_size);
        self.zone_base(z) + base + col
    }

    /// Total usable data chunks per zone, excluding CM chunks.
    #[inline]
    pub fn usable_chunks_per_zone(&self) -> u64 {
        self.zone.n_chunks - self.zone.cm_chunks
    }

    /// The largest single allocation the pool can hold (user bytes).
    pub fn max_alloc(&self) -> u64 {
        self.usable_chunks_per_zone() * self.cfg.chunk_size as u64 - crate::oid::OBJ_HEADER_SIZE
    }

    /// Parity bytes per zone (0 without parity).
    pub fn parity_bytes_per_zone(&self) -> u64 {
        if self.cfg.parity {
            self.zone.row_size
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_layout_is_consistent() {
        let l = Layout::new(PoolConfig::small()).unwrap();
        assert!(l.n_zones >= 1);
        assert_eq!(l.zone.row_size % l.cfg.chunk_size as u64, 0);
        assert!(l.zone.cm_chunks >= 1);
        // Parity row must start after the last data row and fit in the zone.
        let parity = l.zone.parity_base.unwrap();
        assert_eq!(parity, l.zone.rows_base + l.zone.data_rows * l.zone.row_size);
        assert!(parity + l.zone.row_size <= l.cfg.zone_size as u64);
    }

    #[test]
    fn paper_ratio_parity_is_about_one_percent() {
        // 64 MiB zone, 100 data rows + parity: parity overhead ~= 1/101.
        let l = Layout::new(PoolConfig::bench(256 << 20)).unwrap();
        let parity = l.parity_bytes_per_zone() as f64;
        let data = (l.zone.data_rows * l.zone.row_size) as f64;
        let overhead = parity / data;
        assert!(overhead > 0.009 && overhead < 0.011, "overhead {overhead}");
    }

    #[test]
    fn chunk_mapping_roundtrips() {
        let l = Layout::new(PoolConfig::small()).unwrap();
        for c in [0, 1, l.zone.n_chunks - 1] {
            let base = l.chunk_base(0, c);
            let (z, cc, rest) = l.chunk_of(base + 5).unwrap();
            assert_eq!((z, cc, rest), (0, c, 5));
        }
    }

    #[test]
    fn row_col_mapping() {
        let l = Layout::new(PoolConfig::small()).unwrap();
        let off = l.zone_base(0) + l.zone.rows_base + l.zone.row_size + 17;
        let (z, row, col) = l.row_col_of(off).unwrap();
        assert_eq!((z, row, col), (0, 1, 17));
        // Parity row offsets are not data rows.
        let p = l.parity_off(0, 0);
        assert!(l.row_col_of(p).is_err());
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = PoolConfig::small();
        c.size = 1000;
        assert!(Layout::new(c).is_err());

        let mut c = PoolConfig::small();
        c.chunk_size = 3000;
        assert!(Layout::new(c).is_err());

        let mut c = PoolConfig::small();
        c.chunk_rows = 0;
        assert!(Layout::new(c).is_err());

        let mut c = PoolConfig::small();
        c.size = 64 << 10; // smaller than one zone
        assert!(Layout::new(c).is_err());
    }

    #[test]
    fn offsets_do_not_overlap() {
        let l = Layout::new(PoolConfig::small()).unwrap();
        assert!(l.hdr_replica_off >= PAGE_SIZE as u64);
        assert!(l.lanes_off >= l.hdr_replica_off + PAGE_SIZE as u64);
        assert!(l.lanes_replica_off >= l.lanes_off + l.cfg.lane_size as u64);
        assert!(l.heap_off >= l.lanes_replica_off + l.cfg.lane_size as u64);
        assert_eq!(l.heap_off % l.cfg.chunk_size as u64, 0);
    }
}
