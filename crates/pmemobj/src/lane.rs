//! Transaction lanes: per-transaction persistent log space, with overflow.
//!
//! Following `libpmemobj`, the pool provisions a fixed array of lanes
//! (paper Figure 1's "Log" region). A transaction claims a lane, appends
//! checksummed log entries to it, and invalidates them with a single
//! generation bump at the end. Two extensions from the paper:
//!
//! * **Mirroring** (`-ML` modes): every lane write is duplicated into a
//!   replica lane region in the same pool (paper Figure 2).
//! * **Overflow**: when a transaction outgrows its lane, the log continues
//!   in heap chunks typed `Log` (paper §2.3: "Large ones overflow into the
//!   Heap storage area"). A `LogExt` entry chains the segments; recovery
//!   follows the chain. Pangolin treats `Log` chunks as zeros in parity
//!   (paper §3.1), so log appends never contend with object parity.
//!
//! The transaction layer owns overflow-chunk allocation (it differs between
//! the baseline and Pangolin); the lane only records segments.
//!
//! # Lane registry and per-thread lanes
//!
//! Lane claiming is **lock-free**: the registry is an array of atomic
//! claim flags, and each thread remembers the lane it used last
//! (thread-local), re-claiming it with a single CAS on its next
//! transaction. This gives the FliT-style "per-thread persist handle"
//! behavior — under steady state every thread owns a distinct lane, its
//! log writes land in the same cache-warm region, and no claim ever takes
//! a lock or blocks another thread's claim. Only when a preferred lane is
//! taken does the claim scan for another free flag; when *all* lanes are
//! busy it spins with exponential backoff until one frees (transactions
//! are short).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::error::{ObjError, Result};
use crate::io::PoolIo;
use crate::layout::Layout;
use crate::ulog::{self, encode_entry, payload, Entry, EntryKind};

/// Size of the persistent lane header preceding the log area.
pub const LANE_HEADER_SIZE: u64 = 64;

/// Log bytes kept in reserve per segment so that allocation-intent entries
/// for overflow chunks plus the `LogExt` chain entry always fit after
/// ordinary appends report the segment full.
fn segment_reserve() -> u64 {
    2 * ulog::entry_space(8) + ulog::entry_space(24) + 64
}

/// Whether lane writes are duplicated, and where the duplicate lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMirror {
    /// No duplication (the `libpmemobj` baseline; a replicated *pool*
    /// mirrors lanes implicitly through [`PoolIo`]).
    None,
    /// Mirror into the same pool's lane-replica region (Pangolin `-ML`).
    SameDevice,
}

/// One contiguous piece of a lane's log.
#[derive(Debug, Clone, Copy)]
struct Segment {
    primary: u64,
    /// 0 when unmirrored.
    replica: u64,
    /// Usable capacity (excluding the `LogExt` reserve).
    cap: u64,
    cursor: u64,
    unflushed: u64,
}

thread_local! {
    /// The lane this thread claimed most recently (`u32::MAX` = none yet).
    /// A hint only: correctness comes from the CAS on the claim flag.
    static PREFERRED_LANE: Cell<u32> = const { Cell::new(u32::MAX) };
    /// Recycled lane-handle buffers (segment list + entry-encode scratch):
    /// a released handle parks them here so the next claim on this thread
    /// allocates nothing. Pairs with the lane-affinity scheme above.
    static LANE_BUFS: Cell<Option<(Vec<Segment>, Vec<u8>)>> = const { Cell::new(None) };
}

/// Volatile lane bookkeeping: a lock-free claim registry plus cached
/// generations.
pub struct Lanes {
    layout: Layout,
    mirror: LogMirror,
    /// One claim flag per lane; `true` = claimed. Claiming is a CAS, so
    /// the registry itself never blocks or serializes claimers.
    claimed: Vec<AtomicBool>,
    /// Cached generation per lane (mirrors the persistent header field).
    gens: Vec<AtomicU64>,
}

/// A claimed lane: append-only log access for one transaction.
pub struct LaneHandle<'a> {
    lanes: &'a Lanes,
    io: &'a PoolIo,
    idx: u32,
    segments: Vec<Segment>,
    scratch: Vec<u8>,
}

impl Lanes {
    /// Initializes all lane headers for a fresh pool (generation 1).
    pub fn format(io: &PoolIo, layout: &Layout, mirror: LogMirror) -> Result<()> {
        for l in 0..layout.cfg.n_lanes as u64 {
            for off in Self::header_offsets(layout, l as u32, mirror) {
                io.atomic_store_u64(off, 1)?; // generation
                io.persist(off, 8)?;
            }
        }
        Ok(())
    }

    fn header_offsets(layout: &Layout, idx: u32, mirror: LogMirror) -> impl Iterator<Item = u64> {
        let second = (mirror == LogMirror::SameDevice).then(|| layout.lane_replica_off(idx as u64));
        std::iter::once(layout.lane_off(idx as u64)).chain(second)
    }

    /// Loads lane bookkeeping from an existing pool (after recovery).
    pub fn load(io: &PoolIo, layout: Layout, mirror: LogMirror) -> Result<Lanes> {
        let n = layout.cfg.n_lanes;
        let mut gens = Vec::with_capacity(n);
        for l in 0..n as u64 {
            let gen = Self::read_gen(io, &layout, l as u32, mirror)?;
            gens.push(AtomicU64::new(gen));
        }
        Ok(Lanes {
            layout,
            mirror,
            claimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            gens,
        })
    }

    /// Number of lanes in the registry (the pool's maximum number of
    /// simultaneously running transactions).
    pub fn len(&self) -> usize {
        self.claimed.len()
    }

    /// `true` if the pool has no lanes (never the case for a valid pool).
    pub fn is_empty(&self) -> bool {
        self.claimed.is_empty()
    }

    /// Lanes currently claimed by running transactions (diagnostics).
    pub fn in_use(&self) -> usize {
        self.claimed.iter().filter(|c| c.load(Ordering::Relaxed)).count()
    }

    /// Tries to claim lane `idx` with a single CAS.
    fn try_claim(&self, idx: u32) -> bool {
        self.claimed[idx as usize]
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Reads a lane's generation, preferring the primary copy and falling
    /// back to the mirror on a media error.
    pub fn read_gen(io: &PoolIo, layout: &Layout, idx: u32, mirror: LogMirror) -> Result<u64> {
        let mut hdr = [0u8; 8];
        let primary = layout.lane_off(idx as u64);
        match io.read_with_replica_fallback(primary, &mut hdr) {
            Ok(()) => {}
            Err(_) if mirror == LogMirror::SameDevice => {
                io.read(layout.lane_replica_off(idx as u64), &mut hdr)?;
            }
            Err(e) => return Err(e),
        }
        Ok(u64::from_le_bytes(hdr).max(1))
    }

    /// Invalidates a lane's entries during recovery (no [`Lanes`] instance
    /// needed): bumps the persistent generation on all header copies.
    pub fn invalidate(io: &PoolIo, layout: &Layout, idx: u32, mirror: LogMirror) -> Result<()> {
        let gen = Self::read_gen(io, layout, idx, mirror)?;
        for off in Self::header_offsets(layout, idx, mirror) {
            io.atomic_store_u64(off, gen + 1)?;
            io.persist(off, 8)?;
        }
        Ok(())
    }

    /// Claims a free lane, preferring the one this thread used last (lane
    /// affinity keeps a thread's log writes in one cache-warm region and
    /// makes the steady-state claim a single uncontended CAS). Spins with
    /// backoff when every lane is busy; transactions are short, so a lane
    /// frees quickly.
    pub fn claim<'a>(&'a self, io: &'a PoolIo) -> LaneHandle<'a> {
        let n = self.claimed.len() as u32;
        let preferred = PREFERRED_LANE.with(|p| p.get());
        let start = if preferred < n {
            preferred
        } else {
            // First claim on this thread: spread threads across the
            // registry so they don't all race for lane 0.
            let mut h = std::hash::DefaultHasher::new();
            std::hash::Hash::hash(&std::thread::current().id(), &mut h);
            (std::hash::Hasher::finish(&h) % n as u64) as u32
        };
        let mut spins = 0u32;
        let idx = loop {
            let mut found = None;
            for i in 0..n {
                let cand = (start + i) % n;
                if self.try_claim(cand) {
                    found = Some(cand);
                    break;
                }
            }
            if let Some(idx) = found {
                break idx;
            }
            // All lanes busy: back off. yield_now lets the lane owners run
            // (essential when threads outnumber cores).
            spins += 1;
            if spins < 8 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        };
        PREFERRED_LANE.with(|p| p.set(idx));
        let base = Segment {
            primary: self.layout.lane_off(idx as u64) + LANE_HEADER_SIZE,
            replica: if self.mirror == LogMirror::SameDevice {
                self.layout.lane_replica_off(idx as u64) + LANE_HEADER_SIZE
            } else {
                0
            },
            cap: self.layout.cfg.lane_size as u64 - LANE_HEADER_SIZE - segment_reserve(),
            cursor: 0,
            unflushed: 0,
        };
        let (mut segments, scratch) = LANE_BUFS.with(|c| c.take()).unwrap_or_default();
        segments.clear();
        segments.push(base);
        LaneHandle { lanes: self, io, idx, segments, scratch }
    }

    /// Reads and decodes the valid entries of lane `idx`, following
    /// overflow chains and falling back to mirror copies for segments whose
    /// primary bytes are unreadable or torn.
    pub fn read_entries(
        io: &PoolIo,
        layout: &Layout,
        idx: u32,
        mirror: LogMirror,
    ) -> Result<Vec<Entry>> {
        let gen = Self::read_gen(io, layout, idx, mirror)?;
        let mut out = Vec::new();
        let mut seg = Some((
            layout.lane_off(idx as u64) + LANE_HEADER_SIZE,
            if mirror == LogMirror::SameDevice {
                layout.lane_replica_off(idx as u64) + LANE_HEADER_SIZE
            } else {
                0
            },
            layout.cfg.lane_size as u64 - LANE_HEADER_SIZE,
        ));
        let mut hops = 0usize;
        while let Some((primary, replica, len)) = seg.take() {
            hops += 1;
            if hops > 100_000 {
                return Err(ObjError::Corruption { off: primary, what: "log-extension chain" });
            }
            let entries = Self::walk_segment(io, primary, replica, len as usize, gen)?;
            if let Some(last) = entries.last() {
                if last.kind == EntryKind::LogExt {
                    let (np, nr, ncap) = payload::parse_log_ext(&last.payload);
                    seg = Some((np, nr, ncap));
                }
            }
            out.extend(entries);
        }
        Ok(out)
    }

    fn walk_segment(
        io: &PoolIo,
        primary: u64,
        replica: u64,
        len: usize,
        gen: u64,
    ) -> Result<Vec<Entry>> {
        let mut buf = vec![0u8; len];
        let primary_entries = if io.read_with_replica_fallback(primary, &mut buf).is_ok() {
            ulog::walk(&buf, gen)?
        } else {
            Vec::new()
        };
        if replica == 0 {
            return Ok(primary_entries);
        }
        // A torn or corrupted primary suffix is recovered from the replica:
        // use whichever copy decodes further.
        let replica_entries =
            if io.read(replica, &mut buf).is_ok() { ulog::walk(&buf, gen)? } else { Vec::new() };
        if replica_entries.len() > primary_entries.len() {
            Ok(replica_entries)
        } else {
            Ok(primary_entries)
        }
    }

    fn release(&self, idx: u32) {
        self.claimed[idx as usize].store(false, Ordering::Release);
    }
}

impl<'a> LaneHandle<'a> {
    /// The lane index.
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// The lane's current generation.
    pub fn gen(&self) -> u64 {
        self.lanes.gens[self.idx as usize].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total log bytes used across all segments.
    pub fn used(&self) -> u64 {
        self.segments.iter().map(|s| s.cursor).sum()
    }

    /// Number of overflow segments in use.
    pub fn overflow_segments(&self) -> usize {
        self.segments.len() - 1
    }

    /// Appends an entry (and its mirror copy) without flushing.
    ///
    /// Fails with [`ObjError::LogFull`] when the current segment is full;
    /// the transaction layer then provisions an overflow chunk and calls
    /// [`LaneHandle::add_segment`].
    pub fn append(&mut self, kind: EntryKind, off: u64, payload: &[u8]) -> Result<()> {
        self.append_inner(kind, off, payload, false)
    }

    /// Appends an entry that may use the segment's reserve space (overflow
    /// allocation intents). Only the transaction layer's overflow path may
    /// call this; the reserve is sized for its fixed entry budget.
    pub fn append_reserved(&mut self, kind: EntryKind, off: u64, payload: &[u8]) -> Result<()> {
        self.append_inner(kind, off, payload, true)
    }

    fn append_inner(
        &mut self,
        kind: EntryKind,
        off: u64,
        payload: &[u8],
        allow_reserve: bool,
    ) -> Result<()> {
        let space = ulog::entry_space(payload.len());
        let gen = self.gen();
        let seg = self.segments.last_mut().expect("at least one segment");
        let limit = if allow_reserve {
            seg.cap + segment_reserve() - ulog::entry_space(24)
        } else {
            seg.cap
        };
        if seg.cursor + space > limit {
            return Err(ObjError::LogFull);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_entry(&mut scratch, kind, off, payload, gen);
        self.io.write(seg.primary + seg.cursor, &scratch)?;
        if seg.replica != 0 {
            self.io.write(seg.replica + seg.cursor, &scratch)?;
        }
        self.scratch = scratch;
        let seg = self.segments.last_mut().expect("at least one segment");
        seg.cursor += space;
        Ok(())
    }

    /// Chains a new overflow segment: writes a `LogExt` entry into the
    /// current segment's reserve and makes the new segment current.
    ///
    /// `replica` is 0 when logs are unmirrored. `total_len` is the raw
    /// segment size; the usable capacity keeps the `LogExt` reserve.
    pub fn add_segment(&mut self, primary: u64, replica: u64, total_len: u64) -> Result<()> {
        let ext = payload::log_ext(primary, replica, total_len);
        let gen = self.gen();
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_entry(&mut scratch, EntryKind::LogExt, 0, &ext, gen);
        {
            let seg = self.segments.last_mut().expect("at least one segment");
            self.io.write(seg.primary + seg.cursor, &scratch)?;
            if seg.replica != 0 {
                self.io.write(seg.replica + seg.cursor, &scratch)?;
            }
            seg.cursor += scratch.len() as u64;
        }
        self.scratch = scratch;
        self.segments.push(Segment {
            primary,
            replica,
            cap: total_len - segment_reserve(),
            cursor: 0,
            unflushed: 0,
        });
        Ok(())
    }

    /// Flushes all appended-but-unflushed log bytes (all segments) and
    /// fences once.
    pub fn persist_log(&mut self) -> Result<()> {
        for seg in &mut self.segments {
            if seg.cursor > seg.unflushed {
                let len = (seg.cursor - seg.unflushed) as usize;
                self.io.flush(seg.primary + seg.unflushed, len)?;
                if seg.replica != 0 {
                    self.io.flush(seg.replica + seg.unflushed, len)?;
                }
                seg.unflushed = seg.cursor;
            }
        }
        self.io.drain();
        Ok(())
    }

    /// Invalidates all entries by bumping the persistent generation and
    /// resets to the base segment. Overflow chunks are released by the
    /// transaction layer afterwards.
    ///
    /// `durable` controls whether the generation words are *fenced*
    /// before returning. A committed transaction whose log lives entirely
    /// in the base lane may pass `false` — *lazy invalidation*: the new
    /// generation is stored and flushed but not fenced. The flush settles
    /// at the next fence anyone issues — in particular at the next
    /// transaction's own `persist_log`, which always precedes any state
    /// that depends on that transaction's entries being visible. If a
    /// crash beats every later fence, the generation word may revert;
    /// recovery then re-reads the old generation and replays the
    /// already-applied committed log, which is idempotent (writes rewrite
    /// the same bytes, allocator ops are bit-ops, parity columns are
    /// recomputed, not patched). Entries a later transaction wrote over
    /// the old log carry the newer generation, so a stale-generation read
    /// can only yield a prefix of the old log — replayed only if its
    /// commit record survives intact. Transactions that overflowed into
    /// heap chunks MUST pass `true`: their chunks return to the allocator
    /// right after this call, and a stale log chain must never be walked
    /// into a chunk another lane now owns.
    pub fn bump_gen(&mut self, durable: bool) -> Result<()> {
        let new_gen = self.gen() + 1;
        for off in Lanes::header_offsets(&self.lanes.layout, self.idx, self.lanes.mirror) {
            self.io.atomic_store_u64(off, new_gen)?;
            self.io.flush(off, 8)?;
        }
        if durable {
            self.io.drain();
        }
        self.lanes.gens[self.idx as usize].store(new_gen, std::sync::atomic::Ordering::Relaxed);
        self.segments.truncate(1);
        let seg = &mut self.segments[0];
        seg.cursor = 0;
        seg.unflushed = 0;
        Ok(())
    }

    /// Decodes this lane's currently valid entries (for abort replay).
    pub fn entries(&self) -> Result<Vec<Entry>> {
        Lanes::read_entries(self.io, &self.lanes.layout, self.idx, self.lanes.mirror)
    }
}

impl Drop for LaneHandle<'_> {
    fn drop(&mut self) {
        self.lanes.release(self.idx);
        let mut segments = std::mem::take(&mut self.segments);
        segments.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        LANE_BUFS.with(|c| c.set(Some((segments, scratch))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PoolConfig;
    use pgl_nvm::{DeviceConfig, NvmDevice};
    use std::sync::Arc;

    fn setup(mirror: LogMirror) -> (PoolIo, Layout, Lanes) {
        let cfg = PoolConfig::small();
        let layout = Layout::new(cfg).unwrap();
        let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        let io = PoolIo::new(dev);
        Lanes::format(&io, &layout, mirror).unwrap();
        let lanes = Lanes::load(&io, layout, mirror).unwrap();
        (io, layout, lanes)
    }

    #[test]
    fn claim_append_walk_roundtrip() {
        let (io, layout, lanes) = setup(LogMirror::None);
        let mut h = lanes.claim(&io);
        h.append(EntryKind::Data, 0x2000, b"undo bytes").unwrap();
        h.append(EntryKind::Commit, 0, &[]).unwrap();
        h.persist_log().unwrap();
        let idx = h.index();
        let entries = Lanes::read_entries(&io, &layout, idx, LogMirror::None).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(ulog::is_committed(&entries));
    }

    #[test]
    fn bump_gen_invalidates_entries() {
        let (io, layout, lanes) = setup(LogMirror::None);
        let mut h = lanes.claim(&io);
        h.append(EntryKind::Data, 64, b"x").unwrap();
        h.persist_log().unwrap();
        h.bump_gen(true).unwrap();
        let entries = Lanes::read_entries(&io, &layout, h.index(), LogMirror::None).unwrap();
        assert!(entries.is_empty(), "old-generation entries are invisible");
        // The lane is immediately reusable.
        h.append(EntryKind::Data, 64, b"y").unwrap();
        h.persist_log().unwrap();
        let entries = Lanes::read_entries(&io, &layout, h.index(), LogMirror::None).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].payload, b"y");
    }

    #[test]
    fn mirrored_lane_survives_primary_poison() {
        let (io, layout, lanes) = setup(LogMirror::SameDevice);
        let mut h = lanes.claim(&io);
        h.append(EntryKind::Data, 0x2000, &[0xCD; 100]).unwrap();
        h.append(EntryKind::Commit, 0, &[]).unwrap();
        h.persist_log().unwrap();
        let idx = h.index();
        drop(h);
        // Poison the page holding the primary log copy.
        let page = (layout.lane_off(idx as u64) + LANE_HEADER_SIZE) / pgl_nvm::PAGE_SIZE as u64;
        io.dev().poison_page(page).unwrap();
        let entries = Lanes::read_entries(&io, &layout, idx, LogMirror::SameDevice).unwrap();
        assert_eq!(entries.len(), 2, "entries recovered from the replica log");
        assert!(ulog::is_committed(&entries));
    }

    #[test]
    fn log_full_is_reported_then_overflow_continues() {
        let (io, layout, lanes) = setup(LogMirror::None);
        let mut h = lanes.claim(&io);
        let big = vec![0xEFu8; 8 << 10];
        let mut appended = 0u32;
        loop {
            match h.append(EntryKind::Data, 0, &big) {
                Ok(()) => appended += 1,
                Err(ObjError::LogFull) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(appended > 0);
        // Chain an overflow segment in some free space and keep appending.
        let chunk_base = layout.chunk_base(0, layout.zone.cm_chunks);
        h.add_segment(chunk_base, 0, layout.cfg.chunk_size as u64).unwrap();
        h.append(EntryKind::Data, 0, &big).unwrap();
        h.append(EntryKind::Commit, 0, &[]).unwrap();
        h.persist_log().unwrap();
        assert_eq!(h.overflow_segments(), 1);

        let entries = Lanes::read_entries(&io, &layout, h.index(), LogMirror::None).unwrap();
        // appended + LogExt + 1 data + commit
        assert_eq!(entries.len() as u32, appended + 3);
        assert!(ulog::is_committed(&entries));
        assert_eq!(
            entries.iter().filter(|e| e.kind == EntryKind::LogExt).count(),
            1,
            "chain entry present in the decoded stream"
        );
    }

    #[test]
    fn mirrored_overflow_chain_survives_poison() {
        let (io, layout, lanes) = setup(LogMirror::SameDevice);
        let mut h = lanes.claim(&io);
        let big = vec![1u8; 8 << 10];
        while h.append(EntryKind::Data, 0, &big).is_ok() {}
        let p = layout.chunk_base(0, layout.zone.cm_chunks);
        let r = layout.chunk_base(0, layout.zone.cm_chunks + 1);
        h.add_segment(p, r, layout.cfg.chunk_size as u64).unwrap();
        h.append(EntryKind::Data, 0x42, b"in overflow").unwrap();
        h.append(EntryKind::Commit, 0, &[]).unwrap();
        h.persist_log().unwrap();
        // Poison the primary overflow chunk: the replica copy serves reads.
        io.dev().poison_page(p / pgl_nvm::PAGE_SIZE as u64).unwrap();
        let entries = Lanes::read_entries(&io, &layout, h.index(), LogMirror::SameDevice).unwrap();
        assert!(ulog::is_committed(&entries));
        assert!(entries.iter().any(|e| e.payload == b"in overflow"));
    }

    #[test]
    fn lanes_block_until_released() {
        let (io, _, lanes) = setup(LogMirror::None);
        let handles: Vec<_> = (0..8).map(|_| lanes.claim(&io)).collect();
        assert_eq!(lanes.in_use(), 8);
        // All 8 lanes taken; a 9th claim would spin. Release and claim.
        drop(handles);
        assert_eq!(lanes.in_use(), 0);
        let h = lanes.claim(&io);
        assert!(h.index() < 8);
    }

    #[test]
    fn claims_prefer_the_thread_local_lane() {
        let (io, _, lanes) = setup(LogMirror::None);
        let first = lanes.claim(&io).index();
        // Same thread, lane free again: the claim must come back to it.
        for _ in 0..4 {
            assert_eq!(lanes.claim(&io).index(), first);
        }
    }

    #[test]
    fn concurrent_claims_get_distinct_lanes() {
        let (io, _, lanes) = setup(LogMirror::None);
        let io = &io;
        let lanes = &lanes;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(move || {
                        let h = lanes.claim(io);
                        let idx = h.index();
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        drop(h);
                        idx
                    })
                })
                .collect();
            let mut got: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got.len(), 8, "8 concurrent claims → 8 distinct lanes");
        });
    }
}
