//! # pgl-pmemobj — a `libpmemobj`-equivalent persistent object store
//!
//! This crate reimplements, from scratch and in Rust, the parts of PMDK's
//! `libpmemobj` (v1.5) that the Pangolin paper builds on and benchmarks
//! against (paper §2.3):
//!
//! * a **pool** over a DAX-style device, with redundant pool headers and a
//!   root object ([`PmemPool`]);
//! * a **persistent heap**: zones split into chunk rows, run-based
//!   small-object allocation with bitmaps, multi-chunk large objects, and a
//!   crash-consistent reserve/publish protocol ([`heap`]);
//! * **lanes** holding per-transaction logs ([`lane`]);
//! * **undo-log transactions** with snapshot-before-write semantics
//!   ([`tx::Tx`], the `TX_BEGIN`/`pmemobj_tx_add_range` model);
//! * an optional **replicated mode** (`Pmemobj-R` in the paper's Table 2)
//!   that mirrors every write to a second pool and can repair media errors
//!   only offline ([`PmemPool::sync_replicas`]).
//!
//! The Pangolin library (`pangolin` crate) reuses the layout, heap, lane and
//! log-entry machinery from here, exactly as the real Pangolin reuses
//! `libpmemobj`'s internals, and replaces the transaction system with
//! micro-buffered redo transactions plus checksums and parity. The
//! workspace `README.md` maps paper sections to modules; `EXPERIMENTS.md`
//! holds the baseline-vs-Pangolin benchmark matrix this crate anchors.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use pgl_nvm::{DeviceConfig, NvmDevice};
//! use pgl_pmemobj::{PmemPool, PoolConfig};
//!
//! let cfg = PoolConfig::small();
//! let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
//! let pool = PmemPool::create(dev, cfg).unwrap();
//!
//! // A linked-list node, transactionally allocated and linked.
//! let node = pool.tx(|tx| {
//!     let node = tx.alloc_zeroed(16, 1)?;
//!     tx.write_pod(node, 0, &7u64)?; // value
//!     Ok(node)
//! }).unwrap();
//! assert_eq!(pool.read_pod::<u64>(node, 0).unwrap(), 7);
//! ```

pub mod error;
pub mod heap;
pub mod io;
pub mod lane;
pub mod layout;
pub mod oid;
pub mod pool;
pub mod tx;
pub mod ulog;
pub mod util;

pub use error::{ObjError, Result};
pub use io::PoolIo;
pub use layout::{Layout, PoolConfig};
pub use oid::{ObjectHeader, PMEMoid, OBJ_HEADER_SIZE, OID_NULL};
pub use pool::{read_header, recover, write_header, PmemPool, PoolHeader};
pub use tx::{Tx, TxStats};
