//! Small utilities: merged range sets and checksums for metadata.

/// A set of byte ranges `[start, start+len)` kept sorted and coalesced.
///
/// Used to deduplicate undo snapshots, to track written ranges for
/// commit-time flushing, and by Pangolin's micro-buffers to record modified
/// ranges (paper §3.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    ranges: Vec<(u64, u64)>, // (start, end) sorted, non-overlapping, non-adjacent
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Returns `true` if no ranges are recorded.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of disjoint ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Total bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Inserts `[start, start+len)`, merging with neighbours.
    pub fn insert(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len;
        // Find insertion window: all ranges overlapping or adjacent.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.ranges.insert(lo, (start, end));
            return;
        }
        let new_start = self.ranges[lo].0.min(start);
        let new_end = self.ranges[hi - 1].1.max(end);
        self.ranges.drain(lo..hi);
        self.ranges.insert(lo, (new_start, new_end));
    }

    /// Returns `true` if `[start, start+len)` is fully covered.
    pub fn contains(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = start + len;
        match self.ranges.binary_search_by(|&(s, e)| {
            if start < s {
                std::cmp::Ordering::Greater
            } else if start >= e {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => self.ranges[i].1 >= end,
            Err(_) => false,
        }
    }

    /// Returns the sub-ranges of `[start, start+len)` *not* covered by the
    /// set (the pieces that still need snapshotting).
    pub fn uncovered(&self, start: u64, len: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let end = start + len;
        let mut cursor = start;
        for &(s, e) in &self.ranges {
            if e <= cursor {
                continue;
            }
            if s >= end {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(end) - cursor));
            }
            cursor = cursor.max(e);
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            out.push((cursor, end - cursor));
        }
        out
    }

    /// Iterates `(start, len)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|&(s, e)| (s, e - s))
    }

    /// Removes all ranges.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }
}

/// CRC32 (IEEE, reflected) used to checksum metadata structures and log
/// entries. Table-driven; the table is computed at first use.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_seed(0, data)
}

/// CRC32 continuation: feeds `data` into a running checksum.
pub fn crc32_seed(seed: u32, data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut c = !seed;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rangeset_merges_overlaps_and_adjacency() {
        let mut rs = RangeSet::new();
        rs.insert(10, 10); // [10,20)
        rs.insert(30, 10); // [30,40)
        assert_eq!(rs.len(), 2);
        rs.insert(20, 10); // adjacent on both sides -> one range [10,40)
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.total_bytes(), 30);
        assert!(rs.contains(10, 30));
        assert!(!rs.contains(9, 2));
        assert!(!rs.contains(39, 2));
    }

    #[test]
    fn rangeset_uncovered_finds_gaps() {
        let mut rs = RangeSet::new();
        rs.insert(10, 10);
        rs.insert(40, 10);
        let gaps = rs.uncovered(0, 60);
        assert_eq!(gaps, vec![(0, 10), (20, 20), (50, 10)]);
        assert!(rs.uncovered(12, 5).is_empty());
        assert_eq!(rs.uncovered(15, 10), vec![(20, 5)]);
    }

    #[test]
    fn rangeset_zero_len_is_noop() {
        let mut rs = RangeSet::new();
        rs.insert(5, 0);
        assert!(rs.is_empty());
        assert!(rs.contains(7, 0));
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_seed_concatenates() {
        let whole = crc32(b"hello world");
        let partial = crc32_seed(crc32(b"hello "), b"world");
        assert_eq!(whole, partial);
    }
}
