//! Persistent object identifiers.
//!
//! A [`PMEMoid`] names an object with a (pool uuid, byte offset) pair, so
//! pointers stored inside persistent objects stay valid no matter where the
//! pool is mapped (paper §2.3 "Addressing Scheme"). The offset points at the
//! object's *user data*; the 16-byte object header sits immediately before
//! it.

use pgl_nvm::impl_pod;

/// Size in bytes of the per-object header preceding the user data.
pub const OBJ_HEADER_SIZE: u64 = 16;

/// A persistent pointer: 64-bit pool id plus 64-bit offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(C)]
pub struct PMEMoid {
    /// UUID of the owning pool (0 for the null OID).
    pub pool: u64,
    /// Byte offset of the object's user data from the start of the pool.
    pub off: u64,
}
impl_pod!(PMEMoid, 16);

/// The null persistent pointer.
pub const OID_NULL: PMEMoid = PMEMoid { pool: 0, off: 0 };

impl PMEMoid {
    /// Creates an OID from its parts.
    #[inline]
    pub const fn new(pool: u64, off: u64) -> Self {
        PMEMoid { pool, off }
    }

    /// Returns `true` for the null OID.
    #[inline]
    pub const fn is_null(&self) -> bool {
        self.off == 0 && self.pool == 0
    }

    /// Offset of this object's header (16 bytes before the user data).
    #[inline]
    pub const fn header_off(&self) -> u64 {
        self.off - OBJ_HEADER_SIZE
    }
}

/// The persistent object header: `{size: u64, type: u32, csum: u32}`.
///
/// `libpmemobj` uses a 64-bit type number; Pangolin narrows it to 32 bits to
/// make room for the object checksum in the same 16 bytes (paper §3.1). The
/// baseline library simply leaves `csum` zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
pub struct ObjectHeader {
    /// User data size in bytes (excluding this header).
    pub size: u64,
    /// Application-defined type number.
    pub type_num: u32,
    /// Adler32 checksum of the user data (Pangolin modes only).
    pub csum: u32,
}
impl_pod!(ObjectHeader, 16);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_oid_properties() {
        assert!(OID_NULL.is_null());
        assert!(!PMEMoid::new(1, 64).is_null());
        assert_eq!(PMEMoid::default(), OID_NULL);
    }

    #[test]
    fn header_off_is_before_user_data() {
        let oid = PMEMoid::new(7, 4096);
        assert_eq!(oid.header_off(), 4096 - 16);
    }

    #[test]
    fn header_roundtrip_through_pod() {
        let h = ObjectHeader { size: 56, type_num: 3, csum: 0xABCD_EF01 };
        let bytes = pgl_nvm::pod::bytes_of(&h).to_vec();
        assert_eq!(bytes.len(), 16);
        let g: ObjectHeader = pgl_nvm::pod::from_bytes(&bytes);
        assert_eq!(h, g);
    }
}
