//! Undo-log transactions: the `libpmemobj` programming model.
//!
//! Applications snapshot ranges before modifying them in place (paper
//! Listing 1). The snapshot (old data) goes to the lane's undo log; if the
//! transaction aborts or the system crashes before the commit record, the
//! old data is restored. Allocator effects are published via idempotent
//! redo [`MetaOp`]s applied only after the commit record is durable.

use std::collections::HashSet;

use crate::error::{ObjError, Result};
use crate::heap::run::{ChunkMeta, ChunkType};
use crate::heap::{AllocReservation, FreeReservation, Heap, MetaOp};
use crate::io::PoolIo;
use crate::lane::LaneHandle;
use crate::oid::{ObjectHeader, PMEMoid, OBJ_HEADER_SIZE};
use crate::ulog::EntryKind;
use crate::util::RangeSet;
use pgl_nvm::pod::{bytes_of, Pod};

/// Per-transaction instrumentation, the source of Table 3's "New"/"Mod"
/// rows (allocated and modified bytes plus distinct objects involved).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Bytes of user data allocated.
    pub allocated_bytes: u64,
    /// Distinct objects allocated.
    pub alloc_objects: u64,
    /// Bytes of existing object data snapshotted/modified.
    pub modified_bytes: u64,
    /// Distinct pre-existing objects modified.
    pub modified_objects: u64,
    /// Bytes of user data freed.
    pub freed_bytes: u64,
    /// Distinct objects freed.
    pub freed_objects: u64,
}

impl TxStats {
    /// Accumulates another transaction's counters into `self`.
    pub fn accumulate(&mut self, other: &TxStats) {
        self.allocated_bytes += other.allocated_bytes;
        self.alloc_objects += other.alloc_objects;
        self.modified_bytes += other.modified_bytes;
        self.modified_objects += other.modified_objects;
        self.freed_bytes += other.freed_bytes;
        self.freed_objects += other.freed_objects;
    }
}

/// An in-flight undo-log transaction.
///
/// Created by [`crate::pool::PmemPool::tx`]; dropped handles release their
/// lane. All methods take `&mut self`, mirroring the single-thread-per-
/// transaction rule the paper states in §3.4.
pub struct Tx<'p> {
    pub(crate) io: &'p PoolIo,
    pub(crate) heap: &'p Heap,
    pub(crate) lane: LaneHandle<'p>,
    pub(crate) uuid: u64,
    snapshotted: RangeSet,
    written: RangeSet,
    allocs: Vec<AllocReservation>,
    frees: Vec<FreeReservation>,
    modified_oids: HashSet<u64>,
    stats: TxStats,
    log_dirty: bool,
    /// Heap chunks claimed for log overflow: `(zone, chunk)`.
    log_chunks: Vec<(u64, u64)>,
}

impl<'p> Tx<'p> {
    pub(crate) fn new(io: &'p PoolIo, heap: &'p Heap, lane: LaneHandle<'p>, uuid: u64) -> Self {
        Tx {
            io,
            heap,
            lane,
            uuid,
            snapshotted: RangeSet::new(),
            written: RangeSet::new(),
            allocs: Vec::new(),
            frees: Vec::new(),
            modified_oids: HashSet::new(),
            stats: TxStats::default(),
            log_dirty: false,
            log_chunks: Vec::new(),
        }
    }

    /// Appends a log entry, growing the log into heap chunks on overflow
    /// (paper §2.3: large logs overflow into the heap).
    fn append_logged(&mut self, kind: EntryKind, off: u64, payload: &[u8]) -> Result<()> {
        loop {
            match self.lane.append(kind, off, payload) {
                Ok(()) => return Ok(()),
                Err(ObjError::LogFull) => self.grow_log()?,
                Err(e) => return Err(e),
            }
        }
    }

    fn grow_log(&mut self) -> Result<()> {
        let (z, c, base) = self.heap.reserve_log_chunk()?;
        // Publish the chunk as Log immediately; a crash before commit
        // leaves an orphan that recovery sweeps back to Free.
        let cm_off = self.heap.layout().cm_entry_off(z, c);
        let cm = ChunkMeta::new(ChunkType::Log, 0, 1).to_bytes();
        self.io.write(cm_off, &cm)?;
        self.io.persist(cm_off, 16)?;
        self.lane.add_segment(base, 0, self.heap.layout().cfg.chunk_size as u64)?;
        self.log_chunks.push((z, c));
        Ok(())
    }

    fn release_log_chunks(&mut self) -> Result<()> {
        let free = ChunkMeta::new(ChunkType::Free, 0, 0).to_bytes();
        for (z, c) in std::mem::take(&mut self.log_chunks) {
            let cm_off = self.heap.layout().cm_entry_off(z, c);
            self.io.write(cm_off, &free)?;
            self.io.persist(cm_off, 16)?;
            self.heap.release_log_chunk(z, c);
        }
        Ok(())
    }

    /// Allocates a `size`-byte object of `type_num` and writes its header.
    /// The content is uninitialized until the caller writes it.
    pub fn alloc(&mut self, size: u64, type_num: u32) -> Result<PMEMoid> {
        let r = self.heap.reserve_alloc(size, type_num)?;
        let hdr = ObjectHeader { size, type_num, csum: 0 };
        self.io.write(r.start_off, bytes_of(&hdr))?;
        self.written.insert(r.start_off, OBJ_HEADER_SIZE);
        self.stats.allocated_bytes += size;
        self.stats.alloc_objects += 1;
        let oid = PMEMoid::new(self.uuid, r.oid_off);
        self.allocs.push(r);
        Ok(oid)
    }

    /// Allocates and zero-fills an object (`pmemobj_tx_zalloc` analogue).
    pub fn alloc_zeroed(&mut self, size: u64, type_num: u32) -> Result<PMEMoid> {
        let oid = self.alloc(size, type_num)?;
        self.io.set(oid.off, 0, size as usize)?;
        self.written.insert(oid.off, size);
        Ok(oid)
    }

    /// Frees an object. Freeing an object allocated in this same
    /// transaction simply cancels the reservation.
    pub fn free(&mut self, oid: PMEMoid) -> Result<()> {
        self.check_oid(oid)?;
        if let Some(i) = self.allocs.iter().position(|a| a.oid_off == oid.off) {
            let r = self.allocs.swap_remove(i);
            self.stats.allocated_bytes -= r.user_size;
            self.stats.alloc_objects -= 1;
            self.heap.cancel_alloc(&r);
            return Ok(());
        }
        let f = self.heap.reserve_free(self.io, oid.off)?;
        self.stats.freed_bytes += self.obj_size(oid)?;
        self.stats.freed_objects += 1;
        self.frees.push(f);
        Ok(())
    }

    /// Snapshots `[off, off+len)` of the object so it can be modified in
    /// place (`pmemobj_tx_add_range`). Ranges inside objects allocated by
    /// this transaction need no snapshot and are skipped.
    pub fn add_range(&mut self, oid: PMEMoid, off: u64, len: u64) -> Result<()> {
        self.check_oid(oid)?;
        if len == 0 {
            return Ok(());
        }
        let target = oid.off + off;
        if self.in_new_object(target, len) {
            return Ok(());
        }
        self.modified_oids.insert(oid.off);
        let uncovered = self.snapshotted.uncovered(target, len);
        if uncovered.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for (s, l) in uncovered {
            buf.resize(l as usize, 0);
            self.io.read(s, &mut buf)?;
            let payload = std::mem::take(&mut buf);
            self.append_logged(EntryKind::Data, s, &payload)?;
            buf = payload;
            self.snapshotted.insert(s, l);
            self.stats.modified_bytes += l;
            self.log_dirty = true;
        }
        // The snapshot must be durable before the in-place stores begin.
        self.lane.persist_log()?;
        Ok(())
    }

    /// Snapshots and overwrites `[off, off+len)` with `src` in one call.
    pub fn write(&mut self, oid: PMEMoid, off: u64, src: &[u8]) -> Result<()> {
        self.add_range(oid, off, src.len() as u64)?;
        let target = oid.off + off;
        self.io.write(target, src)?;
        self.written.insert(target, src.len() as u64);
        Ok(())
    }

    /// Typed overwrite of a field at `off` within the object.
    pub fn write_pod<T: Pod>(&mut self, oid: PMEMoid, off: u64, val: &T) -> Result<()> {
        self.write(oid, off, bytes_of(val))
    }

    /// Reads raw bytes from the object (reads see this transaction's own
    /// in-place writes, which went directly to NVMM).
    pub fn read(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> Result<()> {
        self.check_oid(oid)?;
        self.io.read(oid.off + off, dst)
    }

    /// Typed read of a field at `off` within the object.
    pub fn read_pod<T: Pod>(&self, oid: PMEMoid, off: u64) -> Result<T> {
        self.check_oid(oid)?;
        let mut buf = vec![0u8; std::mem::size_of::<T>()];
        self.io.read(oid.off + off, &mut buf)?;
        Ok(pgl_nvm::pod::from_bytes(&buf))
    }

    /// Reads the object's header (size/type).
    pub fn obj_header(&self, oid: PMEMoid) -> Result<ObjectHeader> {
        let mut buf = [0u8; 16];
        self.io.read(oid.header_off(), &mut buf)?;
        Ok(pgl_nvm::pod::from_bytes(&buf))
    }

    /// Returns the object's user size.
    pub fn obj_size(&self, oid: PMEMoid) -> Result<u64> {
        Ok(self.obj_header(oid)?.size)
    }

    /// Instrumentation counters for this transaction so far.
    pub fn stats(&self) -> TxStats {
        self.stats
    }

    fn check_oid(&self, oid: PMEMoid) -> Result<()> {
        if oid.is_null() || oid.pool != self.uuid {
            return Err(ObjError::InvalidOid { off: oid.off });
        }
        Ok(())
    }

    fn in_new_object(&self, off: u64, len: u64) -> bool {
        self.allocs.iter().any(|a| off >= a.start_off && off + len <= a.start_off + a.total_len)
    }

    fn collect_ops(&self) -> Vec<MetaOp> {
        self.allocs
            .iter()
            .flat_map(|a| a.ops.iter().cloned())
            .chain(self.frees.iter().flat_map(|f| f.ops.iter().cloned()))
            .collect()
    }

    /// Returns `true` if the transaction has persistent effects that need a
    /// commit record.
    fn has_effects(&self) -> bool {
        self.log_dirty
            || !self.allocs.is_empty()
            || !self.frees.is_empty()
            || !self.written.is_empty()
    }

    pub(crate) fn commit(mut self) -> Result<TxStats> {
        if !self.has_effects() {
            return Ok(self.stats);
        }
        // 1. Make all in-place stores durable.
        for (s, l) in self.written.iter() {
            self.io.flush(s, l as usize)?;
        }
        self.io.drain();

        // 2. Publish allocator effects in the redo log and commit.
        let ops = self.collect_ops();
        for op in &ops {
            let (kind, off, payload) = op.encode();
            self.append_logged(kind, off, &payload)?;
        }
        self.append_logged(EntryKind::Commit, 0, &[])?;
        self.lane.persist_log()?; // commit point

        // 3. Apply allocator effects (redo; idempotent under replay).
        self.heap.apply_ops(self.io, &ops)?;

        // 4. Invalidate the log, then complete volatile state. The order
        //    guarantees no two live lanes ever hold ops for the same block.
        self.lane.bump_gen(true)?;
        self.release_log_chunks()?;
        for a in &self.allocs {
            self.heap.complete_alloc(a);
        }
        for f in &self.frees {
            self.heap.complete_free(f);
        }
        Ok(self.stats)
    }

    pub(crate) fn abort(mut self) -> Result<()> {
        // Roll back in-place stores from the undo log, newest first.
        if self.log_dirty {
            let entries = self.lane.entries()?;
            for e in entries.iter().rev() {
                if e.kind == EntryKind::Data {
                    self.io.write(e.off, &e.payload)?;
                    self.io.flush(e.off, e.payload.len())?;
                }
            }
            self.io.drain();
        }
        for a in &self.allocs {
            self.heap.cancel_alloc(a);
        }
        // Frees made no persistent or volatile changes yet: nothing to do.
        self.lane.bump_gen(true)?;
        self.release_log_chunks()?;
        Ok(())
    }
}
