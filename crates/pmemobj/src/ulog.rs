//! Persistent log entries shared by undo logs (the `libpmemobj` baseline),
//! redo logs (Pangolin and allocator metadata), and allocation intents.
//!
//! Every entry is checksummed and tagged with the owning lane's generation
//! number; invalidating a whole log is a single persisted generation bump
//! (paper §3.4: "Pangolin garbage-collects its logs" — the collection is
//! logical). A torn entry fails its checksum and terminates log replay,
//! which is exactly the commit-record protocol's requirement.

use pgl_nvm::impl_pod;
use pgl_nvm::pod::{bytes_of, from_bytes};

use crate::error::Result;
use crate::util::crc32;

/// On-media entry header (32 bytes), followed by the payload padded to 8
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct EntryHeader {
    /// Entry kind (see [`EntryKind`]).
    pub kind: u16,
    /// Reserved flags.
    pub flags: u16,
    /// Payload length in bytes (unpadded).
    pub len: u32,
    /// Target pool offset the entry applies to.
    pub off: u64,
    /// Owning lane generation at append time.
    pub gen: u64,
    /// CRC32 over the header (with this field zeroed) and the payload.
    pub csum: u32,
    /// Reserved.
    pub pad: u32,
}
impl_pod!(EntryHeader, 32);

/// Size of the on-media entry header.
pub const ENTRY_HEADER_SIZE: u64 = 32;

/// Log entry kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum EntryKind {
    /// Object data: old content for undo logs, new content for redo logs.
    Data = 1,
    /// OR a mask into the bitmap word at `off` (allocation publish).
    SetBits = 2,
    /// AND-NOT a mask into the bitmap word at `off` (free publish).
    ClearBits = 3,
    /// Overwrite the 16-byte chunk-metadata entry at `off`.
    WriteCm = 4,
    /// Format a run header at chunk base `off` (payload: block size, count).
    RunFmt = 5,
    /// Pangolin: a region at `off` (payload: length) is being constructed
    /// outside the log; recovery must recompute its parity columns.
    AllocIntent = 6,
    /// Commit record: all preceding entries are intended to be applied.
    Commit = 7,
    /// Log continuation: the log continues in an overflow heap chunk
    /// (payload: primary offset, replica offset or 0, capacity).
    LogExt = 8,
    /// Cross-shard commit marker (Pangolin sharded parity domains): this
    /// committed lane also covers the entries of a *secondary* lane
    /// (payload: lane index, expected generation). Recovery rolls the
    /// secondary's entries forward iff its generation still matches —
    /// the ordered two-shard commit writes the secondary's own commit
    /// record only after this lane's commit fence.
    CrossShard = 9,
}

impl EntryKind {
    fn from_u16(v: u16) -> Option<EntryKind> {
        Some(match v {
            1 => EntryKind::Data,
            2 => EntryKind::SetBits,
            3 => EntryKind::ClearBits,
            4 => EntryKind::WriteCm,
            5 => EntryKind::RunFmt,
            6 => EntryKind::AllocIntent,
            7 => EntryKind::Commit,
            8 => EntryKind::LogExt,
            9 => EntryKind::CrossShard,
            _ => return None,
        })
    }
}

/// A decoded log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Entry kind.
    pub kind: EntryKind,
    /// Target pool offset.
    pub off: u64,
    /// Payload bytes (length as written, unpadded).
    pub payload: Vec<u8>,
}

/// Bytes an entry with `payload_len` occupies in the log (header plus
/// payload padded to 8 bytes).
#[inline]
pub fn entry_space(payload_len: usize) -> u64 {
    ENTRY_HEADER_SIZE + ((payload_len as u64 + 7) & !7)
}

/// Serializes an entry into `out` (cleared first) for appending at a log
/// position; `gen` tags it to the owning lane generation.
pub fn encode_entry(out: &mut Vec<u8>, kind: EntryKind, off: u64, payload: &[u8], gen: u64) {
    out.clear();
    let mut hdr = EntryHeader {
        kind: kind as u16,
        flags: 0,
        len: payload.len() as u32,
        off,
        gen,
        csum: 0,
        pad: 0,
    };
    let csum = {
        let mut c = crc32(bytes_of(&hdr));
        c = crate::util::crc32_seed(c, payload);
        c
    };
    hdr.csum = csum;
    out.extend_from_slice(bytes_of(&hdr));
    out.extend_from_slice(payload);
    while out.len() % 8 != 0 {
        out.push(0);
    }
}

/// Decodes the entry at `bytes` (which must start at an entry boundary).
///
/// Returns `Ok(None)` if the bytes do not form a valid entry for `gen`
/// (wrong generation, bad kind, bad checksum, or truncated) — the normal
/// "end of log" condition.
pub fn decode_entry(bytes: &[u8], gen: u64) -> Result<Option<(Entry, u64)>> {
    if bytes.len() < ENTRY_HEADER_SIZE as usize {
        return Ok(None);
    }
    let hdr: EntryHeader = from_bytes(bytes);
    let Some(kind) = EntryKind::from_u16(hdr.kind) else {
        return Ok(None);
    };
    if hdr.gen != gen {
        return Ok(None);
    }
    let space = entry_space(hdr.len as usize);
    if (bytes.len() as u64) < space {
        return Ok(None);
    }
    let payload =
        bytes[ENTRY_HEADER_SIZE as usize..ENTRY_HEADER_SIZE as usize + hdr.len as usize].to_vec();
    let mut check_hdr = hdr;
    check_hdr.csum = 0;
    let mut c = crc32(bytes_of(&check_hdr));
    c = crate::util::crc32_seed(c, &payload);
    if c != hdr.csum {
        return Ok(None);
    }
    Ok(Some((Entry { kind, off: hdr.off, payload }, space)))
}

/// Walks a log image, decoding consecutive valid entries for `gen`.
pub fn walk(log: &[u8], gen: u64) -> Result<Vec<Entry>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < log.len() {
        match decode_entry(&log[pos..], gen)? {
            Some((entry, space)) => {
                out.push(entry);
                pos += space as usize;
            }
            None => break,
        }
    }
    Ok(out)
}

/// Returns `true` if the decoded entry list ends with a commit record.
pub fn is_committed(entries: &[Entry]) -> bool {
    matches!(entries.last(), Some(e) if e.kind == EntryKind::Commit)
}

/// Helper constructors for metadata payloads.
pub mod payload {
    /// Payload of a [`super::EntryKind::SetBits`]/`ClearBits` entry.
    pub fn mask(mask: u64) -> [u8; 8] {
        mask.to_le_bytes()
    }

    /// Payload of a [`super::EntryKind::RunFmt`] entry.
    pub fn run_fmt(block_size: u32, nblocks: u32) -> [u8; 8] {
        let mut p = [0u8; 8];
        p[..4].copy_from_slice(&block_size.to_le_bytes());
        p[4..].copy_from_slice(&nblocks.to_le_bytes());
        p
    }

    /// Decodes a [`super::EntryKind::RunFmt`] payload.
    pub fn parse_run_fmt(p: &[u8]) -> (u32, u32) {
        let bs = u32::from_le_bytes(p[..4].try_into().expect("len checked"));
        let nb = u32::from_le_bytes(p[4..8].try_into().expect("len checked"));
        (bs, nb)
    }

    /// Decodes a mask payload.
    pub fn parse_mask(p: &[u8]) -> u64 {
        u64::from_le_bytes(p[..8].try_into().expect("len checked"))
    }

    /// Payload of a [`super::EntryKind::LogExt`] entry.
    pub fn log_ext(primary: u64, replica: u64, cap: u64) -> [u8; 24] {
        let mut p = [0u8; 24];
        p[..8].copy_from_slice(&primary.to_le_bytes());
        p[8..16].copy_from_slice(&replica.to_le_bytes());
        p[16..].copy_from_slice(&cap.to_le_bytes());
        p
    }

    /// Decodes a [`super::EntryKind::LogExt`] payload.
    pub fn parse_log_ext(p: &[u8]) -> (u64, u64, u64) {
        let a = u64::from_le_bytes(p[..8].try_into().expect("len checked"));
        let b = u64::from_le_bytes(p[8..16].try_into().expect("len checked"));
        let c = u64::from_le_bytes(p[16..24].try_into().expect("len checked"));
        (a, b, c)
    }

    /// Payload of a [`super::EntryKind::CrossShard`] entry: the secondary
    /// lane's index and the generation its entries were written under.
    pub fn cross_shard(lane: u32, gen: u64) -> [u8; 12] {
        let mut p = [0u8; 12];
        p[..4].copy_from_slice(&lane.to_le_bytes());
        p[4..].copy_from_slice(&gen.to_le_bytes());
        p
    }

    /// Decodes a [`super::EntryKind::CrossShard`] payload into
    /// `(lane, generation)`.
    pub fn parse_cross_shard(p: &[u8]) -> (u32, u64) {
        let lane = u32::from_le_bytes(p[..4].try_into().expect("len checked"));
        let gen = u64::from_le_bytes(p[4..12].try_into().expect("len checked"));
        (lane, gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut buf = Vec::new();
        encode_entry(&mut buf, EntryKind::Data, 0x1000, b"hello world", 3);
        assert_eq!(buf.len() as u64, entry_space(11));
        let (e, space) = decode_entry(&buf, 3).unwrap().expect("valid");
        assert_eq!(space as usize, buf.len());
        assert_eq!(e.kind, EntryKind::Data);
        assert_eq!(e.off, 0x1000);
        assert_eq!(e.payload, b"hello world");
    }

    #[test]
    fn wrong_generation_is_invisible() {
        let mut buf = Vec::new();
        encode_entry(&mut buf, EntryKind::Commit, 0, &[], 5);
        assert!(decode_entry(&buf, 6).unwrap().is_none());
        assert!(decode_entry(&buf, 5).unwrap().is_some());
    }

    #[test]
    fn torn_entry_fails_checksum() {
        let mut buf = Vec::new();
        encode_entry(&mut buf, EntryKind::Data, 64, &[0xAB; 40], 1);
        buf[40] ^= 0xFF; // corrupt payload
        assert!(decode_entry(&buf, 1).unwrap().is_none());
    }

    #[test]
    fn truncated_entry_is_rejected() {
        let mut buf = Vec::new();
        encode_entry(&mut buf, EntryKind::Data, 64, &[7; 100], 1);
        assert!(decode_entry(&buf[..50], 1).unwrap().is_none());
    }

    #[test]
    fn walk_stops_at_first_invalid() {
        let mut log = Vec::new();
        let mut e = Vec::new();
        encode_entry(&mut e, EntryKind::Data, 0, b"first", 2);
        log.extend_from_slice(&e);
        encode_entry(&mut e, EntryKind::SetBits, 8, &payload::mask(0b1010), 2);
        log.extend_from_slice(&e);
        encode_entry(&mut e, EntryKind::Commit, 0, &[], 2);
        log.extend_from_slice(&e);
        // Stale garbage after the commit record (old generation).
        encode_entry(&mut e, EntryKind::Data, 0, b"stale", 1);
        log.extend_from_slice(&e);

        let entries = walk(&log, 2).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(is_committed(&entries));
        assert_eq!(payload::parse_mask(&entries[1].payload), 0b1010);
    }

    #[test]
    fn zeroed_log_walks_empty() {
        let log = vec![0u8; 4096];
        assert!(walk(&log, 1).unwrap().is_empty());
        assert!(!is_committed(&[]));
    }

    #[test]
    fn payload_helpers_roundtrip() {
        let p = payload::run_fmt(128, 500);
        assert_eq!(payload::parse_run_fmt(&p), (128, 500));
        assert_eq!(payload::parse_mask(&payload::mask(u64::MAX)), u64::MAX);
        let p = payload::cross_shard(7, 0xDEAD_BEEF_0042);
        assert_eq!(payload::parse_cross_shard(&p), (7, 0xDEAD_BEEF_0042));
    }

    #[test]
    fn cross_shard_marker_roundtrip() {
        let mut buf = Vec::new();
        encode_entry(&mut buf, EntryKind::CrossShard, 0, &payload::cross_shard(3, 9), 2);
        let (e, _) = decode_entry(&buf, 2).unwrap().expect("valid");
        assert_eq!(e.kind, EntryKind::CrossShard);
        assert_eq!(payload::parse_cross_shard(&e.payload), (3, 9));
    }
}
