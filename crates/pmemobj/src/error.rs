//! Error type shared by the persistent object store.

use std::fmt;

use pgl_nvm::MemError;

/// Errors returned by pool, heap and transaction operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjError {
    /// An underlying device access failed (bounds or media error).
    Mem(MemError),
    /// The pool file content is not a valid pool (bad magic/version/csum).
    BadPool(String),
    /// The requested allocation cannot be satisfied.
    OutOfMemory {
        /// Requested user bytes.
        requested: usize,
    },
    /// An OID does not belong to this pool or points outside it.
    InvalidOid {
        /// The offending offset.
        off: u64,
    },
    /// Object type or size mismatch between caller expectation and header.
    TypeMismatch {
        /// Expected type number.
        expected: u32,
        /// Header type number.
        found: u32,
    },
    /// A transaction was aborted, either by the user or by an internal
    /// failure; the wrapped description explains why.
    Aborted(String),
    /// Log space in the lane (and overflow) was exhausted.
    LogFull,
    /// No lane could be claimed (too many concurrent transactions).
    NoLanes,
    /// Data corruption detected (checksum mismatch) at the given offset.
    Corruption {
        /// Pool-relative offset of the corrupt structure.
        off: u64,
        /// Which structure failed verification.
        what: &'static str,
    },
    /// Recovery could not restore the data (e.g. double failure).
    Unrecoverable(String),
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::Mem(e) => write!(f, "memory error: {e}"),
            ObjError::BadPool(s) => write!(f, "invalid pool: {s}"),
            ObjError::OutOfMemory { requested } => {
                write!(f, "out of pool memory allocating {requested} bytes")
            }
            ObjError::InvalidOid { off } => write!(f, "invalid OID offset {off:#x}"),
            ObjError::TypeMismatch { expected, found } => {
                write!(f, "object type mismatch: expected {expected}, found {found}")
            }
            ObjError::Aborted(why) => write!(f, "transaction aborted: {why}"),
            ObjError::LogFull => write!(f, "transaction log space exhausted"),
            ObjError::NoLanes => write!(f, "no free lanes for a new transaction"),
            ObjError::Corruption { off, what } => {
                write!(f, "corruption detected in {what} at {off:#x}")
            }
            ObjError::Unrecoverable(s) => write!(f, "unrecoverable data loss: {s}"),
        }
    }
}

impl std::error::Error for ObjError {}

impl From<MemError> for ObjError {
    fn from(e: MemError) -> Self {
        ObjError::Mem(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ObjError>;
