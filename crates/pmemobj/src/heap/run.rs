//! Persistent run headers and chunk metadata entries.

use pgl_nvm::impl_pod;
use pgl_nvm::pod::{bytes_of, from_bytes};

use crate::error::{ObjError, Result};
use crate::io::PoolIo;
use crate::layout::{RUN_BITMAP_WORDS, RUN_HEADER_SIZE};
use crate::util::crc32;

/// Byte offset of the bitmap words inside a run header.
pub const RUN_BITMAP_OFF: u64 = 32;

/// Chunk types stored in chunk metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ChunkType {
    /// Unused chunk.
    Free = 0,
    /// Subdivided into fixed-size blocks (run).
    Run = 1,
    /// First chunk of a multi-chunk (large) allocation.
    Large = 2,
    /// Continuation chunk of a large allocation.
    LargeCont = 3,
    /// Reserved for pool metadata (the CM array itself).
    Meta = 4,
    /// Holds overflowed transaction logs; excluded from parity (paper §3.1).
    Log = 5,
}

impl ChunkType {
    /// Decodes a chunk type byte.
    pub fn from_u8(v: u8) -> Option<ChunkType> {
        Some(match v {
            0 => ChunkType::Free,
            1 => ChunkType::Run,
            2 => ChunkType::Large,
            3 => ChunkType::LargeCont,
            4 => ChunkType::Meta,
            5 => ChunkType::Log,
            _ => return None,
        })
    }
}

/// A 16-byte persistent chunk-metadata entry.
///
/// Pangolin checksums these (the `csum` field) and relies on zone parity to
/// recover a corrupted entry (paper §3.1); the baseline leaves `csum`
/// maintained too since it is cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
pub struct ChunkMeta {
    /// Chunk type (see [`ChunkType`]).
    pub ctype: u8,
    /// Reserved flags.
    pub flags: u8,
    /// Run class index (for `Run` chunks).
    pub class: u16,
    /// For `Large` heads: total chunks in the allocation.
    pub size_idx: u32,
    /// Reserved.
    pub arg: u32,
    /// CRC32 of the first 12 bytes.
    pub csum: u32,
}
impl_pod!(ChunkMeta, 16);

impl ChunkMeta {
    /// Builds an entry with a correct checksum.
    pub fn new(ctype: ChunkType, class: u16, size_idx: u32) -> ChunkMeta {
        let mut m = ChunkMeta { ctype: ctype as u8, flags: 0, class, size_idx, arg: 0, csum: 0 };
        m.csum = m.compute_csum();
        m
    }

    /// Computes the checksum over the non-checksum prefix.
    pub fn compute_csum(&self) -> u32 {
        crc32(&bytes_of(self)[..12])
    }

    /// Returns `true` if the stored checksum matches the content.
    pub fn verify(&self) -> bool {
        self.csum == self.compute_csum()
    }

    /// Decodes the chunk type, if valid.
    pub fn chunk_type(&self) -> Option<ChunkType> {
        ChunkType::from_u8(self.ctype)
    }

    /// Serializes to the 16 on-media bytes.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b.copy_from_slice(bytes_of(&self));
        b
    }

    /// Deserializes from 16 on-media bytes.
    pub fn from_slice(b: &[u8]) -> ChunkMeta {
        from_bytes(b)
    }
}

/// The persistent header at the start of every run chunk: block geometry
/// plus the allocation bitmap.
#[derive(Clone, Copy)]
#[repr(C)]
pub struct RunHeader {
    /// Size of each block in bytes.
    pub block_size: u32,
    /// Number of managed blocks.
    pub nblocks: u32,
    /// Reserved.
    pub reserved: [u64; 3],
    /// Allocation bitmap (bit set = block allocated).
    pub bitmap: [u64; RUN_BITMAP_WORDS],
}
impl_pod!(RunHeader, RUN_HEADER_SIZE as usize);

impl RunHeader {
    /// A freshly formatted run header with an empty bitmap.
    pub fn formatted(block_size: u32, nblocks: u32) -> RunHeader {
        RunHeader { block_size, nblocks, reserved: [0; 3], bitmap: [0; RUN_BITMAP_WORDS] }
    }

    /// Reads the header at `chunk_base`.
    pub fn read(io: &PoolIo, chunk_base: u64) -> Result<RunHeader> {
        let mut buf = [0u8; RUN_HEADER_SIZE as usize];
        io.read(chunk_base, &mut buf)?;
        Ok(from_bytes(&buf))
    }

    /// Validates geometry against the chunk size.
    pub fn validate(&self, chunk_size: usize) -> Result<()> {
        let fits = self.block_size >= 8
            && self.nblocks >= 1
            && RUN_HEADER_SIZE + self.block_size as u64 * self.nblocks as u64 <= chunk_size as u64;
        if fits {
            Ok(())
        } else {
            Err(ObjError::Corruption { off: 0, what: "run header" })
        }
    }

    /// Returns `true` if block `b` is allocated.
    #[inline]
    pub fn is_set(&self, b: u32) -> bool {
        self.bitmap[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    /// Iterates indices of free blocks.
    pub fn free_blocks(&self) -> Vec<u32> {
        (0..self.nblocks).filter(|&b| !self.is_set(b)).collect()
    }

    /// Offset (pool-relative) of the bitmap word covering block `b` in a
    /// run based at `chunk_base`, plus the bit mask for `b`.
    #[inline]
    pub fn bit_pos(chunk_base: u64, b: u32) -> (u64, u64) {
        (chunk_base + RUN_BITMAP_OFF + (b / 64) as u64 * 8, 1u64 << (b % 64))
    }

    /// Offset of block `b`'s storage within the run.
    #[inline]
    pub fn block_off(chunk_base: u64, block_size: u32, b: u32) -> u64 {
        chunk_base + RUN_HEADER_SIZE + b as u64 * block_size as u64
    }
}

impl std::fmt::Debug for RunHeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHeader")
            .field("block_size", &self.block_size)
            .field("nblocks", &self.nblocks)
            .field("allocated", &(0..self.nblocks).filter(|&b| self.is_set(b)).count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_meta_checksum_detects_corruption() {
        let m = ChunkMeta::new(ChunkType::Run, 3, 0);
        assert!(m.verify());
        let mut bad = m;
        bad.class = 4;
        assert!(!bad.verify());
    }

    #[test]
    fn chunk_meta_roundtrip() {
        let m = ChunkMeta::new(ChunkType::Large, 0, 17);
        let b = m.to_bytes();
        let n = ChunkMeta::from_slice(&b);
        assert_eq!(m, n);
        assert_eq!(n.chunk_type(), Some(ChunkType::Large));
        assert_eq!(n.size_idx, 17);
    }

    #[test]
    fn run_header_bit_math() {
        let mut h = RunHeader::formatted(128, 100);
        assert_eq!(h.free_blocks().len(), 100);
        h.bitmap[1] = 0b1; // block 64 allocated
        assert!(h.is_set(64));
        assert!(!h.is_set(63));
        assert_eq!(h.free_blocks().len(), 99);

        let (w, m) = RunHeader::bit_pos(0x10000, 64);
        assert_eq!(w, 0x10000 + RUN_BITMAP_OFF + 8);
        assert_eq!(m, 1);
        assert_eq!(RunHeader::block_off(0x10000, 128, 2), 0x10000 + RUN_HEADER_SIZE + 256);
    }

    #[test]
    fn run_header_validation() {
        assert!(RunHeader::formatted(64, 100).validate(64 << 10).is_ok());
        assert!(RunHeader::formatted(0, 100).validate(64 << 10).is_err());
        assert!(RunHeader::formatted(64, 0).validate(64 << 10).is_err());
        // Too many blocks for the chunk.
        assert!(RunHeader::formatted(16384, 100).validate(64 << 10).is_err());
    }

    #[test]
    fn invalid_chunk_type_is_none() {
        assert_eq!(ChunkType::from_u8(99), None);
        let mut m = ChunkMeta::new(ChunkType::Free, 0, 0);
        m.ctype = 200;
        assert_eq!(m.chunk_type(), None);
    }
}
