//! Allocation size classes for run-based small-object allocation.
//!
//! Like `libpmemobj`, small allocations are served from *runs*: chunks
//! subdivided into fixed-size blocks with a bitmap. The class table is
//! chosen so the paper's data-structure object sizes (Table 3: 56, 80, 304,
//! 408, 4136 bytes plus a 16-byte header) land in snug classes.

use crate::layout::{RUN_HEADER_SIZE, RUN_MAX_BLOCKS};

/// Block sizes (bytes) of the run classes, ascending. Each includes room
/// for the 16-byte object header.
pub const CLASS_SIZES: &[u32] = &[
    64, 96, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896, 1024, 1280, 1536, 2048,
    2560, 3072, 4160, 5120, 6144, 8192, 10240, 12288, 16384,
];

/// Number of blocks a run of `block_size` manages in a chunk of
/// `chunk_size` bytes (0 if the class does not fit).
#[inline]
pub fn nblocks(chunk_size: usize, block_size: u32) -> u32 {
    let usable = chunk_size as u64 - RUN_HEADER_SIZE;
    ((usable / block_size as u64) as usize).min(RUN_MAX_BLOCKS) as u32
}

/// Picks the smallest class that fits `alloc_size` bytes and yields at
/// least one block per chunk. Returns `None` if the allocation should use
/// whole chunks instead.
pub fn class_for(alloc_size: u64, chunk_size: usize) -> Option<usize> {
    if alloc_size > CLASS_SIZES[CLASS_SIZES.len() - 1] as u64 {
        return None;
    }
    CLASS_SIZES.iter().position(|&c| c as u64 >= alloc_size && nblocks(chunk_size, c) >= 1)
}

/// Finds the class index for an exact block size (used when rebuilding
/// volatile state from a persistent run header).
pub fn class_index_of(block_size: u32) -> Option<usize> {
    CLASS_SIZES.iter().position(|&c| c == block_size)
}

/// Number of classes.
pub fn class_count() -> usize {
    CLASS_SIZES.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_aligned() {
        for w in CLASS_SIZES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in CLASS_SIZES {
            assert_eq!(c % 8, 0, "class {c} must keep 8-byte alignment");
        }
    }

    #[test]
    fn paper_object_sizes_fit_snugly() {
        // user size + 16-byte header -> class
        let chunk = 64 << 10;
        for (user, want) in [(56u64, 96u32), (80, 96), (304, 320), (408, 448), (4136, 4160)] {
            let ci = class_for(user + 16, chunk).unwrap();
            assert_eq!(CLASS_SIZES[ci], want, "user size {user}");
        }
    }

    #[test]
    fn oversized_requests_use_chunks() {
        assert_eq!(class_for(16385, 64 << 10), None);
        assert!(class_for(16384, 64 << 10).is_some());
    }

    #[test]
    fn nblocks_respects_bitmap_capacity() {
        // 64 KiB chunk, 64-byte blocks: (65536-320)/64 = 1019 <= RUN_MAX_BLOCKS
        assert_eq!(nblocks(64 << 10, 64), 1019);
        assert!(nblocks(256 << 10, 64) as usize == RUN_MAX_BLOCKS, "capped by bitmap");
        // Tiny chunks still hold at least one block of small classes.
        assert!(nblocks(16 << 10, 64) >= 1);
    }

    #[test]
    fn class_for_small_chunk_skips_unfit_classes() {
        // With a 16 KiB test chunk, the 16384 class cannot fit (header
        // overhead), so such a request must fall back to whole chunks.
        assert_eq!(class_for(16384, 16 << 10), None);
        assert!(class_for(8192, 16 << 10).is_some());
    }

    #[test]
    fn class_index_roundtrip() {
        for (i, &c) in CLASS_SIZES.iter().enumerate() {
            assert_eq!(class_index_of(c), Some(i));
        }
        assert_eq!(class_index_of(100), None);
    }
}
