//! Volatile allocator state, rebuilt from persistent bitmaps at pool open.
//!
//! Reservations mutate only this state; persistent effects are published at
//! transaction commit via [`super::MetaOp`]s, so a crash simply discards
//! reservations (the bitmaps never saw them).

use std::collections::{BTreeMap, HashMap};

use super::classes;

/// Volatile view of one run chunk.
#[derive(Debug)]
pub(crate) struct RunState {
    /// Class index into [`classes::CLASS_SIZES`].
    pub class: usize,
    /// Block size in bytes.
    pub block_size: u32,
    /// Managed block count.
    pub nblocks: u32,
    /// Blocks currently available for reservation.
    pub free_blocks: Vec<u32>,
    /// `true` while the formatting transaction has not yet published the
    /// run header; other transactions must not use the run.
    pub pending: bool,
}

/// Volatile view of one zone.
#[derive(Debug, Default)]
pub(crate) struct ZoneState {
    /// Contiguous ranges of free chunks: start index -> count.
    pub free: BTreeMap<u64, u64>,
    /// Run chunks by chunk index.
    pub runs: HashMap<u64, RunState>,
    /// Non-pending runs with free blocks, per class.
    pub by_class: Vec<Vec<u64>>,
}

impl ZoneState {
    pub(crate) fn new() -> ZoneState {
        ZoneState {
            free: BTreeMap::new(),
            runs: HashMap::new(),
            by_class: vec![Vec::new(); classes::class_count()],
        }
    }

    /// Takes `n` contiguous free chunks (first fit). Returns the start
    /// chunk index.
    pub(crate) fn take_free_chunks(&mut self, n: u64) -> Option<u64> {
        let (&start, &len) = self.free.iter().find(|&(_, &len)| len >= n)?;
        self.free.remove(&start);
        if len > n {
            self.free.insert(start + n, len - n);
        }
        Some(start)
    }

    /// Returns `n` chunks starting at `start` to the free pool, merging
    /// with adjacent ranges.
    pub(crate) fn return_free_chunks(&mut self, start: u64, n: u64) {
        let mut start = start;
        let mut n = n;
        // Merge with predecessor.
        if let Some((&ps, &pl)) = self.free.range(..start).next_back() {
            debug_assert!(ps + pl <= start, "double free of chunk range");
            if ps + pl == start {
                self.free.remove(&ps);
                start = ps;
                n += pl;
            }
        }
        // Merge with successor.
        if let Some((&ss, &sl)) = self.free.range(start + n..).next() {
            if start + n == ss {
                self.free.remove(&ss);
                n += sl;
            }
        }
        self.free.insert(start, n);
    }

    /// Pops a reservable block from a non-pending run of class `ci`.
    /// Returns `(chunk_index, block, block_size)`.
    pub(crate) fn pop_block(&mut self, ci: usize) -> Option<(u64, u32, u32)> {
        while let Some(&chunk) = self.by_class[ci].last() {
            let run = self.runs.get_mut(&chunk).expect("by_class entries exist in runs");
            debug_assert!(!run.pending);
            if let Some(b) = run.free_blocks.pop() {
                if run.free_blocks.is_empty() {
                    self.by_class[ci].pop();
                }
                return Some((chunk, b, run.block_size));
            }
            self.by_class[ci].pop();
        }
        None
    }

    /// Returns a block to its run's free list, republishing the run to its
    /// class list when it was fully reserved.
    pub(crate) fn push_block(&mut self, chunk: u64, block: u32) {
        let run = self.runs.get_mut(&chunk).expect("pushing block to unknown run");
        debug_assert!(!run.free_blocks.contains(&block), "double free of run block");
        let was_empty = run.free_blocks.is_empty();
        run.free_blocks.push(block);
        let class = run.class;
        let pending = run.pending;
        if was_empty && !pending && !self.by_class[class].contains(&chunk) {
            self.by_class[class].push(chunk);
        }
    }

    /// Marks a pending run as published (visible to other transactions).
    pub(crate) fn publish_run(&mut self, chunk: u64) {
        let run = self.runs.get_mut(&chunk).expect("publishing unknown run");
        run.pending = false;
        if !run.free_blocks.is_empty() && !self.by_class[run.class].contains(&chunk) {
            let class = run.class;
            self.by_class[class].push(chunk);
        }
    }

    /// Removes a pending run entirely (format aborted) — the chunk returns
    /// to the free pool.
    pub(crate) fn remove_pending_run(&mut self, chunk: u64) {
        let run = self.runs.remove(&chunk).expect("removing unknown run");
        debug_assert!(run.pending, "only pending runs can be removed");
        self.return_free_chunks(chunk, 1);
    }

    /// Counts free chunks.
    pub(crate) fn free_chunk_count(&self) -> u64 {
        self.free.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_and_return_merges() {
        let mut z = ZoneState::new();
        z.return_free_chunks(10, 10); // [10,20)
        assert_eq!(z.take_free_chunks(3), Some(10)); // [13,20) left
        assert_eq!(z.free_chunk_count(), 7);
        z.return_free_chunks(10, 3);
        assert_eq!(z.free.len(), 1, "merged back into one interval");
        assert_eq!(z.free_chunk_count(), 10);
        assert_eq!(z.take_free_chunks(11), None);
        assert_eq!(z.take_free_chunks(10), Some(10));
        assert_eq!(z.free_chunk_count(), 0);
    }

    #[test]
    fn return_merges_both_sides() {
        let mut z = ZoneState::new();
        z.return_free_chunks(0, 5);
        z.return_free_chunks(8, 5);
        z.return_free_chunks(5, 3); // plugs the hole
        assert_eq!(z.free.len(), 1);
        assert_eq!(z.free_chunk_count(), 13);
    }

    #[test]
    fn run_block_lifecycle() {
        let mut z = ZoneState::new();
        z.runs.insert(
            4,
            RunState {
                class: 2,
                block_size: 128,
                nblocks: 3,
                free_blocks: vec![0, 1, 2],
                pending: false,
            },
        );
        z.by_class[2].push(4);
        let (c, b1, bs) = z.pop_block(2).unwrap();
        assert_eq!((c, bs), (4, 128));
        let (_, b2, _) = z.pop_block(2).unwrap();
        let (_, b3, _) = z.pop_block(2).unwrap();
        assert_eq!(z.pop_block(2), None, "run exhausted");
        assert!(z.by_class[2].is_empty());
        z.push_block(4, b2);
        assert_eq!(z.by_class[2], vec![4], "run republished on free");
        let _ = (b1, b3);
    }

    #[test]
    fn pending_runs_stay_private() {
        let mut z = ZoneState::new();
        z.runs.insert(
            7,
            RunState {
                class: 0,
                block_size: 64,
                nblocks: 8,
                free_blocks: vec![1, 2, 3],
                pending: true,
            },
        );
        assert_eq!(z.pop_block(0), None, "pending run is not in by_class");
        z.publish_run(7);
        assert!(z.pop_block(0).is_some());
    }

    #[test]
    fn aborted_format_returns_chunk() {
        let mut z = ZoneState::new();
        z.runs.insert(
            9,
            RunState { class: 0, block_size: 64, nblocks: 8, free_blocks: vec![], pending: true },
        );
        z.remove_pending_run(9);
        assert_eq!(z.free_chunk_count(), 1);
        assert!(z.runs.is_empty());
    }
}
