//! The persistent heap: a crash-consistent chunk/run allocator.
//!
//! The design follows `libpmemobj` (paper §2.3): zones are carved into
//! chunks; small objects live in *runs* (chunks subdivided into fixed-size
//! blocks tracked by a bitmap); large objects take contiguous chunks.
//!
//! Crash consistency uses a reserve/publish split:
//!
//! 1. [`Heap::reserve_alloc`]/[`Heap::reserve_free`] mutate only volatile
//!    state and return [`MetaOp`]s describing the persistent effects;
//! 2. the transaction appends those ops to its redo log and, after the
//!    commit record is durable, applies them via [`Heap::apply_ops`];
//! 3. recovery re-applies the ops of committed transactions — every op is
//!    idempotent, so replay after a crash mid-apply is safe;
//! 4. volatile completion ([`Heap::complete_alloc`]/[`Heap::complete_free`])
//!    happens only after the lane is invalidated, so no two live logs ever
//!    carry conflicting ops for the same block.

pub mod classes;
pub mod run;
mod state;

use parking_lot::Mutex;

use crate::error::{ObjError, Result};
use crate::io::PoolIo;
use crate::layout::{Layout, CM_ENTRY_SIZE, RUN_HEADER_SIZE};
use crate::oid::{ObjectHeader, OBJ_HEADER_SIZE};
use crate::ulog::{payload, Entry, EntryKind};
use pgl_nvm::pod::{bytes_of, from_bytes};

use run::{ChunkMeta, ChunkType, RunHeader};
use state::{RunState, ZoneState};

/// A persistent allocator effect, published at transaction commit.
///
/// All ops are idempotent under replay; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaOp {
    /// OR `mask` into the u64 at `off` (allocate blocks in a run bitmap).
    SetBits {
        /// Pool offset of the bitmap word.
        off: u64,
        /// Bits to set.
        mask: u64,
    },
    /// Clear `mask` bits of the u64 at `off` (free blocks).
    ClearBits {
        /// Pool offset of the bitmap word.
        off: u64,
        /// Bits to clear.
        mask: u64,
    },
    /// Overwrite the 16-byte chunk-metadata entry at `off`.
    WriteCm {
        /// Pool offset of the CM entry.
        off: u64,
        /// New entry content.
        data: [u8; 16],
    },
    /// Write a freshly formatted run header at chunk base `off`.
    RunFmt {
        /// Pool offset of the chunk.
        off: u64,
        /// Block size in bytes.
        block_size: u32,
        /// Managed block count.
        nblocks: u32,
    },
}

impl MetaOp {
    /// Encodes this op as a log entry `(kind, off, payload)`.
    pub fn encode(&self) -> (EntryKind, u64, Vec<u8>) {
        match self {
            MetaOp::SetBits { off, mask } => {
                (EntryKind::SetBits, *off, payload::mask(*mask).to_vec())
            }
            MetaOp::ClearBits { off, mask } => {
                (EntryKind::ClearBits, *off, payload::mask(*mask).to_vec())
            }
            MetaOp::WriteCm { off, data } => (EntryKind::WriteCm, *off, data.to_vec()),
            MetaOp::RunFmt { off, block_size, nblocks } => {
                (EntryKind::RunFmt, *off, payload::run_fmt(*block_size, *nblocks).to_vec())
            }
        }
    }

    /// Decodes a log entry back into a meta op (`None` for data/intent/
    /// commit entries).
    pub fn decode(entry: &Entry) -> Option<MetaOp> {
        Some(match entry.kind {
            EntryKind::SetBits => {
                MetaOp::SetBits { off: entry.off, mask: payload::parse_mask(&entry.payload) }
            }
            EntryKind::ClearBits => {
                MetaOp::ClearBits { off: entry.off, mask: payload::parse_mask(&entry.payload) }
            }
            EntryKind::WriteCm => {
                let mut data = [0u8; 16];
                data.copy_from_slice(&entry.payload[..16]);
                MetaOp::WriteCm { off: entry.off, data }
            }
            EntryKind::RunFmt => {
                let (bs, nb) = payload::parse_run_fmt(&entry.payload);
                MetaOp::RunFmt { off: entry.off, block_size: bs, nblocks: nb }
            }
            _ => return None,
        })
    }

    /// Applies the op persistently. Idempotent. Callers serialize RMW ops
    /// on shared bitmap words (the heap lock or single-threaded recovery).
    pub fn apply(&self, io: &PoolIo) -> Result<()> {
        match self {
            MetaOp::SetBits { off, mask } => {
                let w = io.read_u64(*off)? | mask;
                io.write(*off, &w.to_le_bytes())?;
                io.persist(*off, 8)
            }
            MetaOp::ClearBits { off, mask } => {
                let w = io.read_u64(*off)? & !mask;
                io.write(*off, &w.to_le_bytes())?;
                io.persist(*off, 8)
            }
            MetaOp::WriteCm { off, data } => {
                io.write(*off, data)?;
                io.persist(*off, 16)
            }
            MetaOp::RunFmt { off, block_size, nblocks } => {
                let hdr = RunHeader::formatted(*block_size, *nblocks);
                io.write(*off, bytes_of(&hdr))?;
                io.persist(*off, RUN_HEADER_SIZE as usize)
            }
        }
    }
}

/// How a reservation is rooted in the heap (used for cancel/complete).
#[derive(Debug, Clone, PartialEq, Eq)]
enum ReserveKind {
    Run { zone: u64, chunk: u64, block: u32, fresh_run: bool },
    Large { zone: u64, chunk: u64, n: u64 },
}

/// A reserved-but-unpublished allocation.
#[derive(Debug)]
pub struct AllocReservation {
    /// Offset of the object's user data.
    pub oid_off: u64,
    /// Offset of the reserved storage (the object header).
    pub start_off: u64,
    /// Total reserved bytes (block or chunk span).
    pub total_len: u64,
    /// Requested user size.
    pub user_size: u64,
    /// Application type number.
    pub type_num: u32,
    /// Persistent effects to publish at commit.
    pub ops: Vec<MetaOp>,
    kind: ReserveKind,
}

/// A reserved-but-unpublished deallocation.
#[derive(Debug)]
pub struct FreeReservation {
    /// Offset of the freed object's user data.
    pub oid_off: u64,
    /// Offset of the freed storage.
    pub start_off: u64,
    /// Total freed bytes.
    pub total_len: u64,
    /// Persistent effects to publish at commit.
    pub ops: Vec<MetaOp>,
    kind: ReserveKind,
}

/// Point-in-time heap occupancy counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Free whole chunks across all zones.
    pub free_chunks: u64,
    /// Chunks holding runs.
    pub run_chunks: u64,
    /// Total data chunks (excluding CM chunks).
    pub total_chunks: u64,
}

/// The volatile allocator over a pool's persistent heap.
pub struct Heap {
    layout: Layout,
    zones: Mutex<Vec<ZoneState>>,
    /// Serializes persistent metadata publication (bitmap RMW) between
    /// concurrent committers and Pangolin's parity-aware op application.
    publish: Mutex<()>,
    /// Zones excluded from every reservation path (Pangolin bans a zone
    /// when unrecoverable media faults quarantine it): existing objects
    /// there stay addressable, but no new storage is handed out.
    banned: Mutex<std::collections::BTreeSet<u64>>,
}

impl Heap {
    /// Formats a fresh heap: writes `Meta` CM entries for the chunks that
    /// hold the CM array itself. All other entries are zero (= `Free` with
    /// a zero checksum), which [`Heap::rebuild`] accepts for zeroed pools.
    pub fn format(io: &PoolIo, layout: &Layout) -> Result<()> {
        let meta = ChunkMeta::new(ChunkType::Meta, 0, 1).to_bytes();
        for z in 0..layout.n_zones {
            for c in 0..layout.zone.cm_chunks {
                io.write(layout.cm_entry_off(z, c), &meta)?;
            }
            io.persist(
                layout.cm_entry_off(z, 0),
                (layout.zone.cm_chunks * CM_ENTRY_SIZE) as usize,
            )?;
        }
        Ok(())
    }

    /// Rebuilds volatile state by scanning chunk metadata and run bitmaps.
    ///
    /// With `verify`, CM checksums are validated and a mismatch is reported
    /// as [`ObjError::Corruption`] carrying the entry offset (Pangolin's
    /// open path repairs it from parity and retries).
    pub fn rebuild(io: &PoolIo, layout: Layout, verify: bool) -> Result<Heap> {
        Self::rebuild_with(io, layout, verify, 1)
    }

    /// Like [`Heap::rebuild`], but scans zones on up to `workers` threads.
    ///
    /// Zone scans are independent (each zone's chunk metadata is
    /// self-contained), so the sweep partitions zones into contiguous
    /// ranges and merges the per-zone states in order. With a simulated
    /// NVM latency model the per-thread stalls overlap, so open time drops
    /// with the worker count.
    pub fn rebuild_with(io: &PoolIo, layout: Layout, verify: bool, workers: usize) -> Result<Heap> {
        Self::rebuild_excluding(io, layout, verify, workers, &std::collections::BTreeSet::new())
    }

    /// Like [`Heap::rebuild_with`], but never reading the zones in `skip`
    /// (Pangolin passes its quarantined zones: their pages may be
    /// unreconstructably poisoned, so scanning them could fail the whole
    /// open). Skipped zones come up empty *and banned* — no free chunks,
    /// no reservations, no liveness.
    pub fn rebuild_excluding(
        io: &PoolIo,
        layout: Layout,
        verify: bool,
        workers: usize,
        skip: &std::collections::BTreeSet<u64>,
    ) -> Result<Heap> {
        let n = layout.n_zones;
        let workers = workers.clamp(1, n as usize);
        let scan = |z: u64| -> Result<ZoneState> {
            if skip.contains(&z) {
                Ok(ZoneState::new())
            } else {
                Self::scan_zone(io, &layout, z, verify)
            }
        };
        let zones = if workers == 1 {
            let mut zones = Vec::with_capacity(n as usize);
            for z in 0..n {
                zones.push(scan(z)?);
            }
            zones
        } else {
            let span = (n as usize).div_ceil(workers);
            let mut results: Vec<Result<Vec<ZoneState>>> = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let lo = (w * span) as u64;
                        let hi = ((w + 1) * span).min(n as usize) as u64;
                        let scan = &scan;
                        s.spawn(move || (lo..hi).map(scan).collect::<Result<Vec<_>>>())
                    })
                    .collect();
                results = handles
                    .into_iter()
                    .map(|h| h.join().expect("zone scan worker panicked"))
                    .collect();
            });
            let mut zones = Vec::with_capacity(n as usize);
            for r in results {
                zones.extend(r?);
            }
            zones
        };
        Ok(Heap {
            layout,
            zones: Mutex::new(zones),
            publish: Mutex::new(()),
            banned: Mutex::new(skip.clone()),
        })
    }

    /// Excludes `zone` from all future reservations (allocation, log
    /// overflow). Idempotent; existing allocations in the zone are
    /// unaffected.
    pub fn ban_zone(&self, zone: u64) {
        self.banned.lock().insert(zone);
    }

    /// Scans one zone's chunk metadata into a fresh [`ZoneState`].
    fn scan_zone(io: &PoolIo, layout: &Layout, z: u64, verify: bool) -> Result<ZoneState> {
        let mut zs = ZoneState::new();
        let mut c = layout.zone.cm_chunks; // CM chunks are never free
        let mut pending_free: Option<(u64, u64)> = None;
        while c < layout.zone.n_chunks {
            let cm = Self::read_cm(io, layout, z, c)?;
            let cm_off = layout.cm_entry_off(z, c);
            if verify && !(cm.verify() || cm == ChunkMeta::default()) {
                return Err(ObjError::Corruption { off: cm_off, what: "chunk metadata" });
            }
            let ctype = cm.chunk_type().unwrap_or(ChunkType::Free);
            let mut advance = 1u64;
            match ctype {
                ChunkType::Free => {
                    pending_free = match pending_free {
                        Some((s, n)) if s + n == c => Some((s, n + 1)),
                        Some((s, n)) => {
                            zs.return_free_chunks(s, n);
                            Some((c, 1))
                        }
                        None => Some((c, 1)),
                    };
                }
                ChunkType::Run => {
                    let base = layout.chunk_base(z, c);
                    let hdr = RunHeader::read(io, base)?;
                    hdr.validate(layout.cfg.chunk_size)
                        .map_err(|_| ObjError::Corruption { off: base, what: "run header" })?;
                    let class = classes::class_index_of(hdr.block_size)
                        .ok_or(ObjError::Corruption { off: base, what: "run class" })?;
                    let free_blocks = hdr.free_blocks();
                    let has_free = !free_blocks.is_empty();
                    zs.runs.insert(
                        c,
                        RunState {
                            class,
                            block_size: hdr.block_size,
                            nblocks: hdr.nblocks,
                            free_blocks,
                            pending: false,
                        },
                    );
                    if has_free {
                        zs.by_class[class].push(c);
                    }
                }
                ChunkType::Large => {
                    advance = cm.size_idx.max(1) as u64;
                }
                ChunkType::LargeCont => {
                    return Err(ObjError::Corruption {
                        off: cm_off,
                        what: "orphan large-continuation chunk",
                    });
                }
                ChunkType::Meta | ChunkType::Log => {}
            }
            if ctype != ChunkType::Free {
                if let Some((s, n)) = pending_free.take() {
                    zs.return_free_chunks(s, n);
                }
            }
            c += advance;
        }
        if let Some((s, n)) = pending_free {
            zs.return_free_chunks(s, n);
        }
        Ok(zs)
    }

    fn read_cm(io: &PoolIo, layout: &Layout, z: u64, c: u64) -> Result<ChunkMeta> {
        let mut buf = [0u8; 16];
        io.read(layout.cm_entry_off(z, c), &mut buf)?;
        Ok(ChunkMeta::from_slice(&buf))
    }

    /// The pool layout this heap manages.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The zone visit order for a reservation: with an affinity preference
    /// `(shard, n_shards)`, zones belonging to that shard (`z % n_shards ==
    /// shard`) come first, then all others — affine allocations cluster in
    /// the preferred parity shard but never fail spuriously while other
    /// shards still have space.
    fn zone_order(&self, pref: Option<(u64, u64)>) -> Vec<u64> {
        self.zone_groups(pref).concat()
    }

    /// Zone visit order as preference *groups*: with an affinity
    /// `(shard, n_shards)`, the first group is the preferred shard's zones
    /// and the second is everything else; without one there is a single
    /// group of all zones. Reservation strategies that can either reuse
    /// existing state or claim fresh space must exhaust **both** strategies
    /// within a group before moving to the next, otherwise a half-full run
    /// in a foreign zone silently defeats the affinity.
    fn zone_groups(&self, pref: Option<(u64, u64)>) -> Vec<Vec<u64>> {
        let n = self.layout.n_zones;
        let banned = self.banned.lock();
        let ok = |z: &u64| !banned.contains(z);
        match pref {
            Some((shard, n_shards)) if n_shards > 1 => {
                let shard = shard % n_shards;
                vec![
                    (0..n).filter(|z| z % n_shards == shard).filter(ok).collect(),
                    (0..n).filter(|z| z % n_shards != shard).filter(ok).collect(),
                ]
            }
            _ => vec![(0..n).filter(ok).collect()],
        }
    }

    /// Reserves storage for a `size`-byte object of type `type_num`.
    pub fn reserve_alloc(&self, size: u64, type_num: u32) -> Result<AllocReservation> {
        self.reserve_alloc_in(size, type_num, None)
    }

    /// Like [`Heap::reserve_alloc`], but with an optional parity-shard
    /// affinity `(shard, n_shards)`: zones of the preferred shard are tried
    /// first — both reuse of half-full runs and fresh-chunk claims exhaust
    /// the preferred zone group before falling back to foreign zones.
    pub fn reserve_alloc_in(
        &self,
        size: u64,
        type_num: u32,
        pref: Option<(u64, u64)>,
    ) -> Result<AllocReservation> {
        if size == 0 || size > self.layout.max_alloc() {
            return Err(ObjError::OutOfMemory { requested: size as usize });
        }
        let alloc_size = size + OBJ_HEADER_SIZE;
        let chunk_size = self.layout.cfg.chunk_size;
        let groups = self.zone_groups(pref);
        let mut zones = self.zones.lock();

        if let Some(ci) = classes::class_for(alloc_size, chunk_size) {
            let block_size = classes::CLASS_SIZES[ci];
            // Per preference group: reuse an existing run, else format a
            // fresh one — both tried in the preferred shard's zones before
            // any fallback zone is considered.
            for group in &groups {
                // Existing run with a free block?
                for &zi in group {
                    let zs = &mut zones[zi as usize];
                    if let Some((chunk, block, bs)) = zs.pop_block(ci) {
                        let base = self.layout.chunk_base(zi, chunk);
                        let (word, mask) = RunHeader::bit_pos(base, block);
                        let start = RunHeader::block_off(base, bs, block);
                        return Ok(AllocReservation {
                            oid_off: start + OBJ_HEADER_SIZE,
                            start_off: start,
                            total_len: bs as u64,
                            user_size: size,
                            type_num,
                            ops: vec![MetaOp::SetBits { off: word, mask }],
                            kind: ReserveKind::Run { zone: zi, chunk, block, fresh_run: false },
                        });
                    }
                }
                // Format a new run from a free chunk.
                for &zi in group {
                    let zs = &mut zones[zi as usize];
                    if let Some(chunk) = zs.take_free_chunks(1) {
                        let nblocks = classes::nblocks(chunk_size, block_size);
                        let base = self.layout.chunk_base(zi, chunk);
                        let block = 0u32;
                        zs.runs.insert(
                            chunk,
                            RunState {
                                class: ci,
                                block_size,
                                nblocks,
                                free_blocks: (1..nblocks).rev().collect(),
                                pending: true,
                            },
                        );
                        let (word, mask) = RunHeader::bit_pos(base, block);
                        let cm = ChunkMeta::new(ChunkType::Run, ci as u16, 1);
                        let start = RunHeader::block_off(base, block_size, block);
                        return Ok(AllocReservation {
                            oid_off: start + OBJ_HEADER_SIZE,
                            start_off: start,
                            total_len: block_size as u64,
                            user_size: size,
                            type_num,
                            ops: vec![
                                MetaOp::RunFmt { off: base, block_size, nblocks },
                                MetaOp::WriteCm {
                                    off: self.layout.cm_entry_off(zi, chunk),
                                    data: cm.to_bytes(),
                                },
                                MetaOp::SetBits { off: word, mask },
                            ],
                            kind: ReserveKind::Run { zone: zi, chunk, block, fresh_run: true },
                        });
                    }
                }
            }
            return Err(ObjError::OutOfMemory { requested: size as usize });
        }

        // Large allocation: contiguous chunks.
        let n = alloc_size.div_ceil(chunk_size as u64);
        let order: Vec<u64> = groups.concat();
        for &zi in &order {
            let zs = &mut zones[zi as usize];
            if let Some(chunk) = zs.take_free_chunks(n) {
                let base = self.layout.chunk_base(zi, chunk);
                let mut ops = Vec::with_capacity(n as usize);
                let head = ChunkMeta::new(ChunkType::Large, 0, n as u32);
                ops.push(MetaOp::WriteCm {
                    off: self.layout.cm_entry_off(zi, chunk),
                    data: head.to_bytes(),
                });
                let cont = ChunkMeta::new(ChunkType::LargeCont, 0, 0);
                for k in 1..n {
                    ops.push(MetaOp::WriteCm {
                        off: self.layout.cm_entry_off(zi, chunk + k),
                        data: cont.to_bytes(),
                    });
                }
                return Ok(AllocReservation {
                    oid_off: base + OBJ_HEADER_SIZE,
                    start_off: base,
                    total_len: n * chunk_size as u64,
                    user_size: size,
                    type_num,
                    ops,
                    kind: ReserveKind::Large { zone: zi, chunk, n },
                });
            }
        }
        Err(ObjError::OutOfMemory { requested: size as usize })
    }

    /// Reserves the deallocation of the object whose user data is at
    /// `oid_off`, determining its shape from persistent metadata.
    pub fn reserve_free(&self, io: &PoolIo, oid_off: u64) -> Result<FreeReservation> {
        let start =
            oid_off.checked_sub(OBJ_HEADER_SIZE).ok_or(ObjError::InvalidOid { off: oid_off })?;
        let (z, c, within) = self.layout.chunk_of(start)?;
        let cm = Self::read_cm(io, &self.layout, z, c)?;
        match cm.chunk_type() {
            Some(ChunkType::Run) => {
                let base = self.layout.chunk_base(z, c);
                let zones = self.zones.lock();
                let run = zones[z as usize]
                    .runs
                    .get(&c)
                    .ok_or(ObjError::Corruption { off: base, what: "run state" })?;
                let bs = run.block_size;
                let rel = within
                    .checked_sub(RUN_HEADER_SIZE)
                    .ok_or(ObjError::InvalidOid { off: oid_off })?;
                if rel % bs as u64 != 0 {
                    return Err(ObjError::InvalidOid { off: oid_off });
                }
                let block = (rel / bs as u64) as u32;
                if block >= run.nblocks {
                    return Err(ObjError::InvalidOid { off: oid_off });
                }
                drop(zones);
                let (word, mask) = RunHeader::bit_pos(base, block);
                Ok(FreeReservation {
                    oid_off,
                    start_off: start,
                    total_len: bs as u64,
                    ops: vec![MetaOp::ClearBits { off: word, mask }],
                    kind: ReserveKind::Run { zone: z, chunk: c, block, fresh_run: false },
                })
            }
            Some(ChunkType::Large) => {
                if within != 0 {
                    return Err(ObjError::InvalidOid { off: oid_off });
                }
                let n = cm.size_idx.max(1) as u64;
                let free = ChunkMeta::new(ChunkType::Free, 0, 0);
                let ops = (0..n)
                    .map(|k| MetaOp::WriteCm {
                        off: self.layout.cm_entry_off(z, c + k),
                        data: free.to_bytes(),
                    })
                    .collect();
                Ok(FreeReservation {
                    oid_off,
                    start_off: start,
                    total_len: n * self.layout.cfg.chunk_size as u64,
                    ops,
                    kind: ReserveKind::Large { zone: z, chunk: c, n },
                })
            }
            _ => Err(ObjError::InvalidOid { off: oid_off }),
        }
    }

    /// Applies meta ops persistently, serializing bitmap read-modify-writes
    /// against concurrent committers.
    pub fn apply_ops(&self, io: &PoolIo, ops: &[MetaOp]) -> Result<()> {
        let _guard = self.publish.lock();
        for op in ops {
            op.apply(io)?;
        }
        Ok(())
    }

    /// Acquires the metadata-publication lock. Pangolin applies its ops
    /// itself (each write also patches parity) but must serialize the
    /// bitmap read-modify-writes exactly like [`Heap::apply_ops`] does.
    pub fn publish_guard(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.publish.lock()
    }

    /// Returns the storage footprint `(start_off, len)` backing the object
    /// whose user data is at `oid_off`, from persistent metadata. Used by
    /// corruption recovery to bound the pages it must inspect.
    pub fn storage_of(&self, io: &PoolIo, oid_off: u64) -> Result<(u64, u64)> {
        let start =
            oid_off.checked_sub(OBJ_HEADER_SIZE).ok_or(ObjError::InvalidOid { off: oid_off })?;
        let (z, c, within) = self.layout.chunk_of(start)?;
        let cm = Self::read_cm(io, &self.layout, z, c)?;
        match cm.chunk_type() {
            Some(ChunkType::Run) => {
                let base = self.layout.chunk_base(z, c);
                let hdr = RunHeader::read(io, base)?;
                hdr.validate(self.layout.cfg.chunk_size)
                    .map_err(|_| ObjError::Corruption { off: base, what: "run header" })?;
                let rel = within
                    .checked_sub(RUN_HEADER_SIZE)
                    .ok_or(ObjError::InvalidOid { off: oid_off })?;
                let block = rel / hdr.block_size as u64;
                let bstart = RunHeader::block_off(base, hdr.block_size, block as u32);
                Ok((bstart, hdr.block_size as u64))
            }
            Some(ChunkType::Large) => {
                let n = cm.size_idx.max(1) as u64;
                Ok((start, n * self.layout.cfg.chunk_size as u64))
            }
            _ => Err(ObjError::InvalidOid { off: oid_off }),
        }
    }

    /// Re-checks, from *persistent* metadata, whether the object whose user
    /// data starts at `oid_off` is still allocated. Used by the concurrent
    /// scrubber: an object discovered by [`scan_live`] may have been freed
    /// (and its storage repurposed, e.g. as a log-overflow chunk) by the
    /// time the scrubber gets to it, and repairing such a slot would be a
    /// false positive.
    ///
    /// The probe is deliberately **racy**: it may run concurrently with a
    /// publisher updating the same metadata words, and the checks are
    /// therefore purely conservative — the chunk-metadata entry carries a
    /// checksum ([`ChunkMeta::verify`]), the run header is validated, and
    /// *any* unparseable or mid-transition state reads as "not live", so a
    /// torn observation can only make the scrubber skip an object for one
    /// pass, never touch the wrong one. Callers that go on to repair must
    /// re-confirm under their own range-locks (the scrubber does).
    pub fn is_live(&self, io: &PoolIo, oid_off: u64) -> bool {
        let Some(start) = oid_off.checked_sub(OBJ_HEADER_SIZE) else {
            return false;
        };
        let Ok((z, c, within)) = self.layout.chunk_of(start) else {
            return false;
        };
        let Ok(cm) = Self::read_cm(io, &self.layout, z, c) else {
            return false;
        };
        if !cm.verify() {
            return false; // torn or scribbled entry: treat as not live
        }
        match cm.chunk_type() {
            Some(ChunkType::Run) => {
                let base = self.layout.chunk_base(z, c);
                let Ok(hdr) = RunHeader::read(io, base) else {
                    return false;
                };
                if hdr.validate(self.layout.cfg.chunk_size).is_err() {
                    return false;
                }
                let Some(rel) = within.checked_sub(RUN_HEADER_SIZE) else {
                    return false;
                };
                let block = (rel / hdr.block_size as u64) as u32;
                block < hdr.nblocks
                    && hdr.is_set(block)
                    && RunHeader::block_off(base, hdr.block_size, block) == start
            }
            Some(ChunkType::Large) => start == self.layout.chunk_base(z, c),
            _ => false,
        }
    }

    /// Volatile completion of a committed allocation.
    pub fn complete_alloc(&self, r: &AllocReservation) {
        if let ReserveKind::Run { zone, chunk, fresh_run: true, .. } = r.kind {
            let mut zones = self.zones.lock();
            zones[zone as usize].publish_run(chunk);
        }
    }

    /// Volatile rollback of an aborted allocation.
    pub fn cancel_alloc(&self, r: &AllocReservation) {
        let mut zones = self.zones.lock();
        match r.kind {
            ReserveKind::Run { zone, chunk, block, fresh_run } => {
                if fresh_run {
                    zones[zone as usize].remove_pending_run(chunk);
                } else {
                    zones[zone as usize].push_block(chunk, block);
                }
            }
            ReserveKind::Large { zone, chunk, n } => {
                zones[zone as usize].return_free_chunks(chunk, n);
            }
        }
    }

    /// Volatile completion of a committed deallocation: the storage becomes
    /// reservable again.
    pub fn complete_free(&self, r: &FreeReservation) {
        let mut zones = self.zones.lock();
        match r.kind {
            ReserveKind::Run { zone, chunk, block, .. } => {
                zones[zone as usize].push_block(chunk, block);
            }
            ReserveKind::Large { zone, chunk, n } => {
                zones[zone as usize].return_free_chunks(chunk, n);
            }
        }
    }

    /// Reserves one free chunk for log overflow (volatile only; the caller
    /// publishes the `Log` chunk type itself). Returns `(zone, chunk,
    /// chunk_base)`.
    pub fn reserve_log_chunk(&self) -> Result<(u64, u64, u64)> {
        self.reserve_log_chunk_in(None)
    }

    /// Like [`Heap::reserve_log_chunk`], but with an optional parity-shard
    /// affinity `(shard, n_shards)`: overflow log
    /// chunks land in the transaction's own shard when it has space, so log
    /// publication stays within one parity domain.
    pub fn reserve_log_chunk_in(&self, pref: Option<(u64, u64)>) -> Result<(u64, u64, u64)> {
        let order = self.zone_order(pref);
        let mut zones = self.zones.lock();
        for &zi in &order {
            let zs = &mut zones[zi as usize];
            if let Some(chunk) = zs.take_free_chunks(1) {
                return Ok((zi, chunk, self.layout.chunk_base(zi, chunk)));
            }
        }
        Err(ObjError::OutOfMemory { requested: self.layout.cfg.chunk_size })
    }

    /// Returns a log-overflow chunk to the volatile free pool (after the
    /// caller has republished it as `Free`).
    pub fn release_log_chunk(&self, zone: u64, chunk: u64) {
        let mut zones = self.zones.lock();
        zones[zone as usize].return_free_chunks(chunk, 1);
    }

    /// Occupancy counters.
    pub fn stats(&self) -> HeapStats {
        let zones = self.zones.lock();
        let mut s = HeapStats { free_chunks: 0, run_chunks: 0, total_chunks: 0 };
        for zs in zones.iter() {
            s.free_chunks += zs.free_chunk_count();
            s.run_chunks += zs.runs.len() as u64;
        }
        s.total_chunks = self.layout.usable_chunks_per_zone() * self.layout.n_zones;
        s
    }
}

/// Scans persistent metadata and returns the user-data offsets and headers
/// of all live objects (used by Pangolin's scrubber, paper §3.3).
pub fn scan_live(io: &PoolIo, layout: &Layout) -> Result<Vec<(u64, ObjectHeader)>> {
    scan_live_excluding(io, layout, &std::collections::BTreeSet::new())
}

/// [`scan_live`] minus the zones in `skip` (quarantined zones may hold
/// unreadable pages; their objects are lost, not live).
pub fn scan_live_excluding(
    io: &PoolIo,
    layout: &Layout,
    skip: &std::collections::BTreeSet<u64>,
) -> Result<Vec<(u64, ObjectHeader)>> {
    let mut out = Vec::new();
    for z in (0..layout.n_zones).filter(|z| !skip.contains(z)) {
        let mut c = layout.zone.cm_chunks;
        while c < layout.zone.n_chunks {
            let mut cm_buf = [0u8; 16];
            io.read(layout.cm_entry_off(z, c), &mut cm_buf)?;
            let cm = ChunkMeta::from_slice(&cm_buf);
            let mut advance = 1u64;
            match cm.chunk_type() {
                Some(ChunkType::Run) => {
                    let base = layout.chunk_base(z, c);
                    let hdr = RunHeader::read(io, base)?;
                    if hdr.validate(layout.cfg.chunk_size).is_ok() {
                        for b in 0..hdr.nblocks {
                            if hdr.is_set(b) {
                                let start = RunHeader::block_off(base, hdr.block_size, b);
                                let mut h = [0u8; 16];
                                io.read(start, &mut h)?;
                                out.push((start + OBJ_HEADER_SIZE, from_bytes(&h)));
                            }
                        }
                    }
                }
                Some(ChunkType::Large) => {
                    let base = layout.chunk_base(z, c);
                    let mut h = [0u8; 16];
                    io.read(base, &mut h)?;
                    out.push((base + OBJ_HEADER_SIZE, from_bytes(&h)));
                    advance = cm.size_idx.max(1) as u64;
                }
                _ => {}
            }
            c += advance;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PoolConfig;
    use pgl_nvm::{DeviceConfig, NvmDevice};
    use std::sync::Arc;

    fn fresh_heap() -> (PoolIo, Heap) {
        let cfg = PoolConfig::small();
        let layout = Layout::new(cfg).unwrap();
        let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        let io = PoolIo::new(dev);
        Heap::format(&io, &layout).unwrap();
        let heap = Heap::rebuild(&io, layout, true).unwrap();
        (io, heap)
    }

    /// Publishes a reservation the way a committing transaction would.
    fn publish_alloc(io: &PoolIo, heap: &Heap, r: &AllocReservation) {
        heap.apply_ops(io, &r.ops).unwrap();
        heap.complete_alloc(r);
    }

    fn publish_free(io: &PoolIo, heap: &Heap, r: &FreeReservation) {
        heap.apply_ops(io, &r.ops).unwrap();
        heap.complete_free(r);
    }

    #[test]
    fn small_alloc_reserves_run_block() {
        let (io, heap) = fresh_heap();
        let r = heap.reserve_alloc(56, 1).unwrap();
        assert_eq!(r.total_len, 96, "56+16 -> 96-byte class");
        assert_eq!(r.oid_off, r.start_off + 16);
        // Fresh run: format + CM + bit set.
        assert_eq!(r.ops.len(), 3);
        publish_alloc(&io, &heap, &r);
        // Second alloc of the same class reuses the run (single bit set).
        let r2 = heap.reserve_alloc(56, 1).unwrap();
        assert_eq!(r2.ops.len(), 1);
        assert_ne!(r2.start_off, r.start_off);
        publish_alloc(&io, &heap, &r2);
    }

    #[test]
    fn alloc_free_alloc_reuses_storage() {
        let (io, heap) = fresh_heap();
        let r = heap.reserve_alloc(100, 2).unwrap();
        let off = r.oid_off;
        publish_alloc(&io, &heap, &r);
        let f = heap.reserve_free(&io, off).unwrap();
        publish_free(&io, &heap, &f);
        let r2 = heap.reserve_alloc(100, 2).unwrap();
        assert_eq!(r2.oid_off, off, "freed block is reused");
        publish_alloc(&io, &heap, &r2);
    }

    #[test]
    fn large_alloc_takes_contiguous_chunks() {
        let (io, heap) = fresh_heap();
        let chunk = 16 << 10; // PoolConfig::small chunk size
        let r = heap.reserve_alloc(3 * chunk as u64, 9).unwrap();
        assert_eq!(r.total_len, 4 * chunk as u64, "3 chunks + header spills to 4");
        assert_eq!(r.ops.len(), 4, "head + 3 continuations");
        publish_alloc(&io, &heap, &r);
        let before = heap.stats().free_chunks;
        let f = heap.reserve_free(&io, r.oid_off).unwrap();
        publish_free(&io, &heap, &f);
        assert_eq!(heap.stats().free_chunks, before + 4);
    }

    #[test]
    fn cancel_alloc_restores_volatile_state() {
        let (_io, heap) = fresh_heap();
        let before = heap.stats();
        let r = heap.reserve_alloc(56, 1).unwrap();
        heap.cancel_alloc(&r);
        let after = heap.stats();
        assert_eq!(before.free_chunks, after.free_chunks);
        assert_eq!(before.run_chunks, after.run_chunks, "pending run removed");
    }

    #[test]
    fn rebuild_recovers_allocations() {
        let (io, heap) = fresh_heap();
        let r1 = heap.reserve_alloc(56, 1).unwrap();
        publish_alloc(&io, &heap, &r1);
        // Write an object header so scan_live can see it.
        let hdr = ObjectHeader { size: 56, type_num: 1, csum: 0 };
        io.write(r1.start_off, bytes_of(&hdr)).unwrap();
        let r2 = heap.reserve_alloc(60 << 10, 2).unwrap();
        publish_alloc(&io, &heap, &r2);
        io.write(r2.start_off, bytes_of(&ObjectHeader { size: 60 << 10, type_num: 2, csum: 0 }))
            .unwrap();

        // Reopen: volatile state must match persistent reality.
        let rebuilt = Heap::rebuild(&io, *heap.layout(), true).unwrap();
        let live = scan_live(&io, rebuilt.layout()).unwrap();
        let offs: Vec<u64> = live.iter().map(|(o, _)| *o).collect();
        assert!(offs.contains(&r1.oid_off));
        assert!(offs.contains(&r2.oid_off));
        assert_eq!(live.len(), 2);

        // An alloc of the same class must not collide with r1.
        let r3 = rebuilt.reserve_alloc(56, 1).unwrap();
        assert_ne!(r3.start_off, r1.start_off);
    }

    #[test]
    fn unpublished_reservation_vanishes_on_rebuild() {
        let (io, heap) = fresh_heap();
        let r = heap.reserve_alloc(56, 1).unwrap();
        // No publish: simulate a crash before commit.
        let rebuilt = Heap::rebuild(&io, *heap.layout(), true).unwrap();
        let r2 = rebuilt.reserve_alloc(56, 1).unwrap();
        assert_eq!(r2.start_off, r.start_off, "reservation was not persistent");
    }

    #[test]
    fn meta_ops_are_idempotent() {
        let (io, heap) = fresh_heap();
        let r = heap.reserve_alloc(200, 3).unwrap();
        heap.apply_ops(&io, &r.ops).unwrap();
        heap.apply_ops(&io, &r.ops).unwrap(); // replay (crash during apply)
        heap.complete_alloc(&r);
        let rebuilt = Heap::rebuild(&io, *heap.layout(), true).unwrap();
        // Exactly one block allocated.
        let stats = rebuilt.stats();
        assert_eq!(stats.run_chunks, 1);
    }

    #[test]
    fn meta_op_log_roundtrip() {
        let ops = vec![
            MetaOp::SetBits { off: 0x100, mask: 0b11 },
            MetaOp::ClearBits { off: 0x108, mask: 0b1 },
            MetaOp::WriteCm { off: 0x200, data: [7; 16] },
            MetaOp::RunFmt { off: 0x4000, block_size: 96, nblocks: 100 },
        ];
        for op in &ops {
            let (kind, off, payload) = op.encode();
            let entry = Entry { kind, off, payload };
            assert_eq!(MetaOp::decode(&entry).as_ref(), Some(op));
        }
        let commit = Entry { kind: EntryKind::Commit, off: 0, payload: vec![] };
        assert_eq!(MetaOp::decode(&commit), None);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let (_io, heap) = fresh_heap();
        assert!(matches!(
            heap.reserve_alloc(heap.layout().max_alloc() + 1, 0),
            Err(ObjError::OutOfMemory { .. })
        ));
        assert!(matches!(heap.reserve_alloc(0, 0), Err(ObjError::OutOfMemory { .. })));
    }

    #[test]
    fn exhaustion_and_release() {
        let (io, heap) = fresh_heap();
        // Exhaust all chunks with large allocations.
        let chunk = heap.layout().cfg.chunk_size as u64;
        let mut allocs = Vec::new();
        loop {
            match heap.reserve_alloc(chunk * 2, 1) {
                Ok(r) => {
                    publish_alloc(&io, &heap, &r);
                    allocs.push(r);
                }
                Err(ObjError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(!allocs.is_empty());
        // Free everything; space must be reusable.
        for a in &allocs {
            let f = heap.reserve_free(&io, a.oid_off).unwrap();
            publish_free(&io, &heap, &f);
        }
        let r = heap.reserve_alloc(chunk * 2, 1).unwrap();
        publish_alloc(&io, &heap, &r);
    }

    #[test]
    fn reserve_free_rejects_bogus_offsets() {
        let (io, heap) = fresh_heap();
        assert!(heap.reserve_free(&io, 8).is_err());
        // Offset in a free chunk.
        let base = heap.layout().chunk_base(0, heap.layout().zone.cm_chunks);
        assert!(heap.reserve_free(&io, base + 16 + 320).is_err());
    }
}
