//! The persistent object pool: creation, opening (with crash recovery),
//! root object management and transaction entry points.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pgl_nvm::pod::{bytes_of, from_bytes};
use pgl_nvm::{impl_pod, NvmDevice, PAGE_SIZE};

use crate::error::{ObjError, Result};
use crate::heap::{scan_live, Heap, MetaOp};
use crate::io::PoolIo;
use crate::lane::{Lanes, LogMirror};
use crate::layout::{Layout, PoolConfig};
use crate::oid::{ObjectHeader, PMEMoid, OBJ_HEADER_SIZE, OID_NULL};
use crate::tx::{Tx, TxStats};
use crate::ulog::{self, EntryKind};
use crate::util::crc32;

const POOL_MAGIC: u64 = 0x50_4D_45_4D_4F_42_4A_31; // "PMEMOBJ1"
const POOL_VERSION: u32 = 1;

/// The persistent pool header (one copy per header page).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct PoolHeader {
    /// Magic number identifying a pool.
    pub magic: u64,
    /// Pool UUID, embedded in every [`PMEMoid`].
    pub uuid: u64,
    /// Pool size in bytes.
    pub size: u64,
    /// Format version.
    pub version: u32,
    /// Mode flags (bit 0: parity row present).
    pub flags: u32,
    /// Geometry: zone size.
    pub zone_size: u64,
    /// Geometry: chunk size.
    pub chunk_size: u64,
    /// Geometry: data chunk rows per zone.
    pub chunk_rows: u64,
    /// Geometry: number of lanes.
    pub n_lanes: u64,
    /// Geometry: per-lane log bytes.
    pub lane_size: u64,
    /// Offset of the root object's user data (0 = none).
    pub root_off: u64,
    /// Root object user size.
    pub root_size: u64,
    /// CRC32 of the header with this field zeroed.
    pub csum: u32,
    /// Reserved.
    pub pad: u32,
}
impl_pod!(PoolHeader, 96);

/// Pool-header flag: a parity row is reserved per zone.
pub const FLAG_PARITY: u32 = 1;
/// Pool-header flags bits 1-2: Pangolin mode index (0 = baseline .. 3 = MLPC).
pub const FLAG_MODE_SHIFT: u32 = 1;

impl PoolHeader {
    fn compute_csum(&self) -> u32 {
        let mut copy = *self;
        copy.csum = 0;
        crc32(bytes_of(&copy))
    }

    fn verify(&self) -> bool {
        self.magic == POOL_MAGIC && self.version == POOL_VERSION && self.csum == self.compute_csum()
    }

    fn to_config(self, total_size: usize) -> PoolConfig {
        PoolConfig {
            size: total_size,
            zone_size: self.zone_size as usize,
            chunk_size: self.chunk_size as usize,
            chunk_rows: self.chunk_rows as usize,
            parity: self.flags & FLAG_PARITY != 0,
            n_lanes: self.n_lanes as usize,
            lane_size: self.lane_size as usize,
        }
    }
}

/// Pool-level operation counters.
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Committed transactions.
    pub commits: AtomicU64,
    /// Aborted transactions.
    pub aborts: AtomicU64,
}

/// A `libpmemobj`-style persistent object pool over a simulated NVMM
/// device, optionally mirrored to a replica device (`Pmemobj-R`).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pgl_nvm::{DeviceConfig, NvmDevice};
/// use pgl_pmemobj::{PmemPool, PoolConfig};
///
/// let dev = Arc::new(NvmDevice::new(PoolConfig::small().size, DeviceConfig::fast()).unwrap());
/// let pool = PmemPool::create(dev, PoolConfig::small()).unwrap();
/// let oid = pool.tx(|tx| tx.alloc_zeroed(64, 1)).unwrap();
/// pool.tx(|tx| tx.write_pod(oid, 0, &123u64)).unwrap();
/// assert_eq!(pool.read_pod::<u64>(oid, 0).unwrap(), 123);
/// ```
pub struct PmemPool {
    io: PoolIo,
    layout: Layout,
    heap: Heap,
    lanes: Lanes,
    uuid: u64,
    counters: PoolCounters,
}

impl PmemPool {
    /// Creates a fresh pool on `dev`, zeroing it first (the one-time cost
    /// the paper reports as pool-initialization latency, §4.2).
    pub fn create(dev: Arc<NvmDevice>, cfg: PoolConfig) -> Result<Self> {
        Self::create_io(PoolIo::new(dev), cfg)
    }

    /// Creates a replicated pool (`Pmemobj-R`): every write is mirrored to
    /// `replica`, doubling storage and write traffic.
    pub fn create_replicated(
        dev: Arc<NvmDevice>,
        replica: Arc<NvmDevice>,
        cfg: PoolConfig,
    ) -> Result<Self> {
        if replica.len() != dev.len() {
            return Err(ObjError::BadPool("replica size mismatch".into()));
        }
        Self::create_io(PoolIo::replicated(dev, replica), cfg)
    }

    pub(crate) fn create_io(io: PoolIo, cfg: PoolConfig) -> Result<Self> {
        let layout = Layout::new(cfg)?;
        if io.dev().len() != cfg.size {
            return Err(ObjError::BadPool(format!(
                "device is {} bytes but config wants {}",
                io.dev().len(),
                cfg.size
            )));
        }
        // Zero the whole pool so parity (all-zero rows XOR to zero) and CM
        // entries start consistent.
        io.set(0, 0, cfg.size)?;
        io.persist(0, cfg.size)?;

        let uuid = fresh_uuid();
        let hdr = PoolHeader {
            magic: POOL_MAGIC,
            uuid,
            size: cfg.size as u64,
            version: POOL_VERSION,
            flags: if cfg.parity { FLAG_PARITY } else { 0 },
            zone_size: cfg.zone_size as u64,
            chunk_size: cfg.chunk_size as u64,
            chunk_rows: cfg.chunk_rows as u64,
            n_lanes: cfg.n_lanes as u64,
            lane_size: cfg.lane_size as u64,
            root_off: 0,
            root_size: 0,
            csum: 0,
            pad: 0,
        };
        write_header(&io, &layout, hdr)?;
        Lanes::format(&io, &layout, LogMirror::None)?;
        Heap::format(&io, &layout)?;
        let heap = Heap::rebuild(&io, layout, false)?;
        let lanes = Lanes::load(&io, layout, LogMirror::None)?;
        Ok(PmemPool { io, layout, heap, lanes, uuid, counters: PoolCounters::default() })
    }

    /// Opens an existing pool, running crash recovery (undo rollback or
    /// redo completion per lane) before any access.
    pub fn open(dev: Arc<NvmDevice>) -> Result<Self> {
        Self::open_io(PoolIo::new(dev))
    }

    /// Opens a replicated pool.
    pub fn open_replicated(dev: Arc<NvmDevice>, replica: Arc<NvmDevice>) -> Result<Self> {
        Self::open_io(PoolIo::replicated(dev, replica))
    }

    fn open_io(io: PoolIo) -> Result<Self> {
        let hdr = read_header(&io)?;
        let cfg = hdr.to_config(io.dev().len());
        let layout = Layout::new(cfg)?;
        recover(&io, &layout, LogMirror::None)?;
        let heap = Heap::rebuild(&io, layout, false)?;
        let lanes = Lanes::load(&io, layout, LogMirror::None)?;
        Ok(PmemPool { io, layout, heap, lanes, uuid: hdr.uuid, counters: PoolCounters::default() })
    }

    /// The pool UUID.
    pub fn uuid(&self) -> u64 {
        self.uuid
    }

    /// The resolved layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The underlying I/O layer (used by tests and the fault injector).
    pub fn io(&self) -> &PoolIo {
        &self.io
    }

    /// The heap (exposed for statistics).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Commit/abort counters.
    pub fn counters(&self) -> &PoolCounters {
        &self.counters
    }

    /// Runs `f` inside a transaction: `Ok` commits, `Err` aborts with
    /// rollback. This is the `TX_BEGIN { .. } TX_END` equivalent.
    pub fn tx<R>(&self, f: impl FnOnce(&mut Tx<'_>) -> Result<R>) -> Result<R> {
        self.tx_with_stats(f).map(|(r, _)| r)
    }

    /// Like [`PmemPool::tx`] but also returns the transaction's
    /// instrumentation counters (used by the Table 3 harness).
    pub fn tx_with_stats<R>(
        &self,
        f: impl FnOnce(&mut Tx<'_>) -> Result<R>,
    ) -> Result<(R, TxStats)> {
        let lane = self.lanes.claim(&self.io);
        let mut tx = Tx::new(&self.io, &self.heap, lane, self.uuid);
        match f(&mut tx) {
            Ok(r) => {
                let stats = tx.commit()?;
                self.counters.commits.fetch_add(1, Ordering::Relaxed);
                Ok((r, stats))
            }
            Err(e) => {
                tx.abort()?;
                self.counters.aborts.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Returns the root object, allocating a zeroed one of `size` bytes on
    /// first use (`pmemobj_root` analogue).
    pub fn root(&self, size: u64, type_num: u32) -> Result<PMEMoid> {
        {
            let hdr = read_header(&self.io)?;
            if hdr.root_off != 0 {
                return Ok(PMEMoid::new(self.uuid, hdr.root_off));
            }
        }
        let oid = self.tx(|tx| tx.alloc_zeroed(size, type_num))?;
        let mut hdr = read_header(&self.io)?;
        hdr.root_off = oid.off;
        hdr.root_size = size;
        write_header(&self.io, &self.layout, hdr)?;
        Ok(oid)
    }

    /// Returns the current root OID, or null if none was created.
    pub fn root_oid(&self) -> Result<PMEMoid> {
        let hdr = read_header(&self.io)?;
        if hdr.root_off == 0 {
            Ok(OID_NULL)
        } else {
            Ok(PMEMoid::new(self.uuid, hdr.root_off))
        }
    }

    /// Direct (DAX-style) read of object bytes outside any transaction.
    pub fn read(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> Result<()> {
        self.check_oid(oid)?;
        self.io.read(oid.off + off, dst)
    }

    /// Direct typed read of a field.
    pub fn read_pod<T: pgl_nvm::Pod>(&self, oid: PMEMoid, off: u64) -> Result<T> {
        self.check_oid(oid)?;
        let mut buf = vec![0u8; std::mem::size_of::<T>()];
        self.io.read(oid.off + off, &mut buf)?;
        Ok(from_bytes(&buf))
    }

    /// Reads an object's header.
    pub fn obj_header(&self, oid: PMEMoid) -> Result<ObjectHeader> {
        self.check_oid(oid)?;
        let mut buf = [0u8; 16];
        self.io.read(oid.header_off(), &mut buf)?;
        Ok(from_bytes(&buf))
    }

    /// Returns an object's user size.
    pub fn obj_size(&self, oid: PMEMoid) -> Result<u64> {
        Ok(self.obj_header(oid)?.size)
    }

    /// Lists all live objects `(oid, header)` by scanning persistent
    /// allocator metadata.
    pub fn live_objects(&self) -> Result<Vec<(PMEMoid, ObjectHeader)>> {
        Ok(scan_live(&self.io, &self.layout)?
            .into_iter()
            .map(|(off, h)| (PMEMoid::new(self.uuid, off), h))
            .collect())
    }

    /// Offline check: lists poisoned pages on the primary and replica.
    pub fn check_media(&self) -> (Vec<u64>, Vec<u64>) {
        let p = self.io.dev().poisoned_pages();
        let r = self.io.replica().map(|d| d.poisoned_pages()).unwrap_or_default();
        (p, r)
    }

    /// Offline repair for replicated pools: rewrites each poisoned page
    /// from the healthy copy (the `pmempool sync` analogue). Fails with
    /// [`ObjError::Unrecoverable`] if both copies of a page are bad, and
    /// with [`ObjError::BadPool`] if the pool has no replica.
    ///
    /// As the paper notes (§2.3), this is replicated `libpmemobj`'s *only*
    /// repair path — it cannot run while the pool is in use.
    pub fn sync_replicas(&self) -> Result<u64> {
        let Some(replica) = self.io.replica() else {
            return Err(ObjError::BadPool("pool has no replica".into()));
        };
        let primary = self.io.dev();
        let mut repaired = 0u64;
        let mut page_buf = vec![0u8; PAGE_SIZE];
        for page in primary.poisoned_pages() {
            if replica.is_poisoned_page(page) {
                return Err(ObjError::Unrecoverable(format!(
                    "page {page} lost on both primary and replica"
                )));
            }
            replica.read(page * PAGE_SIZE as u64, &mut page_buf)?;
            primary.repair_page(page, &page_buf)?;
            repaired += 1;
        }
        for page in replica.poisoned_pages() {
            if primary.is_poisoned_page(page) {
                return Err(ObjError::Unrecoverable(format!(
                    "page {page} lost on both primary and replica"
                )));
            }
            primary.read(page * PAGE_SIZE as u64, &mut page_buf)?;
            replica.repair_page(page, &page_buf)?;
            repaired += 1;
        }
        Ok(repaired)
    }

    fn check_oid(&self, oid: PMEMoid) -> Result<()> {
        if oid.is_null() || oid.pool != self.uuid || oid.off < OBJ_HEADER_SIZE {
            return Err(ObjError::InvalidOid { off: oid.off });
        }
        Ok(())
    }
}

/// Generates a non-zero pseudo-random pool UUID without external crates.
fn fresh_uuid() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let h = std::collections::hash_map::RandomState::new().build_hasher().finish();
    h | 1
}

/// Writes both pool header copies.
pub fn write_header(io: &PoolIo, layout: &Layout, mut hdr: PoolHeader) -> Result<()> {
    hdr.csum = hdr.compute_csum();
    let bytes = bytes_of(&hdr);
    io.write(layout.hdr_off, bytes)?;
    io.persist(layout.hdr_off, bytes.len())?;
    io.write(layout.hdr_replica_off, bytes)?;
    io.persist(layout.hdr_replica_off, bytes.len())?;
    Ok(())
}

/// Reads and validates a pool header, trying the replica copy if the
/// primary is unreadable or corrupt.
pub fn read_header(io: &PoolIo) -> Result<PoolHeader> {
    let mut buf = [0u8; std::mem::size_of::<PoolHeader>()];
    for off in [0u64, PAGE_SIZE as u64] {
        if io.read_with_replica_fallback(off, &mut buf).is_ok() {
            let hdr: PoolHeader = from_bytes(&buf);
            if hdr.verify() {
                return Ok(hdr);
            }
        }
    }
    Err(ObjError::BadPool("no valid pool header".into()))
}

/// Lane-by-lane crash recovery: committed lanes re-apply their redo
/// (allocator) entries; uncommitted lanes roll back their undo entries.
/// Orphaned log-overflow chunks are swept back to `Free` afterwards.
pub fn recover(io: &PoolIo, layout: &Layout, mirror: LogMirror) -> Result<()> {
    for l in 0..layout.cfg.n_lanes as u32 {
        let entries = Lanes::read_entries(io, layout, l, mirror)?;
        if entries.is_empty() {
            continue;
        }
        if ulog::is_committed(&entries) {
            for e in &entries {
                if let Some(op) = MetaOp::decode(e) {
                    op.apply(io)?;
                }
            }
        } else {
            for e in entries.iter().rev() {
                if e.kind == EntryKind::Data {
                    io.write(e.off, &e.payload)?;
                    io.flush(e.off, e.payload.len())?;
                }
            }
            io.drain();
        }
        Lanes::invalidate(io, layout, l, mirror)?;
    }
    sweep_orphan_log_chunks(io, layout)?;
    Ok(())
}

/// Returns every `Log`-typed chunk to `Free`: once all lanes are
/// invalidated, any remaining log-overflow chunk is garbage from a crashed
/// transaction.
pub fn sweep_orphan_log_chunks(io: &PoolIo, layout: &Layout) -> Result<()> {
    use crate::heap::run::{ChunkMeta, ChunkType};
    let free = ChunkMeta::new(ChunkType::Free, 0, 0).to_bytes();
    for z in 0..layout.n_zones {
        let mut c = layout.zone.cm_chunks;
        while c < layout.zone.n_chunks {
            let mut buf = [0u8; 16];
            io.read(layout.cm_entry_off(z, c), &mut buf)?;
            let cm = ChunkMeta::from_slice(&buf);
            let mut advance = 1u64;
            match cm.chunk_type() {
                Some(ChunkType::Log) => {
                    io.write(layout.cm_entry_off(z, c), &free)?;
                    io.persist(layout.cm_entry_off(z, c), 16)?;
                }
                Some(ChunkType::Large) => advance = cm.size_idx.max(1) as u64,
                _ => {}
            }
            c += advance;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgl_nvm::DeviceConfig;

    fn new_pool() -> (Arc<NvmDevice>, PmemPool) {
        let cfg = PoolConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        let pool = PmemPool::create(dev.clone(), cfg).unwrap();
        (dev, pool)
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let (_dev, pool) = new_pool();
        let oid = pool
            .tx(|tx| {
                let oid = tx.alloc(64, 7)?;
                tx.write(oid, 0, b"forty-two")?;
                Ok(oid)
            })
            .unwrap();
        let mut buf = [0u8; 9];
        pool.read(oid, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"forty-two");
        let hdr = pool.obj_header(oid).unwrap();
        assert_eq!(hdr.size, 64);
        assert_eq!(hdr.type_num, 7);
    }

    #[test]
    fn abort_rolls_back_in_place_writes() {
        let (_dev, pool) = new_pool();
        let oid = pool
            .tx(|tx| {
                let oid = tx.alloc_zeroed(32, 1)?;
                tx.write(oid, 0, &[1u8; 32])?;
                Ok(oid)
            })
            .unwrap();
        let err = pool.tx(|tx| -> Result<()> {
            tx.write(oid, 0, &[9u8; 32])?;
            Err(ObjError::Aborted("user abort".into()))
        });
        assert!(err.is_err());
        let mut buf = [0u8; 32];
        pool.read(oid, 0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 32], "aborted write rolled back");
        assert_eq!(pool.counters().aborts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn aborted_alloc_is_not_visible() {
        let (_dev, pool) = new_pool();
        let _ = pool.tx(|tx| -> Result<()> {
            tx.alloc(100, 1)?;
            Err(ObjError::Aborted("never mind".into()))
        });
        assert!(pool.live_objects().unwrap().is_empty());
        // And the space is reusable.
        pool.tx(|tx| tx.alloc(100, 1)).unwrap();
        assert_eq!(pool.live_objects().unwrap().len(), 1);
    }

    #[test]
    fn free_reclaims_space() {
        let (_dev, pool) = new_pool();
        let oid = pool.tx(|tx| tx.alloc(128, 2)).unwrap();
        assert_eq!(pool.live_objects().unwrap().len(), 1);
        pool.tx(|tx| tx.free(oid)).unwrap();
        assert!(pool.live_objects().unwrap().is_empty());
    }

    #[test]
    fn alloc_and_free_in_same_tx_cancels() {
        let (_dev, pool) = new_pool();
        pool.tx(|tx| {
            let oid = tx.alloc(64, 1)?;
            tx.free(oid)?;
            Ok(())
        })
        .unwrap();
        assert!(pool.live_objects().unwrap().is_empty());
    }

    #[test]
    fn root_object_is_stable() {
        let (dev, pool) = new_pool();
        let root = pool.root(256, 42).unwrap();
        assert_eq!(pool.root(256, 42).unwrap(), root, "root allocated once");
        pool.tx(|tx| tx.write_pod(root, 0, &0xFEEDu64)).unwrap();
        drop(pool);
        let pool = PmemPool::open(dev).unwrap();
        let root2 = pool.root_oid().unwrap();
        assert_eq!(root2.off, root.off, "root survives reopen");
        assert_eq!(pool.read_pod::<u64>(root2, 0).unwrap(), 0xFEED);
    }

    #[test]
    fn reopen_preserves_objects() {
        let (dev, pool) = new_pool();
        let oid = pool
            .tx(|tx| {
                let oid = tx.alloc(64, 3)?;
                tx.write(oid, 0, &[0xAB; 64])?;
                Ok(oid)
            })
            .unwrap();
        drop(pool);
        let pool = PmemPool::open(dev).unwrap();
        let mut buf = [0u8; 64];
        pool.read(PMEMoid::new(pool.uuid(), oid.off), 0, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 64]);
        assert_eq!(pool.live_objects().unwrap().len(), 1);
    }

    #[test]
    fn open_rejects_garbage() {
        let dev = Arc::new(NvmDevice::new(1 << 20, DeviceConfig::fast()).unwrap());
        assert!(PmemPool::open(dev).is_err());
    }

    #[test]
    fn replicated_pool_mirrors_and_syncs() {
        let cfg = PoolConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        let rep = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        let pool = PmemPool::create_replicated(dev.clone(), rep.clone(), cfg).unwrap();
        let oid = pool
            .tx(|tx| {
                let oid = tx.alloc(64, 1)?;
                tx.write(oid, 0, &[0x5A; 64])?;
                Ok(oid)
            })
            .unwrap();
        // Poison the primary page holding the object: reads fail (SIGBUS
        // analogue), and only the offline sync restores access.
        let page = oid.off / PAGE_SIZE as u64;
        dev.poison_page(page).unwrap();
        let mut buf = [0u8; 64];
        assert!(pool.read(oid, 0, &mut buf).is_err());
        let repaired = pool.sync_replicas().unwrap();
        assert_eq!(repaired, 1);
        pool.read(oid, 0, &mut buf).unwrap();
        assert_eq!(buf, [0x5A; 64]);
    }

    #[test]
    fn unreplicated_sync_fails() {
        let (_dev, pool) = new_pool();
        assert!(pool.sync_replicas().is_err());
    }
}
