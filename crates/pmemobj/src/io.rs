//! The pool I/O layer: primary-device access with optional replica
//! mirroring.
//!
//! `libpmemobj`'s replicated mode (the paper's `Pmemobj-R` baseline, Table 2)
//! keeps a full second pool and applies every persistent update to both.
//! Routing all device access through [`PoolIo`] makes that mirroring — and
//! its 100 % space / 2x write-traffic cost — fall out naturally, so the
//! benchmarks measure the same trade-off the paper does.

use std::sync::Arc;

use pgl_nvm::{MemError, NvmDevice};

use crate::error::Result;

/// Device access handle, mirroring writes to a replica pool when present.
#[derive(Clone)]
pub struct PoolIo {
    dev: Arc<NvmDevice>,
    replica: Option<Arc<NvmDevice>>,
}

impl PoolIo {
    /// Creates an I/O layer over a single device.
    pub fn new(dev: Arc<NvmDevice>) -> Self {
        PoolIo { dev, replica: None }
    }

    /// Creates an I/O layer that mirrors all writes to `replica`.
    pub fn replicated(dev: Arc<NvmDevice>, replica: Arc<NvmDevice>) -> Self {
        PoolIo { dev, replica: Some(replica) }
    }

    /// The primary device.
    #[inline]
    pub fn dev(&self) -> &NvmDevice {
        &self.dev
    }

    /// The replica device, if any.
    #[inline]
    pub fn replica(&self) -> Option<&NvmDevice> {
        self.replica.as_deref()
    }

    /// Returns `true` if a replica pool is attached.
    #[inline]
    pub fn is_replicated(&self) -> bool {
        self.replica.is_some()
    }

    /// Cached store to both pools.
    pub fn write(&self, off: u64, src: &[u8]) -> Result<()> {
        self.dev.write(off, src)?;
        if let Some(r) = &self.replica {
            r.write(off, src)?;
        }
        Ok(())
    }

    /// Non-temporal store to both pools.
    pub fn write_nt(&self, off: u64, src: &[u8]) -> Result<()> {
        self.dev.write_nt(off, src)?;
        if let Some(r) = &self.replica {
            r.write_nt(off, src)?;
        }
        Ok(())
    }

    /// Memset on both pools.
    pub fn set(&self, off: u64, byte: u8, len: usize) -> Result<()> {
        self.dev.set(off, byte, len)?;
        if let Some(r) = &self.replica {
            r.set(off, byte, len)?;
        }
        Ok(())
    }

    /// Flush on both pools.
    pub fn flush(&self, off: u64, len: usize) -> Result<()> {
        self.dev.flush(off, len)?;
        if let Some(r) = &self.replica {
            r.flush(off, len)?;
        }
        Ok(())
    }

    /// Fence on both pools.
    pub fn drain(&self) {
        self.dev.drain();
        if let Some(r) = &self.replica {
            r.drain();
        }
    }

    /// Flush + fence on both pools.
    pub fn persist(&self, off: u64, len: usize) -> Result<()> {
        self.flush(off, len)?;
        self.drain();
        Ok(())
    }

    /// Atomic 8-byte store to both pools.
    pub fn atomic_store_u64(&self, off: u64, val: u64) -> Result<()> {
        self.dev.atomic_store_u64(off, val)?;
        if let Some(r) = &self.replica {
            r.atomic_store_u64(off, val)?;
        }
        Ok(())
    }

    /// Atomic 8-byte compare-and-swap, serialized on the primary pool.
    /// Returns the primary's pre-CAS value; on success the new value is
    /// propagated to the replica with a plain atomic store (the primary
    /// is the ordering authority — replicated pools have no concurrent
    /// CAS users of their own).
    pub fn atomic_cas_u64(&self, off: u64, expected: u64, new: u64) -> Result<u64> {
        let prev = self.dev.atomic_cas_u64(off, expected, new)?;
        if prev == expected {
            if let Some(r) = &self.replica {
                r.atomic_store_u64(off, new)?;
            }
        }
        Ok(prev)
    }

    /// Reads from the primary pool only (loads are never mirrored).
    pub fn read(&self, off: u64, dst: &mut [u8]) -> Result<()> {
        Ok(self.dev.read(off, dst)?)
    }

    /// Reads a `u64` (plain, little-endian via memory layout) from the
    /// primary pool.
    pub fn read_u64(&self, off: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.dev.read(off, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads from the primary pool, falling back to the replica when the
    /// primary page is poisoned.
    ///
    /// Used only by *offline* recovery paths — the paper notes replicated
    /// `libpmemobj` cannot repair online, and the run-time read path
    /// deliberately does not fall back.
    pub fn read_with_replica_fallback(&self, off: u64, dst: &mut [u8]) -> Result<()> {
        match self.dev.read(off, dst) {
            Ok(()) => Ok(()),
            Err(MemError::Poisoned { .. }) if self.replica.is_some() => {
                let r = self.replica.as_ref().expect("checked above");
                Ok(r.read(off, dst)?)
            }
            Err(e) => Err(e.into()),
        }
    }
}

impl std::fmt::Debug for PoolIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolIo")
            .field("len", &self.dev.len())
            .field("replicated", &self.is_replicated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgl_nvm::DeviceConfig;

    fn two_devs() -> (Arc<NvmDevice>, Arc<NvmDevice>) {
        let a = Arc::new(NvmDevice::new(64 * 1024, DeviceConfig::fast()).unwrap());
        let b = Arc::new(NvmDevice::new(64 * 1024, DeviceConfig::fast()).unwrap());
        (a, b)
    }

    #[test]
    fn writes_mirror_to_replica() {
        let (a, b) = two_devs();
        let io = PoolIo::replicated(a.clone(), b.clone());
        io.write(100, b"mirrored").unwrap();
        io.persist(100, 8).unwrap();
        assert_eq!(a.read_slice(100, 8).unwrap(), b"mirrored");
        assert_eq!(b.read_slice(100, 8).unwrap(), b"mirrored");
        io.atomic_store_u64(0, 42).unwrap();
        assert_eq!(b.atomic_load_u64(0).unwrap(), 42);
    }

    #[test]
    fn reads_do_not_fall_back_by_default() {
        let (a, b) = two_devs();
        let io = PoolIo::replicated(a.clone(), b.clone());
        io.write(4096, b"data").unwrap();
        a.poison_page(1).unwrap();
        let mut buf = [0u8; 4];
        assert!(io.read(4096, &mut buf).is_err(), "run-time reads fail like SIGBUS");
        io.read_with_replica_fallback(4096, &mut buf).unwrap();
        assert_eq!(&buf, b"data");
    }

    #[test]
    fn unreplicated_fallback_still_errors() {
        let (a, _) = two_devs();
        let io = PoolIo::new(a.clone());
        a.poison_page(0).unwrap();
        let mut buf = [0u8; 4];
        assert!(io.read_with_replica_fallback(0, &mut buf).is_err());
    }
}
