//! Table 3: data structure and transaction sizes — average allocated
//! ("New") and modified ("Mod") bytes per insert/remove, with the average
//! number of objects involved in parentheses.
//!
//! Run: `cargo run --release -p pgl-bench --bin table3_txsizes`

use pgl_bench::{make_store, print_table, AnyStore, Args, Mode};
use pgl_kv::maps::PersistentMap;
use pgl_kv::workload::{insert_phase, random_keys, remove_phase, PhaseStats};
use pgl_kv::{BTree, CTree, HashMap, RTree, RbTree, SkipList};

struct Row {
    name: &'static str,
    object_size: &'static str,
    insert: PhaseStats,
    remove: PhaseStats,
}

fn measure<M: PersistentMap>(store: &AnyStore, keys: &[u64], object_size: &'static str) -> Row {
    let map = M::create(store).expect("create");
    let insert = insert_phase(&map, store, keys).expect("insert");
    let remove = remove_phase(&map, store, keys).expect("remove");
    Row { name: M::NAME, object_size, insert, remove }
}

fn main() {
    let args = Args::parse();
    println!(
        "Table 3 reproduction: transaction sizes over {} inserts + removes \
         (measured on pgl-MLPC; 'Mod' = redo-logged bytes)",
        args.ops
    );
    let keys = random_keys(args.ops, args.seed);

    let mut rows: Vec<Row> = Vec::new();
    {
        let store = make_store(Mode::PglMlpc, args.pool_bytes, args.latency);
        rows.push(measure::<CTree>(&store, &keys, "56"));
    }
    {
        let store = make_store(Mode::PglMlpc, args.pool_bytes, args.latency);
        rows.push(measure::<RbTree>(&store, &keys, "80"));
    }
    {
        let store = make_store(Mode::PglMlpc, args.pool_bytes, args.latency);
        rows.push(measure::<BTree>(&store, &keys, "304"));
    }
    {
        let store = make_store(Mode::PglMlpc, args.pool_bytes, args.latency);
        rows.push(measure::<SkipList>(&store, &keys, "408"));
    }
    {
        let store = make_store(Mode::PglMlpc, args.pool_bytes * 2, args.latency);
        rows.push(measure::<RTree>(&store, &keys, "4136"));
    }
    {
        let store = make_store(Mode::PglMlpc, args.pool_bytes, args.latency);
        rows.push(measure::<HashMap>(&store, &keys, "40 (entry), table grows"));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.object_size.to_string(),
                format!("{:.1} ({:.2})", r.insert.avg_new_bytes(), r.insert.avg_new_objects()),
                format!("{:.1} ({:.2})", r.insert.avg_mod_bytes(), r.insert.avg_mod_objects()),
                format!("{:.1} ({:.2})", r.remove.avg_new_bytes(), r.remove.avg_new_objects()),
                format!("{:.1} ({:.2})", r.remove.avg_mod_bytes(), r.remove.avg_mod_objects()),
            ]
        })
        .collect();

    print_table(
        "Table 3: avg bytes (objects) per transaction",
        &["structure", "obj size", "Insert New", "Insert Mod", "Remove New", "Remove Mod"],
        &table,
    );
    println!(
        "\nPaper values for comparison (1M ops):\n\
         ctree    Insert New 56 (1.00)   Mod 127.6 (3.28)   Remove New 0      Mod 28.0 (0.50)\n\
         rbtree   Insert New 80 (1.00)   Mod 330.2 (5.13)   Remove New 0      Mod 202.8 (2.65)\n\
         btree    Insert New 65.9 (0.22) Mod 381.2 (1.47)   Remove New 0      Mod 268.3 (0.90)\n\
         skiplist Insert New 408 (1.00)  Mod 33.9 (2.50)    Remove New 0      Mod 16.9 (0.75)\n\
         rtree    Insert New 4502 (1.09) Mod 200.0 (5.05)   Remove New 184.1 (0.05) Mod 98.6 (2.52)\n\
         hashmap  Insert New 60.9 (1.00) Mod 331.1 (4.21)   Remove New 10.5 (1e-5)  Mod 254.3 (2.16)"
    );
}
