//! Figure 4: concurrent random overwrites — throughput versus thread count
//! and object size, comparing all six modes.
//!
//! Run: `cargo run --release -p pgl-bench --bin fig4_scalability`
//! (`--threads 1,2,4` selects thread counts.)

use std::sync::Arc;
use std::time::Instant;

use pgl_bench::{fmt_rate, make_store, print_table, AnyStore, Args, Mode};
use pgl_kv::store::Store;
use pgl_pmemobj::PMEMoid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIZES: &[u64] = &[64, 256, 1024, 4096];

fn bench(
    store: &Arc<AnyStore>,
    size: u64,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> f64 {
    // Pre-allocate a pool of objects per thread (threads never share an
    // object: the paper's concurrency rule, §3.4).
    let per_thread = 256usize;
    let mut all: Vec<Vec<PMEMoid>> = Vec::new();
    for _ in 0..threads {
        let mut oids = Vec::with_capacity(per_thread);
        for _ in 0..per_thread {
            let oid = store
                .txn(&mut |tx| {
                    let oid = tx.alloc(size, 1)?;
                    tx.write_bytes(oid, 0, &vec![0u8; size as usize])?;
                    Ok(oid)
                })
                .expect("prealloc");
            oids.push(oid);
        }
        all.push(oids);
    }

    let t = Instant::now();
    std::thread::scope(|s| {
        for (tid, oids) in all.iter().enumerate() {
            let store = store.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ tid as u64);
                let payload = vec![tid as u8; size as usize];
                for _ in 0..ops_per_thread {
                    let oid = oids[rng.gen_range(0..oids.len())];
                    store.txn(&mut |tx| tx.write_bytes(oid, 0, &payload)).expect("overwrite");
                }
            });
        }
    });
    let secs = t.elapsed().as_secs_f64();
    (threads * ops_per_thread) as f64 / secs
}

fn main() {
    let mut args = Args::parse();
    args.ops = args.ops.min(20_000);
    println!(
        "Figure 4 reproduction: concurrent overwrites, {} ops/thread, threads {:?}",
        args.ops, args.threads
    );

    let headers: Vec<String> = std::iter::once("threads".to_string())
        .chain(Mode::all().iter().map(|m| m.label().to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    for &size in SIZES {
        let mut rows = Vec::new();
        for &threads in &args.threads {
            let mut row = vec![threads.to_string()];
            for mode in Mode::all() {
                let store = Arc::new(make_store(mode, 512 << 20, args.latency));
                let rate = bench(&store, size, threads, args.ops, args.seed);
                row.push(fmt_rate(rate));
            }
            rows.push(row);
        }
        print_table(&format!("Figure 4: {size}B overwrites (throughput)"), &header_refs, &rows);
    }
    println!(
        "\nExpected shape (paper): pgl-MLP scales like pmemobj-R or better for \
         objects >64B (atomic-XOR parity, no lock contention); at 64B the \
         freeze-flag check costs pgl-MLP 6-25% versus pmemobj-R."
    );
}
