//! Ablation: the hybrid parity-update crossover (paper §3.5 / §4.1).
//!
//! The paper switches from atomic-XOR (lock-free, shared range-lock) to
//! vectorized XOR (exclusive range-lock) at 8 KB, where the per-word atomic
//! cost overtakes the locking cost. This sweep measures both strategies per
//! patch size and reports the measured crossover on this machine.
//!
//! Run: `cargo run --release -p pgl-bench --bin ablation_hybrid_parity`

use std::sync::Arc;
use std::time::Instant;

use pangolin::parity::ParityEngine;
use pgl_bench::{fmt_latency, print_table, Args};
use pgl_nvm::{DeviceConfig, NvmDevice};
use pgl_pmemobj::{Layout, PoolConfig, PoolIo};

const SIZES: &[usize] = &[64, 256, 1024, 4096, 8192, 16384, 65536];

fn bench_engine(io: &PoolIo, layout: &Layout, threshold: u64, size: usize, iters: usize) -> f64 {
    // threshold = 0 forces the vectorized (exclusive-lock) path for all
    // sizes; threshold = u64::MAX forces atomic XOR for all sizes.
    let engine = ParityEngine::new(*layout, 8 << 10, threshold.max(1));
    let base = layout.chunk_base(0, layout.zone.cm_chunks);
    let old = vec![0x55u8; size];
    let new = vec![0xAAu8; size];
    let t = Instant::now();
    for i in 0..iters {
        let off = base + ((i * 64) % 4096) as u64;
        engine.update(io, off, &old, &new).expect("patch");
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let args = Args::parse();
    println!("Ablation: atomic-XOR vs vectorized-XOR parity updates");
    let cfg = PoolConfig::bench(512 << 20);
    let layout = Layout::new(cfg).expect("layout");
    let dev = Arc::new(
        NvmDevice::new(cfg.size, DeviceConfig { latency: args.latency, ..DeviceConfig::fast() })
            .expect("device"),
    );
    let io = PoolIo::new(dev);

    let iters = 2000;
    let mut rows = Vec::new();
    let mut crossover: Option<usize> = None;
    for &size in SIZES {
        let atomic_ns = bench_engine(&io, &layout, u64::MAX, size, iters);
        let vector_ns = bench_engine(&io, &layout, 1, size, iters);
        if crossover.is_none() && vector_ns < atomic_ns {
            crossover = Some(size);
        }
        rows.push(vec![
            format!("{size}B"),
            fmt_latency(atomic_ns),
            fmt_latency(vector_ns),
            format!("{:.2}x", atomic_ns / vector_ns),
        ]);
    }
    print_table(
        "parity patch latency by strategy",
        &["patch", "atomic XOR", "vectorized XOR", "atomic/vector"],
        &rows,
    );
    match crossover {
        Some(s) => println!(
            "\nvectorized wins from ~{s} B on this machine; the paper measured \
             8 KB on Optane — Pangolin's default hybrid threshold."
        ),
        None => println!("\natomic XOR won at every size on this machine (no crossover seen)."),
    }
}
