//! Figure 9: multi-threaded transaction scaling — transactions/sec for a
//! mixed alloc/overwrite/free workload at 1–8 threads, on one shared pool.
//!
//! This is the end-to-end test of the concurrent transaction engine: every
//! thread holds a cheap shared pool handle, claims its own lane from the
//! lock-free registry, and commits under striped parity range-locks, so
//! transactions on disjoint objects never serialize. The `speedup` column
//! is throughput relative to the same mode at 1 thread (>1 means the
//! engine actually scales; flat means a global bottleneck crept back in).
//!
//! Run: `cargo run --release -p pgl-bench --bin fig9_scaling`
//! (`--threads 1,2,4,8 --ops N` to adjust; ops are per thread.)
//!
//! Objects are 4 KiB — page-sized, above the measured ~1 KiB hybrid
//! threshold, so commits take exclusive range-locks with vectorized
//! parity XOR; concurrency comes from the striped lock table (disjoint
//! objects rarely share a stripe). The second table drives the same
//! thread counts through the `ctree` key-value structure (one map per
//! thread, shared pool) — node-sized objects below the threshold, so
//! that table exercises the shared-lock atomic-XOR path too.

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pangolin::PglPool;
use pgl_bench::{fmt_rate, make_store, print_table, AnyStore, Args, Mode};
use pgl_kv::ctree::CTree;
use pgl_kv::lockfree::{LfHash, LfQueue, LfStack, LockedQueue, LockedStack};
use pgl_kv::maps::PersistentMap;
use pgl_kv::store::Store;
use pgl_kv::workload::{concurrent_mixed_phase, random_keys, raw_mix_op, RawOp};
use pgl_kv::HashMap as ChainedHash;
use pgl_pmemobj::PMEMoid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OBJ_SIZE: u64 = 4096;
const PER_THREAD_OBJECTS: usize = 128;

/// One thread's slice of the mixed workload: mostly overwrites of its own
/// objects, with an alloc+write and a free every eighth transaction.
fn worker(store: &AnyStore, oids: &mut Vec<PMEMoid>, ops: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let payload = vec![seed as u8; OBJ_SIZE as usize];
    for i in 0..ops {
        match raw_mix_op(i) {
            RawOp::Alloc => {
                let oid = store
                    .txn(&mut |tx| {
                        let oid = tx.alloc(OBJ_SIZE, 7)?;
                        tx.write_bytes(oid, 0, &payload)?;
                        Ok(oid)
                    })
                    .expect("alloc txn");
                oids.push(oid);
            }
            RawOp::Free => {
                if oids.len() > PER_THREAD_OBJECTS {
                    let victim = oids.swap_remove(rng.gen_range(0..oids.len()));
                    store.txn(&mut |tx| tx.free(victim)).expect("free txn");
                }
            }
            RawOp::Overwrite => {
                let oid = oids[rng.gen_range(0..oids.len())];
                store.txn(&mut |tx| tx.write_bytes(oid, 0, &payload)).expect("overwrite txn");
            }
        }
    }
}

/// Measures aggregate transactions/sec for `threads` workers on one pool.
fn bench(store: &Arc<AnyStore>, threads: usize, ops_per_thread: usize, seed: u64) -> f64 {
    // Pre-populate each thread's private object set (outside the timing).
    // Each thread is pinned to a parity shard (round-robin), so its
    // objects — and later its commits — stay inside one parity domain:
    // no stripe-lock sharing across threads and no cross-shard commits.
    let mut sets: Vec<Vec<PMEMoid>> = Vec::new();
    for t in 0..threads {
        store.bind_shard(t);
        let mut oids = Vec::with_capacity(PER_THREAD_OBJECTS * 2);
        for _ in 0..PER_THREAD_OBJECTS {
            let oid = store
                .txn(&mut |tx| {
                    let oid = tx.alloc(OBJ_SIZE, 7)?;
                    tx.write_bytes(oid, 0, &vec![t as u8; OBJ_SIZE as usize])?;
                    Ok(oid)
                })
                .expect("prealloc");
            oids.push(oid);
        }
        sets.push(oids);
    }

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (tid, oids) in sets.iter_mut().enumerate() {
            let store = store.clone();
            s.spawn(move || {
                store.bind_shard(tid);
                worker(&store, oids, ops_per_thread, seed ^ tid as u64)
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    (threads * ops_per_thread) as f64 / secs
}

// ---- locked vs lock-free structures (ploc detectable CAS) --------------

/// Runs `threads` workers of `ops` calls each and returns aggregate
/// ops/sec; the closure receives `(thread, op_index)`.
fn timed<F: Fn(usize, usize) + Sync>(threads: usize, ops: usize, f: F) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let f = &f;
            s.spawn(move || {
                for i in 0..ops {
                    f(t, i);
                }
            });
        }
    });
    (threads * ops) as f64 / t0.elapsed().as_secs_f64()
}

/// Per-operation recovery tag, unique across threads and ops.
fn lf_tag(t: usize, i: usize) -> u64 {
    ((t as u64 + 1) << 40) | (i as u64 + 1)
}

/// Per-thread disjoint key space for the hash benchmarks.
fn lf_key(t: usize, i: usize) -> u64 {
    ((t as u64 + 1) << 32) | i as u64
}

fn bench_locked_stack(store: &AnyStore, threads: usize, ops: usize) -> f64 {
    let s = LockedStack::create(store).expect("locked stack");
    timed(threads, ops, |t, i| {
        if i % 2 == 0 {
            s.push(store, lf_key(t, i)).expect("push");
        } else {
            s.try_pop(store).expect("pop");
        }
    })
}

fn bench_lf_stack(pool: &PglPool, threads: usize, ops: usize) -> f64 {
    let s = LfStack::create(pool).expect("lf stack");
    timed(threads, ops, |t, i| {
        if i % 2 == 0 {
            s.push(pool, lf_key(t, i), lf_tag(t, i)).expect("push");
        } else {
            s.try_pop(pool, lf_tag(t, i)).expect("pop");
        }
    })
}

fn bench_locked_queue(store: &AnyStore, threads: usize, ops: usize) -> f64 {
    let q = LockedQueue::create(store).expect("locked queue");
    timed(threads, ops, |t, i| {
        if i % 2 == 0 {
            q.enqueue(store, lf_key(t, i)).expect("enq");
        } else {
            q.try_dequeue(store).expect("deq");
        }
    })
}

fn bench_lf_queue(pool: &PglPool, threads: usize, ops: usize) -> f64 {
    let q = LfQueue::create(pool).expect("lf queue");
    timed(threads, ops, |t, i| {
        if i % 2 == 0 {
            q.enqueue(pool, lf_key(t, i), lf_tag(t, i)).expect("enq");
        } else {
            q.try_dequeue(pool, lf_tag(t, i)).expect("deq");
        }
    })
}

/// Insert/get/remove mix over per-thread disjoint keys: `i % 4` of
/// 0,1 → insert fresh key, 2 → get a key inserted two ops ago,
/// 3 → remove one. Never updates a live key from two threads, so the
/// comparison measures the linearizing-CAS path, not conflict retries.
fn bench_locked_hash(store: &AnyStore, threads: usize, ops: usize) -> f64 {
    let m = ChainedHash::create(store).expect("locked hash");
    let lock = Mutex::new(());
    timed(threads, ops, |t, i| {
        let _g = lock.lock().unwrap();
        match i % 4 {
            0 | 1 => {
                m.insert(store, lf_key(t, i), i as u64).expect("insert");
            }
            2 => {
                m.get(store, lf_key(t, i - 2)).expect("get");
            }
            _ => {
                m.remove(store, lf_key(t, i - 2)).expect("remove");
            }
        }
    })
}

fn bench_lf_hash(pool: &PglPool, threads: usize, ops: usize) -> f64 {
    // Pre-size so the run measures the CAS path, not table migration
    // (net load stays under 50% of capacity for this op mix).
    let cap = ((threads * ops) as u64).next_power_of_two().max(64);
    let h = LfHash::create(pool, cap).expect("lf hash");
    timed(threads, ops, |t, i| match i % 4 {
        0 | 1 => {
            h.insert(pool, lf_key(t, i), i as u64, lf_tag(t, i)).expect("insert");
        }
        2 => {
            h.get(pool, lf_key(t, i - 2)).expect("get");
        }
        _ => {
            h.remove(pool, lf_key(t, i - 2), lf_tag(t, i)).expect("remove");
        }
    })
}

fn main() {
    let mut args = Args::parse();
    if !args.ops_explicit {
        args.ops = 8_000; // trim the harness default; explicit --ops wins
    }
    if !args.threads_explicit {
        args.threads = vec![1, 2, 4, 8]; // Figure 9 sweeps to 8 by default
    }
    // Scaling is about the *device-bound* regime (the paper's machine has
    // 8 real cores; the simulator host may have 1, and only simulated NVM
    // stalls overlap across threads there). Double the charges so the
    // engine, not the host CPU, is what the sweep measures.
    if !args.latency.is_disabled() {
        args.latency = args.latency.scaled(2);
    }
    println!(
        "Figure 9 reproduction: mixed alloc/overwrite/free transactions \
         ({OBJ_SIZE} B objects), {} ops/thread, threads {:?}, 2x-scaled \
         latency model",
        args.ops, args.threads
    );

    // ---- raw transaction engine ----------------------------------------
    let modes = [Mode::Pmemobj, Mode::Pgl, Mode::PglMlpc];
    let mut rows = Vec::new();
    let mut base: Vec<f64> = vec![0.0; modes.len()];
    for &threads in &args.threads {
        let mut row = vec![threads.to_string()];
        for (m, &mode) in modes.iter().enumerate() {
            let store = Arc::new(make_store(mode, 512 << 20, args.latency));
            let rate = bench(&store, threads, args.ops, args.seed);
            if threads == args.threads[0] {
                base[m] = rate;
            }
            row.push(fmt_rate(rate));
            if mode == Mode::PglMlpc {
                row.push(format!("{:.2}x", rate / base[m].max(f64::MIN_POSITIVE)));
            }
        }
        rows.push(row);
    }
    let base_label = format!("speedup = pgl-MLPC vs {} thread(s)", args.threads[0]);
    print_table(
        &format!("Figure 9: transaction throughput vs threads ({base_label})"),
        &["threads", "pmemobj", "pgl", "pgl-MLPC", "speedup"],
        &rows,
    );

    // ---- key-value structures over the shared pool ---------------------
    let keys = random_keys(
        args.ops.min(4_000) * args.threads.iter().max().copied().unwrap_or(1),
        args.seed,
    );
    let mut rows = Vec::new();
    let mut kv_base = 0.0f64;
    for &threads in &args.threads {
        let store = make_store(Mode::PglMlpc, 512 << 20, args.latency);
        let slice = &keys[..args.ops.min(4_000) * threads];
        let stats = concurrent_mixed_phase::<CTree, _>(&store, slice, threads, 0.25, args.seed)
            .expect("kv phase");
        let rate = stats.ops_per_sec();
        if threads == args.threads[0] {
            kv_base = rate;
        }
        if let Some(pool) = store.pgl_pool() {
            assert!(pool.verify_parity().expect("verify"), "parity after concurrent kv run");
        }
        rows.push(vec![
            threads.to_string(),
            fmt_rate(rate),
            format!("{:.2}x", rate / kv_base.max(f64::MIN_POSITIVE)),
        ]);
    }
    print_table(
        &format!(
            "Figure 9 (kv): ctree mixed insert/remove on pgl-MLPC, one map per \
             thread (speedup vs {} thread(s))",
            args.threads[0]
        ),
        &["threads", "ops/s", "speedup"],
        &rows,
    );

    // ---- locked vs lock-free structures --------------------------------
    // Same pgl-MLPC pool for both columns; the locked variants serialize
    // every operation (simulated NVM stalls included) behind one mutex,
    // the lock-free ones go through the ploc detectable-CAS path where
    // disjoint words never wait on each other.
    let lf_threads: Vec<usize> =
        if args.threads_explicit { args.threads.clone() } else { vec![1, 4, 8, 16, 32] };
    let lf_ops = args.ops.min(2_000);
    println!(
        "\nLocked vs lock-free structures: {lf_ops} ops/thread, threads \
         {lf_threads:?} (ops are 50/50 push/pop, enq/deq; hash is 2:1:1 \
         insert/get/remove)"
    );
    struct LfRow {
        threads: usize,
        rates: [f64; 6], // [stack lk, stack lf, queue lk, queue lf, hash lk, hash lf]
    }
    let mut lf_rows: Vec<LfRow> = Vec::new();
    for &threads in &lf_threads {
        let store = make_store(Mode::PglMlpc, 512 << 20, args.latency);
        let pool = store.pgl_pool().expect("pgl store").clone();
        let rates = [
            bench_locked_stack(&store, threads, lf_ops),
            bench_lf_stack(&pool, threads, lf_ops),
            bench_locked_queue(&store, threads, lf_ops),
            bench_lf_queue(&pool, threads, lf_ops),
            bench_locked_hash(&store, threads, lf_ops),
            bench_lf_hash(&pool, threads, lf_ops),
        ];
        assert!(pool.verify_parity().expect("verify"), "parity after lock-free run");
        lf_rows.push(LfRow { threads, rates });
    }
    let rows: Vec<Vec<String>> = lf_rows
        .iter()
        .map(|r| {
            let mut row = vec![r.threads.to_string()];
            for s in 0..3 {
                let (lk, lf) = (r.rates[2 * s], r.rates[2 * s + 1]);
                row.push(fmt_rate(lk));
                row.push(fmt_rate(lf));
                row.push(format!("{:.2}x", lf / lk.max(f64::MIN_POSITIVE)));
            }
            row
        })
        .collect();
    print_table(
        "Locked vs lock-free on pgl-MLPC (x = lock-free / locked at the same thread count)",
        &[
            "threads", "stack-lk", "stack-lf", "x", "queue-lk", "queue-lf", "x", "hash-lk",
            "hash-lf", "x",
        ],
        &rows,
    );

    if let Some(path) = &args.json {
        let mut rows_json = Vec::new();
        for r in &lf_rows {
            rows_json.push(format!(
                "{{\"threads\":{},\"stack_locked\":{:.1},\"stack_lockfree\":{:.1},\
                 \"queue_locked\":{:.1},\"queue_lockfree\":{:.1},\
                 \"hash_locked\":{:.1},\"hash_lockfree\":{:.1}}}",
                r.threads, r.rates[0], r.rates[1], r.rates[2], r.rates[3], r.rates[4], r.rates[5]
            ));
        }
        let json = format!(
            "{{\"bench\":\"fig9_lockfree\",\"mode\":\"pgl-MLPC\",\
             \"ops_per_thread\":{lf_ops},\"unit\":\"ops_per_sec\",\"rows\":[{}]}}\n",
            rows_json.join(",")
        );
        let mut f = std::fs::File::create(path).expect("create --json file");
        f.write_all(json.as_bytes()).expect("write --json file");
        println!("\nwrote {path}");
    }

    println!(
        "\nExpected shape: throughput grows with threads until the simulated \
         device (or the host's cores) saturates; per-thread lanes and striped \
         parity locks keep disjoint-object transactions off each other's \
         critical paths. The paper's §3.5/§4.4 discussion predicts near-linear \
         scaling for >64 B objects. In the locked-vs-lock-free table the \
         mutex columns stay flat (one op at a time regardless of threads) \
         while the detectable-CAS columns keep scaling."
    );
}
