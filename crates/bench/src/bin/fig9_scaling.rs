//! Figure 9: multi-threaded transaction scaling — transactions/sec for a
//! mixed alloc/overwrite/free workload at 1–8 threads, on one shared pool.
//!
//! This is the end-to-end test of the concurrent transaction engine: every
//! thread holds a cheap shared pool handle, claims its own lane from the
//! lock-free registry, and commits under striped parity range-locks, so
//! transactions on disjoint objects never serialize. The `speedup` column
//! is throughput relative to the same mode at 1 thread (>1 means the
//! engine actually scales; flat means a global bottleneck crept back in).
//!
//! Run: `cargo run --release -p pgl-bench --bin fig9_scaling`
//! (`--threads 1,2,4,8 --ops N` to adjust; ops are per thread.)
//!
//! Objects are 4 KiB — page-sized, above the measured ~1 KiB hybrid
//! threshold, so commits take exclusive range-locks with vectorized
//! parity XOR; concurrency comes from the striped lock table (disjoint
//! objects rarely share a stripe). The second table drives the same
//! thread counts through the `ctree` key-value structure (one map per
//! thread, shared pool) — node-sized objects below the threshold, so
//! that table exercises the shared-lock atomic-XOR path too.

use std::sync::Arc;
use std::time::Instant;

use pgl_bench::{fmt_rate, make_store, print_table, AnyStore, Args, Mode};
use pgl_kv::ctree::CTree;
use pgl_kv::store::Store;
use pgl_kv::workload::{concurrent_mixed_phase, random_keys, raw_mix_op, RawOp};
use pgl_pmemobj::PMEMoid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OBJ_SIZE: u64 = 4096;
const PER_THREAD_OBJECTS: usize = 128;

/// One thread's slice of the mixed workload: mostly overwrites of its own
/// objects, with an alloc+write and a free every eighth transaction.
fn worker(store: &AnyStore, oids: &mut Vec<PMEMoid>, ops: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let payload = vec![seed as u8; OBJ_SIZE as usize];
    for i in 0..ops {
        match raw_mix_op(i) {
            RawOp::Alloc => {
                let oid = store
                    .txn(&mut |tx| {
                        let oid = tx.alloc(OBJ_SIZE, 7)?;
                        tx.write_bytes(oid, 0, &payload)?;
                        Ok(oid)
                    })
                    .expect("alloc txn");
                oids.push(oid);
            }
            RawOp::Free => {
                if oids.len() > PER_THREAD_OBJECTS {
                    let victim = oids.swap_remove(rng.gen_range(0..oids.len()));
                    store.txn(&mut |tx| tx.free(victim)).expect("free txn");
                }
            }
            RawOp::Overwrite => {
                let oid = oids[rng.gen_range(0..oids.len())];
                store.txn(&mut |tx| tx.write_bytes(oid, 0, &payload)).expect("overwrite txn");
            }
        }
    }
}

/// Measures aggregate transactions/sec for `threads` workers on one pool.
fn bench(store: &Arc<AnyStore>, threads: usize, ops_per_thread: usize, seed: u64) -> f64 {
    // Pre-populate each thread's private object set (outside the timing).
    let mut sets: Vec<Vec<PMEMoid>> = Vec::new();
    for t in 0..threads {
        let mut oids = Vec::with_capacity(PER_THREAD_OBJECTS * 2);
        for _ in 0..PER_THREAD_OBJECTS {
            let oid = store
                .txn(&mut |tx| {
                    let oid = tx.alloc(OBJ_SIZE, 7)?;
                    tx.write_bytes(oid, 0, &vec![t as u8; OBJ_SIZE as usize])?;
                    Ok(oid)
                })
                .expect("prealloc");
            oids.push(oid);
        }
        sets.push(oids);
    }

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (tid, oids) in sets.iter_mut().enumerate() {
            let store = store.clone();
            s.spawn(move || worker(&store, oids, ops_per_thread, seed ^ tid as u64));
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    (threads * ops_per_thread) as f64 / secs
}

fn main() {
    let mut args = Args::parse();
    if !args.ops_explicit {
        args.ops = 8_000; // trim the harness default; explicit --ops wins
    }
    if !args.threads_explicit {
        args.threads = vec![1, 2, 4, 8]; // Figure 9 sweeps to 8 by default
    }
    // Scaling is about the *device-bound* regime (the paper's machine has
    // 8 real cores; the simulator host may have 1, and only simulated NVM
    // stalls overlap across threads there). Double the charges so the
    // engine, not the host CPU, is what the sweep measures.
    if !args.latency.is_disabled() {
        args.latency = args.latency.scaled(2);
    }
    println!(
        "Figure 9 reproduction: mixed alloc/overwrite/free transactions \
         ({OBJ_SIZE} B objects), {} ops/thread, threads {:?}, 2x-scaled \
         latency model",
        args.ops, args.threads
    );

    // ---- raw transaction engine ----------------------------------------
    let modes = [Mode::Pmemobj, Mode::Pgl, Mode::PglMlpc];
    let mut rows = Vec::new();
    let mut base: Vec<f64> = vec![0.0; modes.len()];
    for &threads in &args.threads {
        let mut row = vec![threads.to_string()];
        for (m, &mode) in modes.iter().enumerate() {
            let store = Arc::new(make_store(mode, 512 << 20, args.latency));
            let rate = bench(&store, threads, args.ops, args.seed);
            if threads == args.threads[0] {
                base[m] = rate;
            }
            row.push(fmt_rate(rate));
            if mode == Mode::PglMlpc {
                row.push(format!("{:.2}x", rate / base[m].max(f64::MIN_POSITIVE)));
            }
        }
        rows.push(row);
    }
    let base_label = format!("speedup = pgl-MLPC vs {} thread(s)", args.threads[0]);
    print_table(
        &format!("Figure 9: transaction throughput vs threads ({base_label})"),
        &["threads", "pmemobj", "pgl", "pgl-MLPC", "speedup"],
        &rows,
    );

    // ---- key-value structures over the shared pool ---------------------
    let keys = random_keys(
        args.ops.min(4_000) * args.threads.iter().max().copied().unwrap_or(1),
        args.seed,
    );
    let mut rows = Vec::new();
    let mut kv_base = 0.0f64;
    for &threads in &args.threads {
        let store = make_store(Mode::PglMlpc, 512 << 20, args.latency);
        let slice = &keys[..args.ops.min(4_000) * threads];
        let stats = concurrent_mixed_phase::<CTree, _>(&store, slice, threads, 0.25, args.seed)
            .expect("kv phase");
        let rate = stats.ops_per_sec();
        if threads == args.threads[0] {
            kv_base = rate;
        }
        if let Some(pool) = store.pgl_pool() {
            assert!(pool.verify_parity().expect("verify"), "parity after concurrent kv run");
        }
        rows.push(vec![
            threads.to_string(),
            fmt_rate(rate),
            format!("{:.2}x", rate / kv_base.max(f64::MIN_POSITIVE)),
        ]);
    }
    print_table(
        &format!(
            "Figure 9 (kv): ctree mixed insert/remove on pgl-MLPC, one map per \
             thread (speedup vs {} thread(s))",
            args.threads[0]
        ),
        &["threads", "ops/s", "speedup"],
        &rows,
    );

    println!(
        "\nExpected shape: throughput grows with threads until the simulated \
         device (or the host's cores) saturates; per-thread lanes and striped \
         parity locks keep disjoint-object transactions off each other's \
         critical paths. The paper's §3.5/§4.4 discussion predicts near-linear \
         scaling for >64 B objects."
    );
}
