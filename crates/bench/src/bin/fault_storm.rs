//! Degraded-mode fault-storm benchmark: commit latency under a seeded
//! [`FaultStorm`] with background self-healing, plus acked-write survival
//! accounting across close → reopen.
//!
//! Two parity shards: writer threads overwrite the *hot* shard's objects
//! while the storm fires poisons and scribbles at the *cold* shard's zone
//! (cold data models media decay at rest; see the soak test for why a
//! scribble racing its victim's own overwrite is out of model). Reported:
//!
//! * p50/p99 commit latency with and without the storm + scrubbers;
//! * the storm report vs the device's injection counters;
//! * self-healing totals (scrub repairs, quarantined zones);
//! * acked-write survival: every committed overwrite reads back verified
//!   after the storm **and** after reopen, or its zone is quarantined and
//!   the loss is typed — never silent.
//!
//! Run: `cargo run --release -p pgl-bench --bin fault_storm`
//! Options: `--ops N` overwrites per phase, `--pool-mb N`, `--seed N`,
//! `--no-latency`, `--json PATH`.
//!
//! [`FaultStorm`]: pangolin::inject::FaultStorm

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pangolin::inject::{FaultPlan, FaultStorm};
use pangolin::{PMEMoid, PglError, PglPool};
use pgl_bench::{print_table, Args};
use pgl_nvm::{DeviceConfig, NvmDevice};

const OBJ_SIZE: u64 = 1024;
const OBJS_PER_SHARD: usize = 64;
const SHARDS: usize = 2;

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// One phase: `threads` writers round-robin overwriting disjoint slices of
/// `hot`, `ops` commits total. Returns per-commit latencies (µs) and the
/// last acked fill per object.
fn write_phase(
    pool: &PglPool,
    hot: &[PMEMoid],
    ops: usize,
    threads: usize,
) -> (Vec<f64>, HashMap<u64, u8>) {
    let per = ops / threads;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let pool = pool.clone();
            let slice: Vec<PMEMoid> = hot.iter().skip(t).step_by(threads).copied().collect();
            std::thread::spawn(move || {
                pool.bind_thread_to_shard(0);
                let mut lat = Vec::with_capacity(per);
                let mut acked = HashMap::new();
                for i in 0..per {
                    let oid = slice[i % slice.len()];
                    let fill = (i % 127) as u8 | 0x80;
                    let start = Instant::now();
                    pool.tx(|tx| tx.write(oid, 0, &[fill; OBJ_SIZE as usize]))
                        .expect("hot-shard commit must succeed");
                    lat.push(start.elapsed().as_nanos() as f64 / 1000.0);
                    acked.insert(oid.off, fill);
                }
                pool.unbind_thread_from_shard();
                (lat, acked)
            })
        })
        .collect();
    let mut lat = Vec::new();
    let mut acked = HashMap::new();
    for h in handles {
        let (l, a) = h.join().expect("writer thread");
        lat.extend(l);
        acked.extend(a);
    }
    lat.sort_by(|a, b| a.partial_cmp(b).expect("ordered"));
    (lat, acked)
}

/// Survival accounting: per acked object — verified read-back, typed
/// quarantined loss, or (fatal) silent loss / untyped failure.
fn survival(pool: &PglPool, expect: &HashMap<u64, u8>) -> (u64, u64) {
    let q = pool.quarantined_zones();
    let (mut verified, mut fenced) = (0u64, 0u64);
    for (&off, &fill) in expect {
        let oid = PMEMoid::new(pool.uuid(), off);
        match pool.read_verified(oid) {
            Ok(data) => {
                assert_eq!(data, vec![fill; OBJ_SIZE as usize], "acked write lost at {off:#x}");
                verified += 1;
            }
            Err(PglError::Unrecoverable { zone, .. }) => {
                assert!(q.contains(&zone), "unrecoverable {off:#x} outside quarantine");
                fenced += 1;
            }
            Err(e) => panic!("untyped failure at {off:#x}: {e}"),
        }
    }
    (verified, fenced)
}

fn main() {
    let args = Args::parse();
    let ops = if args.ops_explicit { args.ops } else { 20_000 };
    println!("fault-storm soak: degraded-mode latency and self-healing");

    let pool_bytes = args.pool_bytes.min(64 << 20);
    let dev = Arc::new(
        NvmDevice::new(pool_bytes, DeviceConfig { latency: args.latency, ..DeviceConfig::fast() })
            .expect("device"),
    );
    let pool = PglPool::options()
        .size(pool_bytes)
        .zone_size(2 << 20)
        .shards(SHARDS)
        .background_scrub(true)
        .scrub_interval_ms(10)
        .create(Arc::clone(&dev))
        .expect("create");

    // Populate: hot objects on shard 0 (written throughout), cold on
    // shard 1 (the storm's target, written once here).
    let mut sets: Vec<Vec<PMEMoid>> = Vec::new();
    for shard in 0..SHARDS {
        pool.bind_thread_to_shard(shard);
        sets.push(
            (0..OBJS_PER_SHARD)
                .map(|i| {
                    pool.tx(|tx| {
                        let o = tx.alloc(OBJ_SIZE, (shard * OBJS_PER_SHARD + i) as u32 + 1)?;
                        tx.write(o, 0, &[0x42; OBJ_SIZE as usize])?;
                        Ok(o)
                    })
                    .expect("populate")
                })
                .collect(),
        );
    }
    pool.unbind_thread_from_shard();
    let (hot, cold) = (sets[0].clone(), sets[1].clone());
    let (storm_zone, _) = pool.layout().zone_and_rel(cold[0].off).expect("cold zone");

    // Phase 1: calm baseline.
    let (calm, _) = write_phase(&pool, &hot, ops, 2);

    // Phase 2: same traffic under the storm + concurrent self-healing.
    let storm = FaultStorm::launch(
        &pool,
        FaultPlan {
            seed: args.seed,
            max_events: 0,
            mean_gap: Duration::from_micros(500),
            poison_per_mille: 250,
            zones: Some(vec![storm_zone]),
            ..FaultPlan::default()
        },
    );
    let (stormy, acked) = write_phase(&pool, &hot, ops, 2);
    let report = storm.stop();
    let stats = dev.stats();
    assert_eq!(stats.poison_injected, report.poisons, "poison counter matches report");

    // Drain the remaining damage, then the invariant must hold outside
    // quarantine and every acked write must be accounted for.
    loop {
        let r = pool.scrub_now().expect("scrub");
        if r.objects_repaired == 0 && r.pages_repaired == 0 {
            break;
        }
    }
    assert_eq!(
        pool.verify_parity_detailed().expect("verify"),
        vec![],
        "parity dirty outside quarantined zones"
    );
    let cold_expect: HashMap<u64, u8> = cold.iter().map(|o| (o.off, 0x42)).collect();
    let (hot_ok, hot_fenced) = survival(&pool, &acked);
    let (cold_ok, cold_fenced) = survival(&pool, &cold_expect);
    assert_eq!(hot_fenced, 0, "storm-free shard must never lose an acked write");
    let scrub_repairs = dev.stats().total_scrub_repairs();
    let quarantined = pool.quarantined_zones();

    // Close → reopen: quarantine and every acked write survive.
    drop(pool);
    let start = Instant::now();
    let pool = PglPool::options().shards(SHARDS).open(Arc::clone(&dev)).expect("reopen");
    let reopen_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(pool.quarantined_zones(), quarantined, "quarantine survived reopen");
    let (hot_ok2, _) = survival(&pool, &acked);
    let (cold_ok2, cold_fenced2) = survival(&pool, &cold_expect);
    assert_eq!(hot_ok2, hot_ok, "hot survival changed across reopen");
    assert_eq!((cold_ok2, cold_fenced2), (cold_ok, cold_fenced), "cold survival changed");

    let rows = vec![
        vec![
            "calm".into(),
            format!("{:.1}", percentile(&calm, 0.50)),
            format!("{:.1}", percentile(&calm, 0.99)),
            format!("{ops} commits, 2 writers"),
        ],
        vec![
            "storm".into(),
            format!("{:.1}", percentile(&stormy, 0.50)),
            format!("{:.1}", percentile(&stormy, 0.99)),
            format!("{} poisons + {} scribbles injected", report.poisons, report.scribbles),
        ],
    ];
    print_table("commit latency (us)", &["phase", "p50", "p99", "notes"], &rows);
    println!(
        "self-healing: {scrub_repairs} background scrub repairs, {} zone(s) quarantined {:?}",
        quarantined.len(),
        quarantined
    );
    println!(
        "acked-write survival: hot {hot_ok}/{} verified, cold {cold_ok} verified + \
         {cold_fenced} typed-fenced of {}; reopen {reopen_ms:.1} ms",
        acked.len(),
        cold_expect.len()
    );

    if let Some(path) = &args.json {
        let json = format!(
            "{{\"bench\":\"fault_storm\",\"mode\":\"pgl-MLPC\",\"unit\":\"us\",\
             \"ops\":{ops},\"seed\":{seed},\
             \"calm_p50\":{:.3},\"calm_p99\":{:.3},\
             \"storm_p50\":{:.3},\"storm_p99\":{:.3},\
             \"poisons\":{},\"scribbles\":{},\"skipped\":{},\
             \"scrub_repairs\":{scrub_repairs},\"quarantined_zones\":{},\
             \"hot_acked\":{},\"hot_verified\":{hot_ok},\
             \"cold_verified\":{cold_ok},\"cold_fenced\":{cold_fenced},\
             \"acked_lost\":0,\"reopen_ms\":{reopen_ms:.3}}}\n",
            percentile(&calm, 0.50),
            percentile(&calm, 0.99),
            percentile(&stormy, 0.50),
            percentile(&stormy, 0.99),
            report.poisons,
            report.scribbles,
            report.skipped,
            quarantined.len(),
            acked.len(),
            seed = args.seed,
        );
        std::fs::write(path, json).expect("write --json file");
        println!("wrote {path}");
    }
}
