//! Figure 6: the cost of checksum-verification policies — default
//! (verify-at-open), scrub every N transactions, and conservative
//! (verify every access) — on the insert workload of each structure.
//!
//! Run: `cargo run --release -p pgl-bench --bin fig6_checksum_policy`

use pangolin::CsumPolicy;
use pgl_bench::{fmt_rate, make_store_with_policy, print_table, AnyStore, Args, Mode};
use pgl_kv::maps::PersistentMap;
use pgl_kv::workload::{insert_phase, random_keys};
use pgl_kv::{BTree, CTree, HashMap, RTree, RbTree, SkipList};

fn run_policy<M: PersistentMap>(store: &AnyStore, keys: &[u64]) -> f64 {
    let map = M::create(store).expect("create");
    let stats = insert_phase(&map, store, keys).expect("insert");
    stats.ops_per_sec()
}

fn main() {
    let args = Args::parse();
    // Scale the paper's "Scrub 100K"/"Scrub 50K" intervals to the op count
    // (at 1M ops they are exactly the paper's).
    let scrub_hi = (args.ops / 10).max(1) as u64;
    let scrub_lo = (args.ops / 20).max(1) as u64;
    let policies: Vec<(String, CsumPolicy)> = vec![
        ("default".into(), CsumPolicy::Default),
        (format!("scrub-{scrub_hi}"), CsumPolicy::ScrubEvery(scrub_hi)),
        (format!("scrub-{scrub_lo}"), CsumPolicy::ScrubEvery(scrub_lo)),
        ("conservative".into(), CsumPolicy::Conservative),
    ];
    println!("Figure 6 reproduction: {} inserts under pgl-MLPC checksum policies", args.ops);

    let keys = random_keys(args.ops, args.seed);
    let headers: Vec<String> = std::iter::once("structure".to_string())
        .chain(policies.iter().map(|(n, _)| n.clone()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let run = |name: &str, mult: usize, f: &dyn Fn(&AnyStore, &[u64]) -> f64| -> Vec<String> {
        let mut row = vec![name.to_string()];
        for (_, policy) in &policies {
            let store = make_store_with_policy(
                Mode::PglMlpc,
                args.pool_bytes * mult,
                args.latency,
                *policy,
            );
            row.push(fmt_rate(f(&store, &keys)));
        }
        row
    };
    rows.push(run("ctree", 1, &run_policy::<CTree>));
    rows.push(run("rbtree", 1, &run_policy::<RbTree>));
    rows.push(run("btree", 1, &run_policy::<BTree>));
    rows.push(run("skiplist", 1, &run_policy::<SkipList>));
    rows.push(run("rtree", 2, &run_policy::<RTree>));
    rows.push(run("hashmap", 1, &run_policy::<HashMap>));

    print_table("Figure 6: insert throughput by verification policy", &header_refs, &rows);
    println!(
        "\nExpected shape (paper): conservative mode is cheap for small-object \
         structures (ctree, rbtree, hashmap) and expensive for large-object \
         ones (btree, skiplist, rtree); scrubbing sits between, trading \
         throughput for a bounded vulnerability window (Table 4)."
    );
}
