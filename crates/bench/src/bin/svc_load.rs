//! `svc_load`: service-level load generator for the `pgl-server` KV
//! service.
//!
//! Simulates thousands of zipfian closed-loop clients multiplexed over a
//! smaller number of real TCP connections, runs the identical load twice —
//! once against a group-committing service and once with grouping disabled
//! (`batch_max = 1`) — and reports per-request p50/p99 latency, throughput,
//! and persistence fences per write transaction from the device's own
//! counters. The fence ratio is the paper-style headline: group commit
//! amortizes one redo-log persist + one commit fence + one parity-patch
//! window across each batch.
//!
//! ```text
//! svc_load [--clients N] [--conns N] [--ops N] [--keys N] [--theta F]
//!          [--shards N] [--batch N] [--read-heavy] [--no-latency]
//!          [--seed N] [--json PATH]
//! ```

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pangolin::{PglConfig, PglMode, PglPool};
use pgl_bench::{fmt_latency, fmt_rate, print_table};
use pgl_kv::store::PglStore;
use pgl_kv::workload::{OpMix, Workload, WorkloadOp};
use pgl_nvm::{DeviceConfig, LatencyModel, NvmDevice, PersistenceMode, StatsSnapshot};
use pgl_server::proto::{Request, Response};
use pgl_server::{Client, KvServer, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Clone)]
struct Opts {
    clients: usize,
    conns: usize,
    ops: usize,
    keys: usize,
    theta: f64,
    shards: usize,
    batch: usize,
    read_heavy: bool,
    latency: LatencyModel,
    seed: u64,
    json: Option<String>,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            clients: 256,
            conns: 16,
            ops: 40_000,
            keys: 10_000,
            theta: 0.99,
            shards: 4,
            batch: 64,
            read_heavy: false,
            latency: LatencyModel::optane(),
            seed: 0x5e7_10ad,
            json: None,
        }
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val =
            |what: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a {what} argument"));
        match flag.as_str() {
            "--clients" => opts.clients = val("count").parse().expect("--clients N"),
            "--conns" => opts.conns = val("count").parse().expect("--conns N"),
            "--ops" => opts.ops = val("count").parse().expect("--ops N"),
            "--keys" => opts.keys = val("count").parse().expect("--keys N"),
            "--theta" => opts.theta = val("skew").parse().expect("--theta F"),
            "--shards" => opts.shards = val("count").parse().expect("--shards N"),
            "--batch" => opts.batch = val("count").parse().expect("--batch N"),
            "--read-heavy" => opts.read_heavy = true,
            "--no-latency" => opts.latency = LatencyModel::disabled(),
            "--seed" => opts.seed = val("seed").parse().expect("--seed N"),
            "--json" => opts.json = Some(val("path")),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: svc_load [--clients N] [--conns N] [--ops N] [--keys N] [--theta F] \
                     [--shards N] [--batch N] [--read-heavy] [--no-latency] [--seed N] \
                     [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    opts.clients = opts.clients.max(1);
    opts.conns = opts.conns.clamp(1, opts.clients);
    opts
}

/// One pass's measurements.
struct PassResult {
    label: &'static str,
    elapsed_s: f64,
    ops_done: u64,
    write_acks: u64,
    busy: u64,
    p50_ns: u64,
    p99_ns: u64,
    stats: StatsSnapshot,
}

impl PassResult {
    fn throughput(&self) -> f64 {
        self.ops_done as f64 / self.elapsed_s
    }

    fn fences_per_write(&self) -> f64 {
        self.stats.fences as f64 / (self.write_acks.max(1)) as f64
    }

    fn group_factor(&self) -> f64 {
        if self.stats.group_commits == 0 {
            1.0
        } else {
            self.stats.group_txns as f64 / self.stats.group_commits as f64
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs the full client load against one service configuration.
fn run_pass(opts: &Opts, batch_max: usize, label: &'static str) -> PassResult {
    let pool_bytes = 256 << 20;
    let dev_cfg = DeviceConfig { mode: PersistenceMode::Fast, latency: opts.latency };
    let dev = Arc::new(NvmDevice::new(pool_bytes, dev_cfg).expect("device"));
    let cfg = PglConfig::bench(pool_bytes, PglMode::Mlpc);
    let store = PglStore::new(PglPool::create(dev.clone(), cfg).expect("pool"));
    let svc_cfg = ServiceConfig {
        shards: opts.shards,
        queue_depth: 4096,
        batch_max,
        max_inflight: 1 << 16,
        ..ServiceConfig::default()
    };
    let server = KvServer::start(store, svc_cfg, "127.0.0.1:0").expect("server");
    let addr = server.local_addr();

    let mix = if opts.read_heavy { OpMix::read_heavy() } else { OpMix::write_heavy() };
    let workload = Arc::new(Workload::zipfian(opts.keys, opts.theta, mix, opts.seed));

    // `clients` logical closed-loop clients multiplexed over `conns` real
    // connections: each round every logical client on a connection
    // contributes one op, forming one frame — the wire-level batching
    // that feeds the server's group-commit window.
    let per_conn = opts.clients.div_ceil(opts.conns);
    let rounds = opts.ops.div_ceil(opts.clients).max(1);
    let write_acks = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let ops_done = AtomicU64::new(0);
    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(opts.ops));

    let before = dev.stats();
    let started = Instant::now();
    std::thread::scope(|s| {
        for conn_id in 0..opts.conns {
            let workload = Arc::clone(&workload);
            let (write_acks, busy, ops_done, samples) = (&write_acks, &busy, &ops_done, &samples);
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut rngs: Vec<StdRng> = (0..per_conn)
                    .map(|c| StdRng::seed_from_u64(opts.seed ^ (conn_id * per_conn + c) as u64))
                    .collect();
                let mut local_samples = Vec::with_capacity(rounds * per_conn);
                for _ in 0..rounds {
                    let reqs: Vec<Request> = rngs
                        .iter_mut()
                        .map(|rng| match workload.next_op(rng) {
                            WorkloadOp::Get(key) => Request::Get { key },
                            WorkloadOp::Put(key, value) => Request::Put { key, value },
                            WorkloadOp::Del(key) => Request::Del { key },
                            WorkloadOp::Scan(start, limit) => Request::Scan { start, limit },
                        })
                        .collect();
                    let t0 = Instant::now();
                    let resps = client.call(&reqs).expect("call");
                    let rtt = t0.elapsed().as_nanos() as u64;
                    let mut writes = 0u64;
                    let mut shed = 0u64;
                    for (req, resp) in reqs.iter().zip(&resps) {
                        match resp {
                            Response::Busy => shed += 1,
                            Response::Error(e) => panic!("server error: {e}"),
                            _ => {
                                if matches!(req, Request::Put { .. } | Request::Del { .. }) {
                                    writes += 1;
                                }
                            }
                        }
                    }
                    write_acks.fetch_add(writes, Ordering::Relaxed);
                    busy.fetch_add(shed, Ordering::Relaxed);
                    ops_done.fetch_add(reqs.len() as u64, Ordering::Relaxed);
                    // Closed loop: every op in the frame waited the RTT.
                    local_samples.extend(std::iter::repeat_n(rtt, reqs.len()));
                }
                samples.lock().unwrap().extend(local_samples);
            });
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let stats = dev.stats().delta_since(&before);
    server.shutdown();

    let mut samples = samples.into_inner().unwrap();
    samples.sort_unstable();
    PassResult {
        label,
        elapsed_s,
        ops_done: ops_done.into_inner(),
        write_acks: write_acks.into_inner(),
        busy: busy.into_inner(),
        p50_ns: percentile(&samples, 0.50),
        p99_ns: percentile(&samples, 0.99),
        stats,
    }
}

fn json_pass(p: &PassResult) -> String {
    format!(
        "{{\"throughput_ops_per_s\":{:.1},\"p50_ns\":{},\"p99_ns\":{},\"ops\":{},\
         \"write_acks\":{},\"busy\":{},\"fences\":{},\"fences_per_write\":{:.3},\
         \"group_commits\":{},\"group_txns\":{},\"group_factor\":{:.2}}}",
        p.throughput(),
        p.p50_ns,
        p.p99_ns,
        p.ops_done,
        p.write_acks,
        p.busy,
        p.stats.fences,
        p.fences_per_write(),
        p.stats.group_commits,
        p.stats.group_txns,
        p.group_factor(),
    )
}

fn main() {
    let opts = parse_opts();
    println!(
        "svc_load: {} clients over {} conns, {} ops, {} keys (theta {}), {} shards, batch {}",
        opts.clients, opts.conns, opts.ops, opts.keys, opts.theta, opts.shards, opts.batch
    );

    let grouped = run_pass(&opts, opts.batch, "group commit");
    let unbatched = run_pass(&opts, 1, "per-txn commit");
    let reduction = unbatched.fences_per_write() / grouped.fences_per_write().max(1e-9);

    let rows: Vec<Vec<String>> = [&grouped, &unbatched]
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                fmt_rate(p.throughput()),
                fmt_latency(p.p50_ns as f64),
                fmt_latency(p.p99_ns as f64),
                format!("{}", p.stats.fences),
                format!("{:.2}", p.fences_per_write()),
                format!("{:.1}", p.group_factor()),
                format!("{}", p.busy),
            ]
        })
        .collect();
    print_table(
        "KV service: group commit vs per-txn commit",
        &["mode", "throughput", "p50", "p99", "fences", "fences/write", "batch-factor", "busy"],
        &rows,
    );
    println!("\nfence reduction (per write txn): {reduction:.2}x");

    if let Some(path) = &opts.json {
        let body = format!(
            "{{\"bench\":\"kv_service\",\"clients\":{},\"conns\":{},\"ops\":{},\"keys\":{},\
             \"theta\":{},\"shards\":{},\"batch_max\":{},\"read_heavy\":{},\
             \"grouped\":{},\"unbatched\":{},\"fence_reduction\":{:.3}}}\n",
            opts.clients,
            opts.conns,
            opts.ops,
            opts.keys,
            opts.theta,
            opts.shards,
            opts.batch,
            opts.read_heavy,
            json_pass(&grouped),
            json_pass(&unbatched),
            reduction,
        );
        let mut f = std::fs::File::create(path).expect("create json output");
        f.write_all(body.as_bytes()).expect("write json output");
        println!("wrote {path}");
    }
}
