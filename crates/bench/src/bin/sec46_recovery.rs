//! §4.6: error detection and correction — inject media errors and
//! scribbles, verify online repair, and measure page-repair latency
//! (the paper reports ~180 µs per page at 100 GB/1 GB-parity scale) —
//! plus the **sharded restart-recovery sweep**: crash-recovery wall time
//! at `open` across a shard-count × pool-size grid (parity shards
//! recover on parallel workers, so more shards ⇒ faster restart).
//!
//! Run: `cargo run --release -p pgl-bench --bin sec46_recovery`
//! Options: `--shards a,b,c` picks the shard counts swept, `--pool-mb N`
//! the largest pool size, `--json PATH` writes the recovery grid as JSON.

use std::sync::Arc;
use std::time::Instant;

use pangolin::{inject, PglConfig, PglError, PglMode, PglPool};
use pgl_bench::{print_table, Args};
use pgl_nvm::{DeviceConfig, NvmDevice, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    println!("§4.6 reproduction: error injection and online recovery");
    let dev = Arc::new(
        NvmDevice::new(
            args.pool_bytes,
            DeviceConfig { latency: args.latency, ..DeviceConfig::fast() },
        )
        .expect("device"),
    );
    let pool =
        PglPool::create(dev, PglConfig::bench(args.pool_bytes, PglMode::Mlpc)).expect("create");

    // Populate with objects of assorted sizes.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut oids = Vec::new();
    for i in 0..500u64 {
        let size = [64u64, 256, 1024, 4096][i as usize % 4];
        let oid = pool
            .tx(|tx| {
                let oid = tx.alloc(size, 1)?;
                tx.write(oid, 0, &vec![(i % 251) as u8; size as usize])?;
                Ok(oid)
            })
            .expect("populate");
        oids.push((oid, size, (i % 251) as u8));
    }

    // Experiment 1: media errors (poisoned pages) repaired online.
    let trials = 100;
    let mut repair_ns = Vec::with_capacity(trials);
    for t in 0..trials {
        let (oid, size, fill) = oids[rng.gen_range(0..oids.len())];
        inject::poison_object_page(&pool, oid).expect("poison");
        let start = Instant::now();
        let data = pool.read_verified(oid).expect("online recovery");
        repair_ns.push(start.elapsed().as_nanos() as f64);
        assert_eq!(data, vec![fill; size as usize], "trial {t} content");
    }
    repair_ns.sort_by(|a, b| a.partial_cmp(b).expect("ordered"));
    let mean = repair_ns.iter().sum::<f64>() / repair_ns.len() as f64;
    let p50 = repair_ns[repair_ns.len() / 2];
    let p99 = repair_ns[repair_ns.len() * 99 / 100];

    // Experiment 2: scribbles detected by checksums and repaired.
    let mut scribble_ok = 0;
    for _ in 0..trials {
        let (oid, size, fill) = oids[rng.gen_range(0..oids.len())];
        let off = rng.gen_range(0..size / 2);
        let len = rng.gen_range(1..=(size - off).min(512)) as usize;
        inject::scribble_object(&pool, oid, off, len, 0xEE).expect("scribble");
        let data = pool.read_verified(oid).expect("scribble recovery");
        if data == vec![fill; size as usize] {
            scribble_ok += 1;
        }
    }

    // Experiment 3: canary catches a buffer overrun before commit.
    let (oid, size, fill) = oids[0];
    let canary_err = pool.tx(|tx| {
        tx.write(oid, 0, &vec![0u8; size as usize])?;
        tx.ubuf_mut(oid)?.smash_back_canary(); // simulated overrun
        Ok(())
    });
    let canary_caught = matches!(canary_err, Err(PglError::CanaryMismatch { .. }));
    let post = pool.read_verified(oid).expect("read after abort");
    let canary_protected = post == vec![fill; size as usize];

    // Experiment 4: metadata (chunk metadata) scribble repaired by scrub.
    let layout = *pool.layout();
    let (z, c, _) = layout.chunk_of(oids[10].0.off - 16).expect("locate chunk");
    inject::scribble_chunk_meta(&pool, z, c, 0x99).expect("cm scribble");
    let report = pool.scrub_now().expect("scrub");

    let rows = vec![
        vec![
            "media errors (poisoned pages)".into(),
            format!("{trials}/{trials} repaired"),
            format!(
                "repair: mean {:.0} us, p50 {:.0} us, p99 {:.0} us",
                mean / 1000.0,
                p50 / 1000.0,
                p99 / 1000.0
            ),
        ],
        vec![
            "software scribbles".into(),
            format!("{scribble_ok}/{trials} repaired"),
            "detected via Adler32 at open".into(),
        ],
        vec![
            "buffer overrun (canary)".into(),
            format!("caught={canary_caught}, NVMM untouched={canary_protected}"),
            "transaction aborted pre-commit".into(),
        ],
        vec![
            "chunk-metadata scribble".into(),
            format!("scrub repaired {} page(s)", report.pages_repaired),
            format!("{} objects verified", report.objects_verified),
        ],
    ];
    print_table("§4.6: detection and correction", &["fault", "outcome", "notes"], &rows);

    assert!(pool.verify_parity().expect("verify"), "parity consistent after all repairs");
    assert!(pool.find_corrupt_objects().expect("sweep").is_empty());
    println!(
        "\nAll injected faults recovered online; pool parity verified. \
         Page size {} B; paper reports ~180 us per page-column repair.",
        PAGE_SIZE
    );
    println!(
        "recoveries: {} pages, {} objects, {} scrubs",
        pool.counters().page_recoveries.load(std::sync::atomic::Ordering::Relaxed),
        pool.counters().object_recoveries.load(std::sync::atomic::Ordering::Relaxed),
        pool.counters().scrubs.load(std::sync::atomic::Ordering::Relaxed),
    );

    // Experiment 5: sharded restart recovery — a shard-count × pool-size
    // grid. Each cell builds a pool, spreads objects over every parity
    // shard (thread→shard affinity), leaves the pool *dirty* (no clean
    // shutdown, so the lanes still carry their lazily-invalidated commit
    // records), and times the crash-recovery sweep that `open` runs:
    // lane replay, per-zone orphan-log sweeps and parity recomputation,
    // partitioned over one worker per shard.
    let sizes: Vec<usize> = {
        let mut v = vec![args.pool_bytes / 2, args.pool_bytes];
        // The bench geometry (64 MiB zones, 64 mirrored 512 KiB lanes)
        // needs a margin over one zone; drop half-sizes that can't host it.
        v.retain(|&s| s >= 192 << 20);
        if v.is_empty() {
            v.push(args.pool_bytes);
        }
        v.dedup();
        v
    };
    struct RecRow {
        pool_mb: usize,
        shards: usize,
        ms: f64,
    }
    let mut rec_rows: Vec<RecRow> = Vec::new();
    for &size in &sizes {
        for &shards in &args.shards {
            let dev = Arc::new(
                NvmDevice::new(
                    size,
                    DeviceConfig { latency: args.latency, ..DeviceConfig::fast() },
                )
                .expect("device"),
            );
            let mut cfg = PglConfig::bench(size, PglMode::Mlpc);
            cfg.shards = shards;
            let pool = PglPool::create(dev.clone(), cfg).expect("create");
            let resolved = pool.shards();
            // One round of allocations and one of overwrites, striped over
            // every shard, so each recovery worker finds live objects,
            // parity state and log traffic in its own zones.
            let mut spread = Vec::new();
            for i in 0..256u64 {
                pool.bind_thread_to_shard(i as usize % resolved);
                let oid = pool
                    .tx(|tx| {
                        let oid = tx.alloc(1024, 9)?;
                        tx.write(oid, 0, &[i as u8; 1024])?;
                        Ok(oid)
                    })
                    .expect("spread");
                spread.push(oid);
            }
            for (i, oid) in spread.iter().enumerate() {
                pool.bind_thread_to_shard(i % resolved);
                pool.tx(|tx| tx.write(*oid, 0, &[0xD1; 1024])).expect("dirty");
            }
            pool.unbind_thread_from_shard();
            // Crash the device mid-commit so recovery finds genuinely
            // unfinished lanes, then abandon the handle without the
            // clean-shutdown path.
            dev.arm_crash_after(150);
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for oid in spread.iter().cycle() {
                    pool.tx(|tx| tx.write(*oid, 0, &[0xC4; 1024])).expect("crash burst");
                }
            }));
            std::panic::set_hook(hook);
            dev.disarm_crash();
            assert!(crashed.is_err(), "armed crash must interrupt the burst");
            std::mem::forget(pool);
            let start = Instant::now();
            let pool = PglPool::options().shards(shards).open(dev).expect("recover");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(pool.shards(), resolved);
            assert!(pool.verify_parity().expect("verify"), "parity after recovery");
            for (i, oid) in spread.iter().enumerate() {
                let data = pool.read_verified(*oid).expect("read after recovery");
                let ok = data == vec![0xD1; 1024] || data == vec![0xC4; 1024];
                assert!(ok, "object {i} torn after recovery");
            }
            rec_rows.push(RecRow { pool_mb: size >> 20, shards: resolved, ms });
        }
    }
    let base_ms = |pool_mb: usize| {
        rec_rows.iter().filter(|r| r.pool_mb == pool_mb).map(|r| r.ms).next().unwrap_or(f64::NAN)
    };
    let rows: Vec<Vec<String>> = rec_rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.pool_mb),
                format!("{}", r.shards),
                format!("{:.1}", r.ms),
                format!("{:.2}x", base_ms(r.pool_mb) / r.ms),
            ]
        })
        .collect();
    print_table(
        "Sharded restart recovery (x = speedup vs this pool size's first shard count)",
        &["pool MB", "shards", "recover ms", "x"],
        &rows,
    );

    if let Some(path) = &args.json {
        let rows_json: Vec<String> = rec_rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"pool_mb\":{},\"shards\":{},\"recover_ms\":{:.3},\
                     \"speedup_vs_first\":{:.3}}}",
                    r.pool_mb,
                    r.shards,
                    r.ms,
                    base_ms(r.pool_mb) / r.ms
                )
            })
            .collect();
        let json = format!(
            "{{\"bench\":\"sec46_recovery\",\"mode\":\"pgl-MLPC\",\"unit\":\"ms\",\
             \"rows\":[{}]}}\n",
            rows_json.join(",")
        );
        std::fs::write(path, json).expect("write --json file");
        println!("\nwrote {path}");
    }
}
