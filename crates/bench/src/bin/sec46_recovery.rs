//! §4.6: error detection and correction — inject media errors and
//! scribbles, verify online repair, and measure page-repair latency
//! (the paper reports ~180 µs per page at 100 GB/1 GB-parity scale).
//!
//! Run: `cargo run --release -p pgl-bench --bin sec46_recovery`

use std::sync::Arc;
use std::time::Instant;

use pangolin::{inject, PglConfig, PglError, PglMode, PglPool};
use pgl_bench::{print_table, Args};
use pgl_nvm::{DeviceConfig, NvmDevice, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    println!("§4.6 reproduction: error injection and online recovery");
    let dev = Arc::new(
        NvmDevice::new(
            args.pool_bytes,
            DeviceConfig { latency: args.latency, ..DeviceConfig::fast() },
        )
        .expect("device"),
    );
    let pool =
        PglPool::create(dev, PglConfig::bench(args.pool_bytes, PglMode::Mlpc)).expect("create");

    // Populate with objects of assorted sizes.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut oids = Vec::new();
    for i in 0..500u64 {
        let size = [64u64, 256, 1024, 4096][i as usize % 4];
        let oid = pool
            .tx(|tx| {
                let oid = tx.alloc(size, 1)?;
                tx.write(oid, 0, &vec![(i % 251) as u8; size as usize])?;
                Ok(oid)
            })
            .expect("populate");
        oids.push((oid, size, (i % 251) as u8));
    }

    // Experiment 1: media errors (poisoned pages) repaired online.
    let trials = 100;
    let mut repair_ns = Vec::with_capacity(trials);
    for t in 0..trials {
        let (oid, size, fill) = oids[rng.gen_range(0..oids.len())];
        inject::poison_object_page(&pool, oid).expect("poison");
        let start = Instant::now();
        let data = pool.read_verified(oid).expect("online recovery");
        repair_ns.push(start.elapsed().as_nanos() as f64);
        assert_eq!(data, vec![fill; size as usize], "trial {t} content");
    }
    repair_ns.sort_by(|a, b| a.partial_cmp(b).expect("ordered"));
    let mean = repair_ns.iter().sum::<f64>() / repair_ns.len() as f64;
    let p50 = repair_ns[repair_ns.len() / 2];
    let p99 = repair_ns[repair_ns.len() * 99 / 100];

    // Experiment 2: scribbles detected by checksums and repaired.
    let mut scribble_ok = 0;
    for _ in 0..trials {
        let (oid, size, fill) = oids[rng.gen_range(0..oids.len())];
        let off = rng.gen_range(0..size / 2);
        let len = rng.gen_range(1..=(size - off).min(512)) as usize;
        inject::scribble_object(&pool, oid, off, len, 0xEE).expect("scribble");
        let data = pool.read_verified(oid).expect("scribble recovery");
        if data == vec![fill; size as usize] {
            scribble_ok += 1;
        }
    }

    // Experiment 3: canary catches a buffer overrun before commit.
    let (oid, size, fill) = oids[0];
    let canary_err = pool.tx(|tx| {
        tx.write(oid, 0, &vec![0u8; size as usize])?;
        tx.ubuf_mut(oid)?.smash_back_canary(); // simulated overrun
        Ok(())
    });
    let canary_caught = matches!(canary_err, Err(PglError::CanaryMismatch { .. }));
    let post = pool.read_verified(oid).expect("read after abort");
    let canary_protected = post == vec![fill; size as usize];

    // Experiment 4: metadata (chunk metadata) scribble repaired by scrub.
    let layout = *pool.layout();
    let (z, c, _) = layout.chunk_of(oids[10].0.off - 16).expect("locate chunk");
    inject::scribble_chunk_meta(&pool, z, c, 0x99).expect("cm scribble");
    let report = pool.scrub_now().expect("scrub");

    let rows = vec![
        vec![
            "media errors (poisoned pages)".into(),
            format!("{trials}/{trials} repaired"),
            format!(
                "repair: mean {:.0} us, p50 {:.0} us, p99 {:.0} us",
                mean / 1000.0,
                p50 / 1000.0,
                p99 / 1000.0
            ),
        ],
        vec![
            "software scribbles".into(),
            format!("{scribble_ok}/{trials} repaired"),
            "detected via Adler32 at open".into(),
        ],
        vec![
            "buffer overrun (canary)".into(),
            format!("caught={canary_caught}, NVMM untouched={canary_protected}"),
            "transaction aborted pre-commit".into(),
        ],
        vec![
            "chunk-metadata scribble".into(),
            format!("scrub repaired {} page(s)", report.pages_repaired),
            format!("{} objects verified", report.objects_verified),
        ],
    ];
    print_table("§4.6: detection and correction", &["fault", "outcome", "notes"], &rows);

    assert!(pool.verify_parity().expect("verify"), "parity consistent after all repairs");
    assert!(pool.find_corrupt_objects().expect("sweep").is_empty());
    println!(
        "\nAll injected faults recovered online; pool parity verified. \
         Page size {} B; paper reports ~180 us per page-column repair.",
        PAGE_SIZE
    );
    println!(
        "recoveries: {} pages, {} objects, {} scrubs",
        pool.counters().page_recoveries.load(std::sync::atomic::Ordering::Relaxed),
        pool.counters().object_recoveries.load(std::sync::atomic::Ordering::Relaxed),
        pool.counters().scrubs.load(std::sync::atomic::Ordering::Relaxed),
    );
}
