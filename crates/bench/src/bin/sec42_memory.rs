//! §4.2: memory requirements — pool-initialization (zeroing) time, NVMM
//! layout breakdown (metadata, logs, parity), and DRAM cost of
//! micro-buffering.
//!
//! Run: `cargo run --release -p pgl-bench --bin sec42_memory`

use std::sync::Arc;
use std::time::Instant;

use pangolin::{PglConfig, PglMode, PglPool};
use pgl_bench::{print_table, Args};
use pgl_nvm::{DeviceConfig, NvmDevice};

fn main() {
    let args = Args::parse();
    println!("§4.2 reproduction: memory requirements for a {} MiB pool", args.pool_bytes >> 20);

    // Pool creation (dominated by zeroing, the paper's 130s for 100 GB).
    let dev = Arc::new(
        NvmDevice::new(
            args.pool_bytes,
            DeviceConfig { latency: args.latency, ..DeviceConfig::fast() },
        )
        .expect("device"),
    );
    let t = Instant::now();
    let pool = PglPool::create(dev, PglConfig::bench(args.pool_bytes, PglMode::Mlpc))
        .expect("create pool");
    let create_secs = t.elapsed().as_secs_f64();

    let layout = *pool.layout();
    let lane_region = (layout.cfg.n_lanes * layout.cfg.lane_size) as u64;
    let parity_per_zone = layout.parity_bytes_per_zone();
    let parity_total = parity_per_zone * layout.n_zones;
    let cm_total = layout.zone.cm_chunks * layout.cfg.chunk_size as u64 * layout.n_zones;
    let data_total = (layout.zone.data_rows * layout.zone.row_size
        - layout.zone.cm_chunks * layout.cfg.chunk_size as u64)
        * layout.n_zones;
    let headers_total = layout.lanes_off; // two header pages

    let pct = |x: u64| format!("{:.3}%", 100.0 * x as f64 / args.pool_bytes as f64);
    let rows = vec![
        vec!["pool headers (2x)".into(), format!("{headers_total} B"), pct(headers_total)],
        vec!["lane logs (primary)".into(), format!("{} KiB", lane_region >> 10), pct(lane_region)],
        vec!["lane logs (replica)".into(), format!("{} KiB", lane_region >> 10), pct(lane_region)],
        vec!["chunk metadata".into(), format!("{} KiB", cm_total >> 10), pct(cm_total)],
        vec!["parity rows".into(), format!("{} MiB", parity_total >> 20), pct(parity_total)],
        vec!["usable object heap".into(), format!("{} MiB", data_total >> 20), pct(data_total)],
    ];
    print_table("NVMM layout breakdown", &["region", "size", "of pool"], &rows);

    println!(
        "\npool zeroing + formatting: {create_secs:.2} s \
         ({:.1} GiB/s; the paper reports 130 s for 100 GB ~ 0.77 GiB/s)",
        (args.pool_bytes as f64 / (1 << 30) as f64) / create_secs
    );
    println!(
        "parity overhead: {:.2}% of the pool ({} data rows per zone; paper: ~1%)",
        100.0 * parity_total as f64 / args.pool_bytes as f64,
        layout.zone.data_rows,
    );

    // DRAM cost of micro-buffering: proportional to in-flight transaction
    // sizes; measure the shadow-copy bytes for representative transactions.
    let obj_sizes = [56u64, 304, 408, 4136, 65536];
    let rows: Vec<Vec<String>> = obj_sizes
        .iter()
        .map(|&s| {
            // frame = canary(8) + header(16) + data + canary(8)
            let frame = 8 + 16 + s + 8;
            vec![
                format!("{s} B object"),
                format!("{frame} B"),
                format!("{:.1}x", frame as f64 / s as f64),
            ]
        })
        .collect();
    print_table(
        "DRAM per micro-buffered object (freed at commit)",
        &["object", "micro-buffer frame", "overhead"],
        &rows,
    );
    println!(
        "\nMicro-buffers live only for the duration of a transaction (the \
         paper saw <50 MB under its heaviest workloads); the hashmap rehash \
         is the worst case, shadowing every relinked 40 B entry once."
    );
}
