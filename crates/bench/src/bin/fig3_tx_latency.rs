//! Figure 3: single-object transaction latency — allocate, overwrite, free
//! — across object sizes and all six library modes.
//!
//! Run: `cargo run --release -p pgl-bench --bin fig3_tx_latency`
//! (`--ops N` sets transactions per cell, `--no-latency` disables the
//! Optane latency model.)

use std::time::Instant;

use pgl_bench::{fmt_latency, make_store, print_table, AnyStore, Args, Mode};
use pgl_kv::store::Store;
use pgl_pmemobj::PMEMoid;

const SIZES: &[u64] = &[64, 256, 1024, 4096, 16384, 65536];

fn bench_mode(store: &AnyStore, size: u64, ops: usize) -> (f64, f64, f64) {
    let payload = vec![0xABu8; size as usize];

    // Alloc phase.
    let t = Instant::now();
    let mut oids: Vec<PMEMoid> = Vec::with_capacity(ops);
    for _ in 0..ops {
        let oid = store
            .txn(&mut |tx| {
                let oid = tx.alloc(size, 1)?;
                tx.write_bytes(oid, 0, &payload)?;
                Ok(oid)
            })
            .expect("alloc tx");
        oids.push(oid);
    }
    let alloc_ns = t.elapsed().as_nanos() as f64 / ops as f64;

    // Overwrite phase (whole-object update, like the paper).
    let t = Instant::now();
    for oid in &oids {
        store.txn(&mut |tx| tx.write_bytes(*oid, 0, &payload)).expect("overwrite tx");
    }
    let overwrite_ns = t.elapsed().as_nanos() as f64 / ops as f64;

    // Free phase.
    let t = Instant::now();
    for oid in &oids {
        store.txn(&mut |tx| tx.free(*oid)).expect("free tx");
    }
    let free_ns = t.elapsed().as_nanos() as f64 / ops as f64;

    (alloc_ns, overwrite_ns, free_ns)
}

fn main() {
    let mut args = Args::parse();
    args.ops = args.ops.min(20_000); // per-cell transaction count
    println!(
        "Figure 3 reproduction: tx latency, {} ops/cell, latency model {}",
        args.ops,
        if args.latency.is_disabled() { "off" } else { "on" }
    );

    let mut alloc_rows = Vec::new();
    let mut over_rows = Vec::new();
    let mut free_rows = Vec::new();
    for &size in SIZES {
        let mut a_row = vec![format!("{size}B")];
        let mut o_row = vec![format!("{size}B")];
        let mut f_row = vec![format!("{size}B")];
        for mode in Mode::all() {
            // Size the pool for the alloc phase: large objects consume
            // whole 64 KiB chunks, small ones a size class (~1.5x slack).
            let chunk = 64u64 << 10;
            let footprint = if size + 16 > 16384 {
                (size + 16).div_ceil(chunk) * chunk
            } else {
                (size + 64) * 3 / 2
            };
            let need = (args.ops as u64 * footprint * 3 / 2 + (256 << 20)) as usize;
            let store = make_store(mode, need.min(6 << 30), args.latency);
            let (a, o, f) = bench_mode(&store, size, args.ops);
            a_row.push(fmt_latency(a));
            o_row.push(fmt_latency(o));
            f_row.push(fmt_latency(f));
        }
        alloc_rows.push(a_row);
        over_rows.push(o_row);
        free_rows.push(f_row);
    }

    let headers: Vec<&str> =
        std::iter::once("size").chain(Mode::all().iter().map(|m| m.label())).collect();
    print_table("Figure 3a: allocate (latency/tx)", &headers, &alloc_rows);
    print_table("Figure 3b: overwrite (latency/tx)", &headers, &over_rows);
    print_table("Figure 3c: free (latency/tx)", &headers, &free_rows);
    println!(
        "\nExpected shape (paper): pgl within ~10% of pmemobj; pgl-MLP beats \
         pmemobj-R for alloc (1.2-1.9x) and for overwrites >64B (1.1-1.5x); \
         free is size-insensitive (metadata only)."
    );
}
