//! Figure 5: key-value store throughput — inserts then removes on the six
//! PMDK-toolkit data structures, across all six library modes.
//!
//! Run: `cargo run --release -p pgl-bench --bin fig5_kvstores`
//! (`--ops N` keys per phase; the paper uses 1M, default 50k.)

use pgl_bench::{fmt_rate, make_store, print_table, AnyStore, Args, Mode};
use pgl_kv::maps::PersistentMap;
use pgl_kv::workload::{insert_phase, lookup_phase, random_keys, remove_phase};
use pgl_kv::{BTree, CTree, HashMap, RTree, RbTree, SkipList};

/// Insert/lookup/remove throughput (ops/s) for one structure on one store.
type OpRates = (f64, f64, f64);

fn run_structure<M: PersistentMap>(store: &AnyStore, keys: &[u64]) -> OpRates {
    let map = M::create(store).expect("create map");
    let ins = insert_phase(&map, store, keys).expect("insert phase");
    assert_eq!(map.len(store).unwrap(), keys.len() as u64);
    let look = lookup_phase(&map, store, keys).expect("lookup phase");
    let rem = remove_phase(&map, store, keys).expect("remove phase");
    assert_eq!(map.len(store).unwrap(), 0);
    (ins.ops_per_sec(), look.ops_per_sec(), rem.ops_per_sec())
}

fn main() {
    let args = Args::parse();
    println!("Figure 5 reproduction: {} inserts + removes per structure", args.ops);
    let keys = random_keys(args.ops, args.seed);

    let headers: Vec<String> = std::iter::once("structure".to_string())
        .chain(Mode::all().iter().map(|m| m.label().to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut insert_rows: Vec<Vec<String>> = Vec::new();
    let mut remove_rows: Vec<Vec<String>> = Vec::new();
    let mut lookup_rows: Vec<Vec<String>> = Vec::new();

    // The rtree allocates ~4.2 KB per key; give it a bigger pool.
    let run_all = |name: &str,
                   pool_mult: usize,
                   f: &dyn Fn(&AnyStore, &[u64]) -> OpRates,
                   insert_rows: &mut Vec<Vec<String>>,
                   lookup_rows: &mut Vec<Vec<String>>,
                   remove_rows: &mut Vec<Vec<String>>| {
        let mut i_row = vec![name.to_string()];
        let mut l_row = vec![name.to_string()];
        let mut r_row = vec![name.to_string()];
        for mode in Mode::all() {
            let store = make_store(mode, args.pool_bytes * pool_mult, args.latency);
            let (ins, look, rem) = f(&store, &keys);
            i_row.push(fmt_rate(ins));
            l_row.push(fmt_rate(look));
            r_row.push(fmt_rate(rem));
            if let Some(pool) = store.pgl_pool() {
                assert!(pool.verify_parity().expect("verify"), "parity after {name}");
            }
        }
        insert_rows.push(i_row);
        lookup_rows.push(l_row);
        remove_rows.push(r_row);
    };

    run_all(
        "ctree",
        1,
        &run_structure::<CTree>,
        &mut insert_rows,
        &mut lookup_rows,
        &mut remove_rows,
    );
    run_all(
        "rbtree",
        1,
        &run_structure::<RbTree>,
        &mut insert_rows,
        &mut lookup_rows,
        &mut remove_rows,
    );
    run_all(
        "btree",
        1,
        &run_structure::<BTree>,
        &mut insert_rows,
        &mut lookup_rows,
        &mut remove_rows,
    );
    run_all(
        "skiplist",
        1,
        &run_structure::<SkipList>,
        &mut insert_rows,
        &mut lookup_rows,
        &mut remove_rows,
    );
    run_all(
        "rtree",
        2,
        &run_structure::<RTree>,
        &mut insert_rows,
        &mut lookup_rows,
        &mut remove_rows,
    );
    run_all(
        "hashmap",
        1,
        &run_structure::<HashMap>,
        &mut insert_rows,
        &mut lookup_rows,
        &mut remove_rows,
    );

    print_table("Figure 5a: inserts (throughput)", &header_refs, &insert_rows);
    print_table("Figure 5b: removes (throughput)", &header_refs, &remove_rows);
    print_table("Figure 5 (lookup, unmeasured in paper figure)", &header_refs, &lookup_rows);
    println!(
        "\nExpected shape (paper): pgl close to pmemobj (faster for ctree/btree \
         inserts, slower where modified size << object size, e.g. skiplist, \
         rtree); pgl-MLP ~95% of pmemobj-R on average; MLPC costs 1.5-15% over \
         MLP, worst for rtree (large objects to checksum); lookups are \
         identical across modes (direct reads, no verification)."
    );
}
