//! Shared benchmark harness: the Table 2 mode matrix, store construction,
//! argument parsing and table formatting used by every figure/table binary.

use std::sync::Arc;

use pangolin::{CsumPolicy, PglConfig, PglMode, PglPool};
use pgl_kv::store::{KvResult, PglStore, PmemStore, Store, TxOps};
use pgl_nvm::{DeviceConfig, LatencyModel, NvmDevice, PersistenceMode};
use pgl_pmemobj::{PMEMoid, PmemPool, PoolConfig, TxStats};

/// The six library configurations of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `libpmemobj` baseline.
    Pmemobj,
    /// Pangolin with micro-buffering only.
    Pgl,
    /// Pangolin + metadata/log replication.
    PglMl,
    /// Pangolin-ML + object parity.
    PglMlp,
    /// Pangolin-MLP + object checksums (full system).
    PglMlpc,
    /// `libpmemobj` with a full replica pool.
    PmemobjR,
}

impl Mode {
    /// All modes in the paper's presentation order.
    pub fn all() -> [Mode; 6] {
        [Mode::Pmemobj, Mode::Pgl, Mode::PglMl, Mode::PglMlp, Mode::PglMlpc, Mode::PmemobjR]
    }

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Pmemobj => "pmemobj",
            Mode::Pgl => "pgl",
            Mode::PglMl => "pgl-ML",
            Mode::PglMlp => "pgl-MLP",
            Mode::PglMlpc => "pgl-MLPC",
            Mode::PmemobjR => "pmemobj-R",
        }
    }
}

/// A store of either backend, so harness code can hold them uniformly.
/// Clones share the underlying pool (both backends are `Arc`-backed
/// shared handles), so one `AnyStore` can fan out across threads.
#[derive(Clone)]
pub enum AnyStore {
    /// Baseline (plain or replicated).
    Pmem(PmemStore),
    /// Pangolin (any mode).
    Pgl(PglStore),
}

impl Store for AnyStore {
    fn uuid(&self) -> u64 {
        match self {
            AnyStore::Pmem(s) => s.uuid(),
            AnyStore::Pgl(s) => s.uuid(),
        }
    }

    fn txn_with_stats<R>(
        &self,
        f: &mut dyn FnMut(&mut dyn TxOps) -> KvResult<R>,
    ) -> KvResult<(R, TxStats)> {
        match self {
            AnyStore::Pmem(s) => s.txn_with_stats(f),
            AnyStore::Pgl(s) => s.txn_with_stats(f),
        }
    }

    fn read_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        match self {
            AnyStore::Pmem(s) => s.read_direct(oid, off, dst),
            AnyStore::Pgl(s) => s.read_direct(oid, off, dst),
        }
    }

    fn read_verified_direct(&self, oid: PMEMoid, off: u64, dst: &mut [u8]) -> KvResult<()> {
        match self {
            AnyStore::Pmem(s) => s.read_verified_direct(oid, off, dst),
            AnyStore::Pgl(s) => s.read_verified_direct(oid, off, dst),
        }
    }

    fn last_tx_stats(&self) -> TxStats {
        match self {
            AnyStore::Pmem(s) => s.last_tx_stats(),
            AnyStore::Pgl(s) => s.last_tx_stats(),
        }
    }

    fn root(&self, size: u64, type_num: u32) -> KvResult<PMEMoid> {
        match self {
            AnyStore::Pmem(s) => s.root(size, type_num),
            AnyStore::Pgl(s) => s.root(size, type_num),
        }
    }

    fn bind_shard(&self, shard: usize) {
        match self {
            AnyStore::Pmem(s) => s.bind_shard(shard),
            AnyStore::Pgl(s) => s.bind_shard(shard),
        }
    }
}

impl AnyStore {
    /// The Pangolin pool behind this store, if it is one.
    pub fn pgl_pool(&self) -> Option<&PglPool> {
        match self {
            AnyStore::Pgl(s) => Some(s.pool()),
            AnyStore::Pmem(_) => None,
        }
    }
}

/// Builds a pool of `pool_bytes` in the given mode on a fresh device.
pub fn make_store(mode: Mode, pool_bytes: usize, latency: LatencyModel) -> AnyStore {
    make_store_with_policy(mode, pool_bytes, latency, CsumPolicy::Default)
}

/// Like [`make_store`] with an explicit checksum policy (Figure 6).
pub fn make_store_with_policy(
    mode: Mode,
    pool_bytes: usize,
    latency: LatencyModel,
    policy: CsumPolicy,
) -> AnyStore {
    let dev_cfg = DeviceConfig { mode: PersistenceMode::Fast, latency };
    // Round up to a whole number of pages (device requirement).
    let pool_bytes = (pool_bytes + 0xFFF) & !0xFFF;
    let dev = Arc::new(NvmDevice::new(pool_bytes, dev_cfg).expect("device"));
    match mode {
        Mode::Pmemobj => {
            let cfg = PoolConfig::bench(pool_bytes).without_parity();
            AnyStore::Pmem(PmemStore::new(Arc::new(PmemPool::create(dev, cfg).expect("pool"))))
        }
        Mode::PmemobjR => {
            let cfg = PoolConfig::bench(pool_bytes).without_parity();
            let replica = Arc::new(NvmDevice::new(pool_bytes, dev_cfg).expect("replica"));
            AnyStore::Pmem(PmemStore::new(Arc::new(
                PmemPool::create_replicated(dev, replica, cfg).expect("pool"),
            )))
        }
        Mode::Pgl | Mode::PglMl | Mode::PglMlp | Mode::PglMlpc => {
            let pgl_mode = match mode {
                Mode::Pgl => PglMode::Baseline,
                Mode::PglMl => PglMode::Ml,
                Mode::PglMlp => PglMode::Mlp,
                _ => PglMode::Mlpc,
            };
            let mut cfg = PglConfig::bench(pool_bytes, pgl_mode).with_policy(policy);
            if !pgl_mode.has_parity() {
                cfg.pool.parity = false;
            }
            AnyStore::Pgl(PglStore::new(PglPool::create(dev, cfg).expect("pool")))
        }
    }
}

/// Common command-line options for the harness binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Operations per phase (`--ops N`; the paper uses 1M, default 50k).
    pub ops: usize,
    /// `true` when `--ops` was given explicitly (binaries that trim the
    /// default for runtime reasons must honor an explicit request).
    pub ops_explicit: bool,
    /// Pool size in bytes (`--pool-mb N`).
    pub pool_bytes: usize,
    /// Latency model on/off (`--no-latency` disables).
    pub latency: LatencyModel,
    /// Thread counts for scalability runs (`--threads a,b,c`).
    pub threads: Vec<usize>,
    /// `true` when `--threads` was given explicitly.
    pub threads_explicit: bool,
    /// RNG seed (`--seed N`).
    pub seed: u64,
    /// Machine-readable results path (`--json PATH`); binaries that
    /// support it write a one-line JSON summary there.
    pub json: Option<String>,
    /// Parity-shard counts for sharded-recovery sweeps (`--shards a,b,c`).
    pub shards: Vec<usize>,
}

impl Args {
    /// Parses `std::env::args`, with benchmark-appropriate defaults.
    pub fn parse() -> Args {
        let mut args = Args {
            ops: 50_000,
            ops_explicit: false,
            pool_bytes: 1 << 30,
            latency: LatencyModel::optane(),
            threads: vec![1, 2, 4],
            threads_explicit: false,
            seed: 0xC0FFEE,
            json: None,
            shards: vec![1, 2, 4],
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--ops" => {
                    i += 1;
                    args.ops = argv[i].parse().expect("--ops N");
                    args.ops_explicit = true;
                }
                "--pool-mb" => {
                    i += 1;
                    args.pool_bytes = argv[i].parse::<usize>().expect("--pool-mb N") << 20;
                }
                "--no-latency" => args.latency = LatencyModel::disabled(),
                "--threads" => {
                    i += 1;
                    args.threads =
                        argv[i].split(',').map(|t| t.parse().expect("--threads a,b,c")).collect();
                    args.threads_explicit = true;
                }
                "--seed" => {
                    i += 1;
                    args.seed = argv[i].parse().expect("--seed N");
                }
                "--json" => {
                    i += 1;
                    args.json = Some(argv[i].clone());
                }
                "--shards" => {
                    i += 1;
                    args.shards =
                        argv[i].split(',').map(|s| s.parse().expect("--shards a,b,c")).collect();
                }
                other => {
                    eprintln!(
                        "unknown option {other}; supported: --ops N --pool-mb N \
                         --no-latency --threads a,b,c --seed N --json PATH --shards a,b,c"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        args
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{h:>w$}", w = widths[i])).collect();
    println!("{}", header_line.join("  "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        let line: Vec<String> =
            row.iter().enumerate().map(|(i, c)| format!("{c:>w$}", w = widths[i])).collect();
        println!("{}", line.join("  "));
    }
}

/// Formats nanoseconds-per-op human-readably.
pub fn fmt_latency(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else if ns >= 1000.0 {
        format!("{:.2}us", ns / 1000.0)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Formats an ops/sec rate.
pub fn fmt_rate(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.2}M/s", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1}K/s", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgl_kv::maps::PersistentMap;

    #[test]
    fn every_mode_builds_and_runs_a_tx() {
        for mode in Mode::all() {
            let store = make_store(mode, 256 << 20, LatencyModel::disabled());
            let map = pgl_kv::CTree::create(&store).unwrap();
            map.insert(&store, 1, 2).unwrap();
            assert_eq!(map.get(&store, 1).unwrap(), Some(2), "{}", mode.label());
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_latency(500.0), "500ns");
        assert_eq!(fmt_latency(2500.0), "2.50us");
        assert_eq!(fmt_rate(1_500_000.0), "1.50M/s");
        assert_eq!(fmt_rate(2_500.0), "2.5K/s");
    }
}
