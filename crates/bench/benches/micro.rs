//! Criterion micro-benchmarks for Pangolin's data-path primitives:
//! checksums (full vs incremental, Adler32 vs CRC32), XOR strategies, and
//! micro-buffer round trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pangolin::checksum::{adler32, adler32_update};
use pgl_nvm::{DeviceConfig, NvmDevice};
use pgl_pmemobj::util::crc32;
use std::sync::Arc;

fn checksums(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    for &size in &[64usize, 1024, 4096, 65536] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("adler32_full", size), &data, |b, d| {
            b.iter(|| adler32(d))
        });
        g.bench_with_input(BenchmarkId::new("crc32_full", size), &data, |b, d| b.iter(|| crc32(d)));
        // Incremental update of a 64-byte range inside the object: the cost
        // the paper's §3.5 argument is about (O(range), not O(object)).
        let csum = adler32(&data);
        let old = vec![0xA5u8; 64.min(size)];
        let new = vec![0x5Au8; 64.min(size)];
        g.bench_with_input(BenchmarkId::new("adler32_incremental64", size), &size, |b, _| {
            b.iter(|| adler32_update(csum, size as u64, 0, &old, &new))
        });
    }
    g.finish();
}

fn xor_strategies(c: &mut Criterion) {
    let dev = Arc::new(NvmDevice::new(1 << 20, DeviceConfig::fast()).unwrap());
    let mut g = c.benchmark_group("parity_xor");
    for &size in &[64usize, 1024, 8192, 65536] {
        let patch = vec![0x3Cu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("vectorized", size), &patch, |b, p| {
            b.iter(|| dev.xor_range(0, p).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("atomic_words", size), &patch, |b, p| {
            b.iter(|| {
                for (w, chunk) in p.chunks_exact(8).enumerate() {
                    let v = u64::from_le_bytes(chunk.try_into().unwrap());
                    dev.atomic_xor_u64(w as u64 * 8, v).unwrap();
                }
            })
        });
    }
    g.finish();
}

fn ubuf_roundtrip(c: &mut Criterion) {
    use pangolin::ubuf::UBuf;
    use pgl_pmemobj::{ObjectHeader, PMEMoid};
    let mut g = c.benchmark_group("micro_buffer");
    for &size in &[64usize, 408, 4136] {
        let data = vec![7u8; size];
        let hdr = ObjectHeader { size: size as u64, type_num: 1, csum: adler32(&data) };
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("open_verify", size), &data, |b, d| {
            b.iter(|| {
                let u = UBuf::from_nvmm(PMEMoid::new(1, 4096), hdr, d);
                assert!(u.verify_checksum());
                u
            })
        });
    }
    g.finish();
}

criterion_group!(benches, checksums, xor_strategies, ubuf_roundtrip);
criterion_main!(benches);
