//! Criterion view of Figure 9's scaling claim: aggregate time for a fixed
//! batch of 1 KiB overwrite transactions, split across 1/2/4 worker
//! threads on one shared pgl-MLPC pool. With per-thread lanes and striped
//! parity locks the per-batch time should *shrink* as threads grow
//! (statistically rigorous companion to the `fig9_scaling` sweep binary).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pgl_bench::{make_store, AnyStore, Mode};
use pgl_kv::store::Store;
use pgl_nvm::LatencyModel;
use pgl_pmemobj::PMEMoid;

const BATCH: usize = 64;
const OBJ_SIZE: usize = 1024;

fn prealloc(store: &AnyStore, n: usize) -> Vec<PMEMoid> {
    (0..n)
        .map(|_| {
            store
                .txn(&mut |tx| {
                    let oid = tx.alloc(OBJ_SIZE as u64, 1)?;
                    tx.write_bytes(oid, 0, &vec![0u8; OBJ_SIZE])?;
                    Ok(oid)
                })
                .unwrap()
        })
        .collect()
}

fn tx_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("tx_scaling_1k_batch64");
    g.sample_size(20);
    g.throughput(Throughput::Elements(BATCH as u64));
    for threads in [1usize, 2, 4] {
        let store = Arc::new(make_store(Mode::PglMlpc, 256 << 20, LatencyModel::optane()));
        // Disjoint object sets per worker (the paper's concurrency rule).
        let sets: Vec<Vec<PMEMoid>> =
            (0..threads).map(|_| prealloc(&store, BATCH / threads)).collect();
        let payload = vec![0xA5u8; OBJ_SIZE];
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for set in &sets {
                        let store = store.clone();
                        let payload = &payload;
                        s.spawn(move || {
                            for oid in set {
                                store.txn(&mut |tx| tx.write_bytes(*oid, 0, payload)).unwrap();
                            }
                        });
                    }
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, tx_scaling);
criterion_main!(benches);
