//! `api_overhead`: proves the typed object layer is zero-cost.
//!
//! Every typed operation (`tx.get`, `tx.set`, `tx.update`, `tx.write_at`)
//! is benchmarked against the raw oid/offset call it compiles down to
//! (`tx.read_pod`, `tx.write_pod`, open+read+write, offset `write_pod`).
//! In release builds the typed layer adds only a `PhantomData` brand and
//! (debug-only) header checks, so each pair should be within noise of each
//! other — the acceptance bar is 5%.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pangolin::typed::PObj;
use pangolin::{field, impl_ptype, PMEMoid, PglConfig, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice};

/// A 64-byte record: big enough that partial updates matter, small enough
/// that per-call overhead (the thing being measured) is not drowned out.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct Rec {
    a: u64,
    b: u64,
    c: [u64; 6],
}
impl_ptype!(Rec, 64, 5);

struct Setup {
    pool: PglPool,
    oid: PMEMoid,
    h: PObj<Rec>,
}

fn setup() -> Setup {
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    let h = pool.tx(|tx| tx.alloc_obj(&Rec::default())).unwrap();
    Setup { pool, oid: h.oid(), h }
}

fn api_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("api_overhead");

    // Every benchmark gets its own fresh pool so each raw/typed pair
    // starts from identical heap, lane and log state — what makes the
    // within-5% comparison meaningful on a noisy host.
    let s = setup();

    // Whole-object read inside a transaction (pgl_get path).
    g.bench_with_input(BenchmarkId::new("get", "raw"), &s, |b, s| {
        b.iter(|| s.pool.tx(|tx| tx.read_pod::<Rec>(s.oid, 0)).unwrap())
    });
    g.bench_with_input(BenchmarkId::new("get", "typed"), &s, |b, s| {
        b.iter(|| s.pool.tx(|tx| tx.get(s.h)).unwrap())
    });

    // Whole-object store (micro-buffered write + commit).
    let s = setup();
    let v = Rec { a: 1, b: 2, c: [3; 6] };
    g.bench_with_input(BenchmarkId::new("set", "raw"), &s, |b, s| {
        b.iter(|| s.pool.tx(|tx| tx.write_pod(s.oid, 0, &v)).unwrap())
    });
    g.bench_with_input(BenchmarkId::new("set", "typed"), &s, |b, s| {
        b.iter(|| s.pool.tx(|tx| tx.set(s.h, &v)).unwrap())
    });

    // Read-modify-write of the whole object (verified snapshot).
    let s = setup();
    g.bench_with_input(BenchmarkId::new("update", "raw"), &s, |b, s| {
        b.iter(|| {
            s.pool
                .tx(|tx| {
                    tx.open(s.oid)?;
                    let mut r: Rec = tx.read_pod(s.oid, 0)?;
                    r.a = r.a.wrapping_add(1);
                    tx.write_pod(s.oid, 0, &r)
                })
                .unwrap()
        })
    });
    g.bench_with_input(BenchmarkId::new("update", "typed"), &s, |b, s| {
        b.iter(|| s.pool.tx(|tx| tx.update(s.h, |r| r.a = r.a.wrapping_add(1))).unwrap())
    });

    // Single-field store (the incremental-checksum fast path).
    let s = setup();
    g.bench_with_input(BenchmarkId::new("field_write", "raw"), &s, |b, s| {
        b.iter(|| s.pool.tx(|tx| tx.write_pod(s.oid, 8, &7u64)).unwrap())
    });
    g.bench_with_input(BenchmarkId::new("field_write", "typed"), &s, |b, s| {
        b.iter(|| s.pool.tx(|tx| tx.write_at(s.h, field!(Rec, b: u64), &7u64)).unwrap())
    });

    // Transaction-free direct read.
    let s = setup();
    g.bench_with_input(BenchmarkId::new("direct_read", "raw"), &s, |b, s| {
        b.iter(|| s.pool.read_pod::<Rec>(s.oid, 0).unwrap())
    });
    g.bench_with_input(BenchmarkId::new("direct_read", "typed"), &s, |b, s| {
        b.iter(|| s.pool.get_obj(s.h).unwrap())
    });

    g.finish();
}

criterion_group!(benches, api_overhead);
criterion_main!(benches);
