//! Criterion bench of the commit data path: whole-object overwrite
//! commits across 64 B – 4 KiB objects and all six Table 2 modes, under
//! the Optane-like latency model (so commit-time NVM *read* traffic — the
//! old-data reads the fused pipeline halves — shows up in wall time, not
//! just in counters).
//!
//! Each iteration rewrites the object with fresh bytes, so the parity
//! diff is never all-zero and the bench exercises the full pipeline:
//! open+verify, incremental checksum, redo log, write-back, parity patch.
//!
//! Set `CRITERION_JSON=path` to append one JSON line per benchmark
//! (machine-readable medians; see `BENCH_commit_path.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pgl_bench::{make_store, Mode};
use pgl_kv::store::Store;
use pgl_nvm::LatencyModel;

fn commit_overwrite(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_path");
    for mode in Mode::all() {
        let store = make_store(mode, 256 << 20, LatencyModel::optane());
        for &size in &[64usize, 256, 1024, 4096] {
            let oid = store
                .txn(&mut |tx| {
                    let oid = tx.alloc(size as u64, 1)?;
                    tx.write_bytes(oid, 0, &vec![0xEE; size])?;
                    Ok(oid)
                })
                .unwrap();
            let mut payload = vec![0u8; size];
            let mut round: u8 = 0;
            g.throughput(Throughput::Bytes(size as u64));
            g.bench_with_input(BenchmarkId::new(mode.label(), size), &oid, |b, oid| {
                b.iter(|| {
                    round = round.wrapping_add(1);
                    payload.fill(round | 1);
                    store.txn(&mut |tx| tx.write_bytes(*oid, 0, &payload)).unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, commit_overwrite);
criterion_main!(benches);
