//! Criterion view of Figure 3's overwrite path: one 1 KiB single-object
//! transaction per mode (statistically rigorous companion to the
//! `fig3_tx_latency` sweep binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pgl_bench::{make_store, Mode};
use pgl_kv::store::Store;
use pgl_nvm::LatencyModel;

fn tx_overwrite(c: &mut Criterion) {
    let mut g = c.benchmark_group("tx_overwrite_1k");
    g.sample_size(40);
    for mode in Mode::all() {
        let store = make_store(mode, 256 << 20, LatencyModel::disabled());
        let payload = vec![0xEEu8; 1024];
        let oid = store
            .txn(&mut |tx| {
                let oid = tx.alloc(1024, 1)?;
                tx.write_bytes(oid, 0, &payload)?;
                Ok(oid)
            })
            .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(mode.label()), &oid, |b, oid| {
            b.iter(|| store.txn(&mut |tx| tx.write_bytes(*oid, 0, &payload)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, tx_overwrite);
criterion_main!(benches);
