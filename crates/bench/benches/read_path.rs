//! Criterion bench of the read data path, under the Optane-like latency
//! model (NVMM read traffic shows up in wall time, not just counters):
//!
//! * `verified_whole/{size}` — repeated whole-object verified reads
//!   (`PglPool::read_verified`) of an unchanging object: the shape the
//!   DRAM verified-generation cache turns from O(object copy + checksum)
//!   into a single range-sized read.
//! * `verified_whole_into/{size}` — the same shape through
//!   [`pangolin::PglPool::read_verified_into`], the non-allocating entry
//!   point this PR adds for hot callers (before-numbers compare against
//!   the old allocating `read_verified`, the only option then).
//! * `conservative_get8/{objsize}` — 8-byte `pgl_get`s out of a larger
//!   object under the Conservative policy, which re-verified the whole
//!   object per access before the cache.
//! * `tx_open_read/{size}` — a read-only transaction that opens an object
//!   and reads 8 bytes: the lazy-open shape (ctree/rbtree/skiplist node
//!   touches in `pgl-kv`).
//! * `kv_lookup/{structure}` — read-heavy `pgl-kv` lookups under the
//!   Conservative policy (every node read verifies).
//!
//! Set `CRITERION_JSON=path` to append one JSON line per benchmark
//! (machine-readable medians; see `BENCH_read_path.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pangolin::CsumPolicy;
use pgl_bench::{make_store, make_store_with_policy, Mode};
use pgl_kv::maps::PersistentMap;
use pgl_kv::store::Store;
use pgl_nvm::LatencyModel;

fn verified_whole(c: &mut Criterion) {
    let mut g = c.benchmark_group("verified_whole");
    let store = make_store(Mode::PglMlpc, 256 << 20, LatencyModel::optane());
    let pool = store.pgl_pool().expect("pgl mode").clone();
    for &size in &[64usize, 256, 1024, 4096] {
        let oid = store
            .txn(&mut |tx| {
                let oid = tx.alloc(size as u64, 1)?;
                tx.write_bytes(oid, 0, &vec![0xAB; size])?;
                Ok(oid)
            })
            .unwrap();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("mlpc", size), &oid, |b, oid| {
            b.iter(|| pool.read_verified(*oid).unwrap())
        });
    }
    g.finish();
}

fn verified_whole_into(c: &mut Criterion) {
    let mut g = c.benchmark_group("verified_whole_into");
    let store = make_store(Mode::PglMlpc, 256 << 20, LatencyModel::optane());
    let pool = store.pgl_pool().expect("pgl mode").clone();
    for &size in &[64usize, 256, 1024, 4096] {
        let oid = store
            .txn(&mut |tx| {
                let oid = tx.alloc(size as u64, 1)?;
                tx.write_bytes(oid, 0, &vec![0xAB; size])?;
                Ok(oid)
            })
            .unwrap();
        let mut buf = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("mlpc", size), &oid, |b, oid| {
            b.iter(|| {
                pool.read_verified_into(*oid, &mut buf).unwrap();
                buf[0]
            })
        });
    }
    g.finish();
}

fn conservative_get8(c: &mut Criterion) {
    let mut g = c.benchmark_group("conservative_get8");
    let store = make_store_with_policy(
        Mode::PglMlpc,
        256 << 20,
        LatencyModel::optane(),
        CsumPolicy::Conservative,
    );
    for &size in &[256usize, 1024, 4096] {
        let oid = store
            .txn(&mut |tx| {
                let oid = tx.alloc(size as u64, 1)?;
                tx.write_bytes(oid, 0, &vec![0x3C; size])?;
                Ok(oid)
            })
            .unwrap();
        let mut buf = [0u8; 8];
        g.throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::new("mlpc", size), &oid, |b, oid| {
            b.iter(|| {
                store.read_direct(*oid, 64, &mut buf).unwrap();
                buf[0]
            })
        });
    }
    g.finish();
}

fn tx_open_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("tx_open_read");
    let store = make_store(Mode::PglMlpc, 256 << 20, LatencyModel::optane());
    let pool = store.pgl_pool().expect("pgl mode").clone();
    for &size in &[256usize, 1024, 4096] {
        let oid = store
            .txn(&mut |tx| {
                let oid = tx.alloc(size as u64, 1)?;
                tx.write_bytes(oid, 0, &vec![0x77; size])?;
                Ok(oid)
            })
            .unwrap();
        g.throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::new("mlpc", size), &oid, |b, oid| {
            b.iter(|| {
                pool.tx(|tx| {
                    tx.open(*oid)?;
                    tx.read_pod::<u64>(*oid, 0)
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

fn kv_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv_lookup");
    const KEYS: u64 = 512;
    for (label, policy) in
        [("default", CsumPolicy::Default), ("conservative", CsumPolicy::Conservative)]
    {
        let store =
            make_store_with_policy(Mode::PglMlpc, 256 << 20, LatencyModel::optane(), policy);
        let map = pgl_kv::CTree::create(&store).unwrap();
        for k in 0..KEYS {
            map.insert(&store, k.wrapping_mul(0x9E3779B97F4A7C15), k).unwrap();
        }
        let mut k = 0u64;
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("ctree", label), &map, |b, map| {
            b.iter(|| {
                k = (k + 1) % KEYS;
                map.get(&store, k.wrapping_mul(0x9E3779B97F4A7C15)).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    verified_whole,
    verified_whole_into,
    conservative_get8,
    tx_open_read,
    kv_lookup
);
criterion_main!(benches);
