//! Property tests for the device's crash semantics.
//!
//! The core invariant crash-consistent software relies on: at a crash, each
//! cache line independently reverts to *some* content that was plausible
//! under the store/flush/fence history — never a mix of two contents within
//! one line, and never losing data that was flushed *and* fenced.

use pgl_nvm::{AllNew, AllOld, DeviceConfig, LineOutcome, NvmDevice, RandomPlan, CACHELINE};
use proptest::prelude::*;

const DEV_SIZE: usize = 64 * 1024;

/// A scripted store/flush/fence history over a handful of cache lines.
#[derive(Debug, Clone)]
enum Op {
    Store { line: u8, val: u8 },
    Flush { line: u8 },
    Fence,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, 1u8..=255).prop_map(|(line, val)| Op::Store { line, val }),
        (0u8..8).prop_map(|line| Op::Flush { line }),
        Just(Op::Fence),
    ]
}

/// Replays `ops` against both the device and a model that tracks, per line,
/// the set of contents a crash may legally leave behind.
fn run_history(ops: &[Op], plan_seed: u64) {
    let dev = NvmDevice::new(DEV_SIZE, DeviceConfig::precise()).unwrap();

    // Model: per line, (guaranteed_durable, pending_flushes, newest).
    #[derive(Clone)]
    struct Model {
        durable: u8,
        pending: Vec<u8>,
        newest: u8,
    }
    let mut model: Vec<Model> =
        (0..8).map(|_| Model { durable: 0, pending: vec![], newest: 0 }).collect();

    for op in ops {
        match *op {
            Op::Store { line, val } => {
                let off = line as u64 * CACHELINE as u64;
                dev.write(off, &[val; CACHELINE]).unwrap();
                model[line as usize].newest = val;
            }
            Op::Flush { line } => {
                let off = line as u64 * CACHELINE as u64;
                dev.flush(off, CACHELINE).unwrap();
                let m = &mut model[line as usize];
                if m.newest != m.durable || !m.pending.is_empty() {
                    m.pending.push(m.newest);
                }
            }
            Op::Fence => {
                dev.drain();
                for m in model.iter_mut() {
                    if let Some(&last) = m.pending.last() {
                        m.durable = last;
                    }
                    m.pending.clear();
                }
            }
        }
    }

    let mut plan = RandomPlan::seeded(plan_seed);
    dev.simulate_crash(&mut plan).unwrap();

    for (i, m) in model.iter().enumerate() {
        let got = dev.read_slice(i as u64 * CACHELINE as u64, CACHELINE).unwrap();
        // Within a line the content must be uniform (no sub-line tearing in
        // this whole-line-store history).
        assert!(got.iter().all(|&b| b == got[0]), "line {i} tore: {got:?}");
        let v = got[0];
        let mut legal: Vec<u8> = vec![m.durable, m.newest];
        legal.extend_from_slice(&m.pending);
        assert!(
            legal.contains(&v),
            "line {i} persisted {v}, but only {legal:?} are legal \
             (durable {}, pending {:?}, newest {})",
            m.durable,
            m.pending,
            m.newest
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn crash_outcomes_are_always_legal(
        ops in proptest::collection::vec(op_strategy(), 0..64),
        seed in any::<u64>(),
    ) {
        run_history(&ops, seed);
    }

    #[test]
    fn fenced_data_always_survives(
        vals in proptest::collection::vec(1u8..=255, 1..16),
        seed in any::<u64>(),
    ) {
        // Write a sequence of values to distinct lines, persisting each;
        // no crash plan may lose any of them.
        let dev = NvmDevice::new(DEV_SIZE, DeviceConfig::precise()).unwrap();
        for (i, v) in vals.iter().enumerate() {
            let off = i as u64 * CACHELINE as u64;
            dev.write(off, &[*v; CACHELINE]).unwrap();
            dev.persist(off, CACHELINE).unwrap();
        }
        let mut plan = RandomPlan::seeded(seed);
        dev.simulate_crash(&mut plan).unwrap();
        for (i, v) in vals.iter().enumerate() {
            let got = dev.read_slice(i as u64 * CACHELINE as u64, CACHELINE).unwrap();
            prop_assert!(got.iter().all(|b| b == v), "fenced line {i} lost data");
        }
    }
}

#[test]
fn all_old_and_all_new_are_the_extremes() {
    let dev = NvmDevice::new(DEV_SIZE, DeviceConfig::precise()).unwrap();
    dev.write(0, &[1u8; 64]).unwrap();
    dev.persist(0, 64).unwrap();
    dev.write(0, &[2u8; 64]).unwrap(); // dirty, unflushed
    dev.write(64, &[3u8; 64]).unwrap(); // dirty, unflushed

    // AllOld: both unflushed writes vanish.
    dev.simulate_crash(&mut AllOld).unwrap();
    assert_eq!(dev.read_slice(0, 1).unwrap()[0], 1);
    assert_eq!(dev.read_slice(64, 1).unwrap()[0], 0);

    // AllNew: everything sticks.
    dev.write(0, &[4u8; 64]).unwrap();
    dev.simulate_crash(&mut AllNew).unwrap();
    assert_eq!(dev.read_slice(0, 1).unwrap()[0], 4);
}

#[test]
fn flushed_unfenced_line_can_persist_flushed_content() {
    let dev = NvmDevice::new(DEV_SIZE, DeviceConfig::precise()).unwrap();
    dev.write(0, &[0xAAu8; 64]).unwrap();
    dev.flush(0, 64).unwrap();
    // No fence. Force the "flush completed" outcome.
    let mut plan = |_line: u64, pending: usize| {
        assert_eq!(pending, 1);
        LineOutcome::Flushed(0)
    };
    dev.simulate_crash(&mut plan).unwrap();
    assert_eq!(dev.read_slice(0, 1).unwrap()[0], 0xAA);
}
