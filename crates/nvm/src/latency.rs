//! Optional latency model for benchmark realism.
//!
//! The reproduction has no Optane hardware, so relative costs between DRAM
//! and NVMM operations would otherwise vanish. When enabled, the device
//! busy-waits a configurable number of nanoseconds per operation, with
//! defaults loosely derived from published Optane DC characterization
//! (Izraelevitz et al., arXiv:1903.05714): media writes are the expensive
//! part, flushes push lines to the persistence domain, fences are cheap, and
//! atomic read-modify-writes on NVMM pay a round trip.
//!
//! The model is intentionally coarse — EXPERIMENTS.md discusses which shapes
//! transfer. All costs default to zero (model disabled) for unit tests.
//!
//! # Concurrency: stalls must not burn the host CPU
//!
//! On real hardware an NVM stall occupies only the issuing core; the other
//! cores keep retiring instructions. The simulator often runs *more
//! simulated cores (threads) than the host has physical cores*, so a
//! busy-wait would serialize everything and hide the concurrency the
//! library is designed to deliver. Charges therefore accumulate in a
//! per-thread debt counter and are paid in batches through a
//! yield-friendly deadline wait: the stalling thread donates its timeslice
//! to runnable siblings (`yield_now`) until just before the deadline, then
//! spins for precision. Single-threaded timing is unchanged (yielding with
//! no other runnable thread returns immediately); multi-threaded runs
//! overlap their stalls exactly like independent memory controllers would.

use std::cell::Cell;
use std::time::{Duration, Instant};

/// Debt below this many nanoseconds accumulates instead of stalling; one
/// batched stall then pays it in full. Batching keeps the bookkeeping off
/// the per-store fast path and makes each stall long enough for
/// `yield_now` to actually hand the CPU to another thread.
const PAY_QUANTUM_NS: u64 = 4_000;

thread_local! {
    /// Latency charges owed by this thread but not yet waited out.
    static DEBT_NS: Cell<u64> = const { Cell::new(0) };
}

/// Per-operation latency charges in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Charged per cache line written (store path).
    pub write_ns_per_line: u64,
    /// Charged per cache line flushed (`CLWB`).
    pub flush_ns_per_line: u64,
    /// Charged per store fence (`SFENCE`).
    pub fence_ns: u64,
    /// Charged per 8-byte atomic read-modify-write (e.g. lock xor). The
    /// span-batched atomic XOR (`NvmDevice::atomic_xor_patch_span` /
    /// `atomic_xor_diff_span`) charges this per touched *cache line*
    /// instead: adjacent lock-prefixed RMWs keep their line cached and
    /// pipeline on real hardware, paying the media round trip once per
    /// line.
    pub atomic_rmw_ns: u64,
    /// Charged per cache line of non-temporal store.
    pub nt_ns_per_line: u64,
    /// Charged per cache line loaded from media (NVM random reads are
    /// several times slower than DRAM; this models the delta).
    pub read_ns_per_line: u64,
}

impl LatencyModel {
    /// No charges at all: the default for unit tests and functional runs.
    pub const fn disabled() -> Self {
        LatencyModel {
            write_ns_per_line: 0,
            flush_ns_per_line: 0,
            fence_ns: 0,
            atomic_rmw_ns: 0,
            nt_ns_per_line: 0,
            read_ns_per_line: 0,
        }
    }

    /// Rough Optane DC AppDirect-mode figures used by the benchmark harness.
    pub const fn optane() -> Self {
        LatencyModel {
            write_ns_per_line: 0, // stores hit the cache; cost is paid at flush
            flush_ns_per_line: 90,
            fence_ns: 30,
            atomic_rmw_ns: 20,
            nt_ns_per_line: 60,
            // ~300 ns random-read vs ~80 ns DRAM in the Izraelevitz
            // characterization; charge the per-line delta.
            read_ns_per_line: 50,
        }
    }

    /// Returns a copy with every charge multiplied by `k` — e.g. a
    /// "slower NVM" scenario, or a scaling study that needs the
    /// device-bound regime emphasized (see `fig9_scaling`).
    pub const fn scaled(self, k: u64) -> Self {
        LatencyModel {
            write_ns_per_line: self.write_ns_per_line * k,
            flush_ns_per_line: self.flush_ns_per_line * k,
            fence_ns: self.fence_ns * k,
            atomic_rmw_ns: self.atomic_rmw_ns * k,
            nt_ns_per_line: self.nt_ns_per_line * k,
            read_ns_per_line: self.read_ns_per_line * k,
        }
    }

    /// Returns `true` if every charge is zero.
    #[inline]
    pub fn is_disabled(&self) -> bool {
        self.write_ns_per_line == 0
            && self.flush_ns_per_line == 0
            && self.fence_ns == 0
            && self.atomic_rmw_ns == 0
            && self.nt_ns_per_line == 0
            && self.read_ns_per_line == 0
    }

    /// Records `ns` nanoseconds of NVM latency for the calling thread
    /// (no-op for zero). Small charges accumulate; once the debt reaches
    /// [`PAY_QUANTUM_NS`] it is paid with one yield-friendly stall (see the
    /// module docs for why stalls must not busy-wait the host CPU).
    #[inline]
    pub(crate) fn charge(ns: u64) {
        if ns == 0 {
            return;
        }
        let due = DEBT_NS.with(|d| {
            let total = d.get() + ns;
            if total < PAY_QUANTUM_NS {
                d.set(total);
                0
            } else {
                d.set(0);
                total
            }
        });
        if due > 0 {
            Self::stall(due);
        }
    }

    /// Waits out `ns` nanoseconds, yielding the CPU to runnable siblings
    /// for the bulk of the wait and spinning only the final microsecond
    /// for precision.
    fn stall(ns: u64) {
        let deadline = Instant::now() + Duration::from_nanos(ns);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            // Yield almost to the deadline: a sub-microsecond overshoot
            // is noise next to the batching quantum, while a long spin
            // tail would burn host CPU that a sibling thread (simulated
            // core) could be using.
            if deadline - now > Duration::from_nanos(200) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_charges_nothing() {
        assert!(LatencyModel::disabled().is_disabled());
        let t = Instant::now();
        LatencyModel::charge(0);
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn charge_waits_roughly_right() {
        let t = Instant::now();
        LatencyModel::charge(200_000); // 200 µs
        assert!(t.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn optane_model_is_enabled() {
        assert!(!LatencyModel::optane().is_disabled());
    }
}
