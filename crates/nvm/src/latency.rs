//! Optional latency model for benchmark realism.
//!
//! The reproduction has no Optane hardware, so relative costs between DRAM
//! and NVMM operations would otherwise vanish. When enabled, the device
//! busy-waits a configurable number of nanoseconds per operation, with
//! defaults loosely derived from published Optane DC characterization
//! (Izraelevitz et al., arXiv:1903.05714): media writes are the expensive
//! part, flushes push lines to the persistence domain, fences are cheap, and
//! atomic read-modify-writes on NVMM pay a round trip.
//!
//! The model is intentionally coarse — EXPERIMENTS.md discusses which shapes
//! transfer. All costs default to zero (model disabled) for unit tests.

use std::time::{Duration, Instant};

/// Per-operation latency charges in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Charged per cache line written (store path).
    pub write_ns_per_line: u64,
    /// Charged per cache line flushed (`CLWB`).
    pub flush_ns_per_line: u64,
    /// Charged per store fence (`SFENCE`).
    pub fence_ns: u64,
    /// Charged per 8-byte atomic read-modify-write (e.g. lock xor).
    pub atomic_rmw_ns: u64,
    /// Charged per cache line of non-temporal store.
    pub nt_ns_per_line: u64,
}

impl LatencyModel {
    /// No charges at all: the default for unit tests and functional runs.
    pub const fn disabled() -> Self {
        LatencyModel {
            write_ns_per_line: 0,
            flush_ns_per_line: 0,
            fence_ns: 0,
            atomic_rmw_ns: 0,
            nt_ns_per_line: 0,
        }
    }

    /// Rough Optane DC AppDirect-mode figures used by the benchmark harness.
    pub const fn optane() -> Self {
        LatencyModel {
            write_ns_per_line: 0, // stores hit the cache; cost is paid at flush
            flush_ns_per_line: 90,
            fence_ns: 30,
            atomic_rmw_ns: 20,
            nt_ns_per_line: 60,
        }
    }

    /// Returns `true` if every charge is zero.
    #[inline]
    pub fn is_disabled(&self) -> bool {
        self.write_ns_per_line == 0
            && self.flush_ns_per_line == 0
            && self.fence_ns == 0
            && self.atomic_rmw_ns == 0
            && self.nt_ns_per_line == 0
    }

    /// Busy-waits for `ns` nanoseconds (no-op for zero).
    #[inline]
    pub(crate) fn charge(ns: u64) {
        if ns == 0 {
            return;
        }
        let deadline = Instant::now() + Duration::from_nanos(ns);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_charges_nothing() {
        assert!(LatencyModel::disabled().is_disabled());
        let t = Instant::now();
        LatencyModel::charge(0);
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn charge_waits_roughly_right() {
        let t = Instant::now();
        LatencyModel::charge(200_000); // 200 µs
        assert!(t.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn optane_model_is_enabled() {
        assert!(!LatencyModel::optane().is_disabled());
    }
}
