//! Page-aligned raw memory backing the simulated device.
//!
//! This module owns the only `unsafe` allocation code in the crate. The
//! buffer is shared across threads through raw pointers; the safety contract
//! (callers never issue racing accesses to overlapping bytes) is documented
//! on [`RawBuf`] and mirrors real DAX semantics, where data races on mapped
//! NVMM are undefined behaviour just as they are on DRAM.

use std::alloc::{alloc_zeroed, dealloc, Layout};

use crate::PAGE_SIZE;

/// A page-aligned, zero-initialized, heap-allocated byte region.
///
/// `RawBuf` hands out raw pointers rather than slices because the simulated
/// device allows (synchronized) concurrent access from many threads, which
/// Rust references cannot express directly.
///
/// # Safety contract for users
///
/// All accesses through [`RawBuf::ptr`] must uphold the usual aliasing rules
/// *dynamically*: two threads must not access overlapping byte ranges
/// concurrently unless both accesses are reads or both go through atomics.
/// The persistent-object libraries built on top guarantee this with
/// object-level transaction ownership, allocator locks, and parity
/// range-locks, mirroring how real applications must synchronize DAX memory.
pub(crate) struct RawBuf {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: The buffer is plain memory; cross-thread access is governed by the
// documented dynamic aliasing contract, the same contract `&[UnsafeCell<u8>]`
// would impose. No thread-affine state is held.
unsafe impl Send for RawBuf {}
// SAFETY: See the `Send` justification above.
unsafe impl Sync for RawBuf {}

impl RawBuf {
    /// Allocates a zeroed buffer of `len` bytes, page-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or allocation fails (an unrecoverable
    /// condition for a memory simulator).
    pub(crate) fn new(len: usize) -> Self {
        assert!(len > 0, "device size must be non-zero");
        let layout = Layout::from_size_align(len, PAGE_SIZE).expect("invalid device layout");
        // SAFETY: `layout` has non-zero size (asserted above) and a valid
        // power-of-two alignment.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "NVMM simulation allocation failed");
        RawBuf { ptr, len }
    }

    /// Returns the base pointer of the buffer.
    #[inline]
    pub(crate) fn ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Returns the buffer length in bytes.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

impl Drop for RawBuf {
    fn drop(&mut self) {
        let layout =
            Layout::from_size_align(self.len, PAGE_SIZE).expect("layout valid at construction");
        // SAFETY: `ptr` was allocated with exactly this layout in `new` and
        // has not been freed before (we own it uniquely in `drop`).
        unsafe { dealloc(self.ptr, layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_zeroed_and_aligned() {
        let buf = RawBuf::new(8192);
        assert_eq!(buf.ptr() as usize % PAGE_SIZE, 0);
        assert_eq!(buf.len(), 8192);
        for i in (0..8192).step_by(997) {
            // SAFETY: `i` < len; no concurrent access in this test.
            let b = unsafe { *buf.ptr().add(i) };
            assert_eq!(b, 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        let _ = RawBuf::new(0);
    }
}
