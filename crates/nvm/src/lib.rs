//! # pgl-nvm — a simulated non-volatile main memory (NVMM) device
//!
//! This crate provides the hardware substrate for the Pangolin reproduction:
//! a byte-addressable persistent memory device with the semantics that
//! DAX-mapped NVMM exposes to user space on x86 Linux platforms:
//!
//! * **Store/flush/fence persistence model.** Regular stores land in a
//!   (simulated) CPU cache and are *not* durable until the affected cache
//!   lines are written back ([`NvmDevice::flush`], the `CLWB` analogue) and a
//!   store fence is issued ([`NvmDevice::drain`], the `SFENCE` analogue).
//!   Dirty lines may also become durable spontaneously (cache eviction), so a
//!   crash can persist *any* subset of unflushed lines — exactly the
//!   adversarial behaviour crash-consistent software must tolerate.
//! * **8-byte atomic stores** and **atomic XOR** ([`NvmDevice::atomic_store_u64`],
//!   [`NvmDevice::atomic_xor_u64`]) mirroring the x86 guarantees Pangolin's
//!   parity scheme relies on.
//! * **Non-temporal stores** ([`NvmDevice::write_nt`]) that bypass the cache
//!   and only await a fence.
//! * **Media errors.** 4 KB pages can be *poisoned*; loads from a poisoned
//!   page fail with [`MemError::Poisoned`] — the library-level analogue of a
//!   machine-check exception delivered as `SIGBUS`. Writing a full page of
//!   fresh data repairs it ([`NvmDevice::repair_page`]), like the
//!   ACPI/NVDIMM clear-uncorrectable flow.
//! * **Fault injection.** Scribbles (software corruption that checksums, not
//!   hardware, must catch), page poisoning, and deterministic crash plans for
//!   property-based testing ([`crash::CrashPlan`]).
//!
//! The simulation exists because this reproduction has no Optane hardware;
//! see the workspace `README.md` ("Why a simulated device") for the
//! substitution argument. The upside is that crashes, evictions and media
//! errors become deterministic and exhaustively testable. The workspace's
//! `EXPERIMENTS.md` lists the figure/table reproductions that run on top
//! of this device.
//!
//! # Examples
//!
//! ```
//! use pgl_nvm::{DeviceConfig, NvmDevice};
//!
//! let dev = NvmDevice::new(1 << 20, DeviceConfig::precise()).unwrap();
//! dev.write(128, b"hello").unwrap();
//! dev.persist(128, 5).unwrap(); // flush + drain: now durable
//! let mut buf = [0u8; 5];
//! dev.read(128, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello");
//! ```

pub mod crash;
pub mod device;
pub mod error;
pub mod image;
pub mod latency;
pub mod pod;
pub mod stats;

mod poison;
mod rawbuf;
mod tracker;

pub use crash::{AllNew, AllOld, CrashPlan, LineOutcome, MappedPlan, RandomPlan};
pub use device::{CrashPoint, DeviceConfig, DeviceSnapshot, NvmDevice, PersistenceMode};
pub use error::{MemError, Result};
pub use latency::LatencyModel;
pub use pod::Pod;
pub use stats::StatsSnapshot;

/// Size of a simulated CPU cache line in bytes.
pub const CACHELINE: usize = 64;

/// Size of a simulated memory page in bytes (poison granularity).
pub const PAGE_SIZE: usize = 4096;

/// Rounds `x` down to a multiple of `align` (which must be a power of two).
#[inline]
pub const fn align_down(x: usize, align: usize) -> usize {
    x & !(align - 1)
}

/// Rounds `x` up to a multiple of `align` (which must be a power of two).
#[inline]
pub const fn align_up(x: usize, align: usize) -> usize {
    (x + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_helpers() {
        assert_eq!(align_down(0, 64), 0);
        assert_eq!(align_down(63, 64), 0);
        assert_eq!(align_down(64, 64), 64);
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 4096), 4096);
    }
}
