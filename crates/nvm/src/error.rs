//! Error type for simulated NVMM accesses.

use std::fmt;

/// Errors returned by [`crate::NvmDevice`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// An access fell outside the device.
    OutOfBounds {
        /// Requested start offset.
        off: u64,
        /// Requested length in bytes.
        len: usize,
        /// Total device size in bytes.
        size: usize,
    },
    /// A load touched a poisoned page — the analogue of an uncorrectable
    /// media error reported via MCE/`SIGBUS` (paper §2.2).
    Poisoned {
        /// Index of the first poisoned page the access touched.
        page: u64,
    },
    /// An atomic access was not naturally aligned.
    Misaligned {
        /// Offending offset.
        off: u64,
        /// Required alignment.
        align: usize,
    },
    /// An I/O error while saving or loading a device image.
    Io(String),
    /// A crash-simulation operation ([`crate::NvmDevice::simulate_crash`],
    /// [`crate::NvmDevice::restore`] of a tracked snapshot) was invoked on a
    /// device built in [`crate::PersistenceMode::Fast`], which keeps no
    /// dirty-line state to crash or restore.
    Untracked,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { off, len, size } => {
                write!(f, "access [{off:#x}, +{len}) out of bounds (size {size:#x})")
            }
            MemError::Poisoned { page } => {
                write!(f, "uncorrectable media error: page {page} is poisoned")
            }
            MemError::Misaligned { off, align } => {
                write!(f, "offset {off:#x} is not {align}-byte aligned")
            }
            MemError::Io(e) => write!(f, "image i/o error: {e}"),
            MemError::Untracked => {
                write!(
                    f,
                    "crash simulation requires PersistenceMode::Precise (dirty-line tracking)"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

impl From<std::io::Error> for MemError {
    fn from(e: std::io::Error) -> Self {
        MemError::Io(e.to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MemError>;
