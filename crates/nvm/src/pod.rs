//! Plain-old-data views over raw NVMM bytes.
//!
//! Persistent objects live in the device as raw bytes; this module is the
//! one place that converts between `#[repr(C)]` structs and byte slices.
//! Keeping the conversion here (with a single, auditable safety contract)
//! follows the "encapsulate unsafety in one module" idiom.

/// Marker for types that can be reinterpreted as raw bytes in NVMM.
///
/// # Safety
///
/// Implementors must guarantee all of the following:
///
/// * the type is `#[repr(C)]` (or a primitive/array) with **no padding
///   bytes** — `size_of::<T>()` equals the sum of its field sizes;
/// * **every bit pattern is a valid value** — no `bool`, `char`, enums with
///   niches, or references;
/// * the type contains no interior mutability and no pointers that are
///   meaningful outside the pool (persistent pointers must be stored as
///   offset-based types such as `PMEMoid`).
///
/// Use [`impl_pod!`](crate::impl_pod) to implement the trait with a
/// compile-time size assertion documenting the no-padding claim.
pub unsafe trait Pod: Copy + 'static {}

// SAFETY: primitives have no padding and accept any bit pattern.
unsafe impl Pod for u8 {}
// SAFETY: as above.
unsafe impl Pod for u16 {}
// SAFETY: as above.
unsafe impl Pod for u32 {}
// SAFETY: as above.
unsafe impl Pod for u64 {}
// SAFETY: as above.
unsafe impl Pod for i8 {}
// SAFETY: as above.
unsafe impl Pod for i16 {}
// SAFETY: as above.
unsafe impl Pod for i32 {}
// SAFETY: as above.
unsafe impl Pod for i64 {}

// SAFETY: arrays of Pod are Pod (no padding between elements).
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Implements [`Pod`] for a `#[repr(C)]` struct with a compile-time size
/// assertion that documents the no-padding requirement.
///
/// # Examples
///
/// ```
/// use pgl_nvm::impl_pod;
///
/// #[derive(Clone, Copy)]
/// #[repr(C)]
/// struct Node {
///     key: u64,
///     val: u64,
/// }
/// impl_pod!(Node, 16);
/// ```
#[macro_export]
macro_rules! impl_pod {
    ($ty:ty, $size:expr) => {
        const _: () = assert!(
            ::std::mem::size_of::<$ty>() == $size,
            concat!("size mismatch for ", stringify!($ty), ": declared no-padding size differs")
        );
        // SAFETY: the macro caller asserts (and the const check witnesses)
        // that the struct is `#[repr(C)]`, has the declared packed size, and
        // per the `Pod` contract accepts any bit pattern.
        unsafe impl $crate::pod::Pod for $ty {}
    };
}

/// Borrows the raw bytes of a `Pod` value.
#[inline]
pub fn bytes_of<T: Pod>(val: &T) -> &[u8] {
    // SAFETY: `T: Pod` guarantees no padding, so all `size_of::<T>()` bytes
    // are initialized; the lifetime is tied to the borrow of `val`.
    unsafe { std::slice::from_raw_parts(val as *const T as *const u8, std::mem::size_of::<T>()) }
}

/// Returns an all-zero `T` (a valid value for any `Pod` type).
#[inline]
pub fn zeroed<T: Pod>() -> T {
    // SAFETY: `T: Pod` guarantees every bit pattern is a valid value, so
    // the all-zero pattern is too.
    unsafe { std::mem::zeroed() }
}

/// Mutably borrows the raw bytes of a `Pod` value — the write-side twin of
/// [`bytes_of`], letting callers read from a device directly into a typed
/// value without a heap buffer.
#[inline]
pub fn bytes_of_mut<T: Pod>(val: &mut T) -> &mut [u8] {
    // SAFETY: `T: Pod` guarantees no padding (all bytes are initialized)
    // and that any bit pattern is valid, so arbitrary byte stores cannot
    // create an invalid value; the lifetime is tied to the borrow of `val`.
    unsafe { std::slice::from_raw_parts_mut(val as *mut T as *mut u8, std::mem::size_of::<T>()) }
}

/// Reconstructs a `Pod` value from raw bytes.
///
/// # Panics
///
/// Panics if `bytes` is shorter than `size_of::<T>()`.
#[inline]
pub fn from_bytes<T: Pod>(bytes: &[u8]) -> T {
    assert!(
        bytes.len() >= std::mem::size_of::<T>(),
        "from_bytes: need {} bytes, got {}",
        std::mem::size_of::<T>(),
        bytes.len()
    );
    // SAFETY: length checked above; `T: Pod` means any bit pattern is valid;
    // `read_unaligned` tolerates arbitrary alignment of `bytes`.
    unsafe { std::ptr::read_unaligned(bytes.as_ptr() as *const T) }
}

/// Writes a `Pod` value into a byte buffer at `off`.
///
/// # Panics
///
/// Panics if the value does not fit.
#[inline]
pub fn write_to<T: Pod>(bytes: &mut [u8], off: usize, val: &T) {
    let src = bytes_of(val);
    bytes[off..off + src.len()].copy_from_slice(src);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Debug)]
    #[repr(C)]
    struct Pair {
        a: u64,
        b: u32,
        c: u32,
    }
    impl_pod!(Pair, 16);

    #[test]
    fn roundtrip_through_bytes() {
        let p = Pair { a: 0x0102_0304_0506_0708, b: 0xAABB_CCDD, c: 7 };
        let bytes = bytes_of(&p).to_vec();
        assert_eq!(bytes.len(), 16);
        let q: Pair = from_bytes(&bytes);
        assert_eq!(p, q);
    }

    #[test]
    fn from_bytes_tolerates_misalignment() {
        // An 8-aligned buffer sliced at +3 is guaranteed misaligned for
        // Pair; a plain [u8; 32] could land 8-aligned at +3 by accident
        // and make this test vacuous.
        #[repr(align(8))]
        struct Aligned([u8; 32]);
        let p = Pair { a: 1, b: 2, c: 3 };
        let mut buf = Aligned([0u8; 32]);
        buf.0[3..19].copy_from_slice(bytes_of(&p));
        let q: Pair = from_bytes(&buf.0[3..]);
        assert_eq!(p, q);
    }

    #[test]
    fn zeroed_and_bytes_of_mut_roundtrip() {
        let mut p: Pair = zeroed();
        assert_eq!(p, Pair { a: 0, b: 0, c: 0 });
        let src = Pair { a: 5, b: 6, c: 7 };
        bytes_of_mut(&mut p).copy_from_slice(bytes_of(&src));
        assert_eq!(p, src);
    }

    #[test]
    fn write_to_places_bytes() {
        let p = Pair { a: 9, b: 8, c: 7 };
        let mut buf = vec![0u8; 40];
        write_to(&mut buf, 8, &p);
        let q: Pair = from_bytes(&buf[8..24]);
        assert_eq!(p, q);
    }

    #[test]
    #[should_panic(expected = "need")]
    fn from_bytes_checks_length() {
        let _: Pair = from_bytes(&[0u8; 3]);
    }
}
