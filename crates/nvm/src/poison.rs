//! Page-granularity media-error (poison) tracking.
//!
//! Linux manages NVMM media failures at 4 KB page granularity (paper §2.2):
//! the kernel marks the page surrounding a failed load as poisoned and
//! subsequent loads fail. This module models that: a poisoned page makes all
//! reads covering it fail with [`crate::MemError::Poisoned`], and writing a
//! full page of fresh data clears the poison (the ACPI clear-uncorrectable
//! flow).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;

/// Set of poisoned pages with a lock-free emptiness fast path, so the read
/// hot path pays a single relaxed load when no errors are outstanding.
pub(crate) struct PoisonSet {
    count: AtomicUsize,
    pages: RwLock<BTreeSet<u64>>,
}

impl PoisonSet {
    pub(crate) fn new() -> Self {
        PoisonSet { count: AtomicUsize::new(0), pages: RwLock::new(BTreeSet::new()) }
    }

    /// Returns the first poisoned page in `[first_page, last_page]`, if any.
    #[inline]
    pub(crate) fn first_poisoned_in(&self, first_page: u64, last_page: u64) -> Option<u64> {
        if self.count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let pages = self.pages.read();
        pages.range(first_page..=last_page).next().copied()
    }

    /// Marks `page` as poisoned. Returns `true` if it was newly poisoned.
    pub(crate) fn poison(&self, page: u64) -> bool {
        let mut pages = self.pages.write();
        let inserted = pages.insert(page);
        if inserted {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
        inserted
    }

    /// Clears poison from `page`. Returns `true` if it was poisoned.
    pub(crate) fn clear(&self, page: u64) -> bool {
        let mut pages = self.pages.write();
        let removed = pages.remove(&page);
        if removed {
            self.count.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Returns `true` if `page` is poisoned.
    pub(crate) fn is_poisoned(&self, page: u64) -> bool {
        self.count.load(Ordering::Relaxed) != 0 && self.pages.read().contains(&page)
    }

    /// Lists all currently poisoned pages (the kernel's "known bad pages").
    pub(crate) fn all(&self) -> Vec<u64> {
        self.pages.read().iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_and_clear_roundtrip() {
        let p = PoisonSet::new();
        assert!(!p.is_poisoned(4));
        assert!(p.poison(4));
        assert!(!p.poison(4), "double poison is idempotent");
        assert!(p.is_poisoned(4));
        assert_eq!(p.first_poisoned_in(0, 10), Some(4));
        assert_eq!(p.first_poisoned_in(5, 10), None);
        assert!(p.clear(4));
        assert!(!p.clear(4));
        assert_eq!(p.first_poisoned_in(0, 10), None);
    }

    #[test]
    fn range_queries_pick_lowest_page() {
        let p = PoisonSet::new();
        p.poison(9);
        p.poison(3);
        p.poison(7);
        assert_eq!(p.first_poisoned_in(0, 100), Some(3));
        assert_eq!(p.first_poisoned_in(4, 100), Some(7));
        assert_eq!(p.all(), vec![3, 7, 9]);
    }
}
