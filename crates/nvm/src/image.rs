//! Saving and loading device images through ordinary files.
//!
//! Real NVMM pools are files in a DAX file system; the simulation keeps the
//! pool in DRAM but can serialize it to disk so pools survive process
//! restarts (used by examples and the recovery tests). The image records the
//! poisoned-page list, modelling the kernel's persistent bad-page bookkeeping
//! (paper §3.3).

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use crate::device::{DeviceConfig, NvmDevice};
use crate::error::{MemError, Result};
use crate::PAGE_SIZE;

const IMAGE_MAGIC: u64 = 0x50_47_4C_4E_56_4D_30_31; // "PGLNVM01"

/// Saves the device's durable contents and bad-page list to `path`.
///
/// Intended for clean shutdowns (flush everything first); dirty-line state is
/// not serialized.
pub fn save(dev: &NvmDevice, path: &Path) -> Result<()> {
    let mut f = File::create(path)?;
    let poisoned = dev.poisoned_pages();
    f.write_all(&IMAGE_MAGIC.to_le_bytes())?;
    f.write_all(&(dev.len() as u64).to_le_bytes())?;
    f.write_all(&(poisoned.len() as u64).to_le_bytes())?;
    for p in &poisoned {
        f.write_all(&p.to_le_bytes())?;
    }
    // Dump page by page; poisoned pages are stored as zeros (their content
    // is unreadable, as on real hardware).
    let zero_page = vec![0u8; PAGE_SIZE];
    for page in 0..dev.pages() {
        if dev.is_poisoned_page(page) {
            f.write_all(&zero_page)?;
        } else {
            let bytes = dev.read_slice(page * PAGE_SIZE as u64, PAGE_SIZE)?;
            f.write_all(bytes)?;
        }
    }
    f.sync_all()?;
    Ok(())
}

/// Loads a device image from `path`.
pub fn load(path: &Path, config: DeviceConfig) -> Result<NvmDevice> {
    let mut f = File::open(path)?;
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |f: &mut File| -> Result<u64> {
        f.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let magic = read_u64(&mut f)?;
    if magic != IMAGE_MAGIC {
        return Err(MemError::Io(format!("bad image magic {magic:#x}")));
    }
    let len = read_u64(&mut f)? as usize;
    let n_poison = read_u64(&mut f)? as usize;
    let mut poisoned = Vec::with_capacity(n_poison);
    for _ in 0..n_poison {
        poisoned.push(read_u64(&mut f)?);
    }
    let dev = NvmDevice::new(len, config)?;
    let mut page_buf = vec![0u8; PAGE_SIZE];
    for page in 0..dev.pages() {
        f.read_exact(&mut page_buf)?;
        dev.write(page * PAGE_SIZE as u64, &page_buf)?;
    }
    dev.drain();
    for p in poisoned {
        dev.poison_page(p)?;
    }
    Ok(dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_roundtrip_with_poison() {
        let dir = std::env::temp_dir().join("pgl_nvm_image_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.img");

        let dev = NvmDevice::new(8 * PAGE_SIZE, DeviceConfig::fast()).unwrap();
        dev.write(100, b"persist me").unwrap();
        dev.persist(100, 10).unwrap();
        dev.poison_page(5).unwrap();
        save(&dev, &path).unwrap();

        let loaded = load(&path, DeviceConfig::fast()).unwrap();
        assert_eq!(loaded.len(), dev.len());
        assert_eq!(loaded.read_slice(100, 10).unwrap(), b"persist me");
        assert!(loaded.is_poisoned_page(5), "bad-page list survives reboot");
        assert!(loaded.read_slice(5 * PAGE_SIZE as u64, 8).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("pgl_nvm_image_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.img");
        std::fs::write(&path, b"definitely not an image").unwrap();
        assert!(load(&path, DeviceConfig::fast()).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
