//! Crash plans: deciding the fate of each dirty cache line at a simulated
//! power failure.
//!
//! At a crash, every cache line that has been stored to since its last
//! persistence point can land in one of several states (paper §2.3's
//! persistence-ordering discussion):
//!
//! * **Old** — the line never left the cache; the last *fenced* content
//!   survives.
//! * **Flushed(i)** — a `CLWB` was issued but not yet fenced; the i-th
//!   pending write-back completed before power was lost.
//! * **New** — the cache spontaneously evicted the line, so the very latest
//!   store survives even though it was never flushed.
//!
//! A [`CrashPlan`] chooses an outcome per line, which lets property-based
//! tests enumerate adversarial persistence orders deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The persisted state chosen for one dirty cache line at crash time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// The last fenced (guaranteed-durable) content survives.
    Old,
    /// The content captured by the i-th un-fenced flush survives
    /// (0-based; the tracker clamps out-of-range indices to the last one).
    Flushed(usize),
    /// The newest store survives (cache eviction).
    New,
}

/// Chooses a [`LineOutcome`] for every dirty line during
/// [`crate::NvmDevice::simulate_crash`].
pub trait CrashPlan {
    /// Picks the outcome for `line` (a cache-line index), which currently has
    /// `pending_flushes` un-fenced flush captures.
    fn choose(&mut self, line: u64, pending_flushes: usize) -> LineOutcome;
}

/// A plan where no un-fenced data survives: the most pessimistic crash.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllOld;

impl CrashPlan for AllOld {
    fn choose(&mut self, _line: u64, _pending: usize) -> LineOutcome {
        LineOutcome::Old
    }
}

/// A plan where every dirty line is evicted: all stores survive, as if the
/// crash had happened after a full write-back.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllNew;

impl CrashPlan for AllNew {
    fn choose(&mut self, _line: u64, _pending: usize) -> LineOutcome {
        LineOutcome::New
    }
}

/// A seeded random plan: each line independently keeps old content, a random
/// pending flush, or the newest store.
#[derive(Debug)]
pub struct RandomPlan {
    rng: StdRng,
}

impl RandomPlan {
    /// Creates a plan from a seed so failures are reproducible.
    pub fn seeded(seed: u64) -> Self {
        RandomPlan { rng: StdRng::seed_from_u64(seed) }
    }
}

impl CrashPlan for RandomPlan {
    fn choose(&mut self, _line: u64, pending: usize) -> LineOutcome {
        match self.rng.gen_range(0..3u8) {
            0 => LineOutcome::Old,
            1 if pending > 0 => LineOutcome::Flushed(self.rng.gen_range(0..pending)),
            _ => LineOutcome::New,
        }
    }
}

impl<F> CrashPlan for F
where
    F: FnMut(u64, usize) -> LineOutcome,
{
    fn choose(&mut self, line: u64, pending: usize) -> LineOutcome {
        self(line, pending)
    }
}

/// A plan that assigns a fixed outcome to specific cache lines and a
/// default to every other line.
///
/// This is the building block of exhaustive small-model checking: a sweep
/// driver enumerates the per-line outcome space reported by
/// [`crate::NvmDevice::dirty_line_choices`] and materializes each
/// combination as one `MappedPlan`.
#[derive(Debug, Clone)]
pub struct MappedPlan {
    map: std::collections::HashMap<u64, LineOutcome>,
    default: LineOutcome,
}

impl MappedPlan {
    /// Creates an empty plan; lines without an explicit entry get `default`.
    pub fn new(default: LineOutcome) -> Self {
        MappedPlan { map: std::collections::HashMap::new(), default }
    }

    /// Sets the outcome for one cache line.
    pub fn set(&mut self, line: u64, outcome: LineOutcome) {
        self.map.insert(line, outcome);
    }

    /// Builds the `combo`-th of `∏ (pending_i + 2)` outcome combinations
    /// over `choices` (as returned by
    /// [`crate::NvmDevice::dirty_line_choices`]): a mixed-radix decode
    /// where each line's digit selects `Old`, one of its `pending`
    /// flush captures, or `New`. `combo` must be less than the product.
    pub fn nth_combination(choices: &[(u64, usize)], mut combo: u64) -> Self {
        let mut plan = MappedPlan::new(LineOutcome::Old);
        for &(line, pending) in choices {
            let radix = pending as u64 + 2;
            let digit = combo % radix;
            combo /= radix;
            let outcome = match digit {
                0 => LineOutcome::Old,
                d if d <= pending as u64 => LineOutcome::Flushed(d as usize - 1),
                _ => LineOutcome::New,
            };
            plan.set(line, outcome);
        }
        plan
    }

    /// The number of outcome combinations `choices` spans
    /// (`∏ (pending_i + 2)`), saturating at `u64::MAX`.
    pub fn combinations(choices: &[(u64, usize)]) -> u64 {
        choices.iter().fold(1u64, |acc, &(_, p)| acc.saturating_mul(p as u64 + 2))
    }
}

impl CrashPlan for MappedPlan {
    fn choose(&mut self, line: u64, _pending: usize) -> LineOutcome {
        self.map.get(&line).copied().unwrap_or(self.default)
    }
}
