//! The simulated NVMM device.
//!
//! [`NvmDevice`] is the single source of truth for "what is in persistent
//! memory". All persistent-object libraries in this workspace perform loads,
//! stores, flushes, fences, and atomics exclusively through it, which is what
//! makes crash and fault injection possible.
//!
//! # Concurrency contract
//!
//! The device hands out access to shared raw memory, mirroring DAX-mapped
//! NVMM. Like real memory, concurrent conflicting plain accesses to
//! overlapping bytes are forbidden; callers must synchronize (the libraries
//! use transaction ownership, allocator locks and parity range-locks).
//! Atomic accessors may race with each other on the same 8-byte word.

use std::cell::RefCell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::crash::CrashPlan;
use crate::error::{MemError, Result};
use crate::latency::LatencyModel;
use crate::poison::PoisonSet;
use crate::rawbuf::RawBuf;
use crate::stats::{DeviceStats, StatsSnapshot};
use crate::tracker::{Tracker, TrackerSnapshot};
use crate::{CACHELINE, PAGE_SIZE};

/// How faithfully the device models persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PersistenceMode {
    /// No dirty-line tracking: stores are immediately durable. Fast; used by
    /// benchmarks, where timing (not crash simulation) is the object.
    #[default]
    Fast,
    /// Full dirty-line tracking with flush/fence epochs: crashes can replay
    /// any hardware-legal persistence order. Used by crash-consistency tests.
    Precise,
}

/// Device construction parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceConfig {
    /// Persistence fidelity.
    pub mode: PersistenceMode,
    /// Latency charges (disabled by default).
    pub latency: LatencyModel,
}

impl DeviceConfig {
    /// Fast mode without latency charges.
    pub fn fast() -> Self {
        DeviceConfig { mode: PersistenceMode::Fast, latency: LatencyModel::disabled() }
    }

    /// Precise mode without latency charges (the crash-testing setup).
    pub fn precise() -> Self {
        DeviceConfig { mode: PersistenceMode::Precise, latency: LatencyModel::disabled() }
    }

    /// Fast mode with the Optane-like latency model (the benchmark setup).
    pub fn bench() -> Self {
        DeviceConfig { mode: PersistenceMode::Fast, latency: LatencyModel::optane() }
    }

    /// Replaces the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }
}

/// Panic payload used by the crash-point injector; tests downcast to this
/// to distinguish injected crashes from real bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint;

/// A complete checkpoint of an [`NvmDevice`]: raw bytes, dirty-line tracker
/// state, and the poisoned-page list.
///
/// Captured by [`NvmDevice::snapshot`] and re-applied by
/// [`NvmDevice::restore`]. Crash-sweep drivers use this to rewind a device
/// to a known state between replayed crash cases without re-running the
/// (expensive) setup workload.
pub struct DeviceSnapshot {
    pub(crate) bytes: Vec<u8>,
    pub(crate) tracker: Option<TrackerSnapshot>,
    pub(crate) poisoned: Vec<u64>,
}

impl std::fmt::Debug for DeviceSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSnapshot")
            .field("len", &self.bytes.len())
            .field("tracked", &self.tracker.is_some())
            .field("poisoned_pages", &self.poisoned.len())
            .finish()
    }
}

/// Window-word source for the atomic span-XOR walker: one monomorphized
/// loop serves both a prebuilt patch and a fused `old ⊕ new` diff,
/// building interior words with 8-byte loads.
trait XorWindowSource {
    /// Source length in bytes.
    fn len(&self) -> usize;
    /// The little-endian patch word at byte index `i` (`i + 8 <= len`).
    fn word(&self, i: usize) -> u64;
    /// The patch byte at index `i` (unaligned edge windows only).
    fn byte(&self, i: usize) -> u8;
}

struct PatchWindows<'a>(&'a [u8]);

impl XorWindowSource for PatchWindows<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    fn word(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.0[i..i + 8].try_into().expect("8-byte window"))
    }

    #[inline]
    fn byte(&self, i: usize) -> u8 {
        self.0[i]
    }
}

struct DiffWindows<'a> {
    old: &'a [u8],
    new: &'a [u8],
}

impl XorWindowSource for DiffWindows<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.new.len()
    }

    #[inline]
    fn word(&self, i: usize) -> u64 {
        let o = u64::from_le_bytes(self.old[i..i + 8].try_into().expect("8-byte window"));
        let n = u64::from_le_bytes(self.new[i..i + 8].try_into().expect("8-byte window"));
        o ^ n
    }

    #[inline]
    fn byte(&self, i: usize) -> u8 {
        self.old[i] ^ self.new[i]
    }
}

thread_local! {
    /// The current thread's armed read-scope ranges (empty = unrestricted).
    /// See [`NvmDevice::arm_read_scope`].
    static READ_SCOPE: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A simulated byte-addressable persistent memory device.
///
/// See the [module documentation](self) for semantics and the concurrency
/// contract.
pub struct NvmDevice {
    buf: RawBuf,
    tracker: Option<Tracker>,
    poison: PoisonSet,
    latency: LatencyModel,
    stats: DeviceStats,
    /// Crash-point countdown: every mutating device op decrements it; at
    /// zero the op panics with [`CrashPoint`]. Negative = disarmed.
    crash_countdown: AtomicI64,
}

impl NvmDevice {
    /// Creates a zero-filled device of `len` bytes.
    ///
    /// `len` must be a non-zero multiple of [`PAGE_SIZE`] so that page and
    /// cache-line arithmetic is exact.
    pub fn new(len: usize, config: DeviceConfig) -> Result<Self> {
        if len == 0 || len % PAGE_SIZE != 0 {
            return Err(MemError::OutOfBounds { off: 0, len, size: len });
        }
        let tracker = match config.mode {
            PersistenceMode::Fast => None,
            PersistenceMode::Precise => Some(Tracker::new()),
        };
        Ok(NvmDevice {
            buf: RawBuf::new(len),
            tracker,
            poison: PoisonSet::new(),
            latency: config.latency,
            stats: DeviceStats::default(),
            crash_countdown: AtomicI64::new(-1),
        })
    }

    /// Returns the device size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if the device has zero capacity (never true; kept for
    /// API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.len() == 0
    }

    /// Returns the number of pages on the device.
    #[inline]
    pub fn pages(&self) -> u64 {
        (self.len() / PAGE_SIZE) as u64
    }

    /// Returns the operation counters.
    #[inline]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Returns the configured latency model.
    #[inline]
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    #[inline]
    fn check_bounds(&self, off: u64, len: usize) -> Result<()> {
        let size = self.len();
        let end = off.checked_add(len as u64);
        match end {
            Some(end) if end <= size as u64 => Ok(()),
            _ => Err(MemError::OutOfBounds { off, len, size }),
        }
    }

    #[inline]
    fn check_poison(&self, off: u64, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let first = off / PAGE_SIZE as u64;
        let last = (off + len as u64 - 1) / PAGE_SIZE as u64;
        if let Some(page) = self.poison.first_poisoned_in(first, last) {
            DeviceStats::add(&self.stats.poison_hits, 1);
            return Err(MemError::Poisoned { page });
        }
        Ok(())
    }

    /// Returns the raw pointer at `off`. Bounds must already be checked.
    #[inline]
    fn ptr_at(&self, off: u64) -> *mut u8 {
        debug_assert!(off <= self.len() as u64);
        // SAFETY: callers check bounds before calling; the pointer stays
        // within the allocation.
        unsafe { self.buf.ptr().add(off as usize) }
    }

    /// Arms the crash-point injector: the `n`-th mutating device operation
    /// from now (0-based) panics with [`CrashPoint`], letting tests explore
    /// a power failure between any two persistence-relevant operations.
    ///
    /// # Re-arming semantics
    ///
    /// Arming **replaces** any previous countdown; the counts do not add up.
    /// After the injected panic fires the countdown has passed zero and keeps
    /// decrementing into negative values, so the injector is effectively
    /// disarmed — subsequent operations run normally until the next
    /// `arm_crash_after`. Calling it again (from a fresh catch-unwind scope)
    /// therefore restarts the count at `n` regardless of prior state; sweep
    /// drivers rely on this to replay one workload crashing at every
    /// successive boundary. Use [`NvmDevice::disarm_crash`] to cancel an
    /// armed countdown that has not fired yet.
    pub fn arm_crash_after(&self, n: u64) {
        self.crash_countdown.store(n as i64, Ordering::SeqCst);
    }

    /// Disarms the crash-point injector.
    pub fn disarm_crash(&self) {
        self.crash_countdown.store(-1, Ordering::SeqCst);
    }

    /// Remaining armed countdown (negative when disarmed). Tests arm a huge
    /// value, run a workload, and subtract to count its device operations.
    pub fn crash_countdown(&self) -> i64 {
        self.crash_countdown.load(Ordering::SeqCst)
    }

    /// Counts a mutating operation against the crash countdown.
    ///
    /// # Panics
    ///
    /// Panics with [`CrashPoint`] when the armed countdown reaches zero.
    #[inline]
    fn maybe_crash(&self) {
        if self.crash_countdown.load(Ordering::Relaxed) < 0 {
            return;
        }
        if self.crash_countdown.fetch_sub(1, Ordering::SeqCst) == 0 {
            std::panic::panic_any(CrashPoint);
        }
    }

    /// Copies the current content of cache line `line` out of the buffer.
    #[inline]
    fn line_content(&self, line: u64) -> [u8; CACHELINE] {
        let mut out = [0u8; CACHELINE];
        // SAFETY: `line` derives from a bounds-checked offset; device length
        // is a multiple of PAGE_SIZE, hence of CACHELINE.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.ptr_at(line * CACHELINE as u64),
                out.as_mut_ptr(),
                CACHELINE,
            );
        }
        out
    }

    #[inline]
    fn lines_of(off: u64, len: usize) -> std::ops::Range<u64> {
        if len == 0 {
            return 0..0;
        }
        let first = off / CACHELINE as u64;
        let last = (off + len as u64 - 1) / CACHELINE as u64;
        first..last + 1
    }

    // ------------------------------------------------------------------
    // Loads
    // ------------------------------------------------------------------

    /// Reads `dst.len()` bytes starting at `off`.
    ///
    /// Fails with [`MemError::Poisoned`] if the range touches a poisoned
    /// page — the `SIGBUS` analogue.
    pub fn read(&self, off: u64, dst: &mut [u8]) -> Result<()> {
        self.check_bounds(off, dst.len())?;
        self.check_poison(off, dst.len())?;
        self.note_read_scope(off, dst.len());
        DeviceStats::add(&self.stats.bytes_read, dst.len() as u64);
        DeviceStats::add(&self.stats.read_ops, 1);
        if self.latency.read_ns_per_line > 0 {
            let lines = Self::lines_of(off, dst.len());
            LatencyModel::charge(self.latency.read_ns_per_line * (lines.end - lines.start));
        }
        // SAFETY: bounds checked; `dst` is exclusive; contract forbids
        // concurrent conflicting writes to this range.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr_at(off), dst.as_mut_ptr(), dst.len());
        }
        Ok(())
    }

    /// Returns a borrowed view of `len` bytes at `off`.
    ///
    /// The view is valid while no concurrent write to the range occurs
    /// (caller-enforced, like a load through a DAX mapping).
    pub fn read_slice(&self, off: u64, len: usize) -> Result<&[u8]> {
        self.check_bounds(off, len)?;
        self.check_poison(off, len)?;
        self.note_read_scope(off, len);
        DeviceStats::add(&self.stats.bytes_read, len as u64);
        DeviceStats::add(&self.stats.read_ops, 1);
        if self.latency.read_ns_per_line > 0 {
            let lines = Self::lines_of(off, len);
            LatencyModel::charge(self.latency.read_ns_per_line * (lines.end - lines.start));
        }
        // SAFETY: bounds checked; the contract forbids conflicting writes
        // while the reference is live.
        Ok(unsafe { std::slice::from_raw_parts(self.ptr_at(off), len) })
    }

    /// Reads a little-endian `u64` at an 8-byte-aligned offset atomically.
    pub fn atomic_load_u64(&self, off: u64) -> Result<u64> {
        self.check_aligned8(off)?;
        self.check_poison(off, 8)?;
        // One cache line.
        LatencyModel::charge(self.latency.read_ns_per_line);
        // SAFETY: aligned and in-bounds; AtomicU64 may alias plain memory
        // that is only accessed through this device's synchronized paths.
        let atom = unsafe { &*(self.ptr_at(off) as *const AtomicU64) };
        Ok(atom.load(Ordering::Acquire))
    }

    // ------------------------------------------------------------------
    // Stores
    // ------------------------------------------------------------------

    /// Writes `src` at `off` through the (simulated) cache. Not durable
    /// until flushed and fenced.
    pub fn write(&self, off: u64, src: &[u8]) -> Result<()> {
        self.check_bounds(off, src.len())?;
        self.maybe_crash();
        DeviceStats::add(&self.stats.bytes_written, src.len() as u64);
        if self.latency.write_ns_per_line > 0 {
            let lines = Self::lines_of(off, src.len());
            LatencyModel::charge(self.latency.write_ns_per_line * (lines.end - lines.start));
        }
        if let Some(tracker) = &self.tracker {
            for line in Self::lines_of(off, src.len()) {
                tracker.note_store(line, &self.line_content(line));
            }
        }
        // SAFETY: bounds checked; contract forbids conflicting concurrent
        // access.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr_at(off), src.len());
        }
        Ok(())
    }

    /// Writes `src` at `off` with non-temporal stores: the data bypasses the
    /// cache and becomes durable at the next fence.
    pub fn write_nt(&self, off: u64, src: &[u8]) -> Result<()> {
        self.check_bounds(off, src.len())?;
        self.maybe_crash();
        DeviceStats::add(&self.stats.bytes_written_nt, src.len() as u64);
        if self.latency.nt_ns_per_line > 0 {
            let lines = Self::lines_of(off, src.len());
            LatencyModel::charge(self.latency.nt_ns_per_line * (lines.end - lines.start));
        }
        if let Some(tracker) = &self.tracker {
            // Track per line: capture pre-content, apply the sub-write, then
            // record the flushed (post) content.
            for line in Self::lines_of(off, src.len()) {
                let pre = self.line_content(line);
                let line_start = line * CACHELINE as u64;
                let copy_start = line_start.max(off);
                let copy_end = (line_start + CACHELINE as u64).min(off + src.len() as u64);
                // SAFETY: sub-range of a bounds-checked write.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        src.as_ptr().add((copy_start - off) as usize),
                        self.ptr_at(copy_start),
                        (copy_end - copy_start) as usize,
                    );
                }
                let post = self.line_content(line);
                tracker.note_store_nt(line, &pre, &post);
            }
        } else {
            // SAFETY: bounds checked; contract forbids conflicting access.
            unsafe {
                std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr_at(off), src.len());
            }
        }
        Ok(())
    }

    /// Fills `len` bytes at `off` with `byte` (a cached memset).
    pub fn set(&self, off: u64, byte: u8, len: usize) -> Result<()> {
        self.check_bounds(off, len)?;
        self.maybe_crash();
        DeviceStats::add(&self.stats.bytes_written, len as u64);
        if let Some(tracker) = &self.tracker {
            for line in Self::lines_of(off, len) {
                tracker.note_store(line, &self.line_content(line));
            }
        }
        // SAFETY: bounds checked; contract forbids conflicting access.
        unsafe {
            std::ptr::write_bytes(self.ptr_at(off), byte, len);
        }
        Ok(())
    }

    /// Stores a `u64` at an 8-byte-aligned offset atomically (x86 guarantees
    /// 8-byte aligned stores are failure-atomic; paper §2.3).
    pub fn atomic_store_u64(&self, off: u64, val: u64) -> Result<()> {
        self.check_aligned8(off)?;
        self.maybe_crash();
        DeviceStats::add(&self.stats.atomic_stores, 1);
        if self.latency.atomic_rmw_ns > 0 {
            LatencyModel::charge(self.latency.atomic_rmw_ns);
        }
        if let Some(tracker) = &self.tracker {
            let line = off / CACHELINE as u64;
            tracker.note_store(line, &self.line_content(line));
        }
        // SAFETY: aligned, in-bounds.
        let atom = unsafe { &*(self.ptr_at(off) as *const AtomicU64) };
        atom.store(val, Ordering::Release);
        Ok(())
    }

    /// Atomically XORs `val` into the `u64` at an 8-byte-aligned offset.
    /// This is the lock-free small-parity-update primitive (paper §3.5).
    pub fn atomic_xor_u64(&self, off: u64, val: u64) -> Result<()> {
        self.check_aligned8(off)?;
        self.maybe_crash();
        DeviceStats::add(&self.stats.atomic_xors, 1);
        if self.latency.atomic_rmw_ns > 0 {
            LatencyModel::charge(self.latency.atomic_rmw_ns);
        }
        if let Some(tracker) = &self.tracker {
            let line = off / CACHELINE as u64;
            tracker.note_store(line, &self.line_content(line));
        }
        // SAFETY: aligned, in-bounds.
        let atom = unsafe { &*(self.ptr_at(off) as *const AtomicU64) };
        atom.fetch_xor(val, Ordering::AcqRel);
        Ok(())
    }

    /// Atomically compares-and-swaps the `u64` at an 8-byte-aligned offset.
    /// Returns the value observed *before* the operation: the CAS took
    /// effect iff the return value equals `expected`. This is the
    /// publication primitive of the detectable-CAS subsystem
    /// (`pangolin::ploc`): an aligned 8-byte store is failure-atomic
    /// (paper §2.3), so under the per-line crash model the word persists
    /// as either the old or the new value, never torn.
    pub fn atomic_cas_u64(&self, off: u64, expected: u64, new: u64) -> Result<u64> {
        self.check_aligned8(off)?;
        self.maybe_crash();
        DeviceStats::add(&self.stats.atomic_cas_ops, 1);
        if self.latency.atomic_rmw_ns > 0 {
            LatencyModel::charge(self.latency.atomic_rmw_ns);
        }
        if let Some(tracker) = &self.tracker {
            let line = off / CACHELINE as u64;
            tracker.note_store(line, &self.line_content(line));
        }
        // SAFETY: aligned, in-bounds.
        let atom = unsafe { &*(self.ptr_at(off) as *const AtomicU64) };
        match atom.compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) => Ok(prev),
            Err(prev) => Ok(prev),
        }
    }

    /// Tags `lines` parity cache lines patched by a word-granular CAS
    /// (the delta-checksum + single-line XOR fast path). The ploc commit
    /// path calls this once per successful CAS with the number of
    /// *distinct* parity lines it XOR-patched, so regression tests can
    /// pin the one-parity-line-per-word-CAS invariant
    /// ([`StatsSnapshot::atomic_parity_patches`]).
    pub fn note_atomic_parity_patch(&self, lines: u64) {
        DeviceStats::add(&self.stats.atomic_parity_patches, lines);
    }

    /// Tags `bytes` of a just-issued read as a *commit-time old-data
    /// read*. The commit pipeline calls this exactly once next to the
    /// single per-range read it performs, so regression tests can assert
    /// the one-read-per-modified-range invariant from
    /// [`StatsSnapshot::commit_old_reads`] /
    /// [`StatsSnapshot::commit_old_bytes`].
    pub fn note_commit_old_read(&self, bytes: u64) {
        DeviceStats::add(&self.stats.commit_old_reads, 1);
        DeviceStats::add(&self.stats.commit_old_bytes, bytes);
    }

    /// Tags one library-level checksum verification pass over `bytes`
    /// object bytes. The read path calls this next to every Adler32
    /// verification it performs, so regression tests can pin that
    /// cache-hit verified reads run **zero** checksum passes
    /// ([`StatsSnapshot::csum_passes`]).
    pub fn note_csum_pass(&self, bytes: u64) {
        DeviceStats::add(&self.stats.csum_passes, 1);
        DeviceStats::add(&self.stats.csum_bytes, bytes);
    }

    /// Tags one verified read of `bytes` served from the DRAM
    /// verified-generation cache ([`StatsSnapshot::vcache_hits`]).
    pub fn note_vcache_hit(&self, bytes: u64) {
        DeviceStats::add(&self.stats.vcache_hits, 1);
        DeviceStats::add(&self.stats.vcache_hit_bytes, bytes);
    }

    /// Tags one group commit that carried `txns` logical transactions
    /// through a single redo-log persist / commit fence / parity-patch
    /// window ([`StatsSnapshot::group_commits`] /
    /// [`StatsSnapshot::group_txns`]). The batched commit entry point
    /// calls this once per batch, so fence-amortization tests can relate
    /// `fences` to the logical transaction count.
    pub fn note_group_commit(&self, txns: u64) {
        DeviceStats::add(&self.stats.group_commits, 1);
        DeviceStats::add(&self.stats.group_txns, txns);
    }

    /// Tags one completed recovery sweep of parity shard `shard`
    /// ([`StatsSnapshot::recovery_sweeps`]); shard ids at or above
    /// [`crate::stats::STAT_SHARDS`] fold into the last slot.
    pub fn note_recovery_sweep(&self, shard: usize) {
        DeviceStats::add_shard(&self.stats.recovery_sweeps, shard, 1);
    }

    /// Tags one completed scrub pass of parity shard `shard`
    /// ([`StatsSnapshot::scrub_passes`]).
    pub fn note_scrub_pass(&self, shard: usize) {
        DeviceStats::add_shard(&self.stats.scrub_passes, shard, 1);
    }

    /// Tags one injected media fault (poisoned page)
    /// ([`StatsSnapshot::poison_injected`]).
    pub fn note_poison_injected(&self) {
        DeviceStats::add(&self.stats.poison_injected, 1);
    }

    /// Tags one injected scribble ([`StatsSnapshot::scribbles_injected`]).
    pub fn note_scribble_injected(&self) {
        DeviceStats::add(&self.stats.scribbles_injected, 1);
    }

    /// Tags one successful page/object repair ([`StatsSnapshot::repairs_ok`]).
    pub fn note_repair_ok(&self) {
        DeviceStats::add(&self.stats.repairs_ok, 1);
    }

    /// Tags one permanently failed repair — a double fault parity could not
    /// reconstruct ([`StatsSnapshot::repairs_failed`]).
    pub fn note_repair_failed(&self) {
        DeviceStats::add(&self.stats.repairs_failed, 1);
    }

    /// Tags one online repair performed by a background scrub worker of
    /// parity shard `shard` ([`StatsSnapshot::scrub_repairs`]).
    pub fn note_scrub_repair(&self, shard: usize, n: u64) {
        DeviceStats::add_shard(&self.stats.scrub_repairs, shard, n);
    }

    /// Tags one zone moved to the persistent quarantine set
    /// ([`StatsSnapshot::zones_quarantined`]).
    pub fn note_zone_quarantined(&self) {
        DeviceStats::add(&self.stats.zones_quarantined, 1);
    }

    /// Declares the byte ranges the **current thread's** subsequent
    /// [`NvmDevice::read`]/[`NvmDevice::read_slice`] calls are expected
    /// to stay within. A read outside every armed range increments
    /// [`StatsSnapshot::scope_violations`] (the read still succeeds —
    /// this is an invariant monitor, not an access control). Sharded
    /// recovery and scrub workers arm their own shard's zone ranges so
    /// tests can pin that a shard sweep never reads another shard's
    /// zones. Thread-local; call [`NvmDevice::disarm_read_scope`] before
    /// the thread does unrelated work.
    pub fn arm_read_scope(ranges: &[(u64, u64)]) {
        READ_SCOPE.with(|s| {
            let mut scope = s.borrow_mut();
            scope.clear();
            scope.extend_from_slice(ranges);
        });
    }

    /// Clears the current thread's read scope (reads are unrestricted
    /// again).
    pub fn disarm_read_scope() {
        READ_SCOPE.with(|s| s.borrow_mut().clear());
    }

    /// Counts a read against the thread's armed scope, if any.
    #[inline]
    fn note_read_scope(&self, off: u64, len: usize) {
        READ_SCOPE.with(|s| {
            let scope = s.borrow();
            if scope.is_empty() {
                return;
            }
            let end = off + len as u64;
            if !scope.iter().any(|&(lo, hi)| off >= lo && end <= hi) {
                DeviceStats::add(&self.stats.scope_violations, 1);
            }
        });
    }

    /// Bookkeeping for a cache line about to be dirtied by an XOR path:
    /// captures the pre-content for the crash tracker (Precise mode).
    #[inline]
    fn note_xor_line(&self, line: u64) {
        if let Some(tracker) = &self.tracker {
            tracker.note_store(line, &self.line_content(line));
        }
    }

    /// Computes `old ⊕ new` word by word and XORs the non-zero words into
    /// the range at `off` with plain (vectorized) stores — the diff, the
    /// zero-skip and the XOR fused into one pass, so all-zero diff words
    /// never touch the device or charge its latency model. Returns `true`
    /// if any byte was actually modified (callers skip the trailing
    /// persist otherwise).
    ///
    /// This is the bulk parity path for write-backs where the caller holds
    /// both the old and the new content; callers must hold an exclusive
    /// parity range-lock covering the range (paper §3.5's "hybrid"
    /// scheme). `old` and `new` must be equal-length.
    pub fn xor_diff_range(&self, off: u64, old: &[u8], new: &[u8]) -> Result<bool> {
        assert_eq!(old.len(), new.len(), "diff XOR requires equal-length ranges");
        self.check_bounds(off, new.len())?;
        self.maybe_crash();
        let len = new.len();
        let ptr = self.ptr_at(off);
        let mut touched = 0u64; // bytes actually XORed
        let mut lines = 0u64; // distinct cache lines dirtied
        let mut noted = u64::MAX;
        let mut i = 0usize;
        // Byte ops at the unaligned edges, word-at-a-time in the middle.
        // An 8-byte device-aligned word never straddles a cache line, so
        // per-unit line accounting below is exact.
        // SAFETY: all accesses stay within the bounds-checked range.
        unsafe {
            macro_rules! touch_line {
                ($pos:expr) => {{
                    let line = (off + $pos as u64) / CACHELINE as u64;
                    if line != noted {
                        noted = line;
                        lines += 1;
                        self.note_xor_line(line);
                    }
                }};
            }
            while i < len && (off as usize + i) % 8 != 0 {
                let d = old[i] ^ new[i];
                if d != 0 {
                    touch_line!(i);
                    *ptr.add(i) ^= d;
                    touched += 1;
                }
                i += 1;
            }
            while i + 8 <= len {
                let o = std::ptr::read_unaligned(old.as_ptr().add(i) as *const u64);
                let n = std::ptr::read_unaligned(new.as_ptr().add(i) as *const u64);
                let d = o ^ n;
                if d != 0 {
                    touch_line!(i);
                    let p = ptr.add(i) as *mut u64;
                    std::ptr::write_unaligned(p, std::ptr::read_unaligned(p) ^ d);
                    touched += 8;
                }
                i += 8;
            }
            while i < len {
                let d = old[i] ^ new[i];
                if d != 0 {
                    touch_line!(i);
                    *ptr.add(i) ^= d;
                    touched += 1;
                }
                i += 1;
            }
        }
        if touched > 0 {
            DeviceStats::add(&self.stats.xor_bytes, touched);
            DeviceStats::add(&self.stats.bytes_written, touched);
            if self.latency.write_ns_per_line > 0 {
                LatencyModel::charge(self.latency.write_ns_per_line * lines);
            }
        }
        Ok(touched > 0)
    }

    /// Shared walker of the atomic span-XOR paths: visits every
    /// 8-byte-aligned window overlapping `[off, off+len)`, assembles the
    /// window's patch word from `src` (zero-padded at the two unaligned
    /// edges), and atomically XORs the non-zero words in. Returns `true`
    /// if any word was applied.
    ///
    /// Latency accounting: unlike [`NvmDevice::atomic_xor_u64`] (an
    /// isolated RMW, charged a full NVM round trip), a span of adjacent
    /// word RMWs keeps its cache line resident — real lock-prefixed
    /// instructions to one cached line pipeline and the line takes a
    /// single media write-back — so the charge here is
    /// `atomic_rmw_ns` per *touched cache line*, not per word.
    fn atomic_xor_span_walk<S: XorWindowSource>(&self, off: u64, src: &S) -> Result<bool> {
        let len = src.len() as u64;
        if len == 0 {
            return Ok(false);
        }
        let a_start = crate::align_down(off as usize, 8) as u64;
        let a_end = crate::align_up((off + len) as usize, 8) as u64;
        self.check_bounds(a_start, (a_end - a_start) as usize)?;
        self.maybe_crash();
        let mut words = 0u64;
        let mut lines = 0u64;
        let mut noted = u64::MAX;
        let mut w_off = a_start;
        while w_off < a_end {
            let lo = w_off.max(off);
            let hi = (w_off + 8).min(off + len);
            let v = if hi - lo == 8 {
                src.word((lo - off) as usize)
            } else {
                let mut word = [0u8; 8];
                for i in lo..hi {
                    word[(i - w_off) as usize] = src.byte((i - off) as usize);
                }
                u64::from_le_bytes(word)
            };
            if v != 0 {
                // An aligned 8-byte word never straddles a cache line.
                let line = w_off / CACHELINE as u64;
                if line != noted {
                    noted = line;
                    lines += 1;
                    self.note_xor_line(line);
                }
                // SAFETY: aligned, in-bounds.
                let atom = unsafe { &*(self.ptr_at(w_off) as *const AtomicU64) };
                atom.fetch_xor(v, Ordering::AcqRel);
                words += 1;
            }
            w_off += 8;
        }
        if words > 0 {
            DeviceStats::add(&self.stats.atomic_xors, words);
            if self.latency.atomic_rmw_ns > 0 {
                LatencyModel::charge(self.latency.atomic_rmw_ns * lines);
            }
        }
        Ok(words > 0)
    }

    /// Atomically XORs `patch` into the range at `off`, word by word, with
    /// lock-free atomics (the small-parity-update primitive batched over a
    /// span; see `atomic_xor_span_walk` for the latency accounting).
    /// All-zero patch words are skipped. Returns `true` if
    /// anything was applied — callers skip their trailing persist
    /// otherwise.
    pub fn atomic_xor_patch_span(&self, off: u64, patch: &[u8]) -> Result<bool> {
        self.atomic_xor_span_walk(off, &PatchWindows(patch))
    }

    /// Like [`NvmDevice::atomic_xor_patch_span`] with the patch computed
    /// on the fly as `old ⊕ new` — diff, zero-skip and atomic XOR fused,
    /// no intermediate patch buffer. `old` and `new` must be equal-length.
    pub fn atomic_xor_diff_span(&self, off: u64, old: &[u8], new: &[u8]) -> Result<bool> {
        assert_eq!(old.len(), new.len(), "diff XOR requires equal-length ranges");
        self.atomic_xor_span_walk(off, &DiffWindows { old, new })
    }

    /// XORs `src` into the range at `off` with plain (vectorized) stores.
    ///
    /// This is the bulk parity path; callers must hold an exclusive parity
    /// range-lock covering the range (paper §3.5's "hybrid" scheme).
    pub fn xor_range(&self, off: u64, src: &[u8]) -> Result<()> {
        self.check_bounds(off, src.len())?;
        self.maybe_crash();
        DeviceStats::add(&self.stats.xor_bytes, src.len() as u64);
        DeviceStats::add(&self.stats.bytes_written, src.len() as u64);
        if self.latency.write_ns_per_line > 0 {
            let lines = Self::lines_of(off, src.len());
            LatencyModel::charge(self.latency.write_ns_per_line * (lines.end - lines.start));
        }
        if let Some(tracker) = &self.tracker {
            for line in Self::lines_of(off, src.len()) {
                tracker.note_store(line, &self.line_content(line));
            }
        }
        let ptr = self.ptr_at(off);
        let mut i = 0usize;
        // Word-at-a-time XOR for the aligned middle, byte ops at the edges.
        // SAFETY: all accesses stay within the bounds-checked range.
        unsafe {
            while i < src.len() && (off as usize + i) % 8 != 0 {
                *ptr.add(i) ^= src[i];
                i += 1;
            }
            while i + 8 <= src.len() {
                let d = ptr.add(i) as *mut u64;
                let s = std::ptr::read_unaligned(src.as_ptr().add(i) as *const u64);
                std::ptr::write_unaligned(d, std::ptr::read_unaligned(d) ^ s);
                i += 8;
            }
            while i < src.len() {
                *ptr.add(i) ^= src[i];
                i += 1;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Issues `CLWB` for every cache line overlapping the range. The data is
    /// durable only after the next [`NvmDevice::drain`].
    pub fn flush(&self, off: u64, len: usize) -> Result<()> {
        self.check_bounds(off, len)?;
        self.maybe_crash();
        let lines = Self::lines_of(off, len);
        let n_lines = lines.end - lines.start;
        DeviceStats::add(&self.stats.lines_flushed, n_lines);
        if self.latency.flush_ns_per_line > 0 {
            LatencyModel::charge(self.latency.flush_ns_per_line * n_lines);
        }
        if let Some(tracker) = &self.tracker {
            for line in lines {
                tracker.note_flush(line, &self.line_content(line));
            }
        }
        Ok(())
    }

    /// Issues a store fence (`SFENCE`): all previously flushed lines and
    /// non-temporal stores become durable.
    pub fn drain(&self) {
        self.maybe_crash();
        DeviceStats::add(&self.stats.fences, 1);
        if self.latency.fence_ns > 0 {
            LatencyModel::charge(self.latency.fence_ns);
        }
        if let Some(tracker) = &self.tracker {
            tracker.drain();
        }
    }

    /// Flush + drain: makes the range durable (`pmem_persist` analogue).
    pub fn persist(&self, off: u64, len: usize) -> Result<()> {
        self.flush(off, len)?;
        self.drain();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Faults and crashes
    // ------------------------------------------------------------------

    /// Marks page index `page` as poisoned: subsequent reads covering it
    /// fail with [`MemError::Poisoned`] (the MCE/`SIGBUS` analogue).
    pub fn poison_page(&self, page: u64) -> Result<()> {
        if page >= self.pages() {
            return Err(MemError::OutOfBounds {
                off: page * PAGE_SIZE as u64,
                len: PAGE_SIZE,
                size: self.len(),
            });
        }
        self.poison.poison(page);
        Ok(())
    }

    /// Returns `true` if `page` is poisoned.
    pub fn is_poisoned_page(&self, page: u64) -> bool {
        self.poison.is_poisoned(page)
    }

    /// Lists all poisoned pages (the kernel's persistent bad-page list).
    pub fn poisoned_pages(&self) -> Vec<u64> {
        self.poison.all()
    }

    /// Repairs a poisoned page by rewriting it with `data` and clearing the
    /// poison, then persisting — the ACPI clear-uncorrectable flow.
    pub fn repair_page(&self, page: u64, data: &[u8]) -> Result<()> {
        if data.len() != PAGE_SIZE {
            return Err(MemError::OutOfBounds {
                off: page * PAGE_SIZE as u64,
                len: data.len(),
                size: PAGE_SIZE,
            });
        }
        let off = page * PAGE_SIZE as u64;
        self.check_bounds(off, PAGE_SIZE)?;
        self.write(off, data)?;
        self.persist(off, PAGE_SIZE)?;
        self.poison.clear(page);
        Ok(())
    }

    /// Corrupts memory directly, bypassing the store path: the model of a
    /// software "scribble" (wild pointer / buffer overrun) that hardware ECC
    /// cannot detect. The corruption is immediately durable.
    pub fn scribble(&self, off: u64, src: &[u8]) -> Result<()> {
        self.check_bounds(off, src.len())?;
        if let Some(tracker) = &self.tracker {
            for line in Self::lines_of(off, src.len()) {
                tracker.note_store(line, &self.line_content(line));
            }
        }
        // SAFETY: bounds checked.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr_at(off), src.len());
        }
        if let Some(tracker) = &self.tracker {
            for line in Self::lines_of(off, src.len()) {
                tracker.note_flush(line, &self.line_content(line));
            }
            tracker.drain();
        }
        Ok(())
    }

    /// Simulates a power failure: every dirty line reverts to a state the
    /// hardware could have left it in, as chosen by `plan`.
    ///
    /// The caller must have quiesced all other device users.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::Untracked`] if the device was built in
    /// [`PersistenceMode::Fast`], which does not track dirty lines.
    pub fn simulate_crash(&self, plan: &mut dyn CrashPlan) -> Result<()> {
        let tracker = self.tracker.as_ref().ok_or(MemError::Untracked)?;
        tracker.crash_with(
            plan,
            |line| self.line_content(line),
            |line, content| {
                // SAFETY: line indices derive from bounds-checked stores.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        content.as_ptr(),
                        self.ptr_at(line * CACHELINE as u64),
                        CACHELINE,
                    );
                }
            },
        );
        Ok(())
    }

    /// Returns the indices of cache lines with unsettled persistence state
    /// (testing/diagnostics; empty in Fast mode).
    pub fn dirty_lines(&self) -> Vec<u64> {
        self.tracker.as_ref().map(|t| t.dirty_lines()).unwrap_or_default()
    }

    /// Returns `(line index, pending flush captures)` for every cache line
    /// whose persistence state is still unsettled, sorted by line index
    /// (empty in Fast mode).
    ///
    /// Each listed line has `pending + 2` possible crash outcomes
    /// ([`crate::LineOutcome::Old`], `pending` distinct
    /// [`crate::LineOutcome::Flushed`] captures,
    /// [`crate::LineOutcome::New`]), so the full crash-outcome space of the
    /// device is `∏ (pending_i + 2)` — the quantity exhaustive small-model
    /// sweeps enumerate via [`crate::MappedPlan::nth_combination`].
    pub fn dirty_line_choices(&self) -> Vec<(u64, usize)> {
        self.tracker
            .as_ref()
            .map(|t| t.dirty_line_choices(|line| self.line_content(line)))
            .unwrap_or_default()
    }

    /// Captures the complete device state — raw bytes, dirty-line tracker
    /// state, and the poisoned-page list — into a [`DeviceSnapshot`] that
    /// [`NvmDevice::restore`] can re-apply later.
    ///
    /// The copy bypasses poison checks (a snapshot is a simulator-level
    /// checkpoint, not a load) and does not count against the crash-point
    /// countdown. The caller must have quiesced all other device users.
    pub fn snapshot(&self) -> DeviceSnapshot {
        let mut bytes = vec![0u8; self.len()];
        // SAFETY: the copy covers exactly the allocation; callers quiesce
        // concurrent writers per the documented contract.
        unsafe {
            std::ptr::copy_nonoverlapping(self.buf.ptr(), bytes.as_mut_ptr(), self.len());
        }
        DeviceSnapshot {
            bytes,
            tracker: self.tracker.as_ref().map(|t| t.export()),
            poisoned: self.poison.all(),
        }
    }

    /// Restores the device to a previously captured [`DeviceSnapshot`]:
    /// raw bytes, dirty-line state, and poisoned pages all revert.
    ///
    /// Like [`NvmDevice::snapshot`] this is a simulator-level operation: it
    /// bypasses the store path, counts nothing against the crash countdown,
    /// and the caller must have quiesced all other device users. The crash
    /// countdown itself is left untouched — re-arm or disarm explicitly.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfBounds`] if the snapshot was taken from a
    /// device of a different size, and with [`MemError::Untracked`] if the
    /// snapshot carries dirty-line state but this device was built in
    /// [`PersistenceMode::Fast`].
    pub fn restore(&self, snap: &DeviceSnapshot) -> Result<()> {
        if snap.bytes.len() != self.len() {
            return Err(MemError::OutOfBounds { off: 0, len: snap.bytes.len(), size: self.len() });
        }
        match (&self.tracker, &snap.tracker) {
            (Some(tracker), Some(ts)) => tracker.import(ts),
            (Some(tracker), None) => tracker.import(&TrackerSnapshot::default()),
            (None, Some(_)) => return Err(MemError::Untracked),
            (None, None) => {}
        }
        // SAFETY: length verified above; callers quiesce concurrent users.
        unsafe {
            std::ptr::copy_nonoverlapping(snap.bytes.as_ptr(), self.buf.ptr(), self.len());
        }
        for page in self.poison.all() {
            self.poison.clear(page);
        }
        for &page in &snap.poisoned {
            self.poison.poison(page);
        }
        Ok(())
    }

    #[inline]
    fn check_aligned8(&self, off: u64) -> Result<()> {
        self.check_bounds(off, 8)?;
        if off % 8 != 0 {
            return Err(MemError::Misaligned { off, align: 8 });
        }
        Ok(())
    }
}

impl std::fmt::Debug for NvmDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmDevice")
            .field("len", &self.len())
            .field("precise", &self.tracker.is_some())
            .field("poisoned_pages", &self.poison.all().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{AllNew, AllOld, LineOutcome};

    fn dev(mode: PersistenceMode) -> NvmDevice {
        NvmDevice::new(64 * 1024, DeviceConfig { mode, latency: LatencyModel::disabled() }).unwrap()
    }

    #[test]
    fn basic_write_read_roundtrip() {
        let d = dev(PersistenceMode::Fast);
        d.write(100, b"pangolin").unwrap();
        let mut out = [0u8; 8];
        d.read(100, &mut out).unwrap();
        assert_eq!(&out, b"pangolin");
        assert_eq!(d.read_slice(100, 8).unwrap(), b"pangolin");
    }

    #[test]
    fn bounds_are_enforced() {
        let d = dev(PersistenceMode::Fast);
        assert!(matches!(
            d.write(d.len() as u64 - 4, b"12345678"),
            Err(MemError::OutOfBounds { .. })
        ));
        let mut out = [0u8; 16];
        assert!(d.read(u64::MAX - 2, &mut out).is_err());
        assert!(NvmDevice::new(1000, DeviceConfig::fast()).is_err(), "non-page-multiple size");
    }

    #[test]
    fn unflushed_store_lost_on_pessimistic_crash() {
        let d = dev(PersistenceMode::Precise);
        d.write(0, &[7u8; 64]).unwrap();
        d.simulate_crash(&mut AllOld).unwrap();
        assert_eq!(d.read_slice(0, 64).unwrap(), &[0u8; 64][..]);
    }

    #[test]
    fn persisted_store_survives_pessimistic_crash() {
        let d = dev(PersistenceMode::Precise);
        d.write(0, &[7u8; 64]).unwrap();
        d.persist(0, 64).unwrap();
        d.simulate_crash(&mut AllOld).unwrap();
        assert_eq!(d.read_slice(0, 64).unwrap(), &[7u8; 64][..]);
    }

    #[test]
    fn evicted_store_can_survive_without_flush() {
        let d = dev(PersistenceMode::Precise);
        d.write(0, &[9u8; 16]).unwrap();
        d.simulate_crash(&mut AllNew).unwrap();
        assert_eq!(d.read_slice(0, 16).unwrap(), &[9u8; 16][..]);
    }

    #[test]
    fn nt_store_durable_after_fence_only() {
        let d = dev(PersistenceMode::Precise);
        d.write_nt(128, &[3u8; 32]).unwrap();
        // Without a fence the NT store may be lost.
        d.simulate_crash(&mut AllOld).unwrap();
        assert_eq!(d.read_slice(128, 32).unwrap(), &[0u8; 32][..]);

        d.write_nt(128, &[3u8; 32]).unwrap();
        d.drain();
        d.simulate_crash(&mut AllOld).unwrap();
        assert_eq!(d.read_slice(128, 32).unwrap(), &[3u8; 32][..]);
    }

    #[test]
    fn poison_blocks_reads_until_repair() {
        let d = dev(PersistenceMode::Fast);
        d.write(4096, &[5u8; 64]).unwrap();
        d.poison_page(1).unwrap();
        let mut out = [0u8; 4];
        assert_eq!(d.read(4096, &mut out), Err(MemError::Poisoned { page: 1 }));
        assert_eq!(d.read(8192, &mut out), Ok(()), "other pages unaffected");
        // Writes are allowed; reads still fail until a full-page repair.
        d.write(4096, &[6u8; 8]).unwrap();
        assert!(d.read(4100, &mut out).is_err());
        d.repair_page(1, &[0xEE; PAGE_SIZE]).unwrap();
        d.read(4096, &mut out).unwrap();
        assert_eq!(out, [0xEE; 4]);
        assert!(d.poisoned_pages().is_empty());
    }

    #[test]
    fn poison_spanning_read_reports_first_bad_page() {
        let d = dev(PersistenceMode::Fast);
        d.poison_page(2).unwrap();
        let mut buf = vec![0u8; 3 * PAGE_SIZE];
        assert_eq!(d.read(PAGE_SIZE as u64, &mut buf), Err(MemError::Poisoned { page: 2 }));
    }

    #[test]
    fn atomic_store_and_load() {
        let d = dev(PersistenceMode::Fast);
        d.atomic_store_u64(64, 0xDEAD_BEEF).unwrap();
        assert_eq!(d.atomic_load_u64(64).unwrap(), 0xDEAD_BEEF);
        assert!(matches!(d.atomic_store_u64(61, 1), Err(MemError::Misaligned { .. })));
    }

    #[test]
    fn atomic_xor_commutes() {
        let d = dev(PersistenceMode::Fast);
        d.atomic_store_u64(0, 0).unwrap();
        d.atomic_xor_u64(0, 0xFF00).unwrap();
        d.atomic_xor_u64(0, 0x00FF).unwrap();
        assert_eq!(d.atomic_load_u64(0).unwrap(), 0xFFFF);
        // XOR is its own inverse.
        d.atomic_xor_u64(0, 0xFFFF).unwrap();
        assert_eq!(d.atomic_load_u64(0).unwrap(), 0);
    }

    #[test]
    fn xor_range_matches_bytewise() {
        let d = dev(PersistenceMode::Fast);
        let base: Vec<u8> = (0..100u8).collect();
        let patch: Vec<u8> = (0..100u8).map(|b| b.wrapping_mul(31)).collect();
        d.write(3, &base).unwrap(); // deliberately misaligned
        d.xor_range(3, &patch).unwrap();
        let got = d.read_slice(3, 100).unwrap();
        for i in 0..100 {
            assert_eq!(got[i], base[i] ^ patch[i], "byte {i}");
        }
    }

    #[test]
    fn xor_diff_range_matches_bytewise_and_skips_zero() {
        let d = dev(PersistenceMode::Fast);
        let base: Vec<u8> = (0..200u8).collect();
        d.write(5, &base).unwrap(); // misaligned on purpose
                                    // A diff that is zero except for two islands (one mid-word, one
                                    // at the tail byte).
        let old: Vec<u8> = (0..200u8).map(|b| b.wrapping_mul(7)).collect();
        let mut new = old.clone();
        new[40..56].copy_from_slice(&[0xFF; 16]);
        new[199] ^= 0x01;
        let s0 = d.stats();
        let touched = d.xor_diff_range(5, &old, &new).unwrap();
        assert!(touched);
        let got = d.read_slice(5, 200).unwrap();
        for i in 0..200 {
            assert_eq!(got[i], base[i] ^ old[i] ^ new[i], "byte {i}");
        }
        // Only the non-zero diff words hit the device.
        let delta = d.stats().delta_since(&s0);
        assert!(delta.xor_bytes < 40, "zero diff words skipped, got {}", delta.xor_bytes);
        // Identical contents: nothing touched at all.
        let s1 = d.stats();
        assert!(!d.xor_diff_range(5, &old, &old).unwrap());
        assert_eq!(d.stats().delta_since(&s1).xor_bytes, 0);
    }

    #[test]
    fn read_and_commit_old_counters() {
        let d = dev(PersistenceMode::Fast);
        let mut buf = [0u8; 32];
        let s0 = d.stats();
        d.read(0, &mut buf).unwrap();
        d.note_commit_old_read(32);
        let delta = d.stats().delta_since(&s0);
        assert_eq!(delta.bytes_read, 32);
        assert_eq!(delta.read_ops, 1);
        assert_eq!(delta.commit_old_reads, 1);
        assert_eq!(delta.commit_old_bytes, 32);
    }

    #[test]
    fn scribble_bypasses_and_persists() {
        let d = dev(PersistenceMode::Precise);
        d.write(0, &[1u8; 8]).unwrap();
        d.persist(0, 8).unwrap();
        d.scribble(0, &[0xBA; 8]).unwrap();
        d.simulate_crash(&mut AllOld).unwrap();
        assert_eq!(d.read_slice(0, 8).unwrap(), &[0xBA; 8][..], "scribbles are durable");
    }

    #[test]
    fn stats_count_traffic() {
        let d = dev(PersistenceMode::Fast);
        d.write(0, &[0u8; 128]).unwrap();
        d.write_nt(256, &[0u8; 64]).unwrap();
        d.persist(0, 128).unwrap();
        d.atomic_xor_u64(512, 1).unwrap();
        let s = d.stats();
        assert_eq!(s.bytes_written, 128);
        assert_eq!(s.bytes_written_nt, 64);
        assert_eq!(s.lines_flushed, 2);
        assert_eq!(s.fences, 1);
        assert_eq!(s.atomic_xors, 1);
    }

    #[test]
    fn set_fills_and_tracks() {
        let d = dev(PersistenceMode::Precise);
        d.set(64, 0xAB, 200).unwrap();
        assert_eq!(d.read_slice(64, 200).unwrap(), &[0xAB; 200][..]);
        d.simulate_crash(&mut AllOld).unwrap();
        assert_eq!(d.read_slice(64, 200).unwrap(), &[0u8; 200][..]);
    }

    #[test]
    fn simulate_crash_on_fast_device_is_a_typed_error() {
        let d = dev(PersistenceMode::Fast);
        assert_eq!(d.simulate_crash(&mut AllOld), Err(MemError::Untracked));
    }

    #[test]
    fn snapshot_restores_bytes_dirty_state_and_poison() {
        let d = dev(PersistenceMode::Precise);
        // Durable data, an unsettled line with one pending flush, and a
        // poisoned page — the full checkpointable state.
        d.write(0, &[1u8; 64]).unwrap();
        d.persist(0, 64).unwrap();
        d.write(64, &[2u8; 64]).unwrap();
        d.flush(64, 64).unwrap(); // CLWB issued, never fenced
        d.write(64, &[3u8; 64]).unwrap(); // newer unflushed store on top
        d.poison_page(5).unwrap();
        let snap = d.snapshot();

        // Diverge: settle everything, clear the poison, overwrite.
        d.write(0, &[9u8; 128]).unwrap();
        d.persist(0, 128).unwrap();
        d.repair_page(5, &[0u8; PAGE_SIZE]).unwrap();
        assert!(d.dirty_line_choices().is_empty());

        d.restore(&snap).unwrap();
        assert_eq!(d.read_slice(0, 64).unwrap(), &[1u8; 64][..]);
        assert_eq!(d.read_slice(64, 64).unwrap(), &[3u8; 64][..]);
        assert_eq!(d.poisoned_pages(), vec![5]);
        assert_eq!(d.dirty_line_choices(), vec![(1, 1)], "pending flush survived restore");
        // The restored dirty state replays crash outcomes exactly as the
        // original would have: Flushed(0) picks the CLWB'd capture.
        d.simulate_crash(&mut |_line: u64, _p: usize| LineOutcome::Flushed(0)).unwrap();
        assert_eq!(d.read_slice(64, 64).unwrap(), &[2u8; 64][..]);
    }

    #[test]
    fn restore_rejects_size_mismatch_and_fast_mode_tracker_state() {
        let precise = dev(PersistenceMode::Precise);
        precise.write(0, &[7u8; 8]).unwrap();
        let snap = precise.snapshot();

        let small = NvmDevice::new(4096, DeviceConfig::precise()).unwrap();
        assert!(matches!(small.restore(&snap), Err(MemError::OutOfBounds { .. })));

        let fast = dev(PersistenceMode::Fast);
        assert_eq!(fast.restore(&snap), Err(MemError::Untracked));

        // Fast → fast roundtrips fine (bytes + poison only).
        let fast2 = dev(PersistenceMode::Fast);
        fast2.write(128, b"state").unwrap();
        let fsnap = fast2.snapshot();
        fast2.write(128, b"xxxxx").unwrap();
        fast2.restore(&fsnap).unwrap();
        assert_eq!(fast2.read_slice(128, 5).unwrap(), b"state");
    }

    #[test]
    fn arm_crash_after_rearms_from_scratch() {
        let d = dev(PersistenceMode::Precise);
        // Arming replaces the previous countdown rather than adding to it.
        d.arm_crash_after(1000);
        d.write(0, &[1u8; 8]).unwrap();
        d.arm_crash_after(1);
        d.write(0, &[2u8; 8]).unwrap(); // countdown 1 -> 0
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.write(0, &[3u8; 8]).unwrap() // fires at 0
        }));
        assert!(crashed.is_err());
        assert!(crashed.unwrap_err().downcast_ref::<CrashPoint>().is_some());
        // After firing, the countdown keeps decrementing into negatives:
        // effectively disarmed until the next arm_crash_after.
        d.write(0, &[4u8; 8]).unwrap();
        d.write(0, &[5u8; 8]).unwrap();
        assert!(d.crash_countdown() < 0);
        // Re-arming restarts the count regardless of prior state.
        d.arm_crash_after(0);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.write(0, &[6u8; 8]).unwrap()
        }));
        assert!(crashed.is_err());
        d.disarm_crash();
        d.write(0, &[7u8; 8]).unwrap();
    }

    #[test]
    fn dirty_line_choices_reports_outcome_space() {
        let d = dev(PersistenceMode::Precise);
        assert!(d.dirty_line_choices().is_empty());
        // Settle line 2 first: its drain would otherwise fence line 1's
        // CLWBs too (SFENCE is global, not per line).
        d.write(128, &[4u8; 64]).unwrap();
        d.persist(128, 64).unwrap(); // line 2: settled, not listed
        d.write(0, &[1u8; 64]).unwrap(); // line 0: store only
        d.write(64, &[2u8; 64]).unwrap();
        d.flush(64, 64).unwrap(); // line 1: one pending flush
        d.write(64, &[3u8; 64]).unwrap();
        d.flush(64, 64).unwrap(); // line 1: two pending flushes
        let choices = d.dirty_line_choices();
        assert_eq!(choices, vec![(0, 0), (1, 2)]);
        assert_eq!(crate::MappedPlan::combinations(&choices), 2 * 4);
    }

    #[test]
    fn mapped_plan_combinations_enumerate_every_outcome() {
        use crate::MappedPlan;
        let choices = vec![(0u64, 0usize), (1, 2)];
        let total = MappedPlan::combinations(&choices);
        assert_eq!(total, 8);
        // Decode every combination and collect the (line0, line1) outcomes.
        let mut seen = Vec::new();
        for c in 0..total {
            let mut plan = MappedPlan::nth_combination(&choices, c);
            let o0 = plan.choose(0, 0);
            let o1 = plan.choose(1, 2);
            assert_eq!(plan.choose(999, 0), LineOutcome::Old, "default outcome");
            seen.push((o0, o1));
        }
        seen.sort_by_key(|&(a, b)| (rank(a), rank(b)));
        seen.dedup();
        assert_eq!(seen.len(), 8, "all combinations distinct");
        for o1 in
            [LineOutcome::Old, LineOutcome::Flushed(0), LineOutcome::Flushed(1), LineOutcome::New]
        {
            for o0 in [LineOutcome::Old, LineOutcome::New] {
                assert!(seen.contains(&(o0, o1)), "missing {o0:?}/{o1:?}");
            }
        }

        fn rank(o: LineOutcome) -> usize {
            match o {
                LineOutcome::Old => 0,
                LineOutcome::Flushed(i) => 1 + i,
                LineOutcome::New => usize::MAX,
            }
        }
    }
}
