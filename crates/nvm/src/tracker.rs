//! Dirty cache-line tracking: the precise persistence model.
//!
//! In [`crate::PersistenceMode::Precise`] the device records, per dirty cache
//! line, everything needed to reconstruct any hardware-legal persisted state
//! at a crash:
//!
//! * `base` — the content guaranteed durable as of the last store fence;
//! * `flushed` — contents captured by `CLWB` calls that have not been fenced
//!   yet, tagged with the fence epoch at capture time.
//!
//! Fences are O(1): [`Tracker::drain`] only bumps a global epoch. Entries
//! *settle* lazily: the next touch of a line promotes any flush captured
//! before the current epoch to `base` (it is now guaranteed durable).
//!
//! Sharded mutexes keep multi-threaded store tracking cheap; a cache line
//! always maps to exactly one shard, so per-line state is never split.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::crash::{CrashPlan, LineOutcome};
use crate::CACHELINE;

const SHARD_COUNT: usize = 256;

/// Per-line dirty state. `base` is the last fenced content; `flushed` holds
/// `(content, epoch)` captures from un-fenced `CLWB`s in issue order.
struct DirtyLine {
    base: Box<[u8; CACHELINE]>,
    flushed: Vec<(Box<[u8; CACHELINE]>, u64)>,
}

/// One dirty line in a [`TrackerSnapshot`]: line index, fenced base
/// content, and the `(content, epoch)` captures of its un-fenced `CLWB`s.
type LineSnapshot = (u64, Box<[u8; CACHELINE]>, Vec<(Box<[u8; CACHELINE]>, u64)>);

/// A serialized copy of the tracker's full dirty-line state, captured by
/// [`crate::NvmDevice::snapshot`] and re-applied by
/// [`crate::NvmDevice::restore`] so crash-point sweeps can rewind a device
/// to an earlier instant *including* its unsettled persistence state.
#[derive(Default)]
pub(crate) struct TrackerSnapshot {
    epoch: u64,
    lines: Vec<LineSnapshot>,
}

#[derive(Default)]
struct Shard {
    lines: HashMap<u64, DirtyLine>,
}

/// Tracks dirty cache lines and pending flushes for crash simulation.
pub(crate) struct Tracker {
    shards: Box<[Mutex<Shard>]>,
    /// Fence epoch; a flush captured at epoch `e` is durable once the global
    /// epoch exceeds `e`.
    epoch: AtomicU64,
}

impl Tracker {
    pub(crate) fn new() -> Self {
        let shards = (0..SHARD_COUNT).map(|_| Mutex::new(Shard::default())).collect();
        Tracker { shards, epoch: AtomicU64::new(1) }
    }

    #[inline]
    fn shard_for(&self, line: u64) -> &Mutex<Shard> {
        &self.shards[(line as usize) % SHARD_COUNT]
    }

    /// Promotes any flush captured before the current epoch: the latest such
    /// capture is now guaranteed durable and becomes the new `base`.
    /// Returns `true` if the line is clean afterwards (base == current
    /// content and nothing pending), in which case the caller removes it.
    fn settle(entry: &mut DirtyLine, epoch: u64, current: &[u8; CACHELINE]) -> bool {
        if let Some(last_durable) = entry.flushed.iter().rposition(|&(_, e)| e < epoch) {
            let (content, _) = entry.flushed.drain(..=last_durable).next_back().expect("nonempty");
            entry.base = content;
        }
        entry.flushed.is_empty() && entry.base.as_ref() == current
    }

    /// Records a store to `line` whose pre-store durable content should be
    /// snapshotted if the line is currently clean. `pre` is the line content
    /// *before* the store (i.e. the durable content when clean).
    pub(crate) fn note_store(&self, line: u64, pre: &[u8; CACHELINE]) {
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut shard = self.shard_for(line).lock();
        match shard.lines.entry(line) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(DirtyLine { base: Box::new(*pre), flushed: Vec::new() });
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                // Settle first so a fenced flush becomes the base before the
                // new store muddies the water. `pre` is the pre-store
                // content, which is what any settled flush captured at most.
                let entry = o.get_mut();
                Tracker::settle(entry, epoch, pre);
            }
        }
    }

    /// Records a `CLWB` of `line` with `content` being the line's current
    /// (post-store) bytes. A no-op for clean lines.
    pub(crate) fn note_flush(&self, line: u64, content: &[u8; CACHELINE]) {
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut shard = self.shard_for(line).lock();
        if let Some(entry) = shard.lines.get_mut(&line) {
            if Tracker::settle(entry, epoch, content) {
                shard.lines.remove(&line);
                return;
            }
            // Skip duplicate captures of identical content at the same epoch.
            if entry.flushed.last().map(|(c, e)| (c.as_ref(), *e)) != Some((content, epoch)) {
                entry.flushed.push((Box::new(*content), epoch));
            }
        }
    }

    /// Records a store fence (`SFENCE`): every previously captured flush
    /// becomes durable. O(1).
    pub(crate) fn drain(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Records a non-temporal store: the new content is immediately captured
    /// as a pending flush (durable after the next fence, or earlier if the
    /// write-combining buffer drains on its own — modelled as eviction).
    pub(crate) fn note_store_nt(&self, line: u64, pre: &[u8; CACHELINE], post: &[u8; CACHELINE]) {
        self.note_store(line, pre);
        self.note_flush(line, post);
    }

    /// Returns `(line, pending_flushes)` for every line that would actually
    /// consult a [`CrashPlan`] at a crash right now — i.e. after settling
    /// fenced flushes against the line's current content and dropping clean
    /// entries. The per-line outcome space a crash could choose from is
    /// exactly `{Old, Flushed(0..pending), New}`, which is what the
    /// exhaustive small-model enumerator multiplies out.
    ///
    /// Settling mutates tracker state, but only by promoting already-durable
    /// knowledge; observable crash semantics are unchanged.
    pub(crate) fn dirty_line_choices(
        &self,
        mut read_current: impl FnMut(u64) -> [u8; CACHELINE],
    ) -> Vec<(u64, usize)> {
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let mut s = shard.lock();
            s.lines.retain(|&line, entry| {
                let current = read_current(line);
                if Tracker::settle(entry, epoch, &current) {
                    false
                } else {
                    out.push((line, entry.flushed.len()));
                    true
                }
            });
        }
        out.sort_unstable();
        out
    }

    /// Clones the full dirty-line state (device snapshot support).
    pub(crate) fn export(&self) -> TrackerSnapshot {
        let mut lines = Vec::new();
        for shard in self.shards.iter() {
            let s = shard.lock();
            for (&line, entry) in &s.lines {
                lines.push((line, entry.base.clone(), {
                    entry.flushed.iter().map(|(c, e)| (c.clone(), *e)).collect()
                }));
            }
        }
        lines.sort_unstable_by_key(|(line, ..)| *line);
        TrackerSnapshot { epoch: self.epoch.load(Ordering::Acquire), lines }
    }

    /// Replaces the full dirty-line state with a previously exported
    /// snapshot (device restore support).
    pub(crate) fn import(&self, snap: &TrackerSnapshot) {
        for shard in self.shards.iter() {
            shard.lock().lines.clear();
        }
        for (line, base, flushed) in &snap.lines {
            let entry = DirtyLine {
                base: base.clone(),
                flushed: flushed.iter().map(|(c, e)| (c.clone(), *e)).collect(),
            };
            self.shard_for(*line).lock().lines.insert(*line, entry);
        }
        self.epoch.store(snap.epoch, Ordering::Release);
    }

    /// Returns indices of currently dirty lines (testing/diagnostics).
    pub(crate) fn dirty_lines(&self) -> Vec<u64> {
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = shard.lock();
            for (&line, entry) in &s.lines {
                // A line whose last flush predates the epoch may actually be
                // clean, but without the current content we cannot tell;
                // report it dirty (conservative).
                let _ = (epoch, entry);
                out.push(line);
            }
        }
        out.sort_unstable();
        out
    }

    /// Applies a crash: for every dirty line asks `plan` for an outcome and
    /// writes the chosen content back through `apply`. Clears all tracking
    /// state afterwards.
    ///
    /// `read_current` must return the line's present content; `apply` must
    /// overwrite the line in the backing buffer.
    pub(crate) fn crash_with(
        &self,
        plan: &mut dyn CrashPlan,
        mut read_current: impl FnMut(u64) -> [u8; CACHELINE],
        mut apply: impl FnMut(u64, &[u8; CACHELINE]),
    ) {
        let epoch = self.epoch.load(Ordering::Acquire);
        // Collect and sort for deterministic plan consultation order.
        let mut all: Vec<(u64, DirtyLine)> = Vec::new();
        for shard in self.shards.iter() {
            let mut s = shard.lock();
            all.extend(s.lines.drain());
        }
        all.sort_unstable_by_key(|(line, _)| *line);
        for (line, mut entry) in all {
            let current = read_current(line);
            if Tracker::settle(&mut entry, epoch, &current) {
                continue;
            }
            match plan.choose(line, entry.flushed.len()) {
                LineOutcome::Old => apply(line, &entry.base),
                LineOutcome::Flushed(i) => {
                    let idx = i.min(entry.flushed.len().saturating_sub(1));
                    if let Some((content, _)) = entry.flushed.get(idx) {
                        apply(line, content);
                    } else {
                        apply(line, &entry.base);
                    }
                }
                LineOutcome::New => { /* current content survives */ }
            }
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::AllOld;

    fn line_of(b: u8) -> [u8; CACHELINE] {
        [b; CACHELINE]
    }

    #[test]
    fn store_then_crash_all_old_reverts() {
        let t = Tracker::new();
        t.note_store(3, &line_of(0));
        let mut reverted = Vec::new();
        t.crash_with(
            &mut AllOld,
            |_| line_of(7),
            |line, content| {
                reverted.push((line, content[0]));
            },
        );
        assert_eq!(reverted, vec![(3, 0)]);
    }

    #[test]
    fn flush_and_fence_makes_durable() {
        let t = Tracker::new();
        t.note_store(3, &line_of(0));
        t.note_flush(3, &line_of(7));
        t.drain();
        // After the fence the content 7 is durable even under AllOld.
        let mut applied = Vec::new();
        t.crash_with(
            &mut AllOld,
            |_| line_of(7),
            |line, content| {
                applied.push((line, content[0]));
            },
        );
        // The line settled clean: either no apply, or apply of content 7.
        assert!(applied.is_empty() || applied == vec![(3, 7)]);
    }

    #[test]
    fn flush_without_fence_can_go_either_way() {
        let t = Tracker::new();
        t.note_store(9, &line_of(0));
        t.note_flush(9, &line_of(5));
        // Outcome Old: pre-store content.
        let mut got = None;
        t.crash_with(&mut AllOld, |_| line_of(5), |_, c| got = Some(c[0]));
        assert_eq!(got, Some(0));

        // Outcome Flushed(0): flushed content survives.
        let t = Tracker::new();
        t.note_store(9, &line_of(0));
        t.note_flush(9, &line_of(5));
        let mut got = None;
        let mut plan = |_: u64, _: usize| LineOutcome::Flushed(0);
        t.crash_with(&mut plan, |_| line_of(5), |_, c| got = Some(c[0]));
        assert_eq!(got, Some(5));
    }

    #[test]
    fn store_flush_store_preserves_intermediate_candidate() {
        // store A; clwb; store B; crash => any of {old, A, B} may persist.
        let t = Tracker::new();
        t.note_store(1, &line_of(0)); // old = 0
        t.note_flush(1, &line_of(0xA));
        t.note_store(1, &line_of(0xA)); // second store: pre-content is A
        let run = |outcome: LineOutcome| {
            let t = Tracker::new();
            t.note_store(1, &line_of(0));
            t.note_flush(1, &line_of(0xA));
            t.note_store(1, &line_of(0xA));
            let mut got = 0xB; // "New" leaves current content B in place
            let mut plan = move |_: u64, _: usize| outcome;
            t.crash_with(&mut plan, |_| line_of(0xB), |_, c| got = c[0]);
            got
        };
        assert_eq!(run(LineOutcome::Old), 0);
        assert_eq!(run(LineOutcome::Flushed(0)), 0xA);
        assert_eq!(run(LineOutcome::New), 0xB);
        drop(t);
    }

    #[test]
    fn fence_is_cheap_and_monotonic() {
        let t = Tracker::new();
        for _ in 0..1000 {
            t.drain();
        }
        assert!(t.dirty_lines().is_empty());
    }
}
