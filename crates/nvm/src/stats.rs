//! Device operation counters.
//!
//! The benchmark harness uses these to report write amplification and flush
//! traffic (e.g. replication writes 2x the bytes of parity mode), and the
//! vulnerability study (Table 4) builds on library-level counters that
//! mirror this pattern.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic operation counters, updated with relaxed atomics.
#[derive(Debug, Default)]
pub struct DeviceStats {
    pub(crate) bytes_written: AtomicU64,
    pub(crate) bytes_written_nt: AtomicU64,
    pub(crate) lines_flushed: AtomicU64,
    pub(crate) fences: AtomicU64,
    pub(crate) atomic_stores: AtomicU64,
    pub(crate) atomic_xors: AtomicU64,
    pub(crate) xor_bytes: AtomicU64,
    pub(crate) poison_hits: AtomicU64,
}

impl DeviceStats {
    #[inline]
    pub(crate) fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_written_nt: self.bytes_written_nt.load(Ordering::Relaxed),
            lines_flushed: self.lines_flushed.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            atomic_stores: self.atomic_stores.load(Ordering::Relaxed),
            atomic_xors: self.atomic_xors.load(Ordering::Relaxed),
            xor_bytes: self.xor_bytes.load(Ordering::Relaxed),
            poison_hits: self.poison_hits.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`DeviceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Bytes written through the regular (cached) store path.
    pub bytes_written: u64,
    /// Bytes written through the non-temporal path.
    pub bytes_written_nt: u64,
    /// Cache lines pushed toward the persistence domain by `flush`.
    pub lines_flushed: u64,
    /// Store fences issued.
    pub fences: u64,
    /// 8-byte atomic stores.
    pub atomic_stores: u64,
    /// 8-byte atomic XOR operations (the parity fast path).
    pub atomic_xors: u64,
    /// Bytes processed by vectorized XOR (the parity bulk path).
    pub xor_bytes: u64,
    /// Reads that faulted on poisoned pages.
    pub poison_hits: u64,
}

impl StatsSnapshot {
    /// Total bytes written by any store flavour.
    pub fn total_bytes_written(&self) -> u64 {
        self.bytes_written + self.bytes_written_nt
    }

    /// Component-wise difference (`self - earlier`), saturating at zero.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_written_nt: self.bytes_written_nt.saturating_sub(earlier.bytes_written_nt),
            lines_flushed: self.lines_flushed.saturating_sub(earlier.lines_flushed),
            fences: self.fences.saturating_sub(earlier.fences),
            atomic_stores: self.atomic_stores.saturating_sub(earlier.atomic_stores),
            atomic_xors: self.atomic_xors.saturating_sub(earlier.atomic_xors),
            xor_bytes: self.xor_bytes.saturating_sub(earlier.xor_bytes),
            poison_hits: self.poison_hits.saturating_sub(earlier.poison_hits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let stats = DeviceStats::default();
        DeviceStats::add(&stats.bytes_written, 100);
        DeviceStats::add(&stats.fences, 2);
        let a = stats.snapshot();
        DeviceStats::add(&stats.bytes_written, 50);
        let b = stats.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.bytes_written, 50);
        assert_eq!(d.fences, 0);
        assert_eq!(b.total_bytes_written(), 150);
    }
}
