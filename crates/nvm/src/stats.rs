//! Device operation counters.
//!
//! The benchmark harness uses these to report write amplification and flush
//! traffic (e.g. replication writes 2x the bytes of parity mode), and the
//! vulnerability study (Table 4) builds on library-level counters that
//! mirror this pattern. Read counters make read amplification visible too:
//! the commit pipeline's one-old-read-per-range invariant is asserted by a
//! regression test over [`StatsSnapshot::commit_old_reads`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of per-shard counter slots in [`DeviceStats`]. Shard indices at
/// or above this are folded into the last slot, so any shard count is
/// countable (the library's own shard cap is well below this).
pub const STAT_SHARDS: usize = 16;

/// Monotonic operation counters, updated with relaxed atomics.
#[derive(Debug, Default)]
pub struct DeviceStats {
    pub(crate) bytes_read: AtomicU64,
    pub(crate) read_ops: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) bytes_written_nt: AtomicU64,
    pub(crate) lines_flushed: AtomicU64,
    pub(crate) fences: AtomicU64,
    pub(crate) atomic_stores: AtomicU64,
    pub(crate) atomic_xors: AtomicU64,
    pub(crate) xor_bytes: AtomicU64,
    pub(crate) poison_hits: AtomicU64,
    pub(crate) commit_old_reads: AtomicU64,
    pub(crate) commit_old_bytes: AtomicU64,
    pub(crate) csum_passes: AtomicU64,
    pub(crate) csum_bytes: AtomicU64,
    pub(crate) vcache_hits: AtomicU64,
    pub(crate) vcache_hit_bytes: AtomicU64,
    pub(crate) group_commits: AtomicU64,
    pub(crate) group_txns: AtomicU64,
    pub(crate) atomic_cas_ops: AtomicU64,
    pub(crate) atomic_parity_patches: AtomicU64,
    pub(crate) recovery_sweeps: [AtomicU64; STAT_SHARDS],
    pub(crate) scrub_passes: [AtomicU64; STAT_SHARDS],
    pub(crate) scope_violations: AtomicU64,
    pub(crate) poison_injected: AtomicU64,
    pub(crate) scribbles_injected: AtomicU64,
    pub(crate) repairs_ok: AtomicU64,
    pub(crate) repairs_failed: AtomicU64,
    pub(crate) scrub_repairs: [AtomicU64; STAT_SHARDS],
    pub(crate) zones_quarantined: AtomicU64,
}

impl DeviceStats {
    #[inline]
    pub(crate) fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a per-shard counter slot, clamping the shard index into
    /// the [`STAT_SHARDS`] range.
    #[inline]
    pub(crate) fn add_shard(field: &[AtomicU64; STAT_SHARDS], shard: usize, n: u64) {
        field[shard.min(STAT_SHARDS - 1)].fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_written_nt: self.bytes_written_nt.load(Ordering::Relaxed),
            lines_flushed: self.lines_flushed.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            atomic_stores: self.atomic_stores.load(Ordering::Relaxed),
            atomic_xors: self.atomic_xors.load(Ordering::Relaxed),
            xor_bytes: self.xor_bytes.load(Ordering::Relaxed),
            poison_hits: self.poison_hits.load(Ordering::Relaxed),
            commit_old_reads: self.commit_old_reads.load(Ordering::Relaxed),
            commit_old_bytes: self.commit_old_bytes.load(Ordering::Relaxed),
            csum_passes: self.csum_passes.load(Ordering::Relaxed),
            csum_bytes: self.csum_bytes.load(Ordering::Relaxed),
            vcache_hits: self.vcache_hits.load(Ordering::Relaxed),
            vcache_hit_bytes: self.vcache_hit_bytes.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            group_txns: self.group_txns.load(Ordering::Relaxed),
            atomic_cas_ops: self.atomic_cas_ops.load(Ordering::Relaxed),
            atomic_parity_patches: self.atomic_parity_patches.load(Ordering::Relaxed),
            recovery_sweeps: std::array::from_fn(|i| {
                self.recovery_sweeps[i].load(Ordering::Relaxed)
            }),
            scrub_passes: std::array::from_fn(|i| self.scrub_passes[i].load(Ordering::Relaxed)),
            scope_violations: self.scope_violations.load(Ordering::Relaxed),
            poison_injected: self.poison_injected.load(Ordering::Relaxed),
            scribbles_injected: self.scribbles_injected.load(Ordering::Relaxed),
            repairs_ok: self.repairs_ok.load(Ordering::Relaxed),
            repairs_failed: self.repairs_failed.load(Ordering::Relaxed),
            scrub_repairs: std::array::from_fn(|i| self.scrub_repairs[i].load(Ordering::Relaxed)),
            zones_quarantined: self.zones_quarantined.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`DeviceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Bytes read through `read`/`read_slice` (loads from media).
    pub bytes_read: u64,
    /// Read operations issued (`read` and `read_slice` calls).
    pub read_ops: u64,
    /// Bytes written through the regular (cached) store path.
    pub bytes_written: u64,
    /// Bytes written through the non-temporal path.
    pub bytes_written_nt: u64,
    /// Cache lines pushed toward the persistence domain by `flush`.
    pub lines_flushed: u64,
    /// Store fences issued.
    pub fences: u64,
    /// 8-byte atomic stores.
    pub atomic_stores: u64,
    /// 8-byte atomic XOR operations (the parity fast path).
    pub atomic_xors: u64,
    /// Bytes processed by vectorized XOR (the parity bulk path).
    pub xor_bytes: u64,
    /// Reads that faulted on poisoned pages.
    pub poison_hits: u64,
    /// Commit-time old-data reads (one per modified range; see
    /// [`crate::NvmDevice::note_commit_old_read`]).
    pub commit_old_reads: u64,
    /// Bytes covered by commit-time old-data reads.
    pub commit_old_bytes: u64,
    /// Checksum verification passes the library performed over object
    /// bytes (see [`crate::NvmDevice::note_csum_pass`]); a cache-hit
    /// verified read performs none — the regression tests pin that.
    pub csum_passes: u64,
    /// Object bytes covered by checksum verification passes.
    pub csum_bytes: u64,
    /// Verified reads served from the DRAM verified-generation cache
    /// (see [`crate::NvmDevice::note_vcache_hit`]).
    pub vcache_hits: u64,
    /// Bytes served by cache-hit verified reads.
    pub vcache_hit_bytes: u64,
    /// Group (batched) commits performed: one redo-log persist, one
    /// commit fence and one parity-patch window amortized across a whole
    /// batch of logical transactions (see
    /// [`crate::NvmDevice::note_group_commit`]).
    pub group_commits: u64,
    /// Logical transactions carried by group commits. `group_txns /
    /// group_commits` is the achieved batching factor.
    pub group_txns: u64,
    /// 8-byte compare-and-swap operations (the detectable-CAS publication
    /// primitive; see [`crate::NvmDevice::atomic_cas_u64`]).
    pub atomic_cas_ops: u64,
    /// Distinct parity cache lines XOR-patched by word-granular CAS
    /// commits (see [`crate::NvmDevice::note_atomic_parity_patch`]); a
    /// single-word CAS whose data and header words share a cache line
    /// patches exactly one — the regression tests pin that.
    pub atomic_parity_patches: u64,
    /// Recovery sweeps completed, indexed by parity shard (see
    /// [`crate::NvmDevice::note_recovery_sweep`]); shard ids at or above
    /// [`STAT_SHARDS`] fold into the last slot.
    pub recovery_sweeps: [u64; STAT_SHARDS],
    /// Scrub passes completed, indexed by parity shard (see
    /// [`crate::NvmDevice::note_scrub_pass`]).
    pub scrub_passes: [u64; STAT_SHARDS],
    /// Reads that landed outside the thread's armed read scope (see
    /// [`crate::NvmDevice::arm_read_scope`]); a shard-confined recovery
    /// sweep keeps this at zero — the regression tests pin that.
    pub scope_violations: u64,
    /// Media faults (uncorrectable/poisoned pages) injected by test and
    /// storm harnesses (see [`crate::NvmDevice::note_poison_injected`]).
    /// Exact fault accounting: soak tests compare this against repair and
    /// quarantine counters.
    pub poison_injected: u64,
    /// Scribbles (silent corruptions, detectable only by checksum)
    /// injected by test and storm harnesses (see
    /// [`crate::NvmDevice::note_scribble_injected`]).
    pub scribbles_injected: u64,
    /// Page/object repairs that completed successfully (parity
    /// reconstruction verified; see [`crate::NvmDevice::note_repair_ok`]).
    pub repairs_ok: u64,
    /// Repair attempts that failed permanently — parity + checksum could
    /// not reconstruct the data (double faults; see
    /// [`crate::NvmDevice::note_repair_failed`]). Each failure is expected
    /// to quarantine a zone.
    pub repairs_failed: u64,
    /// Online repairs performed by background scrub workers, indexed by
    /// parity shard (see [`crate::NvmDevice::note_scrub_repair`]).
    pub scrub_repairs: [u64; STAT_SHARDS],
    /// Zones moved to the persistent quarantine set after an unrecoverable
    /// double fault (see [`crate::NvmDevice::note_zone_quarantined`]).
    pub zones_quarantined: u64,
}

impl StatsSnapshot {
    /// Total bytes written by any store flavour.
    pub fn total_bytes_written(&self) -> u64 {
        self.bytes_written + self.bytes_written_nt
    }

    /// Component-wise difference (`self - earlier`), saturating at zero.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_written_nt: self.bytes_written_nt.saturating_sub(earlier.bytes_written_nt),
            lines_flushed: self.lines_flushed.saturating_sub(earlier.lines_flushed),
            fences: self.fences.saturating_sub(earlier.fences),
            atomic_stores: self.atomic_stores.saturating_sub(earlier.atomic_stores),
            atomic_xors: self.atomic_xors.saturating_sub(earlier.atomic_xors),
            xor_bytes: self.xor_bytes.saturating_sub(earlier.xor_bytes),
            poison_hits: self.poison_hits.saturating_sub(earlier.poison_hits),
            commit_old_reads: self.commit_old_reads.saturating_sub(earlier.commit_old_reads),
            commit_old_bytes: self.commit_old_bytes.saturating_sub(earlier.commit_old_bytes),
            csum_passes: self.csum_passes.saturating_sub(earlier.csum_passes),
            csum_bytes: self.csum_bytes.saturating_sub(earlier.csum_bytes),
            vcache_hits: self.vcache_hits.saturating_sub(earlier.vcache_hits),
            vcache_hit_bytes: self.vcache_hit_bytes.saturating_sub(earlier.vcache_hit_bytes),
            group_commits: self.group_commits.saturating_sub(earlier.group_commits),
            group_txns: self.group_txns.saturating_sub(earlier.group_txns),
            atomic_cas_ops: self.atomic_cas_ops.saturating_sub(earlier.atomic_cas_ops),
            atomic_parity_patches: self
                .atomic_parity_patches
                .saturating_sub(earlier.atomic_parity_patches),
            recovery_sweeps: std::array::from_fn(|i| {
                self.recovery_sweeps[i].saturating_sub(earlier.recovery_sweeps[i])
            }),
            scrub_passes: std::array::from_fn(|i| {
                self.scrub_passes[i].saturating_sub(earlier.scrub_passes[i])
            }),
            scope_violations: self.scope_violations.saturating_sub(earlier.scope_violations),
            poison_injected: self.poison_injected.saturating_sub(earlier.poison_injected),
            scribbles_injected: self.scribbles_injected.saturating_sub(earlier.scribbles_injected),
            repairs_ok: self.repairs_ok.saturating_sub(earlier.repairs_ok),
            repairs_failed: self.repairs_failed.saturating_sub(earlier.repairs_failed),
            scrub_repairs: std::array::from_fn(|i| {
                self.scrub_repairs[i].saturating_sub(earlier.scrub_repairs[i])
            }),
            zones_quarantined: self.zones_quarantined.saturating_sub(earlier.zones_quarantined),
        }
    }

    /// Total online repairs performed by background scrub workers, summed
    /// across shards.
    pub fn total_scrub_repairs(&self) -> u64 {
        self.scrub_repairs.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let stats = DeviceStats::default();
        DeviceStats::add(&stats.bytes_written, 100);
        DeviceStats::add(&stats.fences, 2);
        let a = stats.snapshot();
        DeviceStats::add(&stats.bytes_written, 50);
        DeviceStats::add(&stats.bytes_read, 10);
        DeviceStats::add(&stats.commit_old_reads, 1);
        DeviceStats::add(&stats.group_commits, 1);
        DeviceStats::add(&stats.group_txns, 8);
        let b = stats.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.bytes_written, 50);
        assert_eq!(d.fences, 0);
        assert_eq!(d.bytes_read, 10);
        assert_eq!(d.commit_old_reads, 1);
        assert_eq!(d.group_commits, 1);
        assert_eq!(d.group_txns, 8);
        assert_eq!(b.total_bytes_written(), 150);
    }

    #[test]
    fn per_shard_counters_clamp_and_delta() {
        let stats = DeviceStats::default();
        DeviceStats::add_shard(&stats.recovery_sweeps, 0, 1);
        DeviceStats::add_shard(&stats.recovery_sweeps, 3, 2);
        // Out-of-range shard ids fold into the last slot instead of panicking.
        DeviceStats::add_shard(&stats.scrub_passes, STAT_SHARDS + 5, 1);
        let a = stats.snapshot();
        assert_eq!(a.recovery_sweeps[0], 1);
        assert_eq!(a.recovery_sweeps[3], 2);
        assert_eq!(a.scrub_passes[STAT_SHARDS - 1], 1);
        DeviceStats::add_shard(&stats.recovery_sweeps, 3, 1);
        DeviceStats::add(&stats.scope_violations, 4);
        let d = stats.snapshot().delta_since(&a);
        assert_eq!(d.recovery_sweeps[3], 1);
        assert_eq!(d.recovery_sweeps[0], 0);
        assert_eq!(d.scope_violations, 4);
    }
}
