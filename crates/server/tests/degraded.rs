//! Degraded-mode service battery: typed `Unrecoverable` surfaced over the
//! wire, request deadlines, client retry/backoff on `Busy`, client I/O
//! timeouts against a wedged server, and graceful drain.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pangolin::{PglConfig, PglPool};
use pgl_kv::store::PglStore;
use pgl_nvm::{DeviceConfig, NvmDevice};
use pgl_server::proto::{
    decode_requests, encode_responses, read_frame, write_frame, Request, Response,
};
use pgl_server::{Client, ClientConfig, KvServer, ServiceConfig};

fn small_store(dev: &Arc<NvmDevice>) -> PglStore {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    PglStore::new(PglPool::create(Arc::clone(dev), cfg).unwrap())
}

#[test]
fn quarantined_zone_surfaces_typed_unrecoverable_over_wire() {
    let dev = Arc::new(NvmDevice::new(32 << 20, DeviceConfig::fast()).unwrap());
    let store = small_store(&dev);
    let pool = store.pool().clone();
    let server = KvServer::start(store, ServiceConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    for key in 0..32u64 {
        assert_eq!(client.put(key, key + 100).unwrap(), Response::Value(None));
    }

    // Fence the zone holding the tree (operator quarantine: the same
    // persistent path the double-fault detector takes).
    pool.quarantine_zone(0).unwrap();

    // Reads now surface the loss as the typed wire response — shard and
    // zone coordinates intact, never a stringly error, never a hang.
    let resp = client.get(7).unwrap();
    match resp {
        Response::Unrecoverable { zone, .. } => assert_eq!(zone, 0),
        other => panic!("expected typed Unrecoverable, got {other:?}"),
    }
    assert!(!resp.is_retryable(), "unrecoverable must not invite retries");

    // call_retry must pass the permanent failure straight through
    // (retrying lost data only burns time).
    let start = Instant::now();
    let resps = client.call_retry(&[Request::Get { key: 7 }]).unwrap();
    assert!(matches!(resps[0], Response::Unrecoverable { .. }), "{resps:?}");
    assert!(
        start.elapsed() < Duration::from_millis(250),
        "client backed off on a non-retryable response"
    );
    server.shutdown();
}

#[test]
fn request_deadline_expires_as_typed_error_and_service_recovers() {
    let dev = Arc::new(NvmDevice::new(32 << 20, DeviceConfig::fast()).unwrap());
    let store = small_store(&dev);
    let config = ServiceConfig {
        shards: 1,
        queue_depth: 1024,
        max_inflight: 4096,
        request_deadline_ms: 1,
        ..ServiceConfig::default()
    };
    let server = KvServer::start(store, config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    for key in 0..2_000u64 {
        client.put(key, key).unwrap();
    }

    // One frame of many full-range scans: the single shard worker serves
    // them serially, so late slots cannot make the 1 ms budget.
    let reqs: Vec<Request> = (0..256).map(|_| Request::Scan { start: 0, limit: 2_000 }).collect();
    let resps = client.call(&reqs).unwrap();
    assert_eq!(resps.len(), reqs.len());
    let deadline_errors = resps
        .iter()
        .filter(|r| matches!(r, Response::Error(msg) if msg.contains("deadline")))
        .count();
    assert!(deadline_errors > 0, "no slot hit the 1 ms deadline: {:?}", &resps[..4]);

    // The connection and the service survive the expiry: a cheap request
    // still completes (the deadline sheds waiting, it does not poison).
    let resp = client.get(3).unwrap();
    assert!(
        matches!(resp, Response::Value(Some(3))) || matches!(resp, Response::Error(_)),
        "service wedged after deadline expiry: {resp:?}"
    );
    server.shutdown();
}

#[test]
fn client_retries_busy_with_backoff_and_patches_positionally() {
    // A scripted server: first frame answered all-Busy, the retry frame
    // (which must contain only the retryable subset) answered with values.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut payload = Vec::new();
        let mut frame = Vec::new();

        assert!(read_frame(&mut sock, &mut payload).unwrap());
        let first = decode_requests(&payload).unwrap();
        let resps: Vec<Response> = first
            .iter()
            .enumerate()
            .map(|(i, _)| if i % 2 == 0 { Response::Value(Some(i as u64)) } else { Response::Busy })
            .collect();
        encode_responses(&resps, &mut frame).unwrap();
        write_frame(&mut sock, &frame).unwrap();

        assert!(read_frame(&mut sock, &mut payload).unwrap());
        let second = decode_requests(&payload).unwrap();
        assert_eq!(second.len(), first.len() / 2, "retry must re-issue only Busy slots");
        let resps: Vec<Response> = second.iter().map(|_| Response::Value(Some(99))).collect();
        encode_responses(&resps, &mut frame).unwrap();
        write_frame(&mut sock, &frame).unwrap();
        (first.len(), second.len())
    });

    let config = ClientConfig {
        max_retries: 3,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(8),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(addr, config).unwrap();
    let reqs: Vec<Request> = (0..8).map(|key| Request::Get { key }).collect();
    let out = client.call_retry(&reqs).unwrap();
    let (first_len, retry_len) = script.join().unwrap();
    assert_eq!((first_len, retry_len), (8, 4));
    for (i, resp) in out.iter().enumerate() {
        let expect = if i % 2 == 0 { Some(i as u64) } else { Some(99) };
        assert_eq!(*resp, Response::Value(expect), "slot {i} patched wrong");
    }
}

#[test]
fn client_read_timeout_bounds_a_wedged_server() {
    // A listener that accepts and then never replies: the read deadline
    // must turn a would-be infinite hang into a prompt typed I/O error.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let wedge = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(5));
        drop(sock);
    });

    let config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(1)),
        read_timeout: Some(Duration::from_millis(100)),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(addr, config).unwrap();
    let start = Instant::now();
    let err = client.get(1).expect_err("read must time out");
    assert!(
        matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
        "unexpected error kind: {err:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(2), "timeout not honored");
    drop(client);
    drop(wedge); // detach; the wedge thread exits on its own
}

#[test]
fn drain_flushes_acked_writes_then_closes() {
    let dev = Arc::new(NvmDevice::new(32 << 20, DeviceConfig::fast()).unwrap());
    let store = small_store(&dev);
    let server = KvServer::start(store, ServiceConfig::default(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let mut acked = Vec::new();
    for key in 0..50u64 {
        if client.put(key, key * 3).unwrap() == Response::Value(None) {
            acked.push((key, key * 3));
        }
    }
    assert_eq!(acked.len(), 50);

    // Graceful drain: in-flight work flushes, then connections close. A
    // further call must fail promptly (EOF or reset), not hang.
    server.drain();
    let start = Instant::now();
    client.get(1).expect_err("connection should close after drain");
    assert!(start.elapsed() < Duration::from_secs(5), "drain left the client hanging");

    // Every acked write survives reopen.
    let store = PglStore::new(PglPool::options().open(dev).unwrap());
    let service = pgl_server::KvService::new(store, ServiceConfig::default()).unwrap();
    let reqs: Vec<Request> = acked.iter().map(|&(key, _)| Request::Get { key }).collect();
    for (&(key, value), resp) in acked.iter().zip(service.call(&reqs)) {
        assert_eq!(resp, Response::Value(Some(value)), "acked key {key} lost across drain");
    }
}
