//! Overload and durability battery: a deliberately tiny service is
//! saturated from many connections; the server must shed with typed
//! `Busy` (bounded queues, bounded admission — never unbounded memory,
//! never a panic), and every *acknowledged* write must survive a full
//! close → reopen of the pool.

use std::sync::{Arc, Mutex};

use pangolin::{PglConfig, PglPool};
use pgl_kv::store::PglStore;
use pgl_nvm::{DeviceConfig, NvmDevice};
use pgl_server::proto::{Request, Response};
use pgl_server::service::KvService;
use pgl_server::{Client, KvServer, ServiceConfig};

const THREADS: u64 = 8;
const FRAMES_PER_THREAD: u64 = 50;
const FRAME_LEN: u64 = 4;

fn tiny_config() -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        queue_depth: 2,
        batch_max: 4,
        max_inflight: 8,
        ..ServiceConfig::default()
    }
}

#[test]
fn saturation_sheds_typed_busy_and_acked_writes_survive_reopen() {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let store = PglStore::new(PglPool::create(dev.clone(), cfg).unwrap());
    let server = KvServer::start(store, tiny_config(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Closed-loop saturation: 8 connections against capacity for 8
    // requests (= 2 frames) in flight.
    let acked: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let acked = &acked;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut mine = Vec::new();
                for f in 0..FRAMES_PER_THREAD {
                    let base = t * 100_000 + f * FRAME_LEN;
                    let reqs: Vec<Request> = (0..FRAME_LEN)
                        .map(|i| Request::Put { key: base + i, value: base + i + 1 })
                        .collect();
                    for (req, resp) in reqs.iter().zip(client.call(&reqs).unwrap()) {
                        let Request::Put { key, value } = *req else { unreachable!() };
                        match resp {
                            // An ack means the group commit containing
                            // this put completed before the reply.
                            Response::Value(_) => mine.push((key, value)),
                            Response::Busy => {}
                            other => panic!("overload must shed typed, got {other:?}"),
                        }
                    }
                }
                acked.lock().unwrap().extend(mine);
            });
        }
    });
    let acked = acked.into_inner().unwrap();

    // Backpressure actually engaged, and memory stayed bounded: the
    // admission gate's high-water mark never passed its capacity.
    let gate = server.service().admission();
    assert!(gate.shed() > 0, "saturation never tripped admission control");
    assert!(gate.peak() <= gate.capacity(), "peak {} > cap {}", gate.peak(), gate.capacity());
    assert_eq!(gate.inflight(), 0, "permits leaked");
    assert!(!acked.is_empty(), "saturation must not starve everyone");

    // Full teardown: server joins its threads, the pool closes.
    server.shutdown();

    // Reopen the same device and re-attach the service's shard directory;
    // every acknowledged write must still be there.
    let store = PglStore::new(PglPool::options().open(dev).unwrap());
    // Only the shard count must match the pool's directory; verify with
    // roomy queues so nothing is shed while checking.
    let roomy = ServiceConfig {
        shards: 1,
        queue_depth: 1024,
        batch_max: 16,
        max_inflight: 4096,
        ..ServiceConfig::default()
    };
    let service = KvService::new(store, roomy).unwrap();
    for chunk in acked.chunks(512) {
        let reqs: Vec<Request> = chunk.iter().map(|&(key, _)| Request::Get { key }).collect();
        let resps = service.call(&reqs);
        for (&(key, value), resp) in chunk.iter().zip(resps) {
            assert_eq!(resp, Response::Value(Some(value)), "acked key {key} lost across reopen");
        }
    }
}

#[test]
fn whole_frame_admission_rejection_is_positional_busy() {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let store = PglStore::new(PglPool::create(dev, cfg).unwrap());
    let service = KvService::new(store, tiny_config()).unwrap();
    // A frame larger than the whole admission capacity can never run.
    let reqs: Vec<Request> = (0..16).map(|key| Request::Put { key, value: 1 }).collect();
    let resps = service.call(&reqs);
    assert_eq!(resps.len(), reqs.len());
    assert!(resps.iter().all(|r| matches!(r, Response::Busy)), "{resps:?}");
    assert_eq!(service.admission().shed(), 16);
    // A frame that fits still executes afterwards.
    let resps = service.call(&[Request::Put { key: 1, value: 2 }]);
    assert_eq!(resps, vec![Response::Value(None)]);
}
