//! Protocol fuzz battery: encode→decode is the identity on well-formed
//! frames, and decoding arbitrary, truncated, or bit-flipped bytes always
//! yields a typed `ProtoError` — never a panic, never a bogus `Ok` that
//! re-encodes differently.

use pgl_server::proto::{
    decode_requests, decode_responses, encode_requests, encode_responses, Request, Response,
    MAX_SCAN_LIMIT,
};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u64>().prop_map(|key| Request::Get { key }),
        (any::<u64>(), any::<u64>()).prop_map(|(key, value)| Request::Put { key, value }),
        any::<u64>().prop_map(|key| Request::Del { key }),
        (any::<u64>(), 0u32..=MAX_SCAN_LIMIT)
            .prop_map(|(start, limit)| Request::Scan { start, limit }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    let pair = (any::<u64>(), any::<u64>());
    prop_oneof![
        Just(Response::Value(None)),
        any::<u64>().prop_map(|v| Response::Value(Some(v))),
        proptest::collection::vec(pair, 0..24).prop_map(Response::Pairs),
        Just(Response::Busy),
        proptest::collection::vec(32u8..127, 0..48).prop_map(|ascii| {
            Response::Error(String::from_utf8(ascii).expect("printable ASCII"))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_frames_round_trip_exactly(
        reqs in proptest::collection::vec(arb_request(), 0..48),
    ) {
        let mut buf = Vec::new();
        encode_requests(&reqs, &mut buf).expect("within frame bounds");
        let decoded = decode_requests(&buf[4..]).expect("own encoding decodes");
        prop_assert_eq!(decoded, reqs);
    }

    #[test]
    fn response_frames_round_trip_exactly(
        resps in proptest::collection::vec(arb_response(), 0..32),
    ) {
        let mut buf = Vec::new();
        encode_responses(&resps, &mut buf).expect("within frame bounds");
        let decoded = decode_responses(&buf[4..]).expect("own encoding decodes");
        prop_assert_eq!(decoded, resps);
    }

    #[test]
    fn truncations_of_valid_frames_never_panic(
        reqs in proptest::collection::vec(arb_request(), 1..16),
        cut in any::<usize>(),
    ) {
        let mut buf = Vec::new();
        encode_requests(&reqs, &mut buf).expect("within frame bounds");
        let payload = &buf[4..];
        let cut = cut % payload.len(); // strictly shorter than the frame
        // A typed error or — if the cut lands on an item boundary — a
        // shorter count mismatch, but never a panic and never Ok unless
        // the prefix happens to be self-consistent (count check forbids).
        let _ = decode_requests(&payload[..cut]);
        let _ = decode_responses(&payload[..cut]);
    }

    #[test]
    fn garbage_bytes_decode_to_typed_errors(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Totality: arbitrary input must produce Ok or a typed error —
        // panics or aborts fail the harness. Anything that decodes must
        // re-encode to bytes that decode to the same value (canonicity).
        if let Ok(reqs) = decode_requests(&bytes) {
            let mut buf = Vec::new();
            encode_requests(&reqs, &mut buf).expect("decoded batch re-encodes");
            prop_assert_eq!(decode_requests(&buf[4..]).expect("round-trip"), reqs);
        }
        if let Ok(resps) = decode_responses(&bytes) {
            let mut buf = Vec::new();
            encode_responses(&resps, &mut buf).expect("decoded batch re-encodes");
            prop_assert_eq!(decode_responses(&buf[4..]).expect("round-trip"), resps);
        }
    }

    #[test]
    fn bit_flips_never_panic_and_never_misparse_silently(
        reqs in proptest::collection::vec(arb_request(), 1..16),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_requests(&reqs, &mut buf).expect("within frame bounds");
        let mut payload = buf[4..].to_vec();
        let idx = flip_byte % payload.len();
        payload[idx] ^= 1 << flip_bit;
        // Flipped frames either fail typed or decode to *something* — the
        // decoder must stay total either way.
        let _ = decode_requests(&payload);
    }
}
