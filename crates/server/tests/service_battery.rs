//! Service-level battery over real TCP: scripted mixed workloads checked
//! against a `BTreeMap` model, multi-connection consistency, zero-length
//! batches, and malformed-frame handling (typed error, then close, with
//! the server staying healthy for other connections).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pangolin::{PglConfig, PglPool};
use pgl_kv::store::PglStore;
use pgl_nvm::{DeviceConfig, NvmDevice};
use pgl_server::proto::{decode_responses, read_frame, Request, Response};
use pgl_server::{Client, KvServer, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pgl_store() -> PglStore {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    PglStore::new(PglPool::create(dev, cfg).unwrap())
}

fn start_server() -> KvServer<PglStore> {
    let cfg = ServiceConfig { shards: 4, ..ServiceConfig::default() };
    KvServer::start(pgl_store(), cfg, "127.0.0.1:0").unwrap()
}

#[test]
fn tcp_mixed_workload_matches_model() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0x5eed_cafe);

    for round in 0..40u64 {
        // One frame of writes (duplicate keys allowed: same-key requests
        // share a shard lane, so in-frame order is preserved).
        let writes: Vec<Request> = (0..16)
            .map(|_| {
                let key = rng.gen_range(0..200u64);
                if rng.gen_bool(0.25) {
                    Request::Del { key }
                } else {
                    Request::Put { key, value: key * 31 + round }
                }
            })
            .collect();
        for (req, resp) in writes.iter().zip(client.call(&writes).unwrap()) {
            let want = match *req {
                Request::Put { key, value } => model.insert(key, value),
                Request::Del { key } => model.remove(&key),
                _ => unreachable!(),
            };
            assert_eq!(resp, Response::Value(want), "round {round}: {req:?}");
        }

        // One frame of reads; the previous frame is fully acknowledged,
        // so the model is exact even for cross-shard scans.
        let mut reads: Vec<Request> =
            (0..8).map(|_| Request::Get { key: rng.gen_range(0..200u64) }).collect();
        let start = rng.gen_range(0..200u64);
        reads.push(Request::Scan { start, limit: 10 });
        let resps = client.call(&reads).unwrap();
        for (req, resp) in reads.iter().zip(resps) {
            match *req {
                Request::Get { key } => {
                    assert_eq!(resp, Response::Value(model.get(&key).copied()), "get {key}");
                }
                Request::Scan { start, .. } => {
                    let want: Vec<(u64, u64)> =
                        model.range(start..).take(10).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(resp, Response::Pairs(want), "scan from {start}");
                }
                _ => unreachable!(),
            }
        }
    }
    server.shutdown();
}

#[test]
fn concurrent_connections_settle_to_a_consistent_state() {
    let server = start_server();
    let addr = server.local_addr();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for f in 0..10u64 {
                    let reqs: Vec<Request> = (0..8)
                        .map(|i| Request::Put { key: t * 1000 + f * 8 + i, value: t })
                        .collect();
                    for resp in client.call(&reqs).unwrap() {
                        assert!(matches!(resp, Response::Value(_)), "{resp:?}");
                    }
                }
            });
        }
    });
    let mut client = Client::connect(addr).unwrap();
    for t in 0..4u64 {
        for k in 0..80u64 {
            let resp = client.get(t * 1000 + k).unwrap();
            assert_eq!(resp, Response::Value(Some(t)), "key {}", t * 1000 + k);
        }
    }
    server.shutdown();
}

#[test]
fn empty_frames_round_trip() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.call(&[]).unwrap(), Vec::<Response>::new());
    // The connection stays usable afterwards.
    assert_eq!(client.put(1, 2).unwrap(), Response::Value(None));
    server.shutdown();
}

#[test]
fn malformed_frames_get_a_typed_error_then_close() {
    let server = start_server();
    let addr = server.local_addr();

    // Valid length prefix, garbage payload: one Error response, then EOF.
    let mut raw = TcpStream::connect(addr).unwrap();
    let garbage = [0xFFu8, 0xDE, 0xAD, 0xBE, 0xEF];
    raw.write_all(&(garbage.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&garbage).unwrap();
    let mut payload = Vec::new();
    assert!(read_frame(&mut raw, &mut payload).unwrap(), "expected an error reply");
    let resps = decode_responses(&payload).unwrap();
    assert!(
        matches!(resps.as_slice(), [Response::Error(msg)] if msg.contains("bad frame")),
        "got {resps:?}"
    );
    let mut byte = [0u8; 1];
    assert_eq!(raw.read(&mut byte).unwrap(), 0, "server must close after a bad frame");

    // Oversized length prefix: the server closes without replying.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let mut buf = Vec::new();
    let got = read_frame(&mut raw, &mut buf);
    assert!(matches!(got, Ok(false) | Err(_)), "no reply expected, got {got:?}");

    // Other connections are unaffected.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.put(7, 8).unwrap(), Response::Value(None));
    assert_eq!(client.get(7).unwrap(), Response::Value(Some(8)));
    server.shutdown();
}
