//! Group-commit regression battery: the batcher must (a) produce exactly
//! the same results as unbatched execution and an in-memory model, and
//! (b) issue strictly fewer persistence fences than one-commit-per-txn
//! execution of the same load — the whole point of grouping.

use std::collections::BTreeMap;
use std::sync::Arc;

use pangolin::{PglConfig, PglPool};
use pgl_kv::store::PglStore;
use pgl_nvm::{DeviceConfig, NvmDevice, StatsSnapshot};
use pgl_server::proto::{Request, Response};
use pgl_server::service::{KvService, ServiceConfig};

const THREADS: u64 = 4;
const FRAMES_PER_THREAD: u64 = 16;
const FRAME_LEN: u64 = 8;

fn pgl_store() -> (PglStore, Arc<NvmDevice>) {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    (PglStore::new(PglPool::create(dev.clone(), cfg).unwrap()), dev)
}

/// Runs the identical concurrent put load through a service configured
/// with the given `batch_max`, returning the device-stats delta.
fn run_load(batch_max: usize) -> (StatsSnapshot, KvService<PglStore>) {
    let (store, dev) = pgl_store();
    let cfg = ServiceConfig {
        shards: 1,
        queue_depth: 256,
        batch_max,
        max_inflight: 1024,
        ..ServiceConfig::default()
    };
    let service = KvService::new(store, cfg).unwrap();
    let before = dev.stats();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let service = &service;
            s.spawn(move || {
                for f in 0..FRAMES_PER_THREAD {
                    // Disjoint per-thread key ranges: results are
                    // deterministic regardless of interleaving.
                    let base = t * 10_000 + f * FRAME_LEN;
                    let reqs: Vec<Request> = (0..FRAME_LEN)
                        .map(|i| Request::Put { key: base + i, value: (base + i) * 31 })
                        .collect();
                    for resp in service.call(&reqs) {
                        assert!(
                            matches!(resp, Response::Value(None)),
                            "fresh keys, ample queues: {resp:?}"
                        );
                    }
                }
            });
        }
    });
    (dev.stats().delta_since(&before), service)
}

#[test]
fn grouped_commits_issue_fewer_fences_than_per_txn_commits() {
    let (grouped, service) = run_load(64);
    let (single, _svc) = run_load(1);

    let txns = THREADS * FRAMES_PER_THREAD * FRAME_LEN;
    assert!(
        grouped.group_commits > 0 && grouped.group_txns > grouped.group_commits,
        "concurrent load must actually group: {} commits / {} txns",
        grouped.group_commits,
        grouped.group_txns,
    );
    assert!(
        grouped.fences < single.fences,
        "group commit must reduce fences: grouped={} unbatched={}",
        grouped.fences,
        single.fences,
    );
    // The batched run amortizes the commit fence across whole batches, so
    // fences per transaction must drop materially, not by rounding noise.
    assert!(
        grouped.fences * 2 <= single.fences + txns,
        "expected a material fence reduction: grouped={} unbatched={} txns={txns}",
        grouped.fences,
        single.fences,
    );

    // Same load, same answers: every key is present with its model value.
    let mut model = BTreeMap::new();
    for t in 0..THREADS {
        for f in 0..FRAMES_PER_THREAD {
            for i in 0..FRAME_LEN {
                let k = t * 10_000 + f * FRAME_LEN + i;
                model.insert(k, k * 31);
            }
        }
    }
    let reqs: Vec<Request> = model.keys().map(|&key| Request::Get { key }).collect();
    // Chunks must fit the single shard's queue depth or they shed Busy.
    for chunk in reqs.chunks(128) {
        let resps = service.call(chunk);
        for (req, resp) in chunk.iter().zip(resps) {
            let Request::Get { key } = *req else { unreachable!() };
            assert_eq!(resp, Response::Value(model.get(&key).copied()), "key {key}");
        }
    }
}

#[test]
fn batched_and_unbatched_runs_agree_under_mixed_ops() {
    // The same deterministic mixed script (puts, dels, overwrites) through
    // a grouping service and a non-grouping one must externalize the same
    // final map.
    let finals: Vec<Vec<(u64, u64)>> = [64usize, 1]
        .iter()
        .map(|&batch_max| {
            let (store, _dev) = pgl_store();
            let cfg = ServiceConfig {
                shards: 2,
                queue_depth: 128,
                batch_max,
                max_inflight: 512,
                ..ServiceConfig::default()
            };
            let service = KvService::new(store, cfg).unwrap();
            let mut reqs = Vec::new();
            for k in 0..300u64 {
                reqs.push(Request::Put { key: k % 100, value: k });
                if k % 7 == 0 {
                    reqs.push(Request::Del { key: (k + 3) % 100 });
                }
            }
            for chunk in reqs.chunks(64) {
                for resp in service.call(chunk) {
                    assert!(matches!(resp, Response::Value(_)), "unexpected {resp:?}");
                }
            }
            let resps = service.call(&[Request::Scan { start: 0, limit: 4096 }]);
            match resps.into_iter().next().unwrap() {
                Response::Pairs(pairs) => pairs,
                other => panic!("scan failed: {other:?}"),
            }
        })
        .collect();
    assert_eq!(finals[0], finals[1], "grouping changed observable state");
    assert!(!finals[0].is_empty());
}
