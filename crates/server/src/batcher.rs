//! The shard worker: drains its lane queue and coalesces queued writes
//! into **group commits**.
//!
//! The worker blocks on its queue, then drains everything already queued
//! (up to `batch_max`) and accumulates its writes into one
//! [`Store::txn_batch`] call — on a Pangolin store that is one
//! micro-buffered transaction, i.e. one redo-log persist, one commit
//! fence and one parity-patch window for the whole group. Reads are
//! served directly as they are encountered *without* breaking the write
//! group: a read only forces the pending group to commit first when it
//! touches a key that group wrote (or is a scan), which preserves
//! per-key program order while keeping interleaved point reads from
//! fragmenting the batch. Under light load a write still commits alone
//! (no added latency); under concurrency the queue builds while a batch
//! commits, so the next drain finds a deeper group — the classic
//! group-commit feedback loop.
//!
//! Each shard owns its map exclusively (single writer), satisfying the
//! paper's §3.4 rule without any map-level locking; concurrency across
//! shards comes from Pangolin's per-lane transactions and striped parity
//! range-locks.

use std::sync::mpsc::Receiver;

use pangolin::PglError;
use pgl_kv::btree::BTree;
use pgl_kv::maps::PersistentMap;
use pgl_kv::store::{BatchOp, KvError, KvResult, Store};

use crate::lane::Job;
use crate::proto::{Request, Response, MAX_SCAN_LIMIT};

/// Maps a store error to its wire response. Data loss beyond the parity
/// guarantee surfaces as the typed [`Response::Unrecoverable`] (carrying
/// the quarantined shard/zone) so clients can distinguish "lost, do not
/// retry" from transient execution errors.
pub fn response_for_error(e: &KvError) -> Response {
    match e {
        KvError::Pgl(PglError::Unrecoverable { shard, zone, .. }) => {
            Response::Unrecoverable { shard: *shard, zone: *zone }
        }
        other => Response::Error(other.to_string()),
    }
}

/// One shard's executor: a map, a store handle, and the lane consumer.
pub struct ShardWorker<S: Store> {
    store: S,
    map: BTree,
    rx: Receiver<Job>,
    batch_max: usize,
    /// Service shard index — doubles as the parity-shard binding, so a
    /// worker's group commits allocate inside one parity domain and never
    /// pay the cross-shard commit protocol.
    shard: usize,
}

impl<S: Store> ShardWorker<S> {
    /// A worker executing `rx`'s jobs against `map` on `store`, grouping
    /// at most `batch_max` writes per commit. `shard` is this worker's
    /// service-shard index, forwarded to [`Store::bind_shard`] on the
    /// worker thread at startup.
    pub fn new(
        store: S,
        map: BTree,
        rx: Receiver<Job>,
        batch_max: usize,
        shard: usize,
    ) -> ShardWorker<S> {
        ShardWorker { store, map, rx, batch_max: batch_max.max(1), shard }
    }

    /// Runs until every producer handle is gone (service shutdown).
    pub fn run(self) {
        // Align this worker (thread) with a parity shard: allocations it
        // makes prefer that shard's zones.
        self.store.bind_shard(self.shard);
        let mut jobs: Vec<Job> = Vec::with_capacity(self.batch_max);
        loop {
            let Ok(first) = self.rx.recv() else {
                return; // all lanes dropped: clean shutdown
            };
            jobs.push(first);
            while jobs.len() < self.batch_max {
                match self.rx.try_recv() {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
            self.execute(&mut jobs);
        }
    }

    /// Executes one drained batch and replies per job. Writes accumulate
    /// into a single group commit; reads are answered in place, flushing
    /// the pending group first only on a per-key conflict (a read of a
    /// key the group wrote must see that write) or a scan.
    fn execute(&self, jobs: &mut Vec<Job>) {
        let mut group: Vec<Job> = Vec::new();
        let mut written: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for job in jobs.drain(..) {
            match job.req {
                Request::Put { key, .. } | Request::Del { key } => {
                    written.insert(key);
                    group.push(job);
                }
                Request::Get { key } => {
                    if written.contains(&key) {
                        self.commit_write_run(&group);
                        group.clear();
                        written.clear();
                    }
                    let resp = self.serve_read(&job.req);
                    let _ = job.reply.send((job.slot, resp));
                }
                Request::Scan { .. } => {
                    if !group.is_empty() {
                        self.commit_write_run(&group);
                        group.clear();
                        written.clear();
                    }
                    let resp = self.serve_read(&job.req);
                    let _ = job.reply.send((job.slot, resp));
                }
            }
        }
        if !group.is_empty() {
            self.commit_write_run(&group);
        }
    }

    /// Groups a contiguous run of writes into one batched commit.
    fn commit_write_run(&self, run: &[Job]) {
        let map = &self.map;
        let mut ops: Vec<BatchOp<'_>> = run
            .iter()
            .map(|job| -> BatchOp<'_> {
                match job.req {
                    Request::Put { key, value } => {
                        Box::new(move |tx| map.insert_tx(tx, key, value))
                    }
                    Request::Del { key } => Box::new(move |tx| map.remove_tx(tx, key)),
                    // `is_write` gated the run; reads never reach here.
                    Request::Get { .. } | Request::Scan { .. } => {
                        unreachable!("read in write run")
                    }
                }
            })
            .collect();
        let results = self.store.txn_batch(&mut ops);
        for (job, result) in run.iter().zip(results) {
            let resp = match result {
                Ok(old) => Response::Value(old),
                Err(e) => response_for_error(&e),
            };
            let _ = job.reply.send((job.slot, resp));
        }
    }

    /// Serves a read directly (no transaction): this worker is the only
    /// writer of its map, so direct reads cannot race a commit.
    fn serve_read(&self, req: &Request) -> Response {
        let result: KvResult<Response> = match *req {
            Request::Get { key } => self.map.get(&self.store, key).map(Response::Value),
            Request::Scan { start, limit } => {
                let limit = limit.min(MAX_SCAN_LIMIT) as usize;
                let mut pairs = Vec::new();
                self.map
                    .scan(&self.store, start, limit, &mut pairs)
                    .map(|()| Response::Pairs(pairs))
            }
            Request::Put { .. } | Request::Del { .. } => {
                unreachable!("write served as read")
            }
        };
        result.unwrap_or_else(|e| response_for_error(&e))
    }
}

/// Whether a request mutates the map (and therefore batches).
pub fn is_write(req: &Request) -> bool {
    matches!(req, Request::Put { .. } | Request::Del { .. })
}
