//! `pgl-server`: a network-facing KV service over `pgl-kv`'s [`Store`]
//! with **pipelined group commit**.
//!
//! The service shards keys across single-writer B-trees (the paper's
//! §3.4 rule: no two concurrent transactions touch the same object), and
//! each shard's worker drains a bounded lane queue, coalescing queued
//! writes into one Pangolin transaction — one redo-log persist, one
//! commit fence, one parity-patch window per *batch* instead of per
//! transaction. A `std::net` TCP layer (no async runtime, no new
//! dependencies) frames requests with a 4-byte length-prefixed binary
//! protocol; admission control plus the bounded queues shed overload as
//! typed `Busy` responses so memory stays bounded.
//!
//! Layering: `proto` (wire format) → `lane`/`admission` (queueing) →
//! `batcher` (group commit) → `service` (sharded service) →
//! `server`/`client` (TCP).
//!
//! [`Store`]: pgl_kv::store::Store

#![warn(missing_docs)]

pub mod admission;
pub mod batcher;
pub mod client;
pub mod lane;
pub mod proto;
pub mod server;
pub mod service;

pub use admission::Admission;
pub use client::{Client, ClientConfig};
pub use proto::{Request, Response};
pub use server::KvServer;
pub use service::{KvService, ServiceConfig};
