//! The TCP front end: a thin framing layer over [`KvService`].
//!
//! One accept thread plus one thread per connection, all plain blocking
//! `std::net` — no async runtime, matching the repo's no-new-deps rule.
//! A connection reads one request frame, runs it through
//! [`KvService::call`], and writes one response frame; pipelining across
//! connections is what feeds the group-commit batcher.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use pgl_kv::store::Store;

use crate::proto::{decode_requests, encode_responses, read_frame, write_frame, Response};
use crate::service::{KvService, ServiceConfig};

/// Live-connection registry so shutdown can unblock reader threads.
#[derive(Default)]
struct ConnTable {
    streams: Mutex<Vec<TcpStream>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A running KV server: the service plus its TCP accept loop.
///
/// Dropping the server (or calling [`KvServer::shutdown`]) stops
/// accepting, severs every open connection, joins all threads, and then
/// tears down the service (joining the shard workers).
pub struct KvServer<S: Store + Clone + 'static> {
    service: Arc<KvService<S>>,
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<ConnTable>,
}

impl<S: Store + Clone + 'static> KvServer<S> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `store` with the given service configuration.
    pub fn start<A: ToSocketAddrs>(store: S, config: ServiceConfig, addr: A) -> io::Result<Self> {
        let service = Arc::new(
            KvService::new(store, config)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        );
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let conns = Arc::new(ConnTable::default());
        let accept = {
            let service = Arc::clone(&service);
            let running = Arc::clone(&running);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if !running.load(Ordering::Acquire) {
                        break; // woken by shutdown's dummy connect
                    }
                    let service = Arc::clone(&service);
                    if let Ok(dup) = stream.try_clone() {
                        conns.streams.lock().unwrap().push(dup);
                    }
                    let handle = std::thread::spawn(move || serve_conn(stream, &service));
                    conns.handles.lock().unwrap().push(handle);
                }
            })
        };
        Ok(KvServer { service, addr, running, accept: Some(accept), conns })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (stats, store handle, direct calls).
    pub fn service(&self) -> &KvService<S> {
        &self.service
    }

    /// Stops the server and joins every thread it spawned. In-flight
    /// frames may be cut off mid-reply; use [`KvServer::drain`] when
    /// clients should see their pending responses first.
    pub fn shutdown(mut self) {
        self.stop(Shutdown::Both);
    }

    /// Gracefully drains the server: stops accepting, half-closes every
    /// connection's **read** side — so a frame already being executed
    /// still gets its response written before the connection loop sees
    /// end-of-stream — joins the connection threads, and then (on drop)
    /// tears down the service, which flushes every queued lane job
    /// through the shard workers before they exit.
    pub fn drain(mut self) {
        self.stop(Shutdown::Read);
    }

    fn stop(&mut self, how: Shutdown) {
        if !self.running.swap(false, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop, then end (drain) or sever (shutdown) the
        // readers blocked in read_frame.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for s in self.conns.streams.lock().unwrap().drain(..) {
            let _ = s.shutdown(how);
        }
        let handles: Vec<_> = self.conns.handles.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl<S: Store + Clone + 'static> Drop for KvServer<S> {
    fn drop(&mut self) {
        self.stop(Shutdown::Both);
    }
}

/// One connection's loop: frame in, service call, frame out.
fn serve_conn<S: Store + Clone + 'static>(mut stream: TcpStream, service: &KvService<S>) {
    let _ = stream.set_nodelay(true);
    let mut payload = Vec::new();
    let mut frame = Vec::new();
    // Loop until a clean close (Ok(false)) or a dead peer (Err).
    while let Ok(true) = read_frame(&mut stream, &mut payload) {
        let resps = match decode_requests(&payload) {
            Ok(reqs) => service.call(&reqs),
            Err(e) => {
                // Protocol desync: answer one typed error, then close —
                // the stream position can no longer be trusted.
                let err = vec![Response::Error(format!("bad frame: {e}"))];
                if encode_responses(&err, &mut frame).is_ok() {
                    let _ = write_frame(&mut stream, &frame);
                }
                break;
            }
        };
        if encode_responses(&resps, &mut frame).is_err() {
            // Response exceeds the frame limit (huge scan batch): report
            // once and close rather than send an unframeable reply.
            let err = vec![Response::Error("response exceeds frame limit".into())];
            if encode_responses(&err, &mut frame).is_ok() {
                let _ = write_frame(&mut stream, &frame);
            }
            break;
        }
        if write_frame(&mut stream, &frame).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}
