//! Bounded per-shard request queues.
//!
//! Each shard (one worker thread, one single-writer map — the paper's
//! §3.4 rule needs no locks this way) is fed by one `LaneQueue`: a
//! bounded MPSC channel. Producers never block — a full queue is an
//! immediate [`crate::proto::Response::Busy`], which together with the
//! admission gate keeps service memory bounded under overload.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

use crate::proto::{Request, Response};

/// One queued request plus its reply route: the response is sent back
/// tagged with the request's `slot` (its position in the client frame).
#[derive(Debug)]
pub struct Job {
    /// The request to execute.
    pub req: Request,
    /// Position of this request in its originating frame.
    pub slot: usize,
    /// Where the worker sends `(slot, response)`.
    pub reply: std::sync::mpsc::Sender<(usize, Response)>,
}

/// The producer side of a shard's bounded queue.
#[derive(Debug, Clone)]
pub struct LaneQueue {
    tx: SyncSender<Job>,
    depth: usize,
}

impl LaneQueue {
    /// A queue holding at most `depth` pending jobs; returns the consumer
    /// end for the shard worker.
    pub fn new(depth: usize) -> (LaneQueue, Receiver<Job>) {
        let depth = depth.max(1);
        let (tx, rx) = sync_channel(depth);
        (LaneQueue { tx, depth }, rx)
    }

    /// Non-blocking enqueue. A full queue — or a dead worker — hands the
    /// job back so the caller can answer `Busy`.
    pub fn try_push(&self, job: Job) -> Result<(), Job> {
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => Err(job),
        }
    }

    /// The queue's bound.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(reply: &std::sync::mpsc::Sender<(usize, Response)>) -> Job {
        Job { req: Request::Get { key: 0 }, slot: 0, reply: reply.clone() }
    }

    #[test]
    fn full_queue_hands_the_job_back() {
        let (lane, rx) = LaneQueue::new(2);
        let (reply, _keep) = std::sync::mpsc::channel();
        assert!(lane.try_push(job(&reply)).is_ok());
        assert!(lane.try_push(job(&reply)).is_ok());
        let bounced = lane.try_push(job(&reply));
        assert!(bounced.is_err(), "third push must bounce at depth 2");
        drop(rx); // worker gone: pushes bounce instead of hanging
        assert!(lane.try_push(job(&reply)).is_err());
    }
}
