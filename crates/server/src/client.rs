//! A minimal blocking client for the KV service protocol.
//!
//! One frame of requests per [`Client::call`]; batching many requests
//! into a frame is how clients amortize round-trips and how the server
//! finds group-commit opportunities.
//!
//! Degraded-mode ergonomics live here too: configurable connect and I/O
//! deadlines ([`ClientConfig`]) so a wedged server cannot hang a caller,
//! and [`Client::call_retry`] — exponential backoff with deterministic
//! jitter that retries **only** retryable responses ([`Response::Busy`]).
//! Typed [`Response::Unrecoverable`] and execution errors surface
//! immediately: retrying lost data only burns time.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{decode_responses, encode_requests, read_frame, write_frame, Request, Response};

/// Connection and retry policy for a [`Client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect deadline; `None` blocks until the OS gives up.
    pub connect_timeout: Option<Duration>,
    /// Per-frame read deadline (server stall detection); `None` blocks.
    pub read_timeout: Option<Duration>,
    /// Per-frame write deadline; `None` blocks.
    pub write_timeout: Option<Duration>,
    /// Maximum retry attempts in [`Client::call_retry`] after the first
    /// try (`0` = no retries).
    pub max_retries: u32,
    /// First backoff pause; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Jitter seed: equal seeds replay equal backoff sequences, so tests
    /// and benchmarks are reproducible.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_retries: 5,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(250),
            jitter_seed: 0x636c_6965_6e74,
        }
    }
}

/// A blocking connection to a [`crate::server::KvServer`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    config: ClientConfig,
    rng: u64,
    frame: Vec<u8>,
    payload: Vec<u8>,
}

fn connect_stream(addr: &impl ToSocketAddrs, config: &ClientConfig) -> io::Result<TcpStream> {
    let stream = match config.connect_timeout {
        None => TcpStream::connect(addr)?,
        Some(limit) => {
            // `connect_timeout` needs resolved addresses; try each.
            let mut last = None;
            let mut found = None;
            for sa in addr.to_socket_addrs()? {
                match TcpStream::connect_timeout(&sa, limit) {
                    Ok(s) => {
                        found = Some(s);
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            found.ok_or_else(|| {
                last.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "no addresses to connect to")
                })
            })?
        }
    };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    Ok(stream)
}

impl Client {
    /// Connects with the default deadlines and retry policy.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit [`ClientConfig`].
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> io::Result<Client> {
        let stream = connect_stream(&addr, &config)?;
        Ok(Client {
            stream,
            config,
            rng: config.jitter_seed,
            frame: Vec::new(),
            payload: Vec::new(),
        })
    }

    /// The peer this client is connected to.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one frame of requests and returns the positional responses.
    pub fn call(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        encode_requests(reqs, &mut self.frame)?;
        write_frame(&mut self.stream, &self.frame)?;
        if !read_frame(&mut self.stream, &mut self.payload)? {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"));
        }
        let resps = decode_responses(&self.payload)?;
        // A decode-error reply is a single Error frame for the whole batch.
        if resps.len() != reqs.len() && !matches!(resps.as_slice(), [Response::Error(_)]) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "response count mismatch"));
        }
        Ok(resps)
    }

    /// Like [`Client::call`], but re-issues requests whose response was
    /// retryable (`Busy` — shed before executing) with exponential
    /// backoff and deterministic jitter. Permanent outcomes — values,
    /// execution errors, and typed [`Response::Unrecoverable`] — are
    /// never retried. Returns positional responses; any request still
    /// `Busy` after `max_retries` keeps its `Busy` response.
    pub fn call_retry(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        let mut out = self.call(reqs)?;
        for attempt in 0..self.config.max_retries {
            let pending: Vec<usize> = (0..out.len()).filter(|&i| out[i].is_retryable()).collect();
            if pending.is_empty() {
                break;
            }
            std::thread::sleep(self.backoff(attempt));
            let again: Vec<Request> = pending.iter().map(|&i| reqs[i]).collect();
            let resps = self.call(&again)?;
            if resps.len() != again.len() {
                break; // whole-batch decode error; leave Busy in place
            }
            for (&slot, resp) in pending.iter().zip(resps) {
                out[slot] = resp;
            }
        }
        Ok(out)
    }

    /// Jittered exponential backoff: `base * 2^attempt`, clamped to
    /// `backoff_max`, scaled by a seeded 50–100% jitter factor.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let ceil = self.config.backoff_max.as_micros().max(1) as u64;
        let raw = (self.config.backoff_base.as_micros() as u64)
            .saturating_mul(1u64 << attempt.min(20))
            .clamp(1, ceil);
        // SplitMix64 step for deterministic jitter.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Duration::from_micros(raw / 2 + z % (raw / 2 + 1))
    }

    /// Single-request `GET key`.
    pub fn get(&mut self, key: u64) -> io::Result<Response> {
        self.call(&[Request::Get { key }]).map(first)
    }

    /// Single-request `PUT key value`.
    pub fn put(&mut self, key: u64, value: u64) -> io::Result<Response> {
        self.call(&[Request::Put { key, value }]).map(first)
    }

    /// Single-request `DEL key`.
    pub fn del(&mut self, key: u64) -> io::Result<Response> {
        self.call(&[Request::Del { key }]).map(first)
    }

    /// Single-request `SCAN start limit`.
    pub fn scan(&mut self, start: u64, limit: u32) -> io::Result<Response> {
        self.call(&[Request::Scan { start, limit }]).map(first)
    }
}

fn first(mut resps: Vec<Response>) -> Response {
    resps.remove(0)
}
