//! A minimal blocking client for the KV service protocol.
//!
//! One frame of requests per [`Client::call`]; batching many requests
//! into a frame is how clients amortize round-trips and how the server
//! finds group-commit opportunities.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{decode_responses, encode_requests, read_frame, write_frame, Request, Response};

/// A blocking connection to a [`crate::server::KvServer`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    frame: Vec<u8>,
    payload: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, frame: Vec::new(), payload: Vec::new() })
    }

    /// Sends one frame of requests and returns the positional responses.
    pub fn call(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        encode_requests(reqs, &mut self.frame)?;
        write_frame(&mut self.stream, &self.frame)?;
        if !read_frame(&mut self.stream, &mut self.payload)? {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"));
        }
        let resps = decode_responses(&self.payload)?;
        // A decode-error reply is a single Error frame for the whole batch.
        if resps.len() != reqs.len() && !matches!(resps.as_slice(), [Response::Error(_)]) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "response count mismatch"));
        }
        Ok(resps)
    }

    /// Single-request `GET key`.
    pub fn get(&mut self, key: u64) -> io::Result<Response> {
        self.call(&[Request::Get { key }]).map(first)
    }

    /// Single-request `PUT key value`.
    pub fn put(&mut self, key: u64, value: u64) -> io::Result<Response> {
        self.call(&[Request::Put { key, value }]).map(first)
    }

    /// Single-request `DEL key`.
    pub fn del(&mut self, key: u64) -> io::Result<Response> {
        self.call(&[Request::Del { key }]).map(first)
    }

    /// Single-request `SCAN start limit`.
    pub fn scan(&mut self, start: u64, limit: u32) -> io::Result<Response> {
        self.call(&[Request::Scan { start, limit }]).map(first)
    }
}

fn first(mut resps: Vec<Response>) -> Response {
    resps.remove(0)
}
