//! Admission control: a global in-flight request cap so overload sheds
//! work at the front door (typed [`crate::proto::Response::Busy`]) instead
//! of growing queues without bound.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A counting admission gate. Requests acquire before entering the lane
/// queues and release (via [`Permit`] drop) once their responses are
/// collected, so `in-flight ≤ capacity` holds at every instant — the
/// bounded-memory guarantee the overload test pins via [`Admission::peak`].
#[derive(Debug)]
pub struct Admission {
    cap: usize,
    inflight: AtomicUsize,
    peak: AtomicUsize,
    shed: AtomicU64,
}

/// An RAII admission grant for `n` requests; dropping it releases them.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Admission,
    n: usize,
}

impl Admission {
    /// A gate admitting at most `cap` concurrent requests.
    pub fn new(cap: usize) -> Admission {
        Admission {
            cap: cap.max(1),
            inflight: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Tries to admit `n` requests; `None` (and a shed count bump) when
    /// they would push the in-flight total over capacity.
    pub fn try_acquire(&self, n: usize) -> Option<Permit<'_>> {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            if next > self.cap {
                self.shed.fetch_add(n as u64, Ordering::Relaxed);
                return None;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                next,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return Some(Permit { gate: self, n });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Requests currently admitted.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently admitted requests.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Requests shed (rejected `Busy`) at this gate so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(self.n, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_and_sheds_beyond() {
        let gate = Admission::new(4);
        let a = gate.try_acquire(3).expect("3 of 4");
        let b = gate.try_acquire(1).expect("4 of 4");
        assert!(gate.try_acquire(1).is_none(), "over capacity");
        assert_eq!(gate.shed(), 1);
        assert_eq!(gate.inflight(), 4);
        drop(a);
        assert_eq!(gate.inflight(), 1);
        let _c = gate.try_acquire(3).expect("room again");
        drop(b);
        assert_eq!(gate.peak(), 4);
    }

    #[test]
    fn peak_never_exceeds_capacity() {
        let gate = Admission::new(8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        if let Some(p) = gate.try_acquire(3) {
                            assert!(gate.inflight() <= gate.capacity());
                            drop(p);
                        }
                    }
                });
            }
        });
        assert!(gate.peak() <= 8);
    }
}
