//! The wire protocol: length-prefixed binary frames carrying batches of
//! requests or responses.
//!
//! A frame is `[u32 LE payload length][payload]`; the payload is
//! `[u8 frame kind][u32 LE count][count items]` with fixed little-endian
//! item encodings. Responses are positional: the `i`-th response in a
//! frame answers the `i`-th request of the frame it replies to, so no
//! request ids travel on the wire.
//!
//! Decoding is total: any input — truncated, oversized, or garbage —
//! yields a typed [`ProtoError`], never a panic (the round-trip property
//! suite fuzzes this).

use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload (1 MiB): anything larger is rejected
/// before allocation, bounding per-connection memory.
pub const MAX_FRAME: usize = 1 << 20;

/// Maximum requests (or responses) per frame.
pub const MAX_BATCH: usize = 1024;

/// Maximum pairs a single SCAN may request; larger limits are clamped.
pub const MAX_SCAN_LIMIT: u32 = 4096;

const FRAME_REQ: u8 = 0x01;
const FRAME_RESP: u8 = 0x02;

const TAG_GET: u8 = 0x10;
const TAG_PUT: u8 = 0x11;
const TAG_DEL: u8 = 0x12;
const TAG_SCAN: u8 = 0x13;

const TAG_NONE: u8 = 0x20;
const TAG_SOME: u8 = 0x21;
const TAG_PAIRS: u8 = 0x22;
const TAG_BUSY: u8 = 0x23;
const TAG_ERROR: u8 = 0x24;
const TAG_UNRECOVERABLE: u8 = 0x25;

/// One client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Insert or overwrite; the response carries the old value.
    Put {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Delete; the response carries the removed value.
    Del {
        /// Key to delete.
        key: u64,
    },
    /// Ordered range scan from `start`, at most `limit` pairs.
    Scan {
        /// First key of the range (inclusive).
        start: u64,
        /// Maximum pairs to return (clamped to [`MAX_SCAN_LIMIT`]).
        limit: u32,
    },
}

/// One response, positionally matched to its request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET result, or a write's previous value (`None` = absent).
    Value(Option<u64>),
    /// SCAN result: ascending `(key, value)` pairs.
    Pairs(Vec<(u64, u64)>),
    /// Shed by admission control or a full lane queue; the request did
    /// **not** execute — retry later.
    Busy,
    /// Server-side execution error (the request may have aborted).
    Error(String),
    /// The request touched data lost beyond the parity guarantee (a
    /// quarantined zone). **Not retryable**: the same request will keep
    /// failing until an operator intervenes; other shards keep serving.
    /// Shard/zone use `u64::MAX` when the fault could not be located.
    Unrecoverable {
        /// Parity shard of the lost data.
        shard: u64,
        /// Quarantined zone id within that shard.
        zone: u64,
    },
}

impl Response {
    /// `true` for responses a client may transparently retry ([`Busy`]):
    /// the request did not execute. Execution errors and
    /// [`Unrecoverable`] are permanent and must surface to the caller.
    ///
    /// [`Busy`]: Response::Busy
    /// [`Unrecoverable`]: Response::Unrecoverable
    pub fn is_retryable(&self) -> bool {
        matches!(self, Response::Busy)
    }
}

/// A typed wire-format error; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the declared content.
    Truncated,
    /// A frame, batch, string, or scan limit exceeded its bound.
    Oversized {
        /// What exceeded the bound.
        what: &'static str,
        /// The offending size.
        len: u64,
    },
    /// Unknown frame kind byte.
    BadFrameKind(u8),
    /// Unknown item tag byte.
    BadTag(u8),
    /// Bytes left over after the declared items were decoded.
    Trailing(usize),
    /// An error string was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::Oversized { what, len } => write!(f, "{what} too large ({len})"),
            ProtoError::BadFrameKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::BadTag(t) => write!(f, "unknown item tag {t:#04x}"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after frame content"),
            ProtoError::BadUtf8 => write!(f, "error string is not UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(e: ProtoError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

// --- encode ----------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a request frame (length prefix included) into `buf`.
pub fn encode_requests(reqs: &[Request], buf: &mut Vec<u8>) -> Result<(), ProtoError> {
    if reqs.len() > MAX_BATCH {
        return Err(ProtoError::Oversized { what: "request batch", len: reqs.len() as u64 });
    }
    buf.clear();
    buf.extend_from_slice(&[0; 4]); // length prefix, patched below
    buf.push(FRAME_REQ);
    put_u32(buf, reqs.len() as u32);
    for req in reqs {
        match *req {
            Request::Get { key } => {
                buf.push(TAG_GET);
                put_u64(buf, key);
            }
            Request::Put { key, value } => {
                buf.push(TAG_PUT);
                put_u64(buf, key);
                put_u64(buf, value);
            }
            Request::Del { key } => {
                buf.push(TAG_DEL);
                put_u64(buf, key);
            }
            Request::Scan { start, limit } => {
                buf.push(TAG_SCAN);
                put_u64(buf, start);
                put_u32(buf, limit);
            }
        }
    }
    finish_frame(buf)
}

/// Encodes a response frame (length prefix included) into `buf`.
pub fn encode_responses(resps: &[Response], buf: &mut Vec<u8>) -> Result<(), ProtoError> {
    if resps.len() > MAX_BATCH {
        return Err(ProtoError::Oversized { what: "response batch", len: resps.len() as u64 });
    }
    buf.clear();
    buf.extend_from_slice(&[0; 4]);
    buf.push(FRAME_RESP);
    put_u32(buf, resps.len() as u32);
    for resp in resps {
        match resp {
            Response::Value(None) => buf.push(TAG_NONE),
            Response::Value(Some(v)) => {
                buf.push(TAG_SOME);
                put_u64(buf, *v);
            }
            Response::Pairs(pairs) => {
                if pairs.len() as u64 > MAX_SCAN_LIMIT as u64 {
                    return Err(ProtoError::Oversized {
                        what: "scan result",
                        len: pairs.len() as u64,
                    });
                }
                buf.push(TAG_PAIRS);
                put_u32(buf, pairs.len() as u32);
                for &(k, v) in pairs {
                    put_u64(buf, k);
                    put_u64(buf, v);
                }
            }
            Response::Busy => buf.push(TAG_BUSY),
            Response::Unrecoverable { shard, zone } => {
                buf.push(TAG_UNRECOVERABLE);
                put_u64(buf, *shard);
                put_u64(buf, *zone);
            }
            Response::Error(msg) => {
                let bytes = msg.as_bytes();
                let bytes = &bytes[..bytes.len().min(512)]; // bound error text
                buf.push(TAG_ERROR);
                put_u32(buf, bytes.len() as u32);
                buf.extend_from_slice(bytes);
            }
        }
    }
    finish_frame(buf)
}

fn finish_frame(buf: &mut [u8]) -> Result<(), ProtoError> {
    let payload = buf.len() - 4;
    if payload > MAX_FRAME {
        return Err(ProtoError::Oversized { what: "frame", len: payload as u64 });
    }
    buf[..4].copy_from_slice(&(payload as u32).to_le_bytes());
    Ok(())
}

// --- decode ----------------------------------------------------------

struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.rest.len() < n {
            return Err(ProtoError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }
}

fn frame_header(c: &mut Cursor<'_>, want_kind: u8) -> Result<usize, ProtoError> {
    let kind = c.u8()?;
    if kind != want_kind {
        return Err(ProtoError::BadFrameKind(kind));
    }
    let count = c.u32()? as usize;
    if count > MAX_BATCH {
        return Err(ProtoError::Oversized { what: "batch count", len: count as u64 });
    }
    Ok(count)
}

fn finish(c: Cursor<'_>) -> Result<(), ProtoError> {
    if c.rest.is_empty() {
        Ok(())
    } else {
        Err(ProtoError::Trailing(c.rest.len()))
    }
}

/// Decodes a request-frame payload (the bytes after the length prefix).
pub fn decode_requests(payload: &[u8]) -> Result<Vec<Request>, ProtoError> {
    let mut c = Cursor { rest: payload };
    let count = frame_header(&mut c, FRAME_REQ)?;
    let mut reqs = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = c.u8()?;
        reqs.push(match tag {
            TAG_GET => Request::Get { key: c.u64()? },
            TAG_PUT => Request::Put { key: c.u64()?, value: c.u64()? },
            TAG_DEL => Request::Del { key: c.u64()? },
            TAG_SCAN => {
                let start = c.u64()?;
                let limit = c.u32()?;
                if limit > MAX_SCAN_LIMIT {
                    return Err(ProtoError::Oversized { what: "scan limit", len: limit as u64 });
                }
                Request::Scan { start, limit }
            }
            other => return Err(ProtoError::BadTag(other)),
        });
    }
    finish(c)?;
    Ok(reqs)
}

/// Decodes a response-frame payload (the bytes after the length prefix).
pub fn decode_responses(payload: &[u8]) -> Result<Vec<Response>, ProtoError> {
    let mut c = Cursor { rest: payload };
    let count = frame_header(&mut c, FRAME_RESP)?;
    let mut resps = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = c.u8()?;
        resps.push(match tag {
            TAG_NONE => Response::Value(None),
            TAG_SOME => Response::Value(Some(c.u64()?)),
            TAG_PAIRS => {
                let n = c.u32()?;
                if n > MAX_SCAN_LIMIT {
                    return Err(ProtoError::Oversized { what: "scan result", len: n as u64 });
                }
                let mut pairs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    pairs.push((c.u64()?, c.u64()?));
                }
                Response::Pairs(pairs)
            }
            TAG_BUSY => Response::Busy,
            TAG_UNRECOVERABLE => Response::Unrecoverable { shard: c.u64()?, zone: c.u64()? },
            TAG_ERROR => {
                let n = c.u32()?;
                if n > 512 {
                    return Err(ProtoError::Oversized { what: "error string", len: n as u64 });
                }
                let bytes = c.take(n as usize)?;
                let msg = std::str::from_utf8(bytes).map_err(|_| ProtoError::BadUtf8)?;
                Response::Error(msg.to_string())
            }
            other => return Err(ProtoError::BadTag(other)),
        });
    }
    finish(c)?;
    Ok(resps)
}

// --- framed I/O ------------------------------------------------------

/// Reads one frame payload into `payload`. Returns `Ok(false)` on a clean
/// end-of-stream (no frame started), `Err` on a short or oversized frame.
pub fn read_frame(r: &mut impl Read, payload: &mut Vec<u8>) -> io::Result<bool> {
    let mut len4 = [0u8; 4];
    match r.read_exact(&mut len4) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(ProtoError::Oversized { what: "frame", len: len as u64 }.into());
    }
    payload.resize(len, 0);
    r.read_exact(payload)?;
    Ok(true)
}

/// Writes one already-encoded frame (from [`encode_requests`] /
/// [`encode_responses`]; the buffer starts with its length prefix).
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let reqs = vec![
            Request::Get { key: 1 },
            Request::Put { key: 2, value: 3 },
            Request::Del { key: u64::MAX },
            Request::Scan { start: 0, limit: 64 },
        ];
        let mut buf = Vec::new();
        encode_requests(&reqs, &mut buf).unwrap();
        assert_eq!(decode_requests(&buf[4..]).unwrap(), reqs);

        let resps = vec![
            Response::Value(None),
            Response::Value(Some(7)),
            Response::Pairs(vec![(1, 2), (3, 4)]),
            Response::Busy,
            Response::Error("nope".into()),
            Response::Unrecoverable { shard: 1, zone: 42 },
            Response::Unrecoverable { shard: u64::MAX, zone: u64::MAX },
        ];
        encode_responses(&resps, &mut buf).unwrap();
        assert_eq!(decode_responses(&buf[4..]).unwrap(), resps);
    }

    #[test]
    fn garbage_is_a_typed_error() {
        assert!(matches!(decode_requests(&[]), Err(ProtoError::Truncated)));
        assert!(matches!(decode_requests(&[0xFF]), Err(ProtoError::BadFrameKind(0xFF))));
        let mut buf = Vec::new();
        encode_requests(&[Request::Get { key: 9 }], &mut buf).unwrap();
        // Truncate mid-item.
        assert!(matches!(decode_requests(&buf[4..buf.len() - 1]), Err(ProtoError::Truncated)));
        // Trailing junk.
        buf.push(0);
        assert!(matches!(decode_requests(&buf[4..]), Err(ProtoError::Trailing(1))));
    }

    #[test]
    fn oversized_counts_are_rejected() {
        let mut payload = vec![FRAME_REQ];
        payload.extend_from_slice(&(MAX_BATCH as u32 + 1).to_le_bytes());
        assert!(matches!(decode_requests(&payload), Err(ProtoError::Oversized { .. })));
        let too_many = vec![Request::Get { key: 0 }; MAX_BATCH + 1];
        let mut buf = Vec::new();
        assert!(matches!(encode_requests(&too_many, &mut buf), Err(ProtoError::Oversized { .. })));
    }
}
