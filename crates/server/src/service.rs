//! The in-process KV service: sharded single-writer maps, bounded lane
//! queues, group-commit workers, and an admission gate. The TCP front end
//! ([`crate::server::KvServer`]) is a thin framing layer over
//! [`KvService::call`]; tests and the load driver can also call it
//! directly.

use std::sync::mpsc;
use std::thread::JoinHandle;

use pgl_kv::btree::BTree;
use pgl_kv::maps::{splitmix64, PersistentMap};
use pgl_kv::store::{KvError, KvResult, Store};
use pgl_pmemobj::PMEMoid;

use crate::admission::Admission;
use crate::batcher::ShardWorker;
use crate::lane::{Job, LaneQueue};
use crate::proto::{Request, Response, MAX_SCAN_LIMIT};

/// Object type number of the service's shard-directory root object.
const TYPE_SERVICE_ROOT: u32 = 200;

/// Hard cap on shards (each is one worker thread + one lane queue).
const MAX_SHARDS: usize = 64;

/// Service sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Shard count: single-writer maps, one worker thread each. Must
    /// match the pool's directory when re-attaching an existing pool.
    pub shards: usize,
    /// Bound of each shard's request queue (overload backpressure).
    pub queue_depth: usize,
    /// Most writes grouped into one commit by a shard worker.
    pub batch_max: usize,
    /// Global in-flight request cap (admission control).
    pub max_inflight: usize,
    /// Per-frame execution deadline in milliseconds; requests still
    /// unanswered when it expires get a typed deadline error instead of
    /// holding the connection. `0` disables the deadline.
    pub request_deadline_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 4,
            queue_depth: 128,
            batch_max: 32,
            max_inflight: 1024,
            request_deadline_ms: 0,
        }
    }
}

/// The sharded group-commit KV service over any [`Store`].
///
/// Keys are routed to shards by a [`splitmix64`] hash; each shard's
/// worker thread is the sole writer of its B-tree (the paper's §3.4
/// concurrency rule), and coalesces queued writes into group commits via
/// [`Store::txn_batch`]. Dropping the service closes the lanes and joins
/// the workers.
pub struct KvService<S: Store + Clone + 'static> {
    store: S,
    lanes: Vec<LaneQueue>,
    admission: Admission,
    workers: Vec<JoinHandle<()>>,
    config: ServiceConfig,
}

impl<S: Store + Clone + 'static> KvService<S> {
    /// Starts the service: creates (first run) or re-attaches (reopened
    /// pool) the shard directory in the pool root, then spawns one
    /// batching worker per shard.
    pub fn new(store: S, config: ServiceConfig) -> KvResult<KvService<S>> {
        let shards = config.shards.clamp(1, MAX_SHARDS);
        let maps = open_shard_maps(&store, shards)?;
        let mut lanes = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, map) in maps.into_iter().enumerate() {
            let (lane, rx) = LaneQueue::new(config.queue_depth);
            let worker = ShardWorker::new(store.clone(), map, rx, config.batch_max, shard);
            workers.push(std::thread::spawn(move || worker.run()));
            lanes.push(lane);
        }
        Ok(KvService {
            store,
            lanes,
            admission: Admission::new(config.max_inflight),
            workers,
            config: ServiceConfig { shards, ..config },
        })
    }

    /// Executes one frame's worth of requests, returning positional
    /// responses. Shedding (admission or a full lane queue) yields
    /// [`Response::Busy`] for the affected requests; everything else
    /// executes exactly once.
    pub fn call(&self, reqs: &[Request]) -> Vec<Response> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let n = reqs.len();
        let Some(_permit) = self.admission.try_acquire(n) else {
            return vec![Response::Busy; n];
        };
        let (reply, rx) = mpsc::channel();
        let mut out: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        // Scans fan out to every shard; track outstanding parts per slot.
        let mut scan_parts: Vec<Vec<(u64, u64)>> = (0..n).map(|_| Vec::new()).collect();
        let mut scan_outstanding: Vec<usize> = vec![0; n];
        let mut scan_limits: Vec<usize> = vec![0; n];
        let mut expected = 0usize;
        for (slot, &req) in reqs.iter().enumerate() {
            match req {
                Request::Get { key } | Request::Put { key, .. } | Request::Del { key } => {
                    let lane = &self.lanes[self.shard_of(key)];
                    match lane.try_push(Job { req, slot, reply: reply.clone() }) {
                        Ok(()) => expected += 1,
                        Err(_) => out[slot] = Some(Response::Busy),
                    }
                }
                Request::Scan { start, limit } => {
                    let limit = limit.min(MAX_SCAN_LIMIT);
                    let mut parts = 0;
                    for lane in &self.lanes {
                        let job =
                            Job { req: Request::Scan { start, limit }, slot, reply: reply.clone() };
                        if lane.try_push(job).is_ok() {
                            parts += 1;
                        }
                    }
                    expected += parts;
                    if parts == self.lanes.len() {
                        scan_outstanding[slot] = parts;
                        scan_limits[slot] = limit as usize;
                    } else {
                        // Partial fan-out sheds the whole scan; stray
                        // parts are drained (and discarded) below.
                        out[slot] = Some(Response::Busy);
                    }
                }
            }
        }
        drop(reply);
        let deadline = (self.config.request_deadline_ms > 0).then(|| {
            std::time::Instant::now()
                + std::time::Duration::from_millis(self.config.request_deadline_ms)
        });
        let mut timed_out = false;
        for _ in 0..expected {
            let received = match deadline {
                None => rx.recv().ok(),
                Some(dl) => {
                    // Remaining budget shrinks as earlier replies arrive;
                    // an expired budget abandons the rest of the frame
                    // (stray late replies land on a dropped receiver).
                    let now = std::time::Instant::now();
                    if now >= dl {
                        None
                    } else {
                        rx.recv_timeout(dl - now).ok()
                    }
                }
            };
            let Some((slot, resp)) = received else {
                timed_out = deadline.is_some_and(|dl| std::time::Instant::now() >= dl);
                break; // deadline expired, or a worker died
            };
            if scan_outstanding[slot] == 0 {
                if out[slot].is_none() {
                    out[slot] = Some(resp);
                }
                continue; // else: stray part of a shed or failed scan
            }
            match resp {
                Response::Pairs(mut pairs) => {
                    scan_parts[slot].append(&mut pairs);
                    scan_outstanding[slot] -= 1;
                    if scan_outstanding[slot] == 0 {
                        let mut all = std::mem::take(&mut scan_parts[slot]);
                        all.sort_unstable(); // keys are disjoint across shards
                        all.truncate(scan_limits[slot]);
                        out[slot] = Some(Response::Pairs(all));
                    }
                }
                other => {
                    // A shard failed this scan: report it, drop the rest.
                    scan_outstanding[slot] = 0;
                    out[slot] = Some(other);
                }
            }
        }
        let missing = if timed_out {
            format!("request deadline exceeded ({} ms)", self.config.request_deadline_ms)
        } else {
            "shard worker unavailable".to_string()
        };
        out.into_iter().map(|r| r.unwrap_or_else(|| Response::Error(missing.clone()))).collect()
    }

    fn shard_of(&self, key: u64) -> usize {
        (splitmix64(key) % self.lanes.len() as u64) as usize
    }

    /// The backing store handle.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The admission gate (shed/peak/in-flight observability).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The resolved configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }
}

impl<S: Store + Clone + 'static> Drop for KvService<S> {
    fn drop(&mut self) {
        // Closing the lanes ends each worker's `recv` loop.
        self.lanes.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Creates or re-attaches the per-shard maps through a directory object
/// in the pool root: `[u64 shard_count][u64 anchor_off; shard_count]`.
fn open_shard_maps<S: Store>(store: &S, shards: usize) -> KvResult<Vec<BTree>> {
    let root = store.root(8 * (MAX_SHARDS as u64 + 1), TYPE_SERVICE_ROOT)?;
    let count: u64 = store.read_pod_direct(root, 0)?;
    if count == 0 {
        let maps: Vec<BTree> =
            (0..shards).map(|_| BTree::create(store)).collect::<KvResult<_>>()?;
        store.txn(&mut |tx| {
            for (i, m) in maps.iter().enumerate() {
                tx.write_pod(root, 8 * (i as u64 + 1), &m.anchor().off)?;
            }
            tx.write_pod(root, 0, &(shards as u64))
        })?;
        Ok(maps)
    } else if count != shards as u64 {
        Err(KvError::Corrupt("service shard count does not match the pool's directory"))
    } else {
        (0..shards)
            .map(|i| {
                let off: u64 = store.read_pod_direct(root, 8 * (i as u64 + 1))?;
                if off == 0 {
                    return Err(KvError::Corrupt("missing shard anchor in service directory"));
                }
                Ok(BTree::from_anchor(PMEMoid::new(store.uuid(), off)))
            })
            .collect()
    }
}
