//! Seeded fault-storm soak: concurrent live transactions, a deterministic
//! [`pangolin::inject::FaultStorm`] firing media errors and scribbles at
//! live objects, and per-shard background scrub threads self-healing in
//! the gaps. The degraded-mode acceptance criteria:
//!
//! * the soak ends with the parity invariant clean everywhere outside
//!   quarantined zones;
//! * zero acked-write loss across close → reopen — every committed value
//!   either reads back verified or its zone is quarantined and the read
//!   fails with a **typed** [`PglError::Unrecoverable`], never a panic or
//!   a hang;
//! * the background scrubbers performed at least one online repair,
//!   observed through the device's [`DeviceStats`] counters.
//!
//! The storm is zone-filtered to the shard the writers do **not** touch:
//! faults land on cold objects (the paper's §4.6 methodology), so every
//! scribble is either repaired from parity or escalates to quarantine.
//! A scribble racing the victim's own overwrite sits in the documented
//! verified-read exposure window (see [`pangolin::inject`]) where silent
//! corruption can be folded into the parity delta — real storms model
//! media decay on data at rest, not wild stores racing the write path.
//!
//! [`DeviceStats`]: pgl_nvm::stats::DeviceStats

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pangolin::inject::{self, FaultPlan, FaultStorm};
use pangolin::{PMEMoid, PglError, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice};

const OBJ_SIZE: u64 = 2048;
const OBJS_PER_SHARD: usize = 12;
const SHARDS: usize = 2;
const SETUP_FILL: u8 = 0x42;

/// Builds the soak pool: two parity shards, background scrub on a fast
/// cadence so self-healing races the storm.
fn soak_pool(dev: &Arc<NvmDevice>) -> PglPool {
    PglPool::options()
        .size(16 << 20)
        .zone_size(2 << 20)
        .shards(SHARDS)
        .background_scrub(true)
        .scrub_interval_ms(10)
        .create(Arc::clone(dev))
        .unwrap()
}

/// Allocates the working set: `OBJS_PER_SHARD` objects pinned to each
/// shard via thread→shard affinity, all filled with [`SETUP_FILL`].
fn working_set(pool: &PglPool) -> Vec<Vec<PMEMoid>> {
    let mut per_shard = Vec::new();
    for shard in 0..pool.shards() {
        pool.bind_thread_to_shard(shard);
        let mut oids = Vec::new();
        for i in 0..OBJS_PER_SHARD {
            oids.push(
                pool.tx(|tx| {
                    let o = tx.alloc(OBJ_SIZE, (shard * OBJS_PER_SHARD + i) as u32 + 1)?;
                    tx.write(o, 0, &[SETUP_FILL; OBJ_SIZE as usize])?;
                    Ok(o)
                })
                .unwrap(),
            );
        }
        per_shard.push(oids);
    }
    pool.unbind_thread_from_shard();
    per_shard
}

/// A writer loop pinned to shard 0: round-robin overwrites of its slice of
/// objects with an ascending fill byte, recording the last acked value per
/// object. The storm never targets this shard's zones, so every commit
/// must stick — any error here fails the soak.
fn writer_loop(
    pool: &PglPool,
    oids: &[PMEMoid],
    stop: &AtomicBool,
) -> pangolin::Result<HashMap<u64, u8>> {
    pool.bind_thread_to_shard(0);
    let mut acked = HashMap::new();
    let mut round: u8 = 0;
    while !stop.load(Ordering::Relaxed) {
        round = round.wrapping_add(1);
        let fill = round | 0x80; // never collides with the setup fill
        for &oid in oids {
            pool.tx(|tx| tx.write(oid, 0, &[fill; OBJ_SIZE as usize]))?;
            acked.insert(oid.off, fill);
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    pool.unbind_thread_from_shard();
    Ok(acked)
}

/// Scrubs until a pass finds nothing left to repair (each pass may fence
/// newly discovered double faults into quarantine first).
fn scrub_until_stable(pool: &PglPool) {
    for _ in 0..8 {
        let r = pool.scrub_now().unwrap();
        if r.objects_repaired == 0 && r.pages_repaired == 0 {
            return;
        }
    }
    panic!("scrub did not converge in 8 passes");
}

/// Asserts every acked value survived: verified read-back of `expect[off]`,
/// or a typed unrecoverable error locating a quarantined zone.
fn assert_acked_writes(pool: &PglPool, expect: &HashMap<u64, u8>) {
    let q = pool.quarantined_zones();
    for (&off, &fill) in expect {
        let oid = PMEMoid::new(pool.uuid(), off);
        match pool.read_verified(oid) {
            Ok(data) => {
                assert_eq!(data, vec![fill; OBJ_SIZE as usize], "acked write lost at {off:#x}");
            }
            Err(PglError::Unrecoverable { zone, .. }) => {
                assert!(q.contains(&zone), "unrecoverable {off:#x} outside quarantine: {q:?}");
            }
            Err(e) => panic!("untyped failure reading acked object {off:#x}: {e}"),
        }
    }
}

#[test]
fn seeded_fault_storm_soak_self_heals_and_loses_no_acked_write() {
    let dev = Arc::new(NvmDevice::new(16 << 20, DeviceConfig::fast()).unwrap());
    let pool = soak_pool(&dev);
    let sets = working_set(&pool);
    let storm_zone = {
        let (z, _) = pool.layout().zone_and_rel(sets[1][0].off).unwrap();
        z
    };
    let (hot, cold) = (&sets[0], &sets[1]);
    // The single-writer rule: two writer threads, disjoint object slices.
    let (left, right) = hot.split_at(hot.len() / 2);

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = [left.to_vec(), right.to_vec()]
        .into_iter()
        .map(|oids| {
            let pool = pool.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || writer_loop(&pool, &oids, &stop))
        })
        .collect();

    // The storm fires only at the cold shard's zone while the hot shard
    // keeps committing — degraded-mode isolation under live traffic.
    let storm = FaultStorm::launch(
        &pool,
        FaultPlan {
            seed: 0xDEAD_BEEF_0042,
            max_events: 80,
            mean_gap: Duration::from_micros(800),
            poison_per_mille: 250,
            zones: Some(vec![storm_zone]),
            ..FaultPlan::default()
        },
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    while !storm.is_done() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = storm.stop();
    stop.store(true, Ordering::Relaxed);
    let mut acked = HashMap::new();
    for w in writers {
        let log = w.join().unwrap().expect("writer on storm-free shard must never fail");
        acked.extend(log);
    }
    assert_eq!(acked.len(), hot.len(), "every hot object acked at least one overwrite");
    assert!(report.injected() > 0, "storm injected nothing: {report:?}");
    let stats = dev.stats();
    assert_eq!(stats.poison_injected, report.poisons, "device poison counter matches report");
    assert!(stats.scribbles_injected >= report.scribbles, "scribble counter tracks report");

    // Provoke one guaranteed self-heal: scribble a hot object after the
    // writers stop and let the *background* scrubbers repair it — no
    // foreground read does the work.
    let (&heal_off, &heal_fill) = acked.iter().next().unwrap();
    let heal_oid = PMEMoid::new(pool.uuid(), heal_off);
    let before = dev.stats().total_scrub_repairs();
    inject::scribble_object(&pool, heal_oid, 16, 64, 0xEE).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while dev.stats().total_scrub_repairs() == before && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        dev.stats().total_scrub_repairs() > before,
        "background scrub never repaired the planted scribble"
    );
    assert!(pool.scrub_totals().shard_passes > 0, "no background pass completed");
    assert_eq!(
        pool.read_verified(heal_oid).unwrap(),
        vec![heal_fill; OBJ_SIZE as usize],
        "self-healed object must read back the acked value"
    );

    // Drain remaining detectable damage, then the invariant must hold
    // everywhere outside quarantine.
    scrub_until_stable(&pool);
    assert_eq!(
        pool.verify_parity_detailed().unwrap(),
        vec![],
        "parity dirty outside quarantined zones after soak"
    );
    // Cold objects: setup fill survives the storm, or the loss is typed
    // and the zone is fenced.
    let cold_expect: HashMap<u64, u8> = cold.iter().map(|o| (o.off, SETUP_FILL)).collect();
    assert_acked_writes(&pool, &acked);
    assert_acked_writes(&pool, &cold_expect);

    // Close → reopen: quarantine persists, acked writes still all
    // accounted for, and the pool serves fresh traffic.
    let quarantined = pool.quarantined_zones();
    drop(pool);
    let pool = PglPool::options().shards(SHARDS).open(dev.clone()).unwrap();
    assert_eq!(pool.quarantined_zones(), quarantined, "quarantine set survived reopen");
    assert_eq!(pool.verify_parity_detailed().unwrap(), vec![]);
    assert_acked_writes(&pool, &acked);
    assert_acked_writes(&pool, &cold_expect);
    pool.tx(|tx| {
        let o = tx.alloc(OBJ_SIZE, 999)?;
        tx.write(o, 0, &[0x77; OBJ_SIZE as usize])
    })
    .unwrap();
}
