//! Functional tests of the Pangolin API across all operation modes.

use std::sync::Arc;

use pangolin::{PglConfig, PglError, PglMode, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice};

fn pool_with(mode: PglMode) -> PglPool {
    let mut cfg = PglConfig::small().with_mode(mode);
    if !mode.has_parity() {
        cfg.pool.parity = false;
    }
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    PglPool::create(dev, cfg).unwrap()
}

fn all_modes() -> [PglMode; 4] {
    [PglMode::Baseline, PglMode::Ml, PglMode::Mlp, PglMode::Mlpc]
}

#[test]
fn alloc_write_read_in_every_mode() {
    for mode in all_modes() {
        let pool = pool_with(mode);
        let oid = pool
            .tx(|tx| {
                let oid = tx.alloc(100, 7)?;
                tx.write(oid, 0, b"pangolin mode test")?;
                tx.write_pod(oid, 64, &0x1234_5678u64)?;
                Ok(oid)
            })
            .unwrap();
        let mut buf = [0u8; 18];
        pool.read(oid, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"pangolin mode test", "mode {mode:?}");
        assert_eq!(pool.read_pod::<u64>(oid, 64).unwrap(), 0x1234_5678);
        if mode.has_parity() {
            assert!(pool.verify_parity().unwrap(), "parity invariant in {mode:?}");
        }
        assert!(pool.find_corrupt_objects().unwrap().is_empty());
    }
}

#[test]
fn overwrite_updates_checksum_and_parity() {
    let pool = pool_with(PglMode::Mlpc);
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(256, 1)?;
            tx.write(oid, 0, &[0xAA; 256])?;
            Ok(oid)
        })
        .unwrap();
    pool.tx(|tx| tx.write(oid, 100, &[0xBB; 50])).unwrap();
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(&data[..100], &[0xAA; 100][..]);
    assert_eq!(&data[100..150], &[0xBB; 50][..]);
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn abort_leaves_no_trace() {
    let pool = pool_with(PglMode::Mlpc);
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(64, 1)?;
            tx.write(oid, 0, &[1; 64])?;
            Ok(oid)
        })
        .unwrap();
    let err = pool.tx(|tx| -> pangolin::Result<()> {
        tx.write(oid, 0, &[2; 64])?;
        let _garbage = tx.alloc(128, 2)?;
        Err(PglError::unrecoverable("user abort"))
    });
    assert!(err.is_err());
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data, vec![1; 64], "aborted modification stayed in DRAM only");
    assert_eq!(pool.live_objects().unwrap().len(), 1, "aborted alloc vanished");
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn free_and_reuse() {
    let pool = pool_with(PglMode::Mlpc);
    let oid = pool.tx(|tx| tx.alloc(200, 3)).unwrap();
    pool.tx(|tx| tx.free(oid)).unwrap();
    assert!(pool.live_objects().unwrap().is_empty());
    let oid2 = pool.tx(|tx| tx.alloc(200, 3)).unwrap();
    assert_eq!(oid2.off, oid.off, "storage reused");
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn transaction_isolation_within_tx() {
    let pool = pool_with(PglMode::Mlpc);
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(16, 1)?;
            tx.write_pod(oid, 0, &1u64)?;
            Ok(oid)
        })
        .unwrap();
    pool.tx(|tx| {
        tx.write_pod(oid, 0, &2u64)?;
        // Reads inside the tx see the micro-buffer (isolation)...
        assert_eq!(tx.read_pod::<u64>(oid, 0)?, 2);
        Ok(())
    })
    .unwrap();
    // ...and the commit made it durable.
    assert_eq!(pool.read_pod::<u64>(oid, 0).unwrap(), 2);
}

#[test]
fn reopen_recovers_everything() {
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let root = pool.root(64, 0).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(128, 9)?;
            tx.write(oid, 0, b"survives reopen")?;
            tx.write_pod(root, 0, &oid.off)?;
            Ok(oid)
        })
        .unwrap();
    drop(pool);

    let pool = PglPool::options().open(dev).unwrap();
    assert_eq!(pool.mode(), PglMode::Mlpc, "mode restored from header");
    let root = pool.root_oid().unwrap();
    let off: u64 = pool.read_pod(root, 0).unwrap();
    assert_eq!(off, oid.off);
    let data = pool.read_verified(pangolin::PMEMoid::new(pool.uuid(), off)).unwrap();
    assert_eq!(&data[..15], b"survives reopen");
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn single_object_open_commit() {
    // The paper's Listing 2: pgl_open / modify / pgl_commit.
    let pool = pool_with(PglMode::Mlpc);
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(48, 4)?;
            tx.write_pod(oid, 0, &10u64)?;
            Ok(oid)
        })
        .unwrap();
    let mut obj = pool.open_object(oid).unwrap();
    // Unmarked, paper-style field assignment through the buffer.
    obj.user_mut()[0..8].copy_from_slice(&99u64.to_le_bytes());
    pool.commit_object(obj).unwrap();
    assert_eq!(pool.read_pod::<u64>(oid, 0).unwrap(), 99);
    assert!(pool.verify_parity().unwrap());
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

#[test]
fn commit_object_without_changes_is_noop() {
    let pool = pool_with(PglMode::Mlpc);
    let oid = pool.tx(|tx| tx.alloc(32, 1)).unwrap();
    let before = pool.io().dev().stats();
    let obj = pool.open_object(oid).unwrap();
    pool.commit_object(obj).unwrap();
    let after = pool.io().dev().stats();
    assert_eq!(
        after.bytes_written_nt, before.bytes_written_nt,
        "no write-back for an unchanged object"
    );
}

#[test]
fn large_objects_spanning_rows() {
    let pool = pool_with(PglMode::Mlpc);
    // PoolConfig::small: 16 KiB chunks, 15 chunks per row. Allocate an
    // object spanning several chunks and cross-check integrity.
    let big = 5 * 16 * 1024;
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(big, 11)?;
            let pattern: Vec<u8> = (0..big).map(|i| (i % 241) as u8).collect();
            tx.write(oid, 0, &pattern)?;
            Ok(oid)
        })
        .unwrap();
    let data = pool.read_verified(oid).unwrap();
    assert!(data.iter().enumerate().all(|(i, &b)| b == (i % 241) as u8));
    assert!(pool.verify_parity().unwrap());
    // Large in-place update exercising the vectorized parity path.
    pool.tx(|tx| tx.write(oid, 1000, &vec![0xEE; 20 << 10])).unwrap();
    assert!(pool.verify_parity().unwrap());
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

#[test]
fn concurrent_transactions_scale_safely() {
    let pool = pool_with(PglMode::Mlpc);
    let oids: Vec<_> = (0..8)
        .map(|i| {
            pool.tx(|tx| {
                let oid = tx.alloc(512, i)?;
                tx.write(oid, 0, &[i as u8; 512])?;
                Ok(oid)
            })
            .unwrap()
        })
        .collect();
    std::thread::scope(|s| {
        for (t, oid) in oids.iter().enumerate() {
            let pool = pool.clone();
            let oid = *oid;
            s.spawn(move || {
                for round in 0..30u32 {
                    pool.tx(|tx| {
                        tx.write(oid, (round as u64 % 8) * 64, &[(t as u8) ^ round as u8; 64])
                    })
                    .unwrap();
                }
            });
        }
    });
    assert!(pool.verify_parity().unwrap(), "parity survives concurrent commits");
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

#[test]
fn tx_stats_track_table3_quantities() {
    let pool = pool_with(PglMode::Mlpc);
    let (oid, stats) = pool
        .tx_with_stats(|tx| {
            let oid = tx.alloc(56, 1)?;
            tx.write_pod(oid, 0, &1u64)?;
            Ok(oid)
        })
        .unwrap();
    assert_eq!(stats.allocated_bytes, 56);
    assert_eq!(stats.alloc_objects, 1);
    assert_eq!(stats.modified_bytes, 0, "writes to new objects are not 'Mod'");

    let (_, stats) = pool
        .tx_with_stats(|tx| {
            tx.write_pod(oid, 0, &2u64)?;
            tx.write_pod(oid, 16, &3u64)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(stats.modified_bytes, 16);
    assert_eq!(stats.modified_objects, 1);
    assert_eq!(stats.alloc_objects, 0);
}

#[test]
fn read_only_tx_commits_nothing() {
    let pool = pool_with(PglMode::Mlpc);
    let oid = pool.tx(|tx| tx.alloc(64, 1)).unwrap();
    let before = pool.io().dev().stats();
    pool.tx(|tx| {
        let mut buf = [0u8; 64];
        tx.read(oid, 0, &mut buf)?;
        Ok(())
    })
    .unwrap();
    let after = pool.io().dev().stats();
    assert_eq!(after.bytes_written_nt, before.bytes_written_nt);
    assert_eq!(after.lines_flushed, before.lines_flushed, "read-only tx is free");
}
