//! Differential property suite for the SWAR data-path primitives: the
//! word-vectorized `adler32` / `adler32_update` and the fused
//! diff+zero-skip XOR paths are pinned against straight-from-the-spec
//! byte-wise reference implementations across random lengths,
//! misalignments and edit sequences.

use std::sync::Arc;

use pangolin::checksum::{adler32, adler32_update};
use pangolin::parity::ParityEngine;
use pgl_nvm::{DeviceConfig, NvmDevice};
use pgl_pmemobj::{Layout, PoolConfig, PoolIo};
use proptest::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

const MOD: u32 = 65521;

/// Byte-wise reference Adler32 (per-byte modulo; deliberately naive).
fn ref_adler32(data: &[u8]) -> u32 {
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for &d in data {
        a = (a + d as u32) % MOD;
        b = (b + a) % MOD;
    }
    (b << 16) | a
}

/// Byte-wise reference incremental update: the decrement-with-wrap weight
/// walk the SWAR implementation replaced.
fn ref_adler32_update(csum: u32, total_len: u64, off: u64, old: &[u8], new: &[u8]) -> u32 {
    let m = MOD as i64;
    let mut da: i64 = 0;
    let mut db: i64 = 0;
    let mut weight = ((total_len - off) % MOD as u64) as i64;
    for (&o, &n) in old.iter().zip(new.iter()) {
        let delta = n as i64 - o as i64;
        da += delta;
        db += weight * delta;
        weight = if weight == 0 { m - 1 } else { weight - 1 };
    }
    let a = (((csum & 0xFFFF) as i64 + da) % m + m) % m;
    let b = (((csum >> 16) as i64 + db) % m + m) % m;
    ((b as u32) << 16) | a as u32
}

/// One random edit: offset fraction, length, fill pattern.
fn edit_strategy() -> impl Strategy<Value = (u64, usize, u8)> {
    (any::<u64>(), 1usize..700, any::<u8>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn swar_adler32_matches_bytewise_reference(
        data in proptest::collection::vec(any::<u8>(), 0..9000),
        skew in 0usize..8,
    ) {
        // `skew` slices off a few leading bytes so word loops start at
        // every possible misalignment relative to the data.
        let data = &data[skew.min(data.len())..];
        prop_assert_eq!(adler32(data), ref_adler32(data));
    }

    #[test]
    fn swar_update_matches_reference_and_recompute(
        len in 1usize..6000,
        seed in any::<u64>(),
        edits in proptest::collection::vec(edit_strategy(), 1..12),
    ) {
        let mut data: Vec<u8> =
            (0..len).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 11) as u8).collect();
        let mut csum = adler32(&data);
        for (off_frac, elen, fill) in edits.iter().copied() {
            let elen = elen.min(len);
            let off = (off_frac % (len - elen + 1) as u64) as usize;
            let new: Vec<u8> = (0..elen).map(|i| fill.wrapping_add(i as u8)).collect();
            let old = data[off..off + elen].to_vec();
            let by_swar =
                adler32_update(csum, len as u64, off as u64, &old, &new);
            let by_ref =
                ref_adler32_update(csum, len as u64, off as u64, &old, &new);
            prop_assert_eq!(by_swar, by_ref, "SWAR vs byte-wise update");
            data[off..off + elen].copy_from_slice(&new);
            csum = by_swar;
            prop_assert_eq!(csum, ref_adler32(&data), "update vs full recompute");
        }
    }

    #[test]
    fn swar_update_huge_objects_cross_weight_wrap(
        total_shift in 17u32..40,
        off_frac in any::<u64>(),
        old in proptest::collection::vec(any::<u8>(), 1..3000),
        fill in any::<u8>(),
    ) {
        // Weights wrap mod 65521 many times across a huge object; the
        // block-wise weight arithmetic must agree with the per-byte walk
        // at arbitrary absolute offsets (sparse-object commits hit this).
        let total = (1u64 << total_shift) + 12345;
        let off = off_frac % (total - old.len() as u64);
        let new: Vec<u8> = (0..old.len()).map(|i| fill.wrapping_mul(i as u8 | 1)).collect();
        let csum = 0x9ABC_DEF1; // any well-formed starting state
        prop_assert_eq!(
            adler32_update(csum, total, off, &old, &new),
            ref_adler32_update(csum, total, off, &old, &new)
        );
    }

    #[test]
    fn fused_xor_diff_matches_bytewise_model(
        base in proptest::collection::vec(any::<u8>(), 1..600),
        off in 0u64..200,
        zero_mask in any::<u64>(),
    ) {
        let dev = NvmDevice::new(16 << 12, DeviceConfig::fast()).unwrap();
        dev.write(off, &base).unwrap();
        // old/new agree wherever the mask bit is set, creating runs of
        // all-zero diff words the fused path must skip (and only skip).
        let old: Vec<u8> = (0..base.len()).map(|i| (i as u8).wrapping_mul(13)).collect();
        let new: Vec<u8> = old
            .iter()
            .enumerate()
            .map(|(i, &o)| if zero_mask >> (i % 64) & 1 == 1 { o } else { o ^ 0xA5 })
            .collect();
        let touched = dev.xor_diff_range(off, &old, &new).unwrap();
        prop_assert_eq!(touched, old != new);
        let got = dev.read_slice(off, base.len()).unwrap();
        for i in 0..base.len() {
            prop_assert_eq!(got[i], base[i] ^ old[i] ^ new[i], "byte {}", i);
        }
    }

    #[test]
    fn parity_update_paths_preserve_invariant(
        writes in proptest::collection::vec(
            (0u64..6000, 1usize..1200, any::<u8>()), 1..16),
    ) {
        // Random protected writes straddle the hybrid threshold (forced
        // low), so both the atomic word-XOR span and the vectorized
        // diff-XOR run; the zone parity invariant must survive all of it.
        let cfg = PoolConfig::small();
        let layout = Layout::new(cfg).unwrap();
        let dev = Arc::new(NvmDevice::new(cfg.size, DeviceConfig::fast()).unwrap());
        let io = PoolIo::new(dev);
        let eng = ParityEngine::new(layout, 4 << 10, 256);
        let base = layout.chunk_base(0, layout.zone.cm_chunks);
        let span: u64 = 8 << 10;
        for (off_frac, len, fill) in writes.iter().copied() {
            let off = base + off_frac % (span - len as u64);
            let new: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8 / 7)).collect();
            let mut old = vec![0u8; len];
            io.read(off, &mut old).unwrap();
            io.write(off, &new).unwrap();
            io.persist(off, len).unwrap();
            eng.update(&io, off, &old, &new).unwrap();
        }
        prop_assert!(eng.verify_all(&io).unwrap().is_empty());
    }
}
