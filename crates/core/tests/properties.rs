//! Property tests for Pangolin's global invariants: after ANY sequence of
//! committed/aborted transactions (allocations, range writes, frees), the
//! parity invariant holds, every object passes checksum verification, and
//! recovery from a randomized crash preserves both.

use std::collections::HashMap as StdMap;
use std::sync::Arc;

use pangolin::{PMEMoid, PglConfig, PglError, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice, RandomPlan};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Alloc {
        size: u16,
        fill: u8,
    },
    /// Overwrite a range of the i-th live object (index modulo live count).
    Write {
        idx: u8,
        off: u16,
        len: u16,
        fill: u8,
    },
    Free {
        idx: u8,
    },
    Abort {
        idx: u8,
        fill: u8,
    },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u16..2000, any::<u8>()).prop_map(|(size, fill)| Action::Alloc { size, fill }),
        (any::<u8>(), 0u16..2000, 1u16..500, any::<u8>())
            .prop_map(|(idx, off, len, fill)| Action::Write { idx, off, len, fill }),
        any::<u8>().prop_map(|idx| Action::Free { idx }),
        (any::<u8>(), any::<u8>()).prop_map(|(idx, fill)| Action::Abort { idx, fill }),
    ]
}

/// Applies actions to both the pool and an in-memory model.
fn apply(pool: &PglPool, model: &mut StdMap<u64, Vec<u8>>, order: &mut Vec<u64>, action: &Action) {
    match *action {
        Action::Alloc { size, fill } => {
            let size = size as u64;
            let oid = pool
                .tx(|tx| {
                    let oid = tx.alloc(size, 1)?;
                    tx.write(oid, 0, &vec![fill; size as usize])?;
                    Ok(oid)
                })
                .unwrap();
            model.insert(oid.off, vec![fill; size as usize]);
            order.push(oid.off);
        }
        Action::Write { idx, off, len, fill } => {
            if order.is_empty() {
                return;
            }
            let target = order[idx as usize % order.len()];
            let data = model.get_mut(&target).expect("model tracks live objects");
            let off = off as usize % data.len();
            let len = (len as usize).min(data.len() - off);
            if len == 0 {
                return;
            }
            let oid = PMEMoid::new(pool.uuid(), target);
            pool.tx(|tx| tx.write(oid, off as u64, &vec![fill; len])).unwrap();
            data[off..off + len].fill(fill);
        }
        Action::Free { idx } => {
            if order.is_empty() {
                return;
            }
            let target = order.remove(idx as usize % order.len());
            model.remove(&target);
            let oid = PMEMoid::new(pool.uuid(), target);
            pool.tx(|tx| tx.free(oid)).unwrap();
        }
        Action::Abort { idx, fill } => {
            if order.is_empty() {
                return;
            }
            let target = order[idx as usize % order.len()];
            let oid = PMEMoid::new(pool.uuid(), target);
            let r = pool.tx(|tx| -> pangolin::Result<()> {
                tx.write(oid, 0, &[fill; 8])?;
                let _leak = tx.alloc(64, 9)?;
                Err(PglError::unrecoverable("intentional abort"))
            });
            assert!(r.is_err());
            // Aborted: the model is unchanged.
        }
    }
}

fn verify_against_model(pool: &PglPool, model: &StdMap<u64, Vec<u8>>) {
    assert!(pool.verify_parity().unwrap(), "parity invariant");
    assert!(pool.find_corrupt_objects().unwrap().is_empty(), "checksum sweep");
    let live = pool.live_objects().unwrap();
    assert_eq!(live.len(), model.len(), "live-object count");
    for (oid, _) in live {
        let want = model.get(&oid.off).expect("live object is in the model");
        let got = pool.read_verified(oid).unwrap();
        assert_eq!(&got, want, "content of {:#x}", oid.off);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn committed_state_always_consistent(
        actions in proptest::collection::vec(action_strategy(), 1..40),
    ) {
        let cfg = PglConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
        let pool = PglPool::create(dev, cfg).unwrap();
        let mut model = StdMap::new();
        let mut order = Vec::new();
        for a in &actions {
            apply(&pool, &mut model, &mut order, a);
        }
        verify_against_model(&pool, &model);
    }

    #[test]
    fn crash_and_reopen_preserves_committed_state(
        actions in proptest::collection::vec(action_strategy(), 1..30),
        seed in any::<u64>(),
    ) {
        // Precise device: all committed transactions must survive a crash
        // with randomized eviction outcomes, exactly (no in-flight tx here,
        // so recovery must reproduce the model perfectly).
        let cfg = PglConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
        let pool = PglPool::create(dev.clone(), cfg).unwrap();
        let mut model = StdMap::new();
        let mut order = Vec::new();
        for a in &actions {
            apply(&pool, &mut model, &mut order, a);
        }
        drop(pool);
        dev.simulate_crash(&mut RandomPlan::seeded(seed)).unwrap();
        let pool = PglPool::options().open(dev).unwrap();
        verify_against_model(&pool, &model);
    }

    #[test]
    fn single_page_loss_never_loses_data(
        actions in proptest::collection::vec(action_strategy(), 5..25),
        page_pick in any::<u64>(),
    ) {
        let cfg = PglConfig::small();
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
        let pool = PglPool::create(dev.clone(), cfg).unwrap();
        let mut model = StdMap::new();
        let mut order = Vec::new();
        for a in &actions {
            apply(&pool, &mut model, &mut order, a);
        }
        // Poison one page anywhere in the zone's row grid (data, CM or
        // parity) and demand full recovery via scrub.
        let layout = *pool.layout();
        let grid_start = (layout.zone_base(0) + layout.zone.rows_base) / 4096;
        let grid_pages =
            (layout.zone.data_rows + 1) * layout.zone.row_size / 4096;
        let page = grid_start + page_pick % grid_pages;
        dev.poison_page(page).unwrap();
        pool.scrub_now().unwrap();
        prop_assert!(dev.poisoned_pages().is_empty(), "page repaired");
        verify_against_model(&pool, &model);
    }
}
