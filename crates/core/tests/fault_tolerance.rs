//! Fault-tolerance tests reproducing the paper's §4.6 scenarios: media
//! errors, software scribbles, canary-caught overruns, metadata corruption,
//! scrub policies, and the documented unrecoverable double-failure case.

use std::sync::Arc;

use pangolin::{inject, CsumPolicy, PMEMoid, PglConfig, PglError, PglMode, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice, PAGE_SIZE};

fn pool() -> PglPool {
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    PglPool::create(dev, cfg).unwrap()
}

fn make_object(pool: &PglPool, size: u64, fill: u8) -> PMEMoid {
    pool.tx(|tx| {
        let oid = tx.alloc(size, 1)?;
        tx.write(oid, 0, &vec![fill; size as usize])?;
        Ok(oid)
    })
    .unwrap()
}

#[test]
fn media_error_recovers_online_during_read() {
    let pool = pool();
    let oid = make_object(&pool, 300, 0x5A);
    let page = inject::poison_object_page(&pool, oid).unwrap();
    assert!(pool.io().dev().is_poisoned_page(page));

    // A verified read triggers the SIGBUS-analogue path and repairs online.
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data, vec![0x5A; 300]);
    assert!(!pool.io().dev().is_poisoned_page(page), "page repaired");
    assert_eq!(pool.counters().page_recoveries.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn media_error_recovers_during_unverified_get_too() {
    let pool = pool();
    let oid = make_object(&pool, 64, 0x11);
    inject::poison_object_page(&pool, oid).unwrap();
    let mut buf = [0u8; 64];
    pool.read(oid, 0, &mut buf).unwrap(); // pgl_get path
    assert_eq!(buf, [0x11; 64]);
}

#[test]
fn media_error_recovers_during_transaction_open() {
    let pool = pool();
    let oid = make_object(&pool, 128, 0x22);
    inject::poison_object_page(&pool, oid).unwrap();
    pool.tx(|tx| tx.write(oid, 0, &[0x33; 8])).unwrap();
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(&data[..8], &[0x33; 8]);
    assert_eq!(&data[8..], &[0x22; 120][..]);
}

#[test]
fn lost_parity_page_is_rebuilt() {
    let pool = pool();
    let _oid = make_object(&pool, 512, 0x77);
    let layout = *pool.layout();
    let parity_off = layout.parity_off(0, 0);
    let page = parity_off / PAGE_SIZE as u64;
    pool.io().dev().poison_page(page).unwrap();
    // Scrub detects and repairs the parity page.
    pool.scrub_now().unwrap();
    assert!(!pool.io().dev().is_poisoned_page(page));
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn scribble_on_object_detected_and_repaired_at_open() {
    let pool = pool();
    let oid = make_object(&pool, 300, 0xAB);
    inject::scribble_object(&pool, oid, 50, 120, 0xEE).unwrap();
    // Unverified reads see the garbage (the Table 4 exposure)...
    let mut raw = [0u8; 1];
    pool.read(oid, 60, &mut raw).unwrap();
    assert_eq!(raw[0], 0xEE);
    // ...but opening the object for modification verifies and repairs.
    pool.tx(|tx| tx.write(oid, 0, &[0xAB; 1])).unwrap();
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data, vec![0xAB; 300], "scribble undone from parity");
    assert!(pool.verify_parity().unwrap());
    assert!(pool.counters().object_recoveries.load(std::sync::atomic::Ordering::Relaxed) >= 1);
}

#[test]
fn scribble_on_header_is_repaired() {
    let pool = pool();
    let oid = make_object(&pool, 120, 0x44);
    inject::scribble_object_header(&pool, oid, 0xFF).unwrap();
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data, vec![0x44; 120]);
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

#[test]
fn scribble_spanning_multiple_pages_is_repaired() {
    let pool = pool();
    // A multi-page object within one chunk row.
    let size = 3 * PAGE_SIZE as u64;
    let oid = make_object(&pool, size, 0x3C);
    // Contiguous scribble across two of its pages (< one chunk row, the
    // paper's guarantee).
    inject::scribble_object(&pool, oid, 4000, 5000, 0xDD).unwrap();
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data, vec![0x3C; size as usize]);
}

#[test]
fn chunk_metadata_scribble_repaired_from_parity() {
    let pool = pool();
    let oid = make_object(&pool, 100, 0x66);
    // Find the chunk holding the object and scribble its CM entry.
    let layout = *pool.layout();
    let (z, c, _) = layout.chunk_of(oid.off - 16).unwrap();
    inject::scribble_chunk_meta(&pool, z, c, 0x99).unwrap();
    let report = pool.scrub_now().unwrap();
    assert!(report.pages_repaired >= 1, "CM page repaired: {report:?}");
    // The allocator still understands the heap after reopen-equivalent scan.
    assert_eq!(pool.live_objects().unwrap().len(), 1);
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn canary_catches_buffer_overrun_and_aborts() {
    let pool = pool();
    let oid = make_object(&pool, 64, 0x10);
    let err = pool.tx(|tx| {
        tx.write(oid, 0, &[0x20; 64])?;
        // Simulated overrun: smash the trailing canary.
        tx.ubuf_mut(oid)?.smash_back_canary();
        Ok(())
    });
    assert!(
        matches!(err, Err(PglError::CanaryMismatch { .. })),
        "overrun detected at commit: {err:?}"
    );
    // NVMM was never touched.
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data, vec![0x10; 64]);
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn scrub_policy_detects_scribbles_lazily() {
    let cfg = PglConfig::small().with_policy(CsumPolicy::ScrubEvery(10));
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    let victim = make_object(&pool, 200, 0x42);
    inject::scribble_object(&pool, victim, 10, 50, 0x00).unwrap();
    // Run unrelated transactions until the scrub interval fires.
    for i in 0..12u64 {
        let o = make_object(&pool, 32, i as u8);
        pool.tx(|tx| tx.free(o)).unwrap();
    }
    assert!(
        pool.counters().scrubs.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "scrub pass ran"
    );
    let data = pool.read_verified(victim).unwrap();
    assert_eq!(data, vec![0x42; 200], "scrub repaired the scribble");
}

#[test]
fn conservative_policy_verifies_every_get() {
    let cfg = PglConfig::small().with_policy(CsumPolicy::Conservative);
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    let oid = make_object(&pool, 100, 0x21);
    inject::scribble_object(&pool, oid, 0, 30, 0x7E).unwrap();
    // Even a plain read repairs under Conservative.
    let mut buf = [0u8; 4];
    pool.read(oid, 0, &mut buf).unwrap();
    assert_eq!(buf, [0x21; 4]);
    let v = pool.vuln();
    assert_eq!(v.unverified, 0, "conservative mode never reads unverified");
}

#[test]
fn vulnerability_accounting_matches_policy() {
    // Default policy: pgl_get counts as unverified; opens count verified.
    let pool = pool();
    let oid = make_object(&pool, 128, 1);
    let mut buf = [0u8; 100];
    pool.read(oid, 0, &mut buf).unwrap();
    let v = pool.vuln();
    assert_eq!(v.unverified, 100);

    // Opening for modification verifies; a scrub verifies everything and
    // closes the window.
    pool.tx(|tx| tx.write(oid, 0, &[1u8])).unwrap();
    assert!(pool.vuln().verified >= 128);
    pool.scrub_now().unwrap();
    let v = pool.vuln();
    assert_eq!(v.window_unverified, 0);
    assert_eq!(v.max_window, 100);
}

#[test]
fn double_page_failure_in_one_column_is_unrecoverable() {
    let pool = pool();
    let oid = make_object(&pool, 100, 0x55);
    let layout = *pool.layout();
    let page = oid.off / PAGE_SIZE as u64;
    let same_column_next_row = page + layout.zone.row_size / PAGE_SIZE as u64;
    pool.io().dev().poison_page(page).unwrap();
    pool.io().dev().poison_page(same_column_next_row).unwrap();
    let err = pool.read_verified(oid);
    assert!(
        matches!(err, Err(PglError::Unrecoverable { .. })),
        "two pages of one column exceed the guarantee: {err:?}"
    );
}

#[test]
fn failures_in_different_columns_all_recover() {
    let pool = pool();
    // Objects in different page columns.
    let a = make_object(&pool, PAGE_SIZE as u64, 0xA1);
    let b = make_object(&pool, PAGE_SIZE as u64, 0xB2);
    let pa = a.off / PAGE_SIZE as u64;
    let pb = b.off / PAGE_SIZE as u64;
    assert_ne!(
        pa % (pool.layout().zone.row_size / PAGE_SIZE as u64),
        pb % (pool.layout().zone.row_size / PAGE_SIZE as u64),
        "test objects should land in different columns"
    );
    pool.io().dev().poison_page(pa).unwrap();
    pool.io().dev().poison_page(pb).unwrap();
    assert_eq!(pool.read_verified(a).unwrap(), vec![0xA1; PAGE_SIZE]);
    assert_eq!(pool.read_verified(b).unwrap(), vec![0xB2; PAGE_SIZE]);
}

#[test]
fn log_page_loss_recovers_from_replica_in_ml_modes() {
    let pool = pool(); // Mlpc replicates logs
    let oid = make_object(&pool, 64, 9);
    // Poison the first lane log page, then run a transaction that needs a
    // lane: the claim path reads the lane header and recovers it online.
    let lane_page = pool.layout().lane_off(0) / PAGE_SIZE as u64;
    pool.io().dev().poison_page(lane_page).unwrap();
    // Reads of the lane header happen at open/recovery; force one by
    // running transactions on all lanes.
    for _ in 0..pool.layout().cfg.n_lanes {
        pool.tx(|tx| tx.write(oid, 0, &[1])).unwrap();
    }
    // The pool still functions; repair the page via reopen.
    let dev_pages = pool.io().dev().poisoned_pages();
    // Either already repaired by an online path or still poisoned but
    // recoverable at reopen — both acceptable; just verify integrity.
    let _ = dev_pages;
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data[0], 1);
}

#[test]
fn baseline_mode_cannot_recover_media_errors() {
    let mut cfg = PglConfig::small().with_mode(PglMode::Baseline);
    cfg.pool.parity = false;
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(64, 1)?;
            tx.write(oid, 0, &[5; 64])?;
            Ok(oid)
        })
        .unwrap();
    inject::poison_object_page(&pool, oid).unwrap();
    let err = pool.read_verified(oid);
    assert!(matches!(err, Err(PglError::Unrecoverable { .. })), "{err:?}");
}

#[test]
fn repeated_inject_repair_cycles() {
    // The paper's §4.6 experiment: repeatedly corrupt random-ish victims
    // and verify the pool always heals.
    let pool = pool();
    let objs: Vec<PMEMoid> = (0..10).map(|i| make_object(&pool, 200 + i * 40, i as u8)).collect();
    for round in 0..20usize {
        let victim = objs[round % objs.len()];
        if round % 2 == 0 {
            inject::poison_object_page(&pool, victim).unwrap();
        } else {
            inject::scribble_object(&pool, victim, (round as u64 * 7) % 100, 60, 0xF0).unwrap();
        }
        let data = pool.read_verified(victim).unwrap();
        let expect = (round % objs.len()) as u8;
        assert!(data.iter().all(|&b| b == expect), "round {round}");
    }
    assert!(pool.verify_parity().unwrap());
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

// --- Degraded mode: double faults, zone quarantine, typed surfacing ----

/// 16 MiB / 2 MiB zones: enough heap zones for explicit shard counts.
fn sharded_pool(shards: usize) -> PglPool {
    let opts = PglPool::options().size(16 << 20).zone_size(2 << 20).shards(shards);
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast()).unwrap());
    opts.create(dev).unwrap()
}

/// One object per shard, pinned by thread→shard affinity.
fn object_per_shard(pool: &PglPool, fill: u8) -> Vec<PMEMoid> {
    let mut oids = Vec::new();
    for shard in 0..pool.shards() {
        pool.bind_thread_to_shard(shard);
        oids.push(
            pool.tx(|tx| {
                let o = tx.alloc(256, shard as u32 + 1)?;
                tx.write(o, 0, &[fill; 256])?;
                Ok(o)
            })
            .unwrap(),
        );
    }
    pool.unbind_thread_from_shard();
    oids
}

#[test]
fn double_fault_quarantines_zone_while_other_shards_serve() {
    let pool = sharded_pool(2);
    let oids = object_per_shard(&pool, 0x5A);
    let layout = *pool.layout();
    let victim = oids[0];
    let (zone, _) = layout.zone_and_rel(victim.off).unwrap();

    // Two poisoned pages sharing a parity column: beyond the guarantee.
    let page = victim.off / PAGE_SIZE as u64;
    pool.io().dev().poison_page(page).unwrap();
    pool.io().dev().poison_page(page + layout.zone.row_size / PAGE_SIZE as u64).unwrap();

    // The failure surfaces as a *located* typed error...
    match pool.read_verified(victim) {
        Err(PglError::Unrecoverable { shard, zone: z, off, .. }) => {
            assert_eq!(z, zone, "error names the lost zone");
            assert_eq!(shard, pool.shard_map().shard_of_zone(zone));
            assert_ne!(off, u64::MAX, "error carries a pool offset");
        }
        other => panic!("expected typed Unrecoverable, got {other:?}"),
    }
    // ...and the zone is quarantined, persistently and observably.
    assert_eq!(pool.quarantined_zones(), vec![zone]);
    assert!(pool.io().dev().stats().zones_quarantined >= 1);
    assert!(pool.io().dev().stats().repairs_failed >= 1);

    // Later access to the zone fails fast with the typed error — no panic,
    // no hang, no repair storm.
    assert!(matches!(pool.read_verified(victim), Err(PglError::Unrecoverable { .. })));

    // Every other shard keeps serving reads AND commits.
    let other = oids[1];
    pool.tx(|tx| tx.write(other, 0, &[0x77; 16])).unwrap();
    assert_eq!(&pool.read_verified(other).unwrap()[..16], &[0x77; 16]);

    // New allocations avoid the quarantined zone.
    let fresh = pool
        .tx(|tx| {
            let o = tx.alloc(64, 9)?;
            tx.write(o, 0, &[1; 64])?;
            Ok(o)
        })
        .unwrap();
    assert_ne!(layout.zone_and_rel(fresh.off).unwrap().0, zone);

    // Parity verification is clean outside the quarantined zone.
    assert!(pool.verify_parity_detailed().unwrap().is_empty());
}

#[test]
fn corruption_during_repair_surfaces_typed_error() {
    let pool = pool();
    let oid = make_object(&pool, 300, 0x5A);
    let layout = *pool.layout();
    let page_off = oid.off & !(PAGE_SIZE as u64 - 1);
    let (zone, _row, col) = layout.row_col_of(page_off).unwrap();

    // Scribble the object, then lose the parity page its repair needs.
    inject::scribble_object(&pool, oid, 0, 200, 0xEE).unwrap();
    let parity_page = layout.parity_off(zone, col) / PAGE_SIZE as u64;
    pool.io().dev().poison_page(parity_page).unwrap();

    // The mid-repair double fault is contained: typed error, quarantine.
    let err = pool.read_verified(oid);
    assert!(matches!(err, Err(PglError::Unrecoverable { .. })), "{err:?}");
    assert_eq!(pool.quarantined_zones(), vec![zone]);
}

#[test]
fn poison_inside_quarantined_zone_fails_fast_without_repair() {
    let pool = sharded_pool(2);
    let oids = object_per_shard(&pool, 0x33);
    let layout = *pool.layout();
    let victim = oids[0];
    let (zone, _) = layout.zone_and_rel(victim.off).unwrap();

    // Operator fencing: quarantine the zone directly via the admin API.
    pool.quarantine_zone(zone).unwrap();
    assert_eq!(pool.quarantined_zones(), vec![zone]);

    // A *new* media error inside the quarantined zone must not trigger
    // repair machinery: access fails fast with the typed error.
    let repairs_before = pool.counters().page_recoveries.load(std::sync::atomic::Ordering::Relaxed);
    inject::poison_object_page(&pool, victim).unwrap();
    let err = pool.read_verified(victim);
    assert!(matches!(err, Err(PglError::Unrecoverable { .. })), "{err:?}");
    assert_eq!(
        pool.counters().page_recoveries.load(std::sync::atomic::Ordering::Relaxed),
        repairs_before,
        "no repair attempted inside a quarantined zone"
    );

    // Scrub skips the zone (it would otherwise die on the poisoned page)
    // and the rest of the pool stays healthy.
    pool.scrub_now().unwrap();
    assert_eq!(&pool.read_verified(oids[1]).unwrap()[..4], &[0x33; 4]);
    assert!(pool.verify_parity_detailed().unwrap().is_empty());
}

#[test]
fn quarantine_survives_reopen_and_skips_rebuild() {
    let opts = PglPool::options().size(16 << 20).zone_size(2 << 20).shards(2);
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast()).unwrap());
    let pool = opts.create(dev.clone()).unwrap();
    let oids = object_per_shard(&pool, 0x21);
    let layout = *pool.layout();
    let victim = oids[0];
    let (zone, _) = layout.zone_and_rel(victim.off).unwrap();

    // Double fault → quarantine, while the pool is live.
    let page = victim.off / PAGE_SIZE as u64;
    pool.io().dev().poison_page(page).unwrap();
    pool.io().dev().poison_page(page + layout.zone.row_size / PAGE_SIZE as u64).unwrap();
    assert!(pool.read_verified(victim).is_err());
    assert_eq!(pool.quarantined_zones(), vec![zone]);
    drop(pool);

    // Reopen: the quarantine set is decoded from the pool header, the
    // heap rebuild skips the zone (its pages are unreadable), and access
    // stays typed-failed while the healthy shard serves.
    let pool = PglPool::options().shards(2).open(dev).unwrap();
    assert_eq!(pool.quarantined_zones(), vec![zone]);
    assert!(matches!(pool.read_verified(victim), Err(PglError::Unrecoverable { .. })));
    assert_eq!(pool.read_verified(oids[1]).unwrap(), vec![0x21; 256]);
    pool.tx(|tx| tx.write(oids[1], 0, &[0x44; 8])).unwrap();
    assert!(pool.verify_parity_detailed().unwrap().is_empty());
}
