//! Exhaustive crash-point sweep of the **ordered two-shard commit
//! protocol** (sharded parity domains).
//!
//! A transaction that touches two parity shards commits in a fixed order:
//! the secondary shard's lane persists its redo entries *without* a
//! commit record, then the primary lane persists `CrossShard` markers
//! plus its own `Commit` (the commit point), and only then does the
//! secondary receive its `Commit` record. The window between the first
//! and second commit fences is exactly where a naive design tears: the
//! primary says "committed" while the secondary's lane still looks
//! uncommitted. Recovery closes it by rolling the secondary forward iff
//! the primary's `CrossShard(lane, gen)` marker still matches the
//! secondary lane's live generation.
//!
//! The sweep crashes at **every device-operation boundary** — which
//! necessarily includes each point inside that window — and the oracle
//! plus the verify hook require the recovered state to be all-old or
//! all-new across *both* shards, never a mix.

use pangolin::crashcheck::{self, FnWorkload, SweepConfig};
use pangolin::{PMEMoid, PglConfig, PglError, PglPool};

const OBJ_SIZE: u64 = 192;

/// Finds the single live object with `type_num`.
fn find_by_type(pool: &PglPool, type_num: u32) -> pangolin::Result<PMEMoid> {
    pool.live_objects()?
        .into_iter()
        .find(|(_, h)| h.type_num == type_num)
        .map(|(oid, _)| PMEMoid::new(pool.uuid(), oid.off))
        .ok_or_else(|| PglError::Config(format!("no live object of type {type_num}")))
}

/// A two-shard geometry: 16 MiB pool with 4 MiB zones gives several heap
/// zones, routed over two parity shards.
fn two_shard_config() -> PglConfig {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 16 << 20;
    cfg.shards = 2;
    cfg
}

#[test]
fn cross_shard_commit_atomic_at_every_crash_point() {
    let workload = FnWorkload::new(
        "cross-shard-commit",
        |pool| {
            // One object pinned in each shard, so the overwrite below is
            // forced through the two-lane ordered commit.
            for shard in 0..2u32 {
                pool.bind_thread_to_shard(shard as usize);
                pool.tx(|tx| {
                    let oid = tx.alloc(OBJ_SIZE, shard + 1)?;
                    tx.write(oid, 0, &[0x11 * (shard as u8 + 1); OBJ_SIZE as usize])
                })?;
            }
            pool.unbind_thread_from_shard();
            let a = find_by_type(pool, 1)?;
            let b = find_by_type(pool, 2)?;
            let (sa, sb) =
                (pool.shard_map().shard_of_off(a.off), pool.shard_map().shard_of_off(b.off));
            if sa == sb {
                return Err(PglError::Config(format!(
                    "setup failed to split objects across shards ({sa}, {sb})"
                )));
            }
            Ok(())
        },
        |pool, ctx| {
            let a = find_by_type(pool, 1)?;
            let b = find_by_type(pool, 2)?;
            pool.tx(|tx| {
                tx.write(a, 0, &[0xAA; OBJ_SIZE as usize])?;
                tx.write(b, 0, &[0xBB; OBJ_SIZE as usize])
            })?;
            ctx.commit_point(pool)
        },
    )
    .with_config(two_shard_config())
    .with_verify(|pool, _committed| {
        // The oracle already checked recovered bytes against the
        // snapshot model; pin the cross-shard pairing explicitly: A and
        // B must be on the same side of the commit point.
        let a = pool.read_verified(find_by_type(pool, 1)?)?;
        let b = pool.read_verified(find_by_type(pool, 2)?)?;
        let a_new = a.iter().all(|&x| x == 0xAA);
        let b_new = b.iter().all(|&x| x == 0xBB);
        let a_old = a.iter().all(|&x| x == 0x11);
        let b_old = b.iter().all(|&x| x == 0x22);
        if !((a_old && b_old) || (a_new && b_new)) {
            return Err(PglError::Config(format!(
                "cross-shard tear: A {} / B {}",
                if a_new { "new" } else { "old/torn" },
                if b_new { "new" } else { "old/torn" },
            )));
        }
        Ok(())
    });

    // Two lanes' worth of intents, markers and commits: the boundary
    // count is well above a single-lane overwrite, which is exactly the
    // point — the inter-fence window is in there.
    let report = crashcheck::sweep_with(&workload, &SweepConfig::from_env().sampled(2));
    assert!(report.boundaries > 20, "workload too trivial: {} ops", report.boundaries);
}
