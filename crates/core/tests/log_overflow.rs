//! Log-overflow tests: transactions larger than a lane spill their redo
//! logs into heap chunks (paper §2.3), which parity treats as zeros
//! (paper §3.1). These are the conditions the PMDK hashmap's rehash — a
//! single transaction relinking every entry — creates.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use pangolin::{PMEMoid, PglConfig, PglPool};
use pgl_nvm::{CrashPoint, DeviceConfig, NvmDevice, RandomPlan};

/// A transaction whose redo payload far exceeds the 128 KiB test lane.
fn huge_tx(pool: &PglPool, oids: &[PMEMoid], fill: u8) {
    pool.tx(|tx| {
        for oid in oids {
            tx.write(*oid, 0, &[fill; 512])?;
        }
        Ok(())
    })
    .unwrap();
}

fn make_objects(pool: &PglPool, n: usize) -> Vec<PMEMoid> {
    (0..n)
        .map(|i| {
            pool.tx(|tx| {
                let oid = tx.alloc(512, 1)?;
                tx.write(oid, 0, &[i as u8; 512])?;
                Ok(oid)
            })
            .unwrap()
        })
        .collect()
}

#[test]
fn oversized_tx_commits_through_overflow() {
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    // 600 objects x 512 B redo payload ~= 330 KiB > 128 KiB lane.
    let oids = make_objects(&pool, 600);
    huge_tx(&pool, &oids, 0xEE);
    for oid in &oids {
        let data = pool.read_verified(*oid).unwrap();
        assert_eq!(data, vec![0xEE; 512]);
    }
    assert!(pool.verify_parity().unwrap(), "log chunks count as zeros in parity");
    // Overflow chunks were returned: the heap can still allocate freely.
    let stats_before = pool.live_objects().unwrap().len();
    pool.tx(|tx| tx.alloc(1024, 2)).unwrap();
    assert_eq!(pool.live_objects().unwrap().len(), stats_before + 1);
}

#[test]
fn overflow_tx_is_atomic_across_crashes() {
    // Crash at sampled points inside the oversized transaction; after
    // recovery all objects are either old or new, never mixed, and parity
    // holds.
    let cfg = PglConfig::small();
    let make = || {
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
        let pool = PglPool::create(dev.clone(), cfg).unwrap();
        let oids = make_objects(&pool, 400);
        (dev, pool, oids)
    };

    // Count ops of the un-crashed run.
    let (dev, pool, oids) = make();
    const BIG: u64 = 1 << 40;
    dev.arm_crash_after(BIG);
    huge_tx(&pool, &oids, 0xEE);
    let total = BIG - dev.crash_countdown() as u64;
    dev.disarm_crash();
    drop(pool);

    let step = (total / 24).max(1);
    for k in (0..total).step_by(step as usize) {
        let (dev, pool, oids) = make();
        dev.arm_crash_after(k);
        let result = panic::catch_unwind(AssertUnwindSafe(|| huge_tx(&pool, &oids, 0xEE)));
        dev.disarm_crash();
        if let Err(p) = result {
            assert!(p.downcast_ref::<CrashPoint>().is_some());
        }
        drop(pool);
        dev.simulate_crash(&mut RandomPlan::seeded(k)).unwrap();
        let pool = PglPool::options().open(dev).unwrap();
        assert!(pool.verify_parity().unwrap(), "parity broken after crash at {k}");
        let first = pool.read_verified(PMEMoid::new(pool.uuid(), oids[0].off)).unwrap();
        let committed = first == vec![0xEE; 512];
        for (i, oid) in oids.iter().enumerate() {
            let data = pool.read_verified(PMEMoid::new(pool.uuid(), oid.off)).unwrap();
            let want = if committed { vec![0xEE; 512] } else { vec![i as u8; 512] };
            assert_eq!(data, want, "object {i} inconsistent after crash at {k}");
        }
        // Overflow chunks must have been swept; allocation still works.
        pool.tx(|tx| tx.alloc(64, 9)).unwrap();
    }
}

#[test]
fn overflow_chunks_lost_pages_recover_from_replica() {
    // Mlpc replicates logs; losing a page of a primary overflow chunk
    // mid-commit must not lose the transaction. We emulate by crashing
    // right after the commit record, poisoning an overflow page, and
    // recovering.
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oids = make_objects(&pool, 600);

    // Find the commit point: run once to count, the commit record is the
    // last persist before write-back; crash shortly after the full log is
    // durable (~60% through is safely past it for this workload shape).
    const BIG: u64 = 1 << 40;
    dev.arm_crash_after(BIG);
    huge_tx(&pool, &oids, 0xCC);
    let total = BIG - dev.crash_countdown() as u64;
    dev.disarm_crash();

    let dev2 = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
    let pool2 = PglPool::create(dev2.clone(), cfg).unwrap();
    let oids2 = make_objects(&pool2, 600);
    dev2.arm_crash_after(total * 70 / 100);
    let _ = panic::catch_unwind(AssertUnwindSafe(|| huge_tx(&pool2, &oids2, 0xCC)));
    dev2.disarm_crash();
    drop(pool2);
    dev2.simulate_crash(&mut RandomPlan::seeded(1234)).unwrap();
    let pool2 = PglPool::options().open(dev2).unwrap();
    assert!(pool2.verify_parity().unwrap());
    for (i, oid) in oids2.iter().enumerate() {
        let data = pool2.read_verified(PMEMoid::new(pool2.uuid(), oid.off)).unwrap();
        assert!(data == vec![0xCC; 512] || data == vec![i as u8; 512], "object {i} torn");
    }
}
