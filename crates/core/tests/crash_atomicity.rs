//! Exhaustive crash-point testing of Pangolin's redo-log commit protocol.
//!
//! For every device-operation boundary inside a transaction we simulate a
//! power failure (with randomized eviction outcomes), reopen the pool
//! (running redo replay + parity recomputation, paper §3.6), and verify:
//!
//! * **atomicity** — the transaction's effects are all-or-nothing;
//! * **the parity invariant** — every column equals the XOR of its data
//!   rows, so a later media error would still be recoverable;
//! * **checksum integrity** — every live object passes verification.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use pangolin::{PMEMoid, PglConfig, PglPool};
use pgl_nvm::{CrashPoint, DeviceConfig, NvmDevice, RandomPlan};

const OBJ_SIZE: u64 = 192;

fn count_ops(setup: impl Fn(&PglPool) -> PMEMoid, work: impl Fn(&PglPool, PMEMoid)) -> u64 {
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = setup(&pool);
    const BIG: u64 = 1 << 40;
    dev.arm_crash_after(BIG);
    work(&pool, oid);
    let remaining = dev.crash_countdown();
    dev.disarm_crash();
    BIG - remaining as u64
}

fn crash_at(
    k: u64,
    seed: u64,
    setup: &impl Fn(&PglPool) -> PMEMoid,
    work: &impl Fn(&PglPool, PMEMoid),
    verify: &impl Fn(&PglPool, PMEMoid),
) {
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = setup(&pool);
    dev.arm_crash_after(k);
    let result = panic::catch_unwind(AssertUnwindSafe(|| work(&pool, oid)));
    dev.disarm_crash();
    if let Err(payload) = result {
        assert!(payload.downcast_ref::<CrashPoint>().is_some(), "unexpected panic at op {k}");
    }
    drop(pool);
    dev.simulate_crash(&mut RandomPlan::seeded(seed));
    let pool = PglPool::options().open(dev).expect("recovery must always succeed");
    assert!(pool.verify_parity().unwrap(), "parity invariant broken after crash at op {k}");
    assert!(
        pool.find_corrupt_objects().unwrap().is_empty(),
        "corrupt object after crash at op {k}"
    );
    verify(&pool, oid);
}

#[test]
fn overwrite_tx_atomic_and_parity_consistent_at_every_crash_point() {
    let setup = |pool: &PglPool| {
        pool.tx(|tx| {
            let oid = tx.alloc(OBJ_SIZE, 1)?;
            tx.write(oid, 0, &[0xAA; OBJ_SIZE as usize])?;
            Ok(oid)
        })
        .unwrap()
    };
    let work = |pool: &PglPool, oid: PMEMoid| {
        pool.tx(|tx| tx.write(oid, 0, &[0xBB; OBJ_SIZE as usize])).unwrap();
    };
    let verify = |pool: &PglPool, oid: PMEMoid| {
        let oid = PMEMoid::new(pool.uuid(), oid.off);
        let data = pool.read_verified(oid).unwrap();
        let all_old = data.iter().all(|&b| b == 0xAA);
        let all_new = data.iter().all(|&b| b == 0xBB);
        assert!(all_old || all_new, "torn overwrite after recovery");
    };

    let total = count_ops(setup, work);
    // The fused whole-object commit (one redo entry, one write-back store,
    // one parity patch) needs only ~a dozen device ops for this shape.
    assert!(total > 10, "workload too trivial: {total} ops");
    for k in 0..total {
        crash_at(k, k.wrapping_mul(0x9E37_79B9_7F4A_7C15), &setup, &work, &verify);
    }
}

#[test]
fn alloc_and_link_tx_atomic_at_every_crash_point() {
    let setup = |pool: &PglPool| pool.root(16, 0).unwrap();
    let work = |pool: &PglPool, root: PMEMoid| {
        pool.tx(|tx| {
            let node = tx.alloc(64, 2)?;
            tx.write(node, 0, &[0xCD; 64])?;
            tx.write_pod(root, 0, &node.off)?;
            Ok(())
        })
        .unwrap();
    };
    let verify = |pool: &PglPool, _root: PMEMoid| {
        let root = pool.root_oid().unwrap();
        let link: u64 = pool.read_pod(root, 0).unwrap();
        let nodes: Vec<_> =
            pool.live_objects().unwrap().into_iter().filter(|(_, h)| h.type_num == 2).collect();
        if link == 0 {
            assert!(nodes.is_empty(), "unlinked node visible after recovery");
        } else {
            assert_eq!(nodes.len(), 1);
            assert_eq!(nodes[0].0.off, link);
            let data = pool.read_verified(PMEMoid::new(pool.uuid(), link)).unwrap();
            assert_eq!(data, vec![0xCD; 64]);
        }
        // Allocator must remain usable.
        pool.tx(|tx| tx.alloc(64, 3)).unwrap();
        assert!(pool.verify_parity().unwrap());
    };

    let total = count_ops(setup, work);
    for k in 0..total {
        crash_at(k, k.wrapping_mul(0xD129_0D3B), &setup, &work, &verify);
    }
}

#[test]
fn free_tx_atomic_at_every_crash_point() {
    let setup = |pool: &PglPool| {
        pool.tx(|tx| {
            let oid = tx.alloc(128, 5)?;
            tx.write(oid, 0, &[0x11; 128])?;
            Ok(oid)
        })
        .unwrap()
    };
    let work = |pool: &PglPool, oid: PMEMoid| {
        let oid = PMEMoid::new(pool.uuid(), oid.off);
        pool.tx(|tx| tx.free(oid)).unwrap();
    };
    let verify = |pool: &PglPool, oid: PMEMoid| {
        let live = pool.live_objects().unwrap();
        let still_there = live.iter().any(|(o, _)| o.off == oid.off);
        if still_there {
            let data = pool.read_verified(PMEMoid::new(pool.uuid(), oid.off)).unwrap();
            assert_eq!(data, vec![0x11; 128]);
        }
        let fresh = pool.tx(|tx| tx.alloc(128, 5)).unwrap();
        let live_after = pool.live_objects().unwrap();
        assert_eq!(
            live_after.iter().filter(|(o, _)| o.off == fresh.off).count(),
            1,
            "double allocation after crash"
        );
    };

    let total = count_ops(setup, work);
    for k in 0..total {
        crash_at(k, k.wrapping_mul(31), &setup, &work, &verify);
    }
}

#[test]
fn multi_object_tx_atomic_at_sampled_crash_points() {
    // A transaction touching two existing objects plus an allocation:
    // either all three effects landed or none.
    let setup = |pool: &PglPool| {
        pool.tx(|tx| {
            let a = tx.alloc(64, 1)?;
            tx.write(a, 0, &[1; 64])?;
            let b = tx.alloc(64, 2)?;
            tx.write(b, 0, &[2; 64])?;
            Ok(a)
        })
        .unwrap()
    };
    let work = |pool: &PglPool, a: PMEMoid| {
        let b_off =
            pool.live_objects().unwrap().into_iter().find(|(_, h)| h.type_num == 2).unwrap().0;
        pool.tx(|tx| {
            tx.write(a, 0, &[11; 64])?;
            tx.write(b_off, 0, &[22; 64])?;
            let c = tx.alloc(64, 3)?;
            tx.write(c, 0, &[33; 64])?;
            Ok(())
        })
        .unwrap();
    };
    let verify = |pool: &PglPool, a: PMEMoid| {
        let a = PMEMoid::new(pool.uuid(), a.off);
        let da = pool.read_verified(a).unwrap();
        let b = pool.live_objects().unwrap().into_iter().find(|(_, h)| h.type_num == 2).unwrap().0;
        let db = pool.read_verified(PMEMoid::new(pool.uuid(), b.off)).unwrap();
        let c_exists = pool.live_objects().unwrap().iter().any(|(_, h)| h.type_num == 3);
        let committed = da[0] == 11;
        if committed {
            assert_eq!(db[0], 22, "all effects commit together");
            assert!(c_exists, "allocation published with the data updates");
        } else {
            assert_eq!(da[0], 1);
            assert_eq!(db[0], 2);
            assert!(!c_exists);
        }
    };

    let total = count_ops(setup, work);
    // Sample every third op to keep runtime modest (the other tests cover
    // exhaustive single-object sweeps).
    for k in (0..total).step_by(3) {
        crash_at(k, k.wrapping_mul(0xABCD_EF01), &setup, &work, &verify);
    }
}

#[test]
fn crash_then_media_error_still_recovers() {
    // The end-to-end story: crash mid-commit, recover, then lose a page —
    // the recomputed parity must still reconstruct it.
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(OBJ_SIZE, 1)?;
            tx.write(oid, 0, &[0xAA; OBJ_SIZE as usize])?;
            Ok(oid)
        })
        .unwrap();

    let total = count_ops(
        |p| {
            p.tx(|tx| {
                let o = tx.alloc(OBJ_SIZE, 1)?;
                tx.write(o, 0, &[0xAA; OBJ_SIZE as usize])?;
                Ok(o)
            })
            .unwrap()
        },
        |p, o| {
            p.tx(|tx| tx.write(o, 0, &[0xBB; OBJ_SIZE as usize])).unwrap();
        },
    );
    // Crash somewhere in the middle of the commit sequence.
    dev.arm_crash_after(total / 2);
    let _ = panic::catch_unwind(AssertUnwindSafe(|| {
        pool.tx(|tx| tx.write(oid, 0, &[0xBB; OBJ_SIZE as usize]))
    }));
    dev.disarm_crash();
    drop(pool);
    dev.simulate_crash(&mut RandomPlan::seeded(99));
    let pool = PglPool::options().open(dev.clone()).unwrap();
    assert!(pool.verify_parity().unwrap());

    // Now lose the object's page entirely.
    let oid = PMEMoid::new(pool.uuid(), oid.off);
    let page = oid.off / pgl_nvm::PAGE_SIZE as u64;
    dev.poison_page(page).unwrap();
    let data = pool.read_verified(oid).unwrap();
    assert!(
        data.iter().all(|&b| b == 0xAA) || data.iter().all(|&b| b == 0xBB),
        "post-crash parity reconstructs a consistent object"
    );
}
