//! Exhaustive crash-point testing of Pangolin's redo-log commit protocol,
//! built on the [`pangolin::crashcheck`] harness.
//!
//! Each workload is swept at every device-operation boundary under the
//! full plan matrix (AllOld, AllNew, seeded random evictions, and the
//! exhaustive line-outcome enumeration where the dirty-line space is
//! small). Every case reopens the pool (redo replay + parity
//! recomputation, paper §3.6) and checks:
//!
//! * **atomicity** — the DRAM model oracle: the recovered state equals
//!   exactly the committed state before or after the interrupted
//!   transaction;
//! * **the parity invariant** — every column equals the XOR of its data
//!   rows, so a later media error would still be recoverable;
//! * **checksum integrity** — every live object passes verification and a
//!   scrub pass changes nothing.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use pangolin::crashcheck::{self, FnWorkload, PlanSpec, SweepConfig};
use pangolin::{PMEMoid, PglConfig, PglError, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice, RandomPlan};

const OBJ_SIZE: u64 = 192;

/// Finds the single live object with `type_num`, failing the transaction
/// machinery's way when absent.
fn find_by_type(pool: &PglPool, type_num: u32) -> pangolin::Result<PMEMoid> {
    pool.live_objects()?
        .into_iter()
        .find(|(_, h)| h.type_num == type_num)
        .map(|(oid, _)| PMEMoid::new(pool.uuid(), oid.off))
        .ok_or_else(|| PglError::Config(format!("no live object of type {type_num}")))
}

#[test]
fn overwrite_tx_atomic_and_parity_consistent_at_every_crash_point() {
    let workload = FnWorkload::new(
        "overwrite-tx",
        |pool| {
            pool.tx(|tx| {
                let oid = tx.alloc(OBJ_SIZE, 1)?;
                tx.write(oid, 0, &[0xAA; OBJ_SIZE as usize])
            })
        },
        |pool, ctx| {
            let oid = find_by_type(pool, 1)?;
            pool.tx(|tx| tx.write(oid, 0, &[0xBB; OBJ_SIZE as usize]))?;
            ctx.commit_point(pool)
        },
    )
    .with_verify(|pool, _committed| {
        // The oracle already proved all-or-nothing against the recorded
        // snapshots; pin the user-visible form of it too.
        let oid = find_by_type(pool, 1)?;
        let data = pool.read_verified(oid)?;
        let all_old = data.iter().all(|&b| b == 0xAA);
        let all_new = data.iter().all(|&b| b == 0xBB);
        if !(all_old || all_new) {
            return Err(PglError::Config("torn overwrite after recovery".into()));
        }
        Ok(())
    });

    let report = crashcheck::sweep(&workload);
    // The fused whole-object commit (one redo entry, one write-back store,
    // one parity patch) needs only ~a dozen device ops for this shape.
    assert!(report.boundaries > 10, "workload too trivial: {} ops", report.boundaries);
    assert_eq!(report.swept, report.boundaries, "every boundary crashed");
}

#[test]
fn alloc_and_link_tx_atomic_at_every_crash_point() {
    let workload = FnWorkload::new(
        "alloc-and-link",
        |pool| pool.root(16, 0).map(|_| ()),
        |pool, ctx| {
            let root = pool.root_oid()?;
            pool.tx(|tx| {
                let node = tx.alloc(64, 2)?;
                tx.write(node, 0, &[0xCD; 64])?;
                tx.write_pod(root, 0, &node.off)
            })?;
            ctx.commit_point(pool)
        },
    )
    .with_verify(|pool, _committed| {
        let root = pool.root_oid()?;
        let link: u64 = pool.read_pod(root, 0)?;
        let nodes: Vec<_> =
            pool.live_objects()?.into_iter().filter(|(_, h)| h.type_num == 2).collect();
        if link == 0 {
            if !nodes.is_empty() {
                return Err(PglError::Config("unlinked node visible after recovery".into()));
            }
        } else {
            if nodes.len() != 1 || nodes[0].0.off != link {
                return Err(PglError::Config(format!(
                    "link {link:#x} does not resolve to the single type-2 node"
                )));
            }
            let data = pool.read_verified(PMEMoid::new(pool.uuid(), link))?;
            if data != vec![0xCD; 64] {
                return Err(PglError::Config("linked node content damaged".into()));
            }
        }
        // Allocator must remain usable after any crash.
        pool.tx(|tx| tx.alloc(64, 3))?;
        if !pool.verify_parity()? {
            return Err(PglError::Config("parity broken by post-recovery alloc".into()));
        }
        Ok(())
    });

    // Allocator metadata multiplies both the boundary count and each
    // boundary's dirty-line outcome space, so the full sweep is by far the
    // slowest in this file: sample every 4th boundary in the smoke run and
    // leave the exhaustive walk to the nightly deep config (which ignores
    // the sampling request).
    crashcheck::sweep_with(&workload, &SweepConfig::from_env().sampled(4));
}

#[test]
fn free_tx_atomic_at_every_crash_point() {
    let workload = FnWorkload::new(
        "free-tx",
        |pool| {
            pool.tx(|tx| {
                let oid = tx.alloc(128, 5)?;
                tx.write(oid, 0, &[0x11; 128])
            })
        },
        |pool, ctx| {
            let oid = find_by_type(pool, 5)?;
            pool.tx(|tx| tx.free(oid))?;
            ctx.commit_point(pool)
        },
    )
    .with_verify(|pool, _committed| {
        // (The oracle already checked the freed object is atomically
        // present-with-old-content or gone.) The allocator must not hand
        // the same slot out twice.
        let fresh = pool.tx(|tx| tx.alloc(128, 5))?;
        let live = pool.live_objects()?;
        if live.iter().filter(|(o, _)| o.off == fresh.off).count() != 1 {
            return Err(PglError::Config("double allocation after crash".into()));
        }
        Ok(())
    });

    crashcheck::sweep(&workload);
}

#[test]
fn multi_object_tx_atomic_at_sampled_crash_points() {
    // A transaction touching two existing objects plus an allocation:
    // either all three effects landed or none. The model oracle checks
    // exactly this (snapshot 0 = {1s, 2s}, snapshot 1 = {11s, 22s, 33s});
    // the explicit verify below keeps the user-visible assertions from the
    // pre-harness version of this test.
    let workload = FnWorkload::new(
        "multi-object-tx",
        |pool| {
            pool.tx(|tx| {
                let a = tx.alloc(64, 1)?;
                tx.write(a, 0, &[1; 64])?;
                let b = tx.alloc(64, 2)?;
                tx.write(b, 0, &[2; 64])
            })
        },
        |pool, ctx| {
            let a = find_by_type(pool, 1)?;
            let b = find_by_type(pool, 2)?;
            pool.tx(|tx| {
                tx.write(a, 0, &[11; 64])?;
                tx.write(b, 0, &[22; 64])?;
                let c = tx.alloc(64, 3)?;
                tx.write(c, 0, &[33; 64])
            })?;
            ctx.commit_point(pool)
        },
    )
    .with_verify(|pool, committed| {
        let da = pool.read_verified(find_by_type(pool, 1)?)?;
        let db = pool.read_verified(find_by_type(pool, 2)?)?;
        let c_exists = pool.live_objects()?.iter().any(|(_, h)| h.type_num == 3);
        if committed == 1 {
            if da[0] != 11 || db[0] != 22 || !c_exists {
                return Err(PglError::Config("all effects must commit together".into()));
            }
        } else if da[0] != 1 || db[0] != 2 || c_exists {
            return Err(PglError::Config("no effect may leak from the torn tx".into()));
        }
        Ok(())
    });

    // Sample every third op to keep smoke runtime modest (the other tests
    // cover exhaustive single-object sweeps); the nightly deep config
    // ignores the sampling request and sweeps every boundary.
    crashcheck::sweep_with(&workload, &SweepConfig::from_env().sampled(3));
}

#[test]
fn crash_then_media_error_still_recovers() {
    // The end-to-end story: crash mid-commit, recover, then lose a page —
    // the recomputed parity must still reconstruct it. This scenario layers
    // a media error on top of the crash, which the sweep driver does not
    // model, so it drives the device directly.
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(OBJ_SIZE, 1)?;
            tx.write(oid, 0, &[0xAA; OBJ_SIZE as usize])?;
            Ok(oid)
        })
        .unwrap();

    // Count the overwrite's device ops on a scratch run of the same shape.
    let total = {
        let cfg = PglConfig::small();
        let sdev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
        let spool = PglPool::create(sdev.clone(), cfg).unwrap();
        let soid = spool
            .tx(|tx| {
                let o = tx.alloc(OBJ_SIZE, 1)?;
                tx.write(o, 0, &[0xAA; OBJ_SIZE as usize])?;
                Ok(o)
            })
            .unwrap();
        const BIG: u64 = 1 << 40;
        sdev.arm_crash_after(BIG);
        spool.tx(|tx| tx.write(soid, 0, &[0xBB; OBJ_SIZE as usize])).unwrap();
        let remaining = sdev.crash_countdown();
        sdev.disarm_crash();
        BIG - remaining as u64
    };

    // Crash somewhere in the middle of the commit sequence.
    dev.arm_crash_after(total / 2);
    let _ = panic::catch_unwind(AssertUnwindSafe(|| {
        pool.tx(|tx| tx.write(oid, 0, &[0xBB; OBJ_SIZE as usize]))
    }));
    dev.disarm_crash();
    drop(pool);
    dev.simulate_crash(&mut RandomPlan::seeded(99)).unwrap();
    let pool = PglPool::options().open(dev.clone()).unwrap();
    assert!(pool.verify_parity().unwrap());

    // Now lose the object's page entirely.
    let oid = PMEMoid::new(pool.uuid(), oid.off);
    let page = oid.off / pgl_nvm::PAGE_SIZE as u64;
    dev.poison_page(page).unwrap();
    let data = pool.read_verified(oid).unwrap();
    assert!(
        data.iter().all(|&b| b == 0xAA) || data.iter().all(|&b| b == 0xBB),
        "post-crash parity reconstructs a consistent object"
    );
}

// ---------------------------------------------------------------------
// Harness self-tests: the checker must catch bugs and report them
// reproducibly, and its coverage numbers must hold.
// ---------------------------------------------------------------------

fn tiny_overwrite() -> impl crashcheck::CrashWorkload {
    FnWorkload::new(
        "tiny-overwrite",
        |pool| {
            pool.tx(|tx| {
                let oid = tx.alloc(64, 9)?;
                tx.write(oid, 0, &[0x55; 64])
            })
        },
        |pool, ctx| {
            let oid = find_by_type(pool, 9)?;
            pool.tx(|tx| tx.write(oid, 0, &[0x66; 64]))?;
            ctx.commit_point(pool)
        },
    )
}

#[test]
fn harness_engages_exhaustive_small_model_mode() {
    let config = SweepConfig::smoke();
    let report = crashcheck::sweep_with(&tiny_overwrite(), &config);
    assert_eq!(report.swept, report.boundaries);
    // Base matrix: AllOld + AllNew + one random plan per seed, every
    // boundary; exhaustive combinations come on top.
    let base = report.swept * (2 + config.seeds.len() as u64);
    assert!(report.cases >= base, "{} cases < base matrix {}", report.cases, base);
    assert!(
        report.exhaustive_boundaries > 0,
        "no boundary small enough for exhaustive mode: {report}"
    );
    assert!(report.max_outcome_space >= 2, "outcome space never exceeded one combination");
}

#[test]
fn harness_failure_reports_standalone_reproducible_tuple() {
    // A workload whose verify is deliberately wrong: it rejects the
    // committed outcome. The sweep must fail, and the reported (op, plan)
    // tuple must reproduce the same failure from scratch.
    let broken = FnWorkload::new(
        "deliberately-broken",
        |pool| {
            pool.tx(|tx| {
                let oid = tx.alloc(64, 9)?;
                tx.write(oid, 0, &[0x55; 64])
            })
        },
        |pool, ctx| {
            let oid = find_by_type(pool, 9)?;
            pool.tx(|tx| tx.write(oid, 0, &[0x66; 64]))?;
            ctx.commit_point(pool)
        },
    )
    .with_verify(|_pool, committed| {
        if committed == 1 {
            return Err(PglError::Config("injected oracle bug".into()));
        }
        Ok(())
    });

    let failure = crashcheck::try_sweep(&broken, &SweepConfig::smoke())
        .expect_err("sweep must catch the injected bug");
    assert!(failure.message.contains("injected oracle bug"), "{failure}");

    // The tuple alone reproduces the failure standalone.
    let again = crashcheck::run_case(&broken, failure.op, failure.plan)
        .expect_err("tuple must reproduce standalone");
    assert_eq!(again.op, failure.op);
    assert_eq!(again.plan, failure.plan);
    assert!(again.message.contains("injected oracle bug"), "{again}");

    // And a case the bug does not reach (crash at op 0 under AllOld: the
    // transaction never committed) passes standalone.
    crashcheck::run_case(&broken, 0, PlanSpec::AllOld)
        .expect("op-0 all-old case rolls back and passes");
}

#[test]
fn harness_exhaustive_specs_are_deterministic() {
    // The same (op, plan) tuple must mean the same crash twice in a row —
    // including exhaustive combination indices, which depend on replayed
    // dirty-line state being identical.
    let w = tiny_overwrite();
    for plan in [PlanSpec::AllOld, PlanSpec::AllNew, PlanSpec::Random(7), PlanSpec::Exhaustive(1)] {
        crashcheck::run_case(&w, 2, plan).unwrap_or_else(|f| panic!("{f}"));
        crashcheck::run_case(&w, 2, plan).unwrap_or_else(|f| panic!("{f}"));
    }
}
