//! Tests for sparse micro-buffers: large objects (above the 64 KiB
//! threshold) are shadowed block-by-block, yet keep every guarantee —
//! atomicity, checksum correctness, parity consistency, and recovery.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use pangolin::txn::SPARSE_THRESHOLD;
use pangolin::{inject, PMEMoid, PglConfig, PglPool};
use pgl_nvm::{CrashPoint, DeviceConfig, NvmDevice, RandomPlan};

const BIG: u64 = SPARSE_THRESHOLD * 4; // 256 KiB: well into sparse territory

fn big_cfg() -> PglConfig {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    cfg
}

fn make_big(pool: &PglPool) -> PMEMoid {
    pool.tx(|tx| {
        let oid = tx.alloc(BIG, 1)?;
        let pattern: Vec<u8> = (0..BIG).map(|i| (i % 249) as u8).collect();
        tx.write(oid, 0, &pattern)?;
        Ok(oid)
    })
    .unwrap()
}

#[test]
fn small_write_to_big_object_stays_cheap_and_correct() {
    let cfg = big_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = make_big(&pool);

    let before = dev.stats();
    pool.tx(|tx| tx.write_pod(oid, 100_000, &0xFEED_FACEu64)).unwrap();
    let delta = dev.stats().delta_since(&before);
    // The whole point: the transaction must not touch ~BIG bytes. Redo
    // entry + write-back + parity + header are all range-sized.
    assert!(
        delta.total_bytes_written() < 16 << 10,
        "sparse tx wrote {} bytes for an 8-byte update",
        delta.total_bytes_written()
    );

    // And the object is still fully intact and verifiable end to end.
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(u64::from_le_bytes(data[100_000..100_008].try_into().unwrap()), 0xFEED_FACE);
    assert_eq!(data[0], 0);
    assert_eq!(data[50_000], (50_000 % 249) as u8);
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn many_scattered_writes_keep_checksum_exact() {
    let cfg = big_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    let oid = make_big(&pool);
    let mut model: Vec<u8> = (0..BIG).map(|i| (i % 249) as u8).collect();

    for round in 0..50u64 {
        let off = (round * 5003) % (BIG - 64);
        let len = 1 + (round % 64) as usize;
        let fill = round as u8;
        pool.tx(|tx| tx.write(oid, off, &vec![fill; len])).unwrap();
        model[off as usize..off as usize + len].fill(fill);
    }
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data, model, "incremental checksum tracked every range");
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

#[test]
fn sparse_tx_reads_its_own_writes() {
    let cfg = big_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    let oid = make_big(&pool);
    pool.tx(|tx| {
        tx.write_pod(oid, 4096, &111u64)?;
        assert_eq!(tx.read_pod::<u64>(oid, 4096)?, 111, "isolation within tx");
        // An untouched range reads through to NVMM.
        let mut b = [0u8; 1];
        tx.read(oid, 9000, &mut b)?;
        assert_eq!(b[0], (9000 % 249) as u8);
        Ok(())
    })
    .unwrap();
}

#[test]
fn sparse_aborts_leave_nvmm_untouched() {
    let cfg = big_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    let oid = make_big(&pool);
    let err = pool.tx(|tx| -> pangolin::Result<()> {
        tx.write(oid, 0, &[0xFF; 1024])?;
        Err(pangolin::PglError::unrecoverable("abort"))
    });
    assert!(err.is_err());
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data[0], 0);
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn sparse_writes_atomic_at_sampled_crash_points() {
    let count_ops = || {
        let cfg = big_cfg();
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
        let pool = PglPool::create(dev.clone(), cfg).unwrap();
        let oid = make_big(&pool);
        const HUGE: u64 = 1 << 40;
        dev.arm_crash_after(HUGE);
        pool.tx(|tx| {
            tx.write(oid, 1000, &[0xAB; 600])?;
            tx.write(oid, 200_000, &[0xCD; 600])
        })
        .unwrap();
        let total = HUGE - dev.crash_countdown() as u64;
        dev.disarm_crash();
        total
    };
    let total = count_ops();
    let step = (total / 16).max(1);
    for k in (0..total).step_by(step as usize) {
        let cfg = big_cfg();
        let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::precise()).unwrap());
        let pool = PglPool::create(dev.clone(), cfg).unwrap();
        let oid = make_big(&pool);
        dev.arm_crash_after(k);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.tx(|tx| {
                tx.write(oid, 1000, &[0xAB; 600])?;
                tx.write(oid, 200_000, &[0xCD; 600])
            })
        }));
        dev.disarm_crash();
        if let Err(p) = r {
            assert!(p.downcast_ref::<CrashPoint>().is_some());
        }
        drop(pool);
        dev.simulate_crash(&mut RandomPlan::seeded(k)).unwrap();
        let pool = PglPool::options().open(dev).unwrap();
        assert!(pool.verify_parity().unwrap(), "parity at crash point {k}");
        let data = pool.read_verified(PMEMoid::new(pool.uuid(), oid.off)).unwrap();
        let a = data[1000] == 0xAB;
        let b = data[200_000] == 0xCD;
        assert_eq!(a, b, "both sparse ranges commit together (crash at {k})");
    }
}

#[test]
fn scribble_on_sparse_object_detected_and_repaired() {
    let cfg = big_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    let oid = make_big(&pool);
    inject::scribble_object(&pool, oid, 12345, 500, 0xEE).unwrap();
    // Sparse writes skip open-time verification, but full verification
    // (read_verified / scrub) still detects and repairs.
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(data[12345], (12345 % 249) as u8);
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn media_error_under_sparse_write_recovers() {
    let cfg = big_cfg();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = make_big(&pool);
    // Poison a page inside the object, then write a range on that page:
    // the block load must recover online first.
    let page = (oid.off + 131072) / pgl_nvm::PAGE_SIZE as u64;
    dev.poison_page(page).unwrap();
    pool.tx(|tx| tx.write_pod(oid, 131100, &7u64)).unwrap();
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(u64::from_le_bytes(data[131100..131108].try_into().unwrap()), 7);
    assert!(pool.counters().page_recoveries.load(std::sync::atomic::Ordering::Relaxed) >= 1);
}
