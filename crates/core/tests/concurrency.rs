//! Concurrency stress tests: the freeze protocol (paper §3.6) must let
//! online recovery run *while* other threads keep committing, and the
//! background scrubber must coexist with writers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pangolin::{inject, CsumPolicy, PMEMoid, PglConfig, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice};

fn big_pool() -> PglPool {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    PglPool::create(dev, cfg).unwrap()
}

#[test]
fn online_recovery_races_committing_threads() {
    let pool = big_pool();
    // Each worker owns its objects (the paper's no-shared-object rule).
    let n_workers = 3usize;
    let per = 16usize;
    let mut sets: Vec<Vec<PMEMoid>> = Vec::new();
    for w in 0..n_workers {
        sets.push(
            (0..per)
                .map(|i| {
                    pool.tx(|tx| {
                        let oid = tx.alloc(512, w as u32)?;
                        tx.write(oid, 0, &[(w * per + i) as u8; 512])?;
                        Ok(oid)
                    })
                    .unwrap()
                })
                .collect(),
        );
    }
    // A victim pool the injector poisons, never written by workers.
    let victims: Vec<PMEMoid> = (0..8)
        .map(|i| {
            pool.tx(|tx| {
                let oid = tx.alloc(256, 99)?;
                tx.write(oid, 0, &[0x56 + i as u8; 256])?;
                Ok(oid)
            })
            .unwrap()
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Writers hammer their own objects.
        for (w, oids) in sets.iter().enumerate() {
            let pool = pool.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut round = 0u8;
                while !stop.load(Ordering::Relaxed) {
                    for oid in oids {
                        pool.tx(|tx| tx.write(*oid, 0, &[round ^ w as u8; 512])).unwrap();
                    }
                    round = round.wrapping_add(1);
                }
            });
        }
        // The fault thread repeatedly poisons victim pages and reads them
        // back (triggering freeze + reconstruction under full commit load).
        let pool2 = pool.clone();
        let stop2 = stop.clone();
        s.spawn(move || {
            for round in 0..20 {
                let victim = victims[round % victims.len()];
                inject::poison_object_page(&pool2, victim).unwrap();
                let data = pool2.read_verified(victim).unwrap();
                assert_eq!(data[0], 0x56 + (round % victims.len()) as u8, "round {round}");
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    assert!(
        pool.counters().page_recoveries.load(Ordering::Relaxed) >= 20,
        "every injection recovered online"
    );
    assert!(pool.verify_parity().unwrap(), "parity after recovery-under-load");
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

#[test]
fn background_scrubber_coexists_with_writers() {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    cfg.policy = CsumPolicy::ScrubEvery(50);
    cfg.background_scrub = true;
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();

    let oids: Vec<PMEMoid> = (0..32)
        .map(|i| {
            pool.tx(|tx| {
                let oid = tx.alloc(128, 1)?;
                tx.write(oid, 0, &[i as u8; 128])?;
                Ok(oid)
            })
            .unwrap()
        })
        .collect();

    std::thread::scope(|s| {
        for chunk in oids.chunks(16) {
            let pool = pool.clone();
            s.spawn(move || {
                for round in 0..200u32 {
                    for oid in chunk {
                        pool.tx(|tx| tx.write(*oid, 0, &[round as u8; 64])).unwrap();
                    }
                }
            });
        }
    });
    // Give the background scrubber a moment to drain its queue.
    for _ in 0..100 {
        if pool.counters().scrubs.load(Ordering::Relaxed) > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(pool.counters().scrubs.load(Ordering::Relaxed) >= 1, "background scrub passes ran");
    assert!(pool.verify_parity().unwrap());
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

/// The Figure 9 / §3.5 stress: ≥4 threads × ≥1k mixed alloc/write/free
/// transactions on ONE pool, through cheap shared handles. Afterwards the
/// full parity invariant must hold (verify_all reports every mismatching
/// column — the list must be empty) and every object checksum must match.
#[test]
fn stress_mixed_txns_across_threads_keep_parity_clean() {
    let pool = big_pool();
    let n_threads = 4u64;
    let txns_per_thread = 300u64; // 1200 transactions total
    std::thread::scope(|s| {
        for t in 0..n_threads {
            let pool = pool.clone();
            s.spawn(move || {
                let mut mine: Vec<PMEMoid> = Vec::new();
                for i in 0..txns_per_thread {
                    match i % 3 {
                        // Allocate + initialize a fresh object.
                        0 => {
                            let size = 64 + ((t * 131 + i * 17) % 1500);
                            let oid = pool
                                .tx(|tx| {
                                    let oid = tx.alloc(size, t as u32)?;
                                    tx.write(oid, 0, &[t as u8 ^ i as u8; 48])?;
                                    Ok(oid)
                                })
                                .unwrap();
                            mine.push(oid);
                        }
                        // Overwrite a range of an object this thread owns.
                        1 => {
                            if let Some(&oid) = mine.last() {
                                pool.tx(|tx| {
                                    tx.write(oid, 8, &[i as u8; 40])?;
                                    Ok(())
                                })
                                .unwrap();
                            }
                        }
                        // Free an older object.
                        _ => {
                            if mine.len() > 8 {
                                let victim = mine.swap_remove(mine.len() / 2);
                                pool.tx(|tx| tx.free(victim)).unwrap();
                            }
                        }
                    }
                }
                // Everything still owned reads back verified.
                for oid in &mine {
                    pool.read_verified(*oid).unwrap();
                }
            });
        }
    });
    let mismatches = pool.verify_parity_detailed().unwrap();
    assert!(mismatches.is_empty(), "parity mismatches after 4x300 mixed txns: {mismatches:?}");
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
    assert!(
        pool.counters().commits.load(Ordering::Relaxed) >= 1000,
        "the workload really committed >1k transactions"
    );
}

/// The scrubber must coexist with live transactions WITHOUT freezing the
/// pool for its object sweep: it takes the same parity range-locks
/// committing writers hold, object by object.
#[test]
fn synchronous_scrubs_race_committing_writers() {
    let pool = big_pool();
    let oids: Vec<PMEMoid> = (0..48)
        .map(|i| {
            pool.tx(|tx| {
                let oid = tx.alloc(256, 5)?;
                tx.write(oid, 0, &[i as u8; 256])?;
                Ok(oid)
            })
            .unwrap()
        })
        .collect();

    std::thread::scope(|s| {
        for chunk in oids.chunks(16) {
            let pool = pool.clone();
            s.spawn(move || {
                for round in 0..120u32 {
                    for oid in chunk {
                        pool.tx(|tx| tx.write(*oid, 0, &[round as u8; 128])).unwrap();
                    }
                }
            });
        }
        // Scrub repeatedly from a fourth thread while the writers run.
        let pool2 = pool.clone();
        s.spawn(move || {
            for _ in 0..10 {
                let report = pool2.scrub_now().unwrap();
                assert_eq!(report.objects_repaired, 0, "no false scribble repairs");
            }
        });
    });
    assert!(pool.counters().scrubs.load(Ordering::Relaxed) >= 10);
    assert!(pool.verify_parity().unwrap());
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

#[test]
fn many_threads_allocate_and_free_concurrently() {
    let pool = big_pool();
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let pool = pool.clone();
            s.spawn(move || {
                let mut mine = Vec::new();
                for i in 0..150u32 {
                    let size = 64 + ((t * 37 + i * 13) % 900) as u64;
                    let oid = pool
                        .tx(|tx| {
                            let oid = tx.alloc(size, t)?;
                            tx.write(oid, 0, &[t as u8; 32])?;
                            Ok(oid)
                        })
                        .unwrap();
                    mine.push(oid);
                    if i % 3 == 0 {
                        let victim = mine.swap_remove(mine.len() / 2);
                        pool.tx(|tx| tx.free(victim)).unwrap();
                    }
                }
                // Everything this thread still owns has its content.
                for oid in &mine {
                    let data = pool.read_verified(*oid).unwrap();
                    assert_eq!(&data[..32], &[t as u8; 32]);
                }
            });
        }
    });
    assert!(pool.verify_parity().unwrap());
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}
