//! Crash-point sweep of the persistent quarantine set (degraded mode).
//!
//! Quarantining a zone appends its id to a small persistent region in the
//! pool header under a count-last protocol: the entry is persisted first,
//! then the count (and, for the first entry, the magic) — so a crash at
//! any device-operation boundary must leave the set a clean **prefix** of
//! the quarantine order. A zone is fully quarantined or fully healthy
//! after reopen, never half: no phantom zone ids, no gaps, and everything
//! fenced before the last reached commit point stays fenced.
//!
//! The workload interleaves ordinary transactions (so the model oracle
//! pins transactional atomicity at the same boundaries) with
//! administrative [`PglPool::quarantine_zone`] calls on high, object-free
//! zones — the same persist path the double-fault detector takes.

use pangolin::crashcheck::{self, FnWorkload, SweepConfig};
use pangolin::{PMEMoid, PglConfig, PglError, PglPool};
use pgl_pmemobj::PoolConfig;

const OBJ_SIZE: u64 = 128;

/// A pool with enough zones that fencing the top three leaves the data
/// (allocated bottom-up from zone 0) untouched.
fn multi_zone_config() -> PglConfig {
    let mut cfg = PglConfig::small();
    cfg.pool = PoolConfig { size: 8 << 20, zone_size: 1 << 20, ..PoolConfig::small() };
    cfg
}

/// The fixed quarantine order: the three highest zones, object-free in
/// this workload.
fn fence_order(pool: &PglPool) -> Vec<u64> {
    let nz = pool.layout().n_zones;
    assert!(nz >= 5, "need head-room zones to fence, got {nz}");
    vec![nz - 1, nz - 2, nz - 3]
}

fn find_obj(pool: &PglPool) -> pangolin::Result<PMEMoid> {
    pool.live_objects()?
        .into_iter()
        .find(|(_, h)| h.type_num == 7)
        .map(|(oid, _)| PMEMoid::new(pool.uuid(), oid.off))
        .ok_or_else(|| PglError::Config("workload object missing".into()))
}

#[test]
fn quarantine_set_is_prefix_atomic_at_every_crash_point() {
    let workload = FnWorkload::new(
        "quarantine-persist",
        |pool| {
            pool.tx(|tx| {
                let oid = tx.alloc(OBJ_SIZE, 7)?;
                tx.write(oid, 0, &[0x10; OBJ_SIZE as usize])
            })
        },
        |pool, ctx| {
            let order = fence_order(pool);
            let oid = find_obj(pool)?;
            // commit 1: plain overwrite before any fencing.
            pool.tx(|tx| tx.write(oid, 0, &[0x20; OBJ_SIZE as usize]))?;
            ctx.commit_point(pool)?;
            // First quarantine append: initialises the region (magic +
            // entry + count ordering is the interesting window).
            pool.quarantine_zone(order[0])?;
            // commit 2: transactions keep committing in degraded mode.
            pool.tx(|tx| tx.write(oid, 0, &[0x30; OBJ_SIZE as usize]))?;
            ctx.commit_point(pool)?;
            // Back-to-back appends: count must step one entry at a time.
            pool.quarantine_zone(order[1])?;
            pool.quarantine_zone(order[2])?;
            // commit 3: still serving with three zones fenced.
            pool.tx(|tx| tx.write(oid, 0, &[0x40; OBJ_SIZE as usize]))?;
            ctx.commit_point(pool)
        },
    )
    .with_config(multi_zone_config())
    .with_verify(|pool, committed| {
        let order = fence_order(pool);
        let q = pool.quarantined_zones();
        // Prefix property: the recovered set is exactly the first k zones
        // of the quarantine order (quarantined_zones() sorts ascending).
        if q.len() > order.len() {
            return Err(PglError::Config(format!("phantom quarantine entries: {q:?}")));
        }
        let mut expect = order[..q.len()].to_vec();
        expect.sort_unstable();
        if q != expect {
            return Err(PglError::Config(format!(
                "quarantine set {q:?} is not a prefix of the fence order {order:?}"
            )));
        }
        // Monotone with commits: every quarantine that happened-before the
        // last reached commit point must have survived (the append is
        // synchronous and persisted before quarantine_zone returns).
        let min_fenced = match committed {
            0 | 1 => 0,
            2 => 1,
            _ => 3,
        };
        if q.len() < min_fenced {
            return Err(PglError::Config(format!(
                "commit {committed} reached but only {q:?} fenced (need {min_fenced})"
            )));
        }
        // The fenced pool still serves: object readable, fresh allocation
        // lands outside every quarantined zone.
        let data = pool.read_verified(find_obj(pool)?)?;
        if !data.iter().all(|&b| b == data[0]) {
            return Err(PglError::Config("torn object despite oracle pass".into()));
        }
        let fresh = pool.tx(|tx| tx.alloc(OBJ_SIZE, 8))?;
        let (fz, _) = pool.layout().zone_and_rel(fresh.off)?;
        if q.contains(&fz) {
            return Err(PglError::Config(format!("allocation landed in quarantined zone {fz}")));
        }
        Ok(())
    });

    // Smoke runs crash ~40 evenly spaced boundaries (three fences plus
    // three commits make the body op-heavy); PGL_DEEP_SWEEP=1 sweeps the
    // full 8x budget.
    let report = crashcheck::sweep_with(&workload, &SweepConfig::from_env().budget(40));
    assert!(report.boundaries > 30, "fence path too trivial: {} ops", report.boundaries);
}

#[test]
fn quarantine_append_is_idempotent_across_crash_and_reopen() {
    // Re-quarantining an already-fenced zone after recovery must not grow
    // the set or corrupt the region — the detector and the administrator
    // can race to fence the same zone across a crash.
    let workload = FnWorkload::new(
        "quarantine-idempotent",
        |pool| {
            pool.tx(|tx| {
                let oid = tx.alloc(OBJ_SIZE, 7)?;
                tx.write(oid, 0, &[0x11; OBJ_SIZE as usize])
            })
        },
        |pool, ctx| {
            let z = fence_order(pool)[0];
            pool.quarantine_zone(z)?;
            pool.quarantine_zone(z)?; // duplicate: must be a no-op
            let oid = find_obj(pool)?;
            pool.tx(|tx| tx.write(oid, 0, &[0x22; OBJ_SIZE as usize]))?;
            ctx.commit_point(pool)
        },
    )
    .with_config(multi_zone_config())
    .with_verify(|pool, _committed| {
        let z = fence_order(pool)[0];
        let q = pool.quarantined_zones();
        if !(q.is_empty() || q == vec![z]) {
            return Err(PglError::Config(format!("duplicate append leaked: {q:?}")));
        }
        // And the fence keeps working post-recovery.
        pool.quarantine_zone(z)?;
        if pool.quarantined_zones() != vec![z] {
            return Err(PglError::Config("re-fence after reopen failed".into()));
        }
        Ok(())
    });

    crashcheck::sweep_with(&workload, &SweepConfig::from_env().budget(25));
}
