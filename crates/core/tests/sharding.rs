//! Sharded parity domains: routing, cross-shard transactions, parallel
//! recovery/scrub, and the shard-confinement regression pin.
//!
//! The pool geometry here is 16 MiB with 2 MiB zones (≈7 heap zones), so
//! explicit shard counts up to 4 resolve without clamping.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use pangolin::{PMEMoid, PglPool};
use pgl_nvm::{CrashPoint, DeviceConfig, NvmDevice};

const OBJ: usize = 256;

fn options() -> pangolin::OpenOptions {
    PglPool::options().size(16 << 20).zone_size(2 << 20)
}

fn device(opts: &pangolin::OpenOptions) -> Arc<NvmDevice> {
    Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast()).unwrap())
}

/// Allocates one object per shard, pinned there via thread affinity, and
/// returns them indexed by shard.
fn alloc_per_shard(pool: &PglPool, fill: u8) -> Vec<PMEMoid> {
    let n = pool.shards();
    let mut oids = Vec::with_capacity(n);
    for shard in 0..n {
        pool.bind_thread_to_shard(shard);
        let oid = pool
            .tx(|tx| {
                let oid = tx.alloc(OBJ as u64, shard as u32 + 1)?;
                tx.write(oid, 0, &[fill; OBJ])?;
                Ok(oid)
            })
            .unwrap();
        assert_eq!(
            pool.shard_map().shard_of_off(oid.off),
            shard as u64,
            "affinity must place the object in its bound shard"
        );
        oids.push(oid);
    }
    pool.unbind_thread_from_shard();
    oids
}

#[test]
fn cross_shard_transaction_commits_and_survives_reopen() {
    let opts = options().shards(4);
    let dev = device(&opts);
    let pool = opts.create(dev.clone()).unwrap();
    assert_eq!(pool.shards(), 4);

    let oids = alloc_per_shard(&pool, 0x11);
    // One transaction touching every shard: exercises the ordered
    // multi-lane commit protocol end to end.
    pool.tx(|tx| {
        for oid in &oids {
            tx.write(*oid, 0, &[0x77; OBJ])?;
        }
        Ok(())
    })
    .unwrap();
    for oid in &oids {
        assert_eq!(pool.read_verified(*oid).unwrap(), vec![0x77; OBJ]);
    }
    assert!(pool.verify_parity().unwrap());
    drop(pool);

    // Reopen at the same shard count; all shards' data intact.
    let pool = PglPool::options().shards(4).open(dev).unwrap();
    for oid in &oids {
        assert_eq!(pool.read_verified(*oid).unwrap(), vec![0x77; OBJ]);
    }
    assert!(pool.verify_parity_detailed().unwrap().is_empty());
}

#[test]
fn shard_count_is_runtime_only_and_byte_compatible() {
    // Written at 4 shards, reopened at 1 and 2: the shards knob is pure
    // runtime routing, never persisted, so any count reads any pool.
    let opts = options().shards(4);
    let dev = device(&opts);
    let pool = opts.create(dev.clone()).unwrap();
    let oids = alloc_per_shard(&pool, 0x42);
    drop(pool);

    for shards in [1usize, 2] {
        let pool = PglPool::options().shards(shards).open(dev.clone()).unwrap();
        assert_eq!(pool.shards(), shards);
        for oid in &oids {
            assert_eq!(pool.read_verified(*oid).unwrap(), vec![0x42; OBJ]);
        }
        assert!(pool.verify_parity().unwrap(), "parity holds at {shards} shards");
        drop(pool);
    }
}

#[test]
fn scrub_reports_per_shard_progress() {
    let opts = options().shards(4);
    let dev = device(&opts);
    let pool = opts.create(dev.clone()).unwrap();
    let oids = alloc_per_shard(&pool, 0x33);
    let before = dev.stats();
    pool.scrub_now().unwrap();
    let after = dev.stats();

    let progress = pool.scrub_progress();
    assert_eq!(progress.len(), 4);
    for (shard, (done, total)) in progress.iter().enumerate() {
        assert_eq!(done, total, "shard {shard} cursor parked at its total");
        assert!(*total >= 1, "shard {shard} owns at least its pinned object");
        assert_eq!(
            after.scrub_passes[shard] - before.scrub_passes[shard],
            1,
            "shard {shard} records exactly one scrub pass"
        );
    }
    // Root + one object per shard: totals account for every live object.
    let total: u64 = progress.iter().map(|(_, t)| t).sum();
    assert_eq!(total, oids.len() as u64);
}

/// Satellite pin: a shard's recovery sweep issues **zero reads outside its
/// own zones**. Each parallel recovery worker arms a device read scope
/// over its shard's zone ranges; any out-of-scope read counts a
/// `scope_violations` tick. Crash a cross-shard transaction mid-commit,
/// reopen, and require every shard to have swept with no violations.
#[test]
fn recovery_sweeps_read_only_their_own_zones() {
    let opts = options().shards(4);
    let dev = device(&opts);
    let pool = opts.create(dev.clone()).unwrap();
    let oids = alloc_per_shard(&pool, 0x11);

    // Crash partway through a commit that spans all four shards, leaving
    // redo entries for several shards in the lanes.
    dev.arm_crash_after(40);
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        pool.tx(|tx| {
            for oid in &oids {
                tx.write(*oid, 0, &[0xEE; OBJ])?;
            }
            Ok(())
        })
    }));
    dev.disarm_crash();
    match outcome {
        Err(p) if p.downcast_ref::<CrashPoint>().is_some() => {}
        Err(p) => panic::resume_unwind(p),
        Ok(r) => panic!("transaction was expected to crash, got {r:?}"),
    }
    // The crashed pool handle must not run Drop cleanups.
    std::mem::forget(pool);

    let before = dev.stats();
    let pool = PglPool::options().shards(4).open(dev.clone()).unwrap();
    let after = dev.stats();
    let delta = after.delta_since(&before);
    for shard in 0..4 {
        assert_eq!(delta.recovery_sweeps[shard], 1, "shard {shard} swept exactly once at open");
    }
    assert_eq!(delta.scope_violations, 0, "no recovery worker read outside its shard's zones");
    // And the pool recovered to a consistent all-or-nothing state.
    assert!(pool.verify_parity().unwrap());
    let data: Vec<Vec<u8>> = oids.iter().map(|o| pool.read_verified(*o).unwrap()).collect();
    let all_old = data.iter().all(|d| d == &vec![0x11; OBJ]);
    let all_new = data.iter().all(|d| d == &vec![0xEE; OBJ]);
    assert!(all_old || all_new, "cross-shard commit must be all-or-nothing");
}

#[test]
fn shard_zero_config_autosizes_from_zones() {
    let opts = options().shards(0);
    let dev = device(&opts);
    let pool = opts.create(dev).unwrap();
    let zones = pool.shard_map().n_zones();
    assert_eq!(pool.shards() as u64, zones.min(8), "auto = min(n_zones, 8)");
}

#[test]
fn explicit_shards_clamp_to_zone_count() {
    let opts = options().shards(64);
    let dev = device(&opts);
    let pool = opts.create(dev).unwrap();
    assert_eq!(pool.shards() as u64, pool.shard_map().n_zones());
}

#[test]
fn mismatched_affinity_binding_wraps() {
    let opts = options().shards(2);
    let dev = device(&opts);
    let pool = opts.create(dev).unwrap();
    // Binding beyond the shard count wraps instead of panicking.
    pool.bind_thread_to_shard(7);
    let oid = pool.tx(|tx| tx.alloc(64, 1)).unwrap();
    assert_eq!(pool.shard_map().shard_of_off(oid.off), 7 % 2);
    pool.unbind_thread_from_shard();
    let _ = pool.read_verified(oid).unwrap();
}
