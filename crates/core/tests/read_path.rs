//! Regression tests for the read-path overhaul: the DRAM
//! verified-generation cache, range-granular verified reads, lazy
//! transactional opens, and the coherence rules that keep them honest
//! (every library mutation bumps the generation; a scrub/recovery repair
//! is never followed by a stale-verified read).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pangolin::{inject, CsumPolicy, PMEMoid, PglConfig, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice};

fn pool_with_dev() -> (PglPool, Arc<NvmDevice>) {
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    (PglPool::create(dev.clone(), cfg).unwrap(), dev)
}

fn make_object(pool: &PglPool, size: u64, fill: u8) -> PMEMoid {
    pool.tx(|tx| {
        let oid = tx.alloc(size, 1)?;
        tx.write(oid, 0, &vec![fill; size as usize])?;
        Ok(oid)
    })
    .unwrap()
}

/// The headline invariant: once an object is verified, a range read
/// issues exactly ONE range-sized NVMM read — no header read, no
/// whole-object load, zero checksum passes — and is accounted in the
/// `verified_cached` bucket.
#[test]
fn cache_hit_read_is_one_range_read_and_zero_csum_passes() {
    let (pool, dev) = pool_with_dev();
    let oid = make_object(&pool, 4096, 0xAB);

    // Populate: the first verified read misses, pays one whole-object
    // verification, and inserts the entry.
    let s0 = dev.stats();
    assert_eq!(pool.read_verified(oid).unwrap(), vec![0xAB; 4096]);
    let d = dev.stats().delta_since(&s0);
    assert_eq!(d.csum_passes, 1, "miss verifies exactly once");
    assert_eq!(d.csum_bytes, 4096);
    assert_eq!(d.vcache_hits, 0);

    // Hit: an 8-byte range read out of the 4 KiB object.
    let mut buf = [0u8; 8];
    let s1 = dev.stats();
    pool.read_verified_at(oid, 128, &mut buf).unwrap();
    let d = dev.stats().delta_since(&s1);
    assert_eq!(buf, [0xAB; 8]);
    assert_eq!(d.read_ops, 1, "exactly one NVMM read");
    assert_eq!(d.bytes_read, 8, "sized to the range, not the object");
    assert_eq!(d.csum_passes, 0, "zero checksum passes on a hit");
    assert_eq!((d.vcache_hits, d.vcache_hit_bytes), (1, 8));

    // Whole-object hits skip the checksum pass too.
    let s2 = dev.stats();
    assert_eq!(pool.read_verified(oid).unwrap(), vec![0xAB; 4096]);
    let d = dev.stats().delta_since(&s2);
    assert_eq!((d.read_ops, d.bytes_read, d.csum_passes), (1, 4096, 0));

    // And the vulnerability accounting keeps the buckets distinct.
    let v = pool.vuln();
    assert_eq!(v.verified, 4096, "one full verification");
    assert_eq!(v.verified_cached, 8 + 4096, "both hits counted as cached");
    assert_eq!(v.unverified, 0);
}

/// `read_verified_into` fills a prefix without allocating and rejects
/// buffers larger than the object.
#[test]
fn read_verified_into_respects_bounds() {
    let (pool, _dev) = pool_with_dev();
    let oid = make_object(&pool, 64, 0x3C);
    let mut buf = [0u8; 16];
    pool.read_verified_into(oid, &mut buf).unwrap();
    assert_eq!(buf, [0x3C; 16]);
    let mut big = [0u8; 128];
    assert!(
        matches!(
            pool.read_verified_into(oid, &mut big),
            Err(pangolin::PglError::TypeMismatch { .. })
        ),
        "oversized destination must not read past the object"
    );
    let mut tail = [0u8; 8];
    pool.read_verified_at(oid, 56, &mut tail).unwrap();
    assert_eq!(tail, [0x3C; 8]);
    assert!(pool.read_verified_at(oid, 60, &mut tail).is_err(), "off+len past the end");
    // `off + len` wrapping around u64 must fail, not pass the bounds
    // check — on a cache hit and on a miss alike.
    assert!(pool.read_verified_at(oid, u64::MAX - 3, &mut tail).is_err(), "wrapping offset");
    pool.read_verified_into(oid, &mut tail).unwrap(); // ensure cached
    assert!(
        matches!(
            pool.read_verified_at(oid, u64::MAX - 3, &mut tail),
            Err(pangolin::PglError::TypeMismatch { .. })
        ),
        "wrapping offset on a cached object"
    );
}

/// A commit write-back bumps the generation: the cache never serves the
/// pre-commit verification across a mutation, so a scribble landing
/// after the commit is detected by the next verified read.
#[test]
fn commit_invalidates_and_scribbles_after_commit_are_detected() {
    let (pool, dev) = pool_with_dev();
    let oid = make_object(&pool, 512, 0x11);
    assert_eq!(pool.read_verified(oid).unwrap(), vec![0x11; 512]); // cached
    pool.tx(|tx| tx.write(oid, 0, &[0x22; 32])).unwrap(); // bumps

    // Raw-device scribble the library cannot observe.
    dev.scribble(oid.off + 100, &[0xEE; 20]).unwrap();
    let s0 = dev.stats();
    let data = pool.read_verified(oid).unwrap();
    let d = dev.stats().delta_since(&s0);
    assert!(d.csum_passes >= 1, "post-commit read re-verifies (cache miss)");
    assert_eq!(&data[..32], &[0x22; 32][..]);
    assert_eq!(&data[100..120], &[0x11; 20][..], "scribble detected and repaired");
    assert!(pool.verify_parity().unwrap());
}

/// The documented exposure window: a raw-device scribble *between* a
/// verification and a cached read is served (counted as
/// `verified_cached`), but a scrub repair bumps the generation, so no
/// read after the repair ever observes the stale bytes again.
#[test]
fn scrub_repair_is_never_followed_by_stale_cached_reads() {
    let (pool, dev) = pool_with_dev();
    let oid = make_object(&pool, 256, 0x44);
    assert_eq!(pool.read_verified(oid).unwrap(), vec![0x44; 256]); // cached

    dev.scribble(oid.off + 16, &[0xEE; 8]).unwrap();
    let mut win = [0u8; 8];
    pool.read_verified_at(oid, 16, &mut win).unwrap();
    assert_eq!(win, [0xEE; 8], "the bounded exposure window is real");

    // The scrub detects the checksum mismatch, repairs from parity, and
    // bumps the generation.
    let report = pool.scrub_now().unwrap();
    assert_eq!(report.objects_repaired, 1, "scrub repaired the scribble: {report:?}");

    // Every read after the repair sees the repaired bytes — cached or not.
    pool.read_verified_at(oid, 16, &mut win).unwrap();
    assert_eq!(win, [0x44; 8], "no stale-verified read survives a repair");
    assert_eq!(pool.read_verified(oid).unwrap(), vec![0x44; 256]);
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

/// Same guarantee through the online-recovery path: `inject::scribble_*`
/// models a cold-object scribble (it drops the cache entry), so the next
/// verified read detects, repairs, and re-populates; later cached reads
/// serve the repaired content.
#[test]
fn online_repair_repopulates_with_repaired_content() {
    let (pool, dev) = pool_with_dev();
    let oid = make_object(&pool, 300, 0x5A);
    assert_eq!(pool.read_verified(oid).unwrap(), vec![0x5A; 300]);

    inject::scribble_object(&pool, oid, 50, 120, 0xEE).unwrap();
    assert_eq!(pool.read_verified(oid).unwrap(), vec![0x5A; 300], "detected and repaired");
    assert!(pool.counters().object_recoveries.load(Ordering::Relaxed) >= 1);

    // The repair's end-to-end re-verification re-populated the cache.
    let s0 = dev.stats();
    let mut buf = [0u8; 4];
    pool.read_verified_at(oid, 60, &mut buf).unwrap();
    let d = dev.stats().delta_since(&s0);
    assert_eq!(buf, [0x5A; 4]);
    assert_eq!((d.csum_passes, d.vcache_hits), (0, 1), "served from the repaired entry");
}

/// Conservative-policy `pgl_get`s ride the cache: first access verifies
/// the whole object, subsequent accesses are range reads.
#[test]
fn conservative_gets_verify_once_then_range_read() {
    let cfg = PglConfig::small().with_policy(CsumPolicy::Conservative);
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = make_object(&pool, 4096, 0x21);

    let mut buf = [0u8; 8];
    let s0 = dev.stats();
    pool.read(oid, 0, &mut buf).unwrap();
    let d = dev.stats().delta_since(&s0);
    assert_eq!(d.csum_passes, 1, "first get verifies");

    let s1 = dev.stats();
    for i in 0..64u64 {
        pool.read(oid, (i * 8) % 4000, &mut buf).unwrap();
    }
    let d = dev.stats().delta_since(&s1);
    assert_eq!(d.csum_passes, 0, "repeated gets never re-verify");
    assert_eq!(d.bytes_read, 64 * 8, "range-sized reads only");
    assert_eq!(pool.vuln().unverified, 0, "conservative never reads unverified");
}

/// Lazy transactional opens: a read-only `tx.open` of a verified-fresh
/// object materializes no micro-buffer — its reads are range-sized — and
/// the first write pays the deferred load exactly once.
#[test]
fn lazy_open_defers_materialization_to_first_write() {
    let (pool, dev) = pool_with_dev();
    let oid = make_object(&pool, 4096, 0x66);
    assert_eq!(pool.read_verified(oid).unwrap(), vec![0x66; 4096]); // cache it

    // Read-only transaction: no O(object) load, no checksum pass.
    let s0 = dev.stats();
    let v = pool
        .tx(|tx| {
            tx.open(oid)?;
            assert_eq!(tx.obj_size(oid)?, 4096, "size served from the lazy entry");
            tx.read_pod::<u64>(oid, 8)
        })
        .unwrap();
    let d = dev.stats().delta_since(&s0);
    assert_eq!(v, u64::from_le_bytes([0x66; 8]));
    assert_eq!(d.csum_passes, 0, "lazy open skips verification");
    assert_eq!(d.bytes_read, 8, "only the requested range was read");

    // First write materializes (one whole-object read, still no checksum
    // pass — the object is verified-fresh) and commits normally.
    let s1 = dev.stats();
    pool.tx(|tx| {
        tx.open(oid)?;
        let mut probe = [0u8; 2];
        tx.read(oid, 0, &mut probe)?; // lazy range read
        tx.write(oid, 64, &[0x77; 16]) // materializes here
    })
    .unwrap();
    let d = dev.stats().delta_since(&s1);
    assert_eq!(d.csum_passes, 0, "materialization of a verified-fresh object skips the pass");
    let data = pool.read_verified(oid).unwrap();
    assert_eq!(&data[64..80], &[0x77; 16][..]);
    assert_eq!(data[0], 0x66);
    assert!(pool.verify_parity().unwrap());
}

/// Freeing an object drops its entry, so a realloc landing on the same
/// offset is never served with the dead object's cached size/content.
#[test]
fn free_and_realloc_invalidate() {
    let (pool, dev) = pool_with_dev();
    let a = make_object(&pool, 128, 0xA1);
    assert_eq!(pool.read_verified(a).unwrap(), vec![0xA1; 128]); // cached
    pool.tx(|tx| tx.free(a)).unwrap();

    // Reallocate until the allocator reuses the exact offset (same size
    // class ⇒ usually immediate).
    let mut reused = None;
    for i in 0..32u8 {
        let b = make_object(&pool, 128, 0xB0 ^ i);
        if b.off == a.off {
            reused = Some((b, 0xB0 ^ i));
            break;
        }
    }
    let Some((b, fill)) = reused else {
        return; // allocator never reused the slot; nothing to regress
    };
    let s0 = dev.stats();
    let data = pool.read_verified(b).unwrap();
    let d = dev.stats().delta_since(&s0);
    assert_eq!(data, vec![fill; 128], "new object's content, not the freed one's");
    assert_eq!(d.csum_passes, 1, "the reused slot re-verified (no stale entry)");
}

/// Concurrent readers, writers, and a scrubber: readers only ever observe
/// content their object legitimately held, while scrub passes and commit
/// invalidations race them.
#[test]
fn readers_vs_scrubber_vs_writers_race() {
    let mut cfg = PglConfig::small();
    cfg.pool.size = 32 << 20;
    cfg.pool.zone_size = 16 << 20;
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();

    // Read-only victims with self-describing content.
    let readers_objs: Vec<PMEMoid> =
        (0..16).map(|i| make_object(&pool, 256, 0x10 + i as u8)).collect();
    // Writer-owned objects (the §3.4 rule: writers never touch the
    // readers' set).
    let writer_objs: Vec<Vec<PMEMoid>> = (0..2)
        .map(|w| (0..8).map(|i| make_object(&pool, 512, (w * 8 + i) as u8)).collect())
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let reads_done = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for objs in &writer_objs {
            let pool = pool.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut round = 0u8;
                while !stop.load(Ordering::Relaxed) {
                    for oid in objs {
                        pool.tx(|tx| tx.write(*oid, 0, &[round; 64])).unwrap();
                    }
                    round = round.wrapping_add(1);
                }
            });
        }
        for t in 0..2 {
            let pool = pool.clone();
            let stop = stop.clone();
            let objs = readers_objs.clone();
            let reads_done = reads_done.clone();
            s.spawn(move || {
                let mut buf = [0u8; 16];
                while !stop.load(Ordering::Relaxed) {
                    for (i, oid) in objs.iter().enumerate() {
                        let expect = 0x10 + i as u8;
                        pool.read_verified_at(*oid, (t * 32) as u64, &mut buf).unwrap();
                        assert!(buf.iter().all(|&b| b == expect), "reader saw foreign bytes");
                        let whole = pool.read_verified(*oid).unwrap();
                        assert!(whole.iter().all(|&b| b == expect));
                        reads_done.fetch_add(2, Ordering::Relaxed);
                    }
                }
            });
        }
        let pool2 = pool.clone();
        let stop2 = stop.clone();
        s.spawn(move || {
            for _ in 0..8 {
                let report = pool2.scrub_now().unwrap();
                assert_eq!(report.objects_repaired, 0, "no false repairs under load");
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });
    assert!(reads_done.load(Ordering::Relaxed) > 0, "readers made progress");
    assert!(pool.verify_parity().unwrap());
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

/// The cache can be disabled (capacity 0): every verified read then pays
/// a full verification, restoring pre-cache behaviour.
#[test]
fn zero_capacity_disables_the_cache() {
    let opts = PglPool::options().vcache_capacity(0);
    let dev = Arc::new(NvmDevice::new(opts.config().pool.size, DeviceConfig::fast()).unwrap());
    let pool = opts.create(dev.clone()).unwrap();
    let oid = make_object(&pool, 256, 0x99);
    let s0 = dev.stats();
    for _ in 0..4 {
        pool.read_verified(oid).unwrap();
    }
    let d = dev.stats().delta_since(&s0);
    assert_eq!(d.csum_passes, 4, "every read re-verifies with the cache off");
    assert_eq!(d.vcache_hits, 0);
}

/// Typed layer: `get_verified` and `read_at_verified` ride the cache.
#[test]
fn typed_verified_reads_ride_the_cache() {
    use pangolin::typed::PObj;

    #[derive(Clone, Copy, Default)]
    #[repr(C)]
    struct Rec {
        a: u64,
        b: u64,
        pad: [u64; 6],
    }
    pangolin::impl_ptype!(Rec, 64, 9);

    let (pool, dev) = pool_with_dev();
    let h: PObj<Rec> = pool.tx(|tx| tx.alloc_obj(&Rec { a: 7, b: 9, pad: [0; 6] })).unwrap();
    assert_eq!(pool.get_verified(h).unwrap().a, 7); // miss: verifies + caches
    let s0 = dev.stats();
    let b = pool.read_at_verified(h, pangolin::field!(Rec, b: u64)).unwrap();
    let d = dev.stats().delta_since(&s0);
    assert_eq!(b, 9);
    // (Debug builds add a 16-byte header read for the brand check, so pin
    // the cache-served payload, not total bytes.)
    assert_eq!((d.csum_passes, d.vcache_hit_bytes), (0, 8), "field-sized cached read");
}
