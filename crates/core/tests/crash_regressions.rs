//! Crash-sweep regressions for interleavings previously argued only in
//! prose (PR 4/5):
//!
//! * **lazy log invalidation** — a lane's redo log is invalidated by a
//!   flushed-but-unfenced generation bump that only the lane's *next*
//!   transaction fences; a crash in the window must not let recovery
//!   replay a stale log (and replay must be idempotent across
//!   back-to-back commits reusing the lane);
//! * **parity-first Log→Free CM flips** — recovery's orphan-log sweep and
//!   the commit path's log release both flip chunk metadata Log→Free with
//!   the parity patch applied *first*; flipping CM first was PR 4's latent
//!   bug (a crash between the two left parity claiming a Log chunk that
//!   CM already called Free);
//! * **vcache generation coherence** — the DRAM verified-generation cache
//!   must never serve stale bytes after recovery: commits bump the
//!   generation, and detected corruption still repairs online.

use pangolin::crashcheck::{self, FnWorkload, SweepConfig};
use pangolin::{inject, PMEMoid, PglError, PglPool};

fn find_by_type(pool: &PglPool, type_num: u32) -> pangolin::Result<PMEMoid> {
    pool.live_objects()?
        .into_iter()
        .find(|(_, h)| h.type_num == type_num)
        .map(|(oid, _)| PMEMoid::new(pool.uuid(), oid.off))
        .ok_or_else(|| PglError::Config(format!("no live object of type {type_num}")))
}

/// Three back-to-back commits from the same thread reuse the same lane, so
/// every crash boundary in commits 2 and 3 falls inside the lazy-
/// invalidation window of the previous commit: the generation bump that
/// retires the old redo log is flushed but only fenced by the next
/// transaction's first drain. The oracle proves recovery never replays a
/// retired log (which would resurrect an earlier pattern or tear the
/// object) at any of those boundaries.
#[test]
fn lazy_log_invalidation_is_replay_idempotent_at_every_boundary() {
    const PATTERNS: [u8; 3] = [0xA1, 0xB2, 0xC3];
    let workload = FnWorkload::new(
        "lazy-log-invalidation",
        |pool| {
            pool.tx(|tx| {
                let oid = tx.alloc(256, 1)?;
                tx.write(oid, 0, &[0x10; 256])
            })
        },
        |pool, ctx| {
            let oid = find_by_type(pool, 1)?;
            for p in PATTERNS {
                pool.tx(|tx| tx.write(oid, 0, &[p; 256]))?;
                ctx.commit_point(pool)?;
            }
            Ok(())
        },
    )
    .with_verify(|pool, committed| {
        // The recovered object must hold exactly the pattern of the
        // surviving commit — a stale-log replay would show an older one.
        let expect = if committed == 0 { 0x10 } else { PATTERNS[committed - 1] };
        let data = pool.read_verified(find_by_type(pool, 1)?)?;
        if !data.iter().all(|&b| b == expect) {
            return Err(PglError::Config(format!(
                "object holds {:#04x}.. instead of commit {committed}'s {expect:#04x}",
                data[0]
            )));
        }
        // The lane must be reusable: a fresh commit after recovery lands
        // cleanly (recovery replay was idempotent, no half-retired log).
        let oid = find_by_type(pool, 1)?;
        pool.tx(|tx| tx.write(oid, 0, &[0xD4; 256]))?;
        let data = pool.read_verified(oid)?;
        if !data.iter().all(|&b| b == 0xD4) {
            return Err(PglError::Config("lane unusable after recovery".into()));
        }
        if !pool.verify_parity()? {
            return Err(PglError::Config("parity broken by post-recovery commit".into()));
        }
        Ok(())
    });

    // Three commits triple the boundary count and every case re-commits in
    // verify; sample every 3rd boundary in the smoke run (the window still
    // gets dozens of hits) and let the nightly deep config sweep them all.
    crashcheck::sweep_with(&workload, &SweepConfig::from_env().sampled(3));
}

/// A transaction whose redo payload (300 × 512 B ≈ 150 KiB) exceeds the
/// 128 KiB lane spills into heap Log chunks. Recovery must sweep the
/// orphans back to Free with the parity patch applied *before* the CM
/// flip; the sweep's per-case `verify_parity` re-pins PR 4's latent
/// CM-first bug at every crash boundary, including those inside the
/// release path at the tail of the commit.
#[test]
fn log_to_free_cm_flips_stay_parity_consistent_across_crashes() {
    const N: usize = 300;
    let workload = FnWorkload::new(
        "log-overflow-cm-flip",
        |pool| {
            for i in 0..N {
                pool.tx(|tx| {
                    let oid = tx.alloc(512, 1)?;
                    tx.write(oid, 0, &[i as u8; 512])
                })?;
            }
            Ok(())
        },
        |pool, ctx| {
            let oids: Vec<PMEMoid> = pool
                .live_objects()?
                .into_iter()
                .map(|(oid, _)| PMEMoid::new(pool.uuid(), oid.off))
                .collect();
            pool.tx(|tx| {
                for oid in &oids {
                    tx.write(*oid, 0, &[0xEE; 512])?;
                }
                Ok(())
            })?;
            ctx.commit_point(pool)
        },
    )
    .with_verify(|pool, _committed| {
        // Overflow chunks must be returned to the heap: allocation still
        // works after any crash point.
        pool.tx(|tx| tx.alloc(1024, 2))?;
        Ok(())
    });

    // The body spans thousands of device ops; crash at ~24 evenly spaced
    // boundaries in the smoke run (the budget stretches 8× nightly). The
    // densest interleavings — parity patch vs CM flip — sit at the commit
    // tail, which the even spacing still lands inside.
    crashcheck::sweep_with(&workload, &SweepConfig::from_env().budget(24));
}

/// After every crash + recovery, the verified-generation cache must stay
/// coherent: repeated verified reads agree, a committed overwrite is
/// immediately visible (generation bump), and software corruption is
/// still detected and repaired online rather than masked by a stale
/// cached generation.
#[test]
fn vcache_generations_stay_coherent_after_recovery() {
    let workload = FnWorkload::new(
        "vcache-coherence",
        |pool| {
            pool.tx(|tx| {
                let oid = tx.alloc(192, 1)?;
                tx.write(oid, 0, &[0x21; 192])
            })
        },
        |pool, ctx| {
            let oid = find_by_type(pool, 1)?;
            pool.tx(|tx| tx.write(oid, 0, &[0x42; 192]))?;
            ctx.commit_point(pool)?;
            pool.tx(|tx| tx.write(oid, 0, &[0x63; 192]))?;
            ctx.commit_point(pool)
        },
    )
    .with_verify(|pool, _committed| {
        let oid = find_by_type(pool, 1)?;
        // Two verified reads in a row: the second is served from the
        // vcache and must agree with the first.
        let first = pool.read_verified(oid)?;
        let cached = pool.read_verified(oid)?;
        if cached != first {
            return Err(PglError::Config("vcache served different bytes".into()));
        }
        // A committed overwrite bumps the generation: the next verified
        // read must see the new bytes, not the cached old generation.
        pool.tx(|tx| tx.write(oid, 0, &[0x7E; 192]))?;
        let fresh = pool.read_verified(oid)?;
        if !fresh.iter().all(|&b| b == 0x7E) {
            return Err(PglError::Config("stale vcache generation after commit".into()));
        }
        // Corruption must still be caught and repaired online — never
        // masked by the cache.
        inject::scribble_object(pool, oid, 16, 32, 0xFF)?;
        let repaired = pool.read_verified(oid)?;
        if !repaired.iter().all(|&b| b == 0x7E) {
            return Err(PglError::Config("scribble not repaired after recovery".into()));
        }
        if !pool.verify_parity()? {
            return Err(PglError::Config("parity broken after online repair".into()));
        }
        Ok(())
    });

    crashcheck::sweep_with(&workload, &SweepConfig::from_env().sampled(2));
}
