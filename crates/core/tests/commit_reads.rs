//! Regression tests for the fused commit pipeline's read traffic: each
//! modified range's old NVMM bytes are read **exactly once** per commit
//! (feeding both the incremental checksum and the parity patch), and the
//! commit path performs no hidden extra reads. The double-read pipeline
//! this replaced read every range's pre-image twice — once for the
//! Adler32 delta, once inside the parity write-back — so total read
//! traffic here also pins the ~`commit_old_bytes`-per-workload saving.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pangolin::{PglConfig, PglPool};
use pgl_nvm::{DeviceConfig, NvmDevice};

/// Counting allocator: lets the steady-state test assert the commit path
/// stopped allocating.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const OBJ: u64 = 1024;
/// The three disjoint ranges each transaction overwrites.
const RANGES: [(u64, u64); 3] = [(0, 32), (128, 64), (512, 48)];

fn total_range_bytes() -> u64 {
    RANGES.iter().map(|(_, l)| l).sum()
}

#[test]
fn one_old_read_per_modified_range() {
    let cfg = PglConfig::small(); // pgl-MLPC: checksums + parity
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(OBJ, 1)?;
            tx.write(oid, 0, &[0x5A; OBJ as usize])?;
            Ok(oid)
        })
        .unwrap();

    const TXNS: u64 = 100;
    let s0 = dev.stats();
    for round in 0..TXNS {
        pool.tx(|tx| {
            for (i, (off, len)) in RANGES.iter().enumerate() {
                let fill = (round as u8).wrapping_mul(31).wrapping_add(i as u8);
                tx.write(oid, *off, &vec![fill; *len as usize])?;
            }
            Ok(())
        })
        .unwrap();
    }
    let d = dev.stats().delta_since(&s0);

    // The invariant itself: exactly one commit-time old-data read per
    // modified range, covering exactly the modified bytes.
    assert_eq!(d.commit_old_reads, TXNS * RANGES.len() as u64, "one old read per range");
    assert_eq!(d.commit_old_bytes, TXNS * total_range_bytes(), "old reads cover the ranges only");

    // Total read traffic per transaction is fully accounted for:
    //   16 B   object header read at open (`obj_header_checked`)
    // + 1024 B whole-object load + verify at open (`load_ubuf`)
    // +  144 B the three ranges' pre-images, read ONCE (stage 2)
    // +   16 B header pre-image for the header's own parity patch
    // The double-read pipeline added another 144 B (a second pre-image
    // read inside the parity write-back) — asserting equality here proves
    // it is gone, cutting commit-time old-data traffic in half.
    let per_txn = 16 + OBJ + total_range_bytes() + 16;
    assert_eq!(d.bytes_read, TXNS * per_txn, "no hidden reads on the commit path");
    let double_read_total = TXNS * (per_txn + total_range_bytes());
    assert!(d.bytes_read < double_read_total, "strictly below the double-read pipeline");

    // And the data actually committed correctly.
    let data = pool.read_verified(oid).unwrap();
    for (i, (off, len)) in RANGES.iter().enumerate() {
        let fill = ((TXNS - 1) as u8).wrapping_mul(31).wrapping_add(i as u8);
        assert!(data[*off as usize..(*off + *len) as usize].iter().all(|&b| b == fill));
    }
    assert!(pool.verify_parity().unwrap());
}

#[test]
fn whole_object_overwrite_reads_one_fused_preimage() {
    // The whole-object fast path fuses header+data into ONE pre-image
    // read of exactly 16+size bytes per commit.
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(OBJ, 1)?;
            tx.write(oid, 0, &[0x11; OBJ as usize])?;
            Ok(oid)
        })
        .unwrap();
    const TXNS: u64 = 20;
    let s0 = dev.stats();
    for round in 0..TXNS {
        pool.tx(|tx| tx.write(oid, 0, &[round as u8 | 1; OBJ as usize])).unwrap();
    }
    let d = dev.stats().delta_since(&s0);
    assert_eq!(d.commit_old_reads, TXNS, "one fused pre-image read per commit");
    assert_eq!(d.commit_old_bytes, TXNS * (16 + OBJ), "header+data read together");
    // Whole overwrites also skip open-time verification soundly; total
    // reads per txn: 16 (header check) + OBJ (open load) + 16+OBJ (fused
    // pre-image) — nothing else.
    assert_eq!(d.bytes_read, TXNS * (16 + OBJ + 16 + OBJ), "no hidden reads");
    assert!(pool.verify_parity().unwrap());
    assert!(pool.find_corrupt_objects().unwrap().is_empty());
}

#[test]
fn scribbled_whole_object_overwrite_keeps_parity_consistent() {
    // A scribble bypasses parity, so the parity row reflects the
    // pre-scribble content. The overwrite path must verify (and repair)
    // at open so the pre-image it patches parity with matches what the
    // parity row actually holds. (Regression guard: a short-lived
    // "skip open verification for full overwrites" optimization left a
    // permanent pre-scribble⊕scribble residue in the whole stripe.)
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(256, 1)?;
            tx.write(oid, 0, &[0x11; 256])?;
            Ok(oid)
        })
        .unwrap();
    dev.scribble(oid.off + 64, &[0xAB; 32]).unwrap();
    pool.tx(|tx| tx.write(oid, 0, &[0x22; 256])).unwrap(); // whole-object overwrite
    assert!(pool.verify_parity().unwrap(), "scribble residue leaked into parity");
    assert_eq!(pool.read_verified(oid).unwrap(), vec![0x22; 256]);
    assert!(
        pool.counters().object_recoveries.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "the scribble was detected and repaired at open"
    );
}

#[test]
fn steady_state_commits_do_not_allocate() {
    // After a few warm-up transactions (which grow the recycled scratch,
    // maps, frames and lane buffers to their steady-state capacity), a
    // small-object overwrite commit must perform ZERO heap allocations —
    // per-range and per-object alike. The parity span guard is the one
    // permitted exception (its lock-guard vectors are sized per span), so
    // the bound below is a small constant, not proportional to ranges.
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev, cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(OBJ, 1)?;
            tx.write(oid, 0, &[1u8; OBJ as usize])?;
            Ok(oid)
        })
        .unwrap();
    let payload = [7u8; 96];
    for _ in 0..10 {
        pool.tx(|tx| {
            tx.write(oid, 0, &payload)?;
            tx.write(oid, 256, &payload)?;
            tx.write(oid, 700, &payload)
        })
        .unwrap();
    }
    const TXNS: u64 = 50;
    let a0 = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..TXNS {
        pool.tx(|tx| {
            tx.write(oid, 0, &payload)?;
            tx.write(oid, 256, &payload)?;
            tx.write(oid, 700, &payload)
        })
        .unwrap();
    }
    let per_txn = (ALLOCS.load(Ordering::Relaxed) - a0) as f64 / TXNS as f64;
    assert!(
        per_txn <= 2.0,
        "steady-state commit allocates {per_txn} times per txn (want ≤ 2: span-guard vectors only)"
    );
}

#[test]
fn unchanged_overwrite_skips_parity_persist() {
    // Writing back bytes identical to the pre-image produces an all-zero
    // parity diff: the fused pipeline must not issue a single atomic XOR
    // (nor the trailing flush+fence) for it.
    let cfg = PglConfig::small();
    let dev = Arc::new(NvmDevice::new(cfg.pool.size, DeviceConfig::fast()).unwrap());
    let pool = PglPool::create(dev.clone(), cfg).unwrap();
    let oid = pool
        .tx(|tx| {
            let oid = tx.alloc(256, 1)?;
            tx.write(oid, 0, &[0x77; 256])?;
            Ok(oid)
        })
        .unwrap();
    let s0 = dev.stats();
    pool.tx(|tx| tx.write(oid, 64, &[0x77; 64])).unwrap(); // identical bytes
    let d = dev.stats().delta_since(&s0);
    assert_eq!(d.atomic_xors, 0, "all-zero diff words never reach the device");
    assert_eq!(d.commit_old_reads, 1, "the pre-image is still read once");
    assert!(pool.verify_parity().unwrap());
}
